//! Criterion micro-benchmarks of the advisor pipeline (§7.2's cost
//! discussion): calibration, what-if estimation (cache ablation),
//! greedy vs exhaustive enumeration, refinement, and a dynamic
//! monitoring period.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vda_bench::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::costmodel::calibration::Calibrator;
use vda_core::costmodel::whatif::WhatIfEstimator;
use vda_core::dynamic::{DynamicConfigManager, DynamicOptions};
use vda_core::problem::{Allocation, SearchSpace};
use vda_core::refine::RefineOptions;
use vda_core::tenant::Tenant;
use vda_simdb::engines::Engine;
use vda_workloads::tpch;

fn bench_calibration(c: &mut Criterion) {
    let hv = setups::testbed();
    c.bench_function("calibrate_pg", |b| {
        b.iter(|| black_box(Calibrator::new(&hv).calibrate(&Engine::pg())))
    });
    c.bench_function("calibrate_db2", |b| {
        b.iter(|| black_box(Calibrator::new(&hv).calibrate(&Engine::db2())))
    });
}

fn bench_whatif(c: &mut Criterion) {
    let hv = setups::testbed();
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let tenant = Tenant::new(
        "bench",
        engine.clone(),
        setups::sf(1.0),
        tpch::query_workload(18, 5.0),
    )
    .expect("binds");
    let model = Calibrator::new(&hv).calibrate(&engine);

    c.bench_function("whatif_estimate_cold", |b| {
        b.iter(|| {
            let est = WhatIfEstimator::new(&tenant, &model);
            black_box(est.cost(Allocation::new(0.5, 0.5)))
        })
    });
    let warm = WhatIfEstimator::new(&tenant, &model);
    warm.cost(Allocation::new(0.5, 0.5));
    c.bench_function("whatif_estimate_cached", |b| {
        b.iter(|| black_box(warm.cost(Allocation::new(0.5, 0.5))))
    });
    let uncached = WhatIfEstimator::without_cache(&tenant, &model);
    c.bench_function("whatif_estimate_uncached_ablation", |b| {
        b.iter(|| black_box(uncached.cost(Allocation::new(0.5, 0.5))))
    });
}

fn search_advisor() -> vda_core::advisor::VirtualizationDesignAdvisor {
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c_unit, i_unit) = setups::cpu_units(&engine, &cat);
    setups::advisor_for(
        &engine,
        &cat,
        vec![
            c_unit.compose(5.0, &i_unit, 5.0),
            c_unit.compose(2.0, &i_unit, 8.0),
            c_unit.compose(8.0, &i_unit, 2.0),
            i_unit.times(10.0),
        ],
    )
}

fn bench_search(c: &mut Criterion) {
    let adv = search_advisor();
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
    c.bench_function("greedy_search_4_workloads", |b| {
        b.iter(|| black_box(adv.recommend(&space)))
    });
    c.bench_function("exhaustive_search_4_workloads", |b| {
        b.iter(|| black_box(adv.recommend_exhaustive(&space)))
    });
    c.bench_function("optimal_actual_4_workloads", |b| {
        b.iter(|| black_box(adv.optimal_actual(&space)))
    });
    let mut serial_adv = search_advisor();
    serial_adv.set_search_options(vda_core::enumerate::SearchOptions::serial());
    c.bench_function("greedy_search_4_workloads_serial_eval", |b| {
        b.iter(|| black_box(serial_adv.recommend(&space)))
    });
    c.bench_function("exhaustive_search_4_workloads_serial_eval", |b| {
        b.iter(|| black_box(serial_adv.recommend_exhaustive(&space)))
    });
}

fn bench_refinement(c: &mut Criterion) {
    let adv = search_advisor();
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
    let rec = adv.recommend(&space);
    c.bench_function("refine_recommendation_4_workloads", |b| {
        b.iter(|| {
            black_box(adv.refine_recommendation(
                &space,
                &rec.result.allocations,
                &RefineOptions::default(),
            ))
        })
    });
}

fn bench_dynamic_period(c: &mut Criterion) {
    let adv = search_advisor();
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
    c.bench_function("dynamic_monitoring_period", |b| {
        b.iter(|| {
            let mut mgr = DynamicConfigManager::new(&adv, space, DynamicOptions::default());
            black_box(mgr.process_period(&adv))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_calibration, bench_whatif, bench_search, bench_refinement,
              bench_dynamic_period
);
criterion_main!(benches);
