//! Criterion micro-benchmarks of the simulated DBMS substrate: SQL
//! parsing/binding, optimizer planning (including the 7-relation join
//! DP of Q8), and analytic execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vda_simdb::bind::bind_statement;
use vda_simdb::engines::Engine;
use vda_simdb::exec::{ExecContext, Executor};
use vda_simdb::optimizer::Optimizer;
use vda_simdb::sql::parse_statement;
use vda_vmm::{Hypervisor, PhysicalMachine, VmConfig};
use vda_workloads::tpch;

fn bench_frontend(c: &mut Criterion) {
    let q18 = tpch::query(18);
    c.bench_function("parse_q18", |b| {
        b.iter(|| black_box(parse_statement(&q18).expect("parses")))
    });
    let cat = tpch::catalog(1.0);
    c.bench_function("bind_q18", |b| {
        b.iter(|| black_box(bind_statement(&q18, &cat).expect("binds")))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let cat = tpch::catalog(1.0);
    let engine = Engine::db2();
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let perf = hv.perf_for(VmConfig::new(0.5, 0.5).expect("valid"));
    let params = engine.true_params(&perf);
    let factors = engine.factors(&params);

    let q6 = bind_statement(&tpch::query(6), &cat).expect("binds");
    c.bench_function("plan_q6_single_table", |b| {
        let opt = Optimizer::new(&cat, factors);
        b.iter(|| black_box(opt.plan(&q6)))
    });
    let q8 = bind_statement(&tpch::query(8), &cat).expect("binds");
    c.bench_function("plan_q8_seven_way_join_dp", |b| {
        let opt = Optimizer::new(&cat, factors);
        b.iter(|| black_box(opt.plan(&q8)))
    });
    let q18 = bind_statement(&tpch::query(18), &cat).expect("binds");
    c.bench_function("plan_q18_with_subquery", |b| {
        let opt = Optimizer::new(&cat, factors);
        b.iter(|| black_box(opt.plan(&q18)))
    });
}

fn bench_executor(c: &mut Criterion) {
    let cat = tpch::catalog(1.0);
    let engine = Engine::db2();
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let perf = hv.perf_for(VmConfig::new(0.5, 0.5).expect("valid"));
    let exec = Executor::new(&engine, &cat);
    let q18 = bind_statement(&tpch::query(18), &cat).expect("binds");
    c.bench_function("execute_q18", |b| {
        b.iter(|| black_box(exec.execute(&q18, &perf, &ExecContext::default())))
    });

    let tpcc_cat = vda_workloads::tpcc::catalog(10);
    let exec_c = Executor::new(&engine, &tpcc_cat);
    let update = bind_statement(
        "UPDATE stock SET s_quantity = s_quantity - 5 WHERE s_i_id = 777 AND s_w_id = 1",
        &tpcc_cat,
    )
    .expect("binds");
    c.bench_function("execute_tpcc_update", |b| {
        b.iter(|| black_box(exec_c.execute(&update, &perf, &ExecContext { concurrency: 20.0 })))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_optimizer, bench_executor
);
criterion_main!(benches);
