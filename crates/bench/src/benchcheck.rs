//! The CI bench-regression gate.
//!
//! [`compare_reports`] diffs a freshly measured `BENCH_*.json` against
//! the committed baseline: deterministic fields (optimizer-call
//! counts, chosen allocations/assignments, objectives, contract
//! booleans) must match; wall-clock fields (`*_ms`, `speedup`) and the
//! worker-thread count are environment-dependent and ignored, which is
//! what makes the gate meaningful on a 1-CPU runner. [`check_vendor`]
//! catches the other silent-drift hazard: a `vendor/` stub whose
//! version no longer matches the pin in `Cargo.lock` (the cargo cache
//! key hashes both, so a drift would otherwise poison caches quietly).

use crate::jsonval::{parse, Json};

/// Relative tolerance for numeric leaves. Tight enough that a single
/// extra optimizer call or a different chosen allocation fails, loose
/// enough to absorb last-digit printing differences of float costs.
const REL_TOL: f64 = 1e-6;

/// Whether a leaf is environment-dependent and excluded from the diff.
fn ignored(path: &str) -> bool {
    let last = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit())
        .trim_end_matches('[');
    last.ends_with("_ms") || matches!(last, "speedup" | "threads" | "wall_ms")
}

/// Diff candidate against baseline. Returns the list of regressions
/// (empty = gate passes).
pub fn compare_reports(baseline: &str, candidate: &str) -> Vec<String> {
    let base = match parse(baseline) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline does not parse: {e}")],
    };
    let cand = match parse(candidate) {
        Ok(v) => v,
        Err(e) => return vec![format!("candidate does not parse: {e}")],
    };
    let mut problems = Vec::new();
    let base_leaves = base.leaves();
    let cand_leaves = cand.leaves();
    for (path, b) in &base_leaves {
        if ignored(path) {
            continue;
        }
        match cand_leaves.get(path) {
            None => problems.push(format!("{path}: missing from candidate")),
            Some(c) => {
                let matches = match (b, c) {
                    (Json::Num(x), Json::Num(y)) => {
                        (x - y).abs() <= REL_TOL * x.abs().max(y.abs()).max(1.0)
                    }
                    _ => b == c,
                };
                if !matches {
                    problems.push(format!("{path}: baseline {b} vs candidate {c}"));
                }
            }
        }
    }
    for path in cand_leaves.keys() {
        if !ignored(path) && !base_leaves.contains_key(path) {
            problems.push(format!("{path}: not in baseline (schema drift)"));
        }
    }
    problems
}

/// `(name, version)` pins from a `Cargo.lock`.
fn lock_pins(lock: &str) -> Vec<(String, String)> {
    let mut pins = Vec::new();
    let mut name: Option<String> = None;
    for line in lock.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            name = None;
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = line.strip_prefix("version = ") {
            if let Some(n) = name.take() {
                pins.push((n, v.trim_matches('"').to_string()));
            }
        }
    }
    pins
}

/// First `key = "value"` in a manifest's `[package]` section.
fn manifest_field(manifest: &str, key: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(v) = line.strip_prefix(key) {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Verify every vendored stub's `(name, version)` against the pins in
/// `Cargo.lock`. `manifests` holds `(directory name, Cargo.toml
/// contents)` pairs. Returns the list of drifts (empty = in sync).
pub fn check_vendor(lock: &str, manifests: &[(String, String)]) -> Vec<String> {
    let pins = lock_pins(lock);
    let mut problems = Vec::new();
    if manifests.is_empty() {
        problems.push("no vendor manifests found".to_string());
    }
    for (dir, manifest) in manifests {
        let Some(name) = manifest_field(manifest, "name") else {
            problems.push(format!("vendor/{dir}: no package name"));
            continue;
        };
        let Some(version) = manifest_field(manifest, "version") else {
            problems.push(format!("vendor/{dir}: no package version"));
            continue;
        };
        match pins.iter().find(|(n, _)| *n == name) {
            None => problems.push(format!("vendor/{dir}: {name} is not pinned in Cargo.lock")),
            Some((_, pinned)) if *pinned != version => problems.push(format!(
                "vendor/{dir}: {name} {version} drifted from Cargo.lock pin {pinned}"
            )),
            Some(_) => {}
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "threads": 1,
  "algorithms": [
    { "name": "greedy", "serial_ms": 10.0, "speedup": 1.5,
      "optimizer_calls_serial": 100, "allocations_identical": true }
  ],
  "coarse_to_fine": { "c2f_ms": 50.0, "c2f_optimizer_calls": 4040, "meets_5x": true },
  "coarse_to_fine_limited": {
    "degradation_limits": [4, null],
    "c2f_ms": 60.0,
    "c2f_optimizer_calls": 5325,
    "full_weighted_cost": 2853.05,
    "limits_met": [true, true],
    "limits_match": true,
    "meets_3x": true
  },
  "coarse_to_fine_3axis": {
    "space": "cpu_memory_disk",
    "disk_calibration_levels": [0.25, 0.5, 1],
    "c2f_ms": 70.0,
    "full_optimizer_calls": 20485,
    "c2f_optimizer_calls": 3230,
    "full_weighted_cost": 764.788,
    "objective_match": true,
    "meets_2x": true
  },
  "dynamic": {
    "periods": 20,
    "cold_wall_ms": 140.0,
    "warm_wall_ms": 25.0,
    "steady_optimizer_calls_cold": 24729,
    "steady_optimizer_calls_incremental": 1256,
    "incremental_calls_per_period": [157, 98, 0, 5],
    "delta_solves": 20,
    "lattice_reuses": 48,
    "probe_hits": 12285,
    "final_objectives": [890.642, 222.932],
    "speedup": 19.689,
    "results_match": true,
    "meets_10x": true
  },
  "fleet": {
    "shards": 4,
    "warm_wall_ms": 9000.0,
    "cold_wall_ms": 30000.0,
    "p99_ms": 45.2,
    "mean_latency_ms": 12.1,
    "construction_optimizer_calls": 181000,
    "event_optimizer_calls_incremental": 21000,
    "event_optimizer_calls_cold": 240000,
    "call_ratio": 11.4,
    "event_kinds": { "scaled": 121, "changed_major": 9, "changed_minor": 6 },
    "snapshot_bytes": 3100000,
    "snapshot_roundtrip": true,
    "resume_matches": true,
    "meets_5x": true,
    "scaled": {
      "batch_size": 25,
      "probe_cache_rows": 120000,
      "per_event_wall_ms": 2400.0,
      "batched_wall_ms": 2200.0,
      "capped_wall_ms": 8600.0,
      "event_optimizer_calls_batched": 5850,
      "waves_per_event": 501,
      "waves_batched": 21,
      "coalesced_events": 200,
      "log_dropped_batched": 8,
      "probe_evictions": 26075,
      "probe_bytes_capped": 9304480,
      "serial_equivalence": true,
      "batching_cuts_waves": true,
      "cache_bounded": true
    }
  },
  "adaptive": {
    "drift_events": 12,
    "actuals_events": 30,
    "adaptive_wall_ms": 35.5,
    "frozen_wall_ms": 18.4,
    "event_optimizer_calls_adaptive": 9000,
    "event_optimizer_calls_frozen": 5268,
    "shadow_reports": 6,
    "canary_deployments": 20,
    "promotions": 2,
    "rollbacks": 0,
    "frozen_actual_seconds": 14042.156,
    "adaptive_actual_seconds": 13515.704,
    "frozen_mape": 0.201479,
    "adaptive_mape": 0.007372,
    "all_promoted": true,
    "adaptive_improves": true,
    "reduces_error": true,
    "rollback": {
      "rollback_wall_ms": 11.2,
      "diverged_during_canary": true,
      "state_restored": true
    }
  },
  "heterogeneous": {
    "machine_scales_cpu": [0.5, 0.5, 1.0, 1.0],
    "machine_scales_memory": [0.5, 0.5, 1.0, 1.0],
    "wall_ms": 22.0,
    "assignment": [2, 0, 3, 3],
    "objective": 964.05,
    "smallest_assumption_assignment": [0, 1, 2, 3],
    "smallest_assumption_objective": 1089.6,
    "improvement": 0.115,
    "inner_solves": 154,
    "optimizer_calls": 1172,
    "beats_smallest_assumption": true
  }
}"#;

    #[test]
    fn identical_reports_pass() {
        assert!(compare_reports(BASE, BASE).is_empty());
    }

    #[test]
    fn wall_time_and_threads_are_ignored() {
        let cand = BASE
            .replace("\"threads\": 1", "\"threads\": 4")
            .replace("10.0", "93.5")
            .replace("1.5", "0.4")
            .replace("50.0", "4900.0");
        assert!(compare_reports(BASE, &cand).is_empty());
    }

    #[test]
    fn optimizer_call_regressions_fail() {
        let cand = BASE.replace(
            "\"optimizer_calls_serial\": 100",
            "\"optimizer_calls_serial\": 101",
        );
        let problems = compare_reports(BASE, &cand);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("optimizer_calls_serial"));
    }

    #[test]
    fn contract_boolean_regressions_fail() {
        let cand = BASE.replace("\"meets_5x\": true", "\"meets_5x\": false");
        let problems = compare_reports(BASE, &cand);
        assert!(problems.iter().any(|p| p.contains("meets_5x")));
    }

    #[test]
    fn limited_section_deterministic_fields_are_gated() {
        // The finite-limit coarse-to-fine section: optimizer calls,
        // objectives, limit verdicts, configured limits (nulls
        // included), and the meets_3x contract boolean are all
        // deterministic and therefore gated; its wall time is not.
        for (field, original, replacement) in [
            (
                "c2f_optimizer_calls",
                "\"c2f_optimizer_calls\": 5325",
                "\"c2f_optimizer_calls\": 9999",
            ),
            (
                "full_weighted_cost",
                "\"full_weighted_cost\": 2853.05",
                "\"full_weighted_cost\": 2900.0",
            ),
            (
                "limits_met",
                "\"limits_met\": [true, true]",
                "\"limits_met\": [true, false]",
            ),
            (
                "degradation_limits",
                "\"degradation_limits\": [4, null]",
                "\"degradation_limits\": [4, 2]",
            ),
            (
                "limits_match",
                "\"limits_match\": true",
                "\"limits_match\": false",
            ),
            ("meets_3x", "\"meets_3x\": true", "\"meets_3x\": false"),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "{field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE.replace("\"c2f_ms\": 60.0", "\"c2f_ms\": 999.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "limited-section wall time must stay unguarded"
        );
    }

    #[test]
    fn three_axis_section_deterministic_fields_are_gated() {
        // The cpu+memory+disk coarse-to-fine section: optimizer calls,
        // objectives, the calibrated disk levels, and the contract
        // booleans are deterministic and gated; its wall time is not.
        for (field, original, replacement) in [
            (
                "c2f_optimizer_calls",
                "\"c2f_optimizer_calls\": 3230",
                "\"c2f_optimizer_calls\": 9999",
            ),
            (
                "full_weighted_cost",
                "\"full_weighted_cost\": 764.788",
                "\"full_weighted_cost\": 800.0",
            ),
            (
                "disk_calibration_levels",
                "\"disk_calibration_levels\": [0.25, 0.5, 1]",
                "\"disk_calibration_levels\": [0.5, 0.75, 1]",
            ),
            ("meets_2x", "\"meets_2x\": true", "\"meets_2x\": false"),
            (
                "space",
                "\"space\": \"cpu_memory_disk\"",
                "\"space\": \"cpu_and_memory\"",
            ),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "3-axis {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE.replace("\"c2f_ms\": 70.0", "\"c2f_ms\": 5000.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "3-axis wall time must stay unguarded"
        );
    }

    #[test]
    fn heterogeneous_section_deterministic_fields_are_gated() {
        // The heterogeneous fleet section of BENCH_placement.json:
        // assignments (both the aware one and the smallest-machine
        // baseline's), objectives, the improvement, solve/optimizer
        // accounting, machine scales, and the contract boolean are all
        // deterministic and therefore gated; its wall time is not.
        for (field, original, replacement) in [
            (
                "assignment",
                "\"assignment\": [2, 0, 3, 3]",
                "\"assignment\": [2, 0, 3, 2]",
            ),
            ("objective", "\"objective\": 964.05", "\"objective\": 970.0"),
            (
                "smallest_assumption_assignment",
                "\"smallest_assumption_assignment\": [0, 1, 2, 3]",
                "\"smallest_assumption_assignment\": [0, 1, 2, 0]",
            ),
            (
                "smallest_assumption_objective",
                "\"smallest_assumption_objective\": 1089.6",
                "\"smallest_assumption_objective\": 1100.0",
            ),
            (
                "improvement",
                "\"improvement\": 0.115",
                "\"improvement\": 0.01",
            ),
            (
                "inner_solves",
                "\"inner_solves\": 154",
                "\"inner_solves\": 200",
            ),
            (
                "optimizer_calls",
                "\"optimizer_calls\": 1172",
                "\"optimizer_calls\": 1173",
            ),
            (
                "machine_scales_cpu",
                "\"machine_scales_cpu\": [0.5, 0.5, 1.0, 1.0]",
                "\"machine_scales_cpu\": [0.5, 1.0, 1.0, 1.0]",
            ),
            (
                "machine_scales_memory",
                "\"machine_scales_memory\": [0.5, 0.5, 1.0, 1.0]",
                "\"machine_scales_memory\": [0.5, 0.5, 0.5, 1.0]",
            ),
            (
                "beats_smallest_assumption",
                "\"beats_smallest_assumption\": true",
                "\"beats_smallest_assumption\": false",
            ),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "heterogeneous {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE.replace("\"wall_ms\": 22.0", "\"wall_ms\": 9999.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "heterogeneous wall time must stay unguarded"
        );
    }

    #[test]
    fn dynamic_section_deterministic_fields_are_gated() {
        // The incremental re-optimization section of
        // BENCH_dynamic.json: optimizer-call totals and per-period
        // series, warm-solve/lattice/probe counters, objectives, and
        // the two contract booleans are deterministic and gated; both
        // wall times (and the environment-dependent speedup ratio)
        // are not.
        for (field, original, replacement) in [
            (
                "steady_optimizer_calls_cold",
                "\"steady_optimizer_calls_cold\": 24729",
                "\"steady_optimizer_calls_cold\": 24000",
            ),
            (
                "steady_optimizer_calls_incremental",
                "\"steady_optimizer_calls_incremental\": 1256",
                "\"steady_optimizer_calls_incremental\": 2000",
            ),
            (
                "incremental_calls_per_period",
                "\"incremental_calls_per_period\": [157, 98, 0, 5]",
                "\"incremental_calls_per_period\": [157, 98, 7, 5]",
            ),
            (
                "delta_solves",
                "\"delta_solves\": 20",
                "\"delta_solves\": 23",
            ),
            (
                "lattice_reuses",
                "\"lattice_reuses\": 48",
                "\"lattice_reuses\": 0",
            ),
            ("probe_hits", "\"probe_hits\": 12285", "\"probe_hits\": 12"),
            (
                "final_objectives",
                "\"final_objectives\": [890.642, 222.932]",
                "\"final_objectives\": [890.642, 230.0]",
            ),
            (
                "results_match",
                "\"results_match\": true",
                "\"results_match\": false",
            ),
            ("meets_10x", "\"meets_10x\": true", "\"meets_10x\": false"),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "dynamic {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE
            .replace("\"cold_wall_ms\": 140.0", "\"cold_wall_ms\": 9000.0")
            .replace("\"warm_wall_ms\": 25.0", "\"warm_wall_ms\": 2.0")
            .replace("\"speedup\": 19.689", "\"speedup\": 4.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "dynamic wall times and the speedup ratio must stay unguarded"
        );
    }

    #[test]
    fn adaptive_section_deterministic_fields_are_gated() {
        // The adaptive-calibration section of BENCH_adaptive.json:
        // event tallies, optimizer-call totals, guardrail lifecycle
        // counts, actual-seconds totals, prediction errors, the
        // contract booleans, and the nested rollback-leg booleans are
        // deterministic and gated; all three wall times are not.
        for (field, original, replacement) in [
            (
                "drift_events",
                "\"drift_events\": 12",
                "\"drift_events\": 11",
            ),
            (
                "actuals_events",
                "\"actuals_events\": 30",
                "\"actuals_events\": 31",
            ),
            (
                "event_optimizer_calls_adaptive",
                "\"event_optimizer_calls_adaptive\": 9000",
                "\"event_optimizer_calls_adaptive\": 9001",
            ),
            (
                "event_optimizer_calls_frozen",
                "\"event_optimizer_calls_frozen\": 5268",
                "\"event_optimizer_calls_frozen\": 5300",
            ),
            (
                "shadow_reports",
                "\"shadow_reports\": 6",
                "\"shadow_reports\": 7",
            ),
            (
                "canary_deployments",
                "\"canary_deployments\": 20",
                "\"canary_deployments\": 2",
            ),
            ("promotions", "\"promotions\": 2", "\"promotions\": 1"),
            ("rollbacks", "\"rollbacks\": 0", "\"rollbacks\": 3"),
            (
                "frozen_actual_seconds",
                "\"frozen_actual_seconds\": 14042.156",
                "\"frozen_actual_seconds\": 14000.0",
            ),
            (
                "adaptive_actual_seconds",
                "\"adaptive_actual_seconds\": 13515.704",
                "\"adaptive_actual_seconds\": 13600.0",
            ),
            (
                "frozen_mape",
                "\"frozen_mape\": 0.201479",
                "\"frozen_mape\": 0.25",
            ),
            (
                "adaptive_mape",
                "\"adaptive_mape\": 0.007372",
                "\"adaptive_mape\": 0.4",
            ),
            (
                "all_promoted",
                "\"all_promoted\": true",
                "\"all_promoted\": false",
            ),
            (
                "adaptive_improves",
                "\"adaptive_improves\": true",
                "\"adaptive_improves\": false",
            ),
            (
                "reduces_error",
                "\"reduces_error\": true",
                "\"reduces_error\": false",
            ),
            (
                "diverged_during_canary",
                "\"diverged_during_canary\": true",
                "\"diverged_during_canary\": false",
            ),
            (
                "state_restored",
                "\"state_restored\": true",
                "\"state_restored\": false",
            ),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "adaptive {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE
            .replace("\"adaptive_wall_ms\": 35.5", "\"adaptive_wall_ms\": 900.0")
            .replace("\"frozen_wall_ms\": 18.4", "\"frozen_wall_ms\": 2.0")
            .replace("\"rollback_wall_ms\": 11.2", "\"rollback_wall_ms\": 777.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "adaptive wall times must stay unguarded"
        );
    }

    #[test]
    fn fleet_section_deterministic_fields_are_gated() {
        // The control-plane fleet section of BENCH_fleet.json:
        // optimizer-call totals, the call ratio (deterministic, unlike
        // a wall-clock speedup), shard/event tallies, snapshot size,
        // and the three contract booleans are gated; the wall times
        // and latency percentiles are not.
        for (field, original, replacement) in [
            ("shards", "\"shards\": 4", "\"shards\": 3"),
            (
                "construction_optimizer_calls",
                "\"construction_optimizer_calls\": 181000",
                "\"construction_optimizer_calls\": 200000",
            ),
            (
                "event_optimizer_calls_incremental",
                "\"event_optimizer_calls_incremental\": 21000",
                "\"event_optimizer_calls_incremental\": 90000",
            ),
            (
                "event_optimizer_calls_cold",
                "\"event_optimizer_calls_cold\": 240000",
                "\"event_optimizer_calls_cold\": 100000",
            ),
            ("call_ratio", "\"call_ratio\": 11.4", "\"call_ratio\": 2.0"),
            (
                "changed_major",
                "\"changed_major\": 9",
                "\"changed_major\": 2",
            ),
            (
                "snapshot_bytes",
                "\"snapshot_bytes\": 3100000",
                "\"snapshot_bytes\": 17",
            ),
            (
                "snapshot_roundtrip",
                "\"snapshot_roundtrip\": true",
                "\"snapshot_roundtrip\": false",
            ),
            (
                "resume_matches",
                "\"resume_matches\": true",
                "\"resume_matches\": false",
            ),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "fleet {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE
            .replace("\"warm_wall_ms\": 9000.0", "\"warm_wall_ms\": 1.0")
            .replace("\"cold_wall_ms\": 30000.0", "\"cold_wall_ms\": 2.0")
            .replace("\"p99_ms\": 45.2", "\"p99_ms\": 9000.0")
            .replace("\"mean_latency_ms\": 12.1", "\"mean_latency_ms\": 500.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "fleet wall times and latency percentiles must stay unguarded"
        );
    }

    #[test]
    fn fleet_scaled_section_deterministic_fields_are_gated() {
        // The nested batched-ingestion section of BENCH_fleet.json:
        // dimensions and knobs, optimizer-call totals, wave counts,
        // coalescing/eviction/ring counters, resident-byte accounting
        // (a deterministic size model, not a heap measurement), and
        // the four contract booleans are gated; the three per-leg wall
        // times are not.
        for (field, original, replacement) in [
            ("batch_size", "\"batch_size\": 25", "\"batch_size\": 50"),
            (
                "probe_cache_rows",
                "\"probe_cache_rows\": 120000",
                "\"probe_cache_rows\": 60000",
            ),
            (
                "event_optimizer_calls_batched",
                "\"event_optimizer_calls_batched\": 5850",
                "\"event_optimizer_calls_batched\": 7000",
            ),
            (
                "waves_per_event",
                "\"waves_per_event\": 501",
                "\"waves_per_event\": 500",
            ),
            (
                "waves_batched",
                "\"waves_batched\": 21",
                "\"waves_batched\": 501",
            ),
            (
                "coalesced_events",
                "\"coalesced_events\": 200",
                "\"coalesced_events\": 0",
            ),
            (
                "log_dropped_batched",
                "\"log_dropped_batched\": 8",
                "\"log_dropped_batched\": 0",
            ),
            (
                "probe_evictions",
                "\"probe_evictions\": 26075",
                "\"probe_evictions\": 0",
            ),
            (
                "probe_bytes_capped",
                "\"probe_bytes_capped\": 9304480",
                "\"probe_bytes_capped\": 11144960",
            ),
            (
                "serial_equivalence",
                "\"serial_equivalence\": true",
                "\"serial_equivalence\": false",
            ),
            (
                "batching_cuts_waves",
                "\"batching_cuts_waves\": true",
                "\"batching_cuts_waves\": false",
            ),
            (
                "cache_bounded",
                "\"cache_bounded\": true",
                "\"cache_bounded\": false",
            ),
        ] {
            let cand = BASE.replace(original, replacement);
            assert_ne!(cand, BASE, "{field} must appear in the fixture");
            let problems = compare_reports(BASE, &cand);
            assert!(
                problems.iter().any(|p| p.contains(field)),
                "scaled {field} drift must fail the gate: {problems:?}"
            );
        }
        let cand = BASE
            .replace(
                "\"per_event_wall_ms\": 2400.0",
                "\"per_event_wall_ms\": 1.0",
            )
            .replace("\"batched_wall_ms\": 2200.0", "\"batched_wall_ms\": 2.0")
            .replace("\"capped_wall_ms\": 8600.0", "\"capped_wall_ms\": 3.0");
        assert!(
            compare_reports(BASE, &cand).is_empty(),
            "scaled per-leg wall times must stay unguarded"
        );
    }

    #[test]
    fn schema_drift_fails_both_ways() {
        let cand = BASE.replace("\"meets_5x\": true", "\"meets_5x\": true, \"extra\": 1");
        assert!(compare_reports(BASE, &cand)
            .iter()
            .any(|p| p.contains("schema drift")));
        assert!(compare_reports(&cand, BASE)
            .iter()
            .any(|p| p.contains("missing from candidate")));
    }

    const LOCK: &str = r#"
[[package]]
name = "proptest"
version = "1.0.0"

[[package]]
name = "rayon"
version = "1.0.0"
"#;

    fn manifest(name: &str, version: &str) -> String {
        format!("[package]\nname = \"{name}\"\nversion = \"{version}\"\nedition = \"2021\"\n")
    }

    #[test]
    fn vendor_in_sync_passes() {
        let manifests = vec![
            ("proptest".to_string(), manifest("proptest", "1.0.0")),
            ("rayon".to_string(), manifest("rayon", "1.0.0")),
        ];
        assert!(check_vendor(LOCK, &manifests).is_empty());
    }

    #[test]
    fn vendor_version_drift_fails() {
        let manifests = vec![("proptest".to_string(), manifest("proptest", "1.1.0"))];
        let problems = check_vendor(LOCK, &manifests);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("drifted"));
    }

    #[test]
    fn unpinned_vendor_crate_fails() {
        let manifests = vec![("serde".to_string(), manifest("serde", "1.0.0"))];
        let problems = check_vendor(LOCK, &manifests);
        assert!(problems[0].contains("not pinned"));
    }

    #[test]
    fn ignores_are_not_too_greedy() {
        // A genuinely deterministic field whose name merely *contains*
        // "ms" must still be compared.
        let base = r#"{ "rooms": 3, "kms": 2 }"#;
        let cand = r#"{ "rooms": 4, "kms": 2 }"#;
        let problems = compare_reports(base, cand);
        assert!(problems.iter().any(|p| p.contains("rooms")), "{problems:?}");
    }
}
