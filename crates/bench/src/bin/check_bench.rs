//! CI bench-regression gate and vendor-drift checker.
//!
//! ```text
//! check_bench compare <baseline.json> <candidate.json>
//!     Diff a fresh BENCH_*.json against the committed baseline.
//!     Deterministic fields (optimizer-call counts, allocations,
//!     objectives, contract booleans) must match; wall-clock fields
//!     and thread counts are ignored. Exit 1 on any regression.
//!
//! check_bench vendor [<Cargo.lock> [<vendor-dir>]]
//!     Verify every vendor/ stub's version against the Cargo.lock
//!     pins (defaults: ./Cargo.lock, ./vendor). Exit 1 on drift.
//! ```

use std::process::ExitCode;
use vda_bench::benchcheck;

fn fail(problems: &[String], what: &str) -> ExitCode {
    eprintln!("{what} FAILED ({} problems):", problems.len());
    for p in problems {
        eprintln!("  - {p}");
    }
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") if args.len() == 3 => {
            let (baseline, candidate) = match (read(&args[1]), read(&args[2])) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let problems = benchcheck::compare_reports(&baseline, &candidate);
            if problems.is_empty() {
                println!("bench gate OK: {} matches {}", args[2], args[1]);
                ExitCode::SUCCESS
            } else {
                fail(&problems, "bench gate")
            }
        }
        Some("vendor") if args.len() <= 3 => {
            let lock_path = args.get(1).map(String::as_str).unwrap_or("Cargo.lock");
            let vendor_dir = args.get(2).map(String::as_str).unwrap_or("vendor");
            let lock = match read(lock_path) {
                Ok(l) => l,
                Err(e) => return e,
            };
            let mut manifests = Vec::new();
            let entries = match std::fs::read_dir(vendor_dir) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot read {vendor_dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for entry in entries.flatten() {
                let manifest_path = entry.path().join("Cargo.toml");
                if let Ok(contents) = std::fs::read_to_string(&manifest_path) {
                    manifests.push((entry.file_name().to_string_lossy().into_owned(), contents));
                }
            }
            manifests.sort();
            let problems = benchcheck::check_vendor(&lock, &manifests);
            if problems.is_empty() {
                println!(
                    "vendor OK: {} stubs match the {lock_path} pins",
                    manifests.len()
                );
                ExitCode::SUCCESS
            } else {
                fail(&problems, "vendor check")
            }
        }
        _ => {
            eprintln!("usage: check_bench compare <baseline.json> <candidate.json>");
            eprintln!("       check_bench vendor [<Cargo.lock> [<vendor-dir>]]");
            ExitCode::from(2)
        }
    }
}
