//! Experiment runner: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <id> [<id> ...]   run specific experiments (fig2, fig12, …)
//! experiments all               run everything in paper order
//! experiments list              list available experiment ids
//! ```

use std::process::ExitCode;
use vda_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: experiments <id>... | all | list");
        eprintln!("ids: {}", id_list().join(" "));
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        println!("{}", id_list().join("\n"));
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args[0] == "all" {
        id_list().into_iter().map(str::to_string).collect()
    } else {
        args
    };

    for id in &ids {
        match experiments::run_by_id(id) {
            Some(report) => print!("{report}"),
            None => {
                eprintln!("unknown experiment id {id:?}; try `experiments list`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn id_list() -> Vec<&'static str> {
    experiments::registry().into_iter().map(|(id, _)| id).collect()
}
