//! Experiment runner: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <id> [<id> ...]   run specific experiments (fig2, fig12, …)
//! experiments all               run everything in paper order
//! experiments list              list available experiment ids
//! experiments --enumeration-json [path.json]
//!                               measure enumeration perf and write the
//!                               machine-readable BENCH_enumeration.json
//!                               (default path: BENCH_enumeration.json;
//!                               a custom path must end in .json so
//!                               experiment ids are never mistaken for it)
//! experiments --placement-json [path.json]
//!                               run the fleet-placement scenario and
//!                               write BENCH_placement.json (same path
//!                               rules as --enumeration-json)
//! experiments --dynamic-json [path.json]
//!                               run the steady-state incremental
//!                               re-optimization scenario and write
//!                               BENCH_dynamic.json (same path rules)
//! experiments --fleet-json [path.json]
//!                               run the sharded control-plane fleet
//!                               scenario (event stream + snapshot/
//!                               resume) and write BENCH_fleet.json
//!                               (same path rules)
//! experiments --adaptive-json [path.json]
//!                               run the adaptive-calibration drift
//!                               scenario (frozen vs guardrail-promoted
//!                               models, plus the forced-rollback leg)
//!                               and write BENCH_adaptive.json (same
//!                               path rules)
//! ```

use std::process::ExitCode;
use vda_bench::experiments;

/// Extract `--<flag> [path.json]` from `args`: the flag plus an
/// optional `.json` path operand; anything else (e.g. `all`, `fig2`)
/// stays behind as an experiment id.
fn json_flag(args: &mut Vec<String>, flag: &str, default: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    Some(if pos < args.len() && args[pos].ends_with(".json") {
        args.remove(pos)
    } else {
        default.to_string()
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut ran_flag = false;
    if let Some(path) = json_flag(&mut args, "--enumeration-json", "BENCH_enumeration.json") {
        ran_flag = true;
        match experiments::enumeration::write_json(&path) {
            Ok(ms) => {
                println!("{}", experiments::enumeration::run_from(ms));
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_flag(&mut args, "--placement-json", "BENCH_placement.json") {
        ran_flag = true;
        match experiments::placement::write_json(&path) {
            Ok(bench) => {
                println!("{}", experiments::placement::run_from(bench.homogeneous));
                println!(
                    "{}",
                    experiments::placement::run_heterogeneous_from(bench.heterogeneous)
                );
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_flag(&mut args, "--dynamic-json", "BENCH_dynamic.json") {
        ran_flag = true;
        match experiments::dynbench::write_json(&path) {
            Ok(m) => {
                println!("{}", experiments::dynbench::run_from(m));
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_flag(&mut args, "--fleet-json", "BENCH_fleet.json") {
        ran_flag = true;
        match experiments::fleetbench::write_json(&path) {
            Ok((m, s)) => {
                println!("{}", experiments::fleetbench::run_from(m));
                println!("{}", experiments::fleetbench::run_scaled_from(&s));
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_flag(&mut args, "--adaptive-json", "BENCH_adaptive.json") {
        ran_flag = true;
        match experiments::adaptbench::write_json(&path) {
            Ok((m, r)) => {
                println!("{}", experiments::adaptbench::run_from(&m, &r));
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ran_flag && args.is_empty() {
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!(
            "usage: experiments <id>... | all | list | --enumeration-json [path] | --placement-json [path] | --dynamic-json [path] | --fleet-json [path] | --adaptive-json [path]"
        );
        eprintln!("ids: {}", id_list().join(" "));
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        println!("{}", id_list().join("\n"));
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args[0] == "all" {
        id_list().into_iter().map(str::to_string).collect()
    } else {
        args
    };

    for id in &ids {
        match experiments::run_by_id(id) {
            Some(report) => print!("{report}"),
            None => {
                eprintln!("unknown experiment id {id:?}; try `experiments list`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn id_list() -> Vec<&'static str> {
    experiments::registry()
        .into_iter()
        .map(|(id, _)| id)
        .collect()
}
