//! Ablations of the advisor's design choices (beyond the paper's own
//! experiments, promised in DESIGN.md §4):
//!
//! 1. **Greedy step δ** — the paper fixes δ = 5 %. Smaller steps find
//!    finer-grained optima at more iterations; larger steps converge
//!    faster but coarser.
//! 2. **Calibration CPU levels** — how many CPU settings must be
//!    measured before the `Cal_ik` fits stop improving? (The paper
//!    measures ~10; the relationship is exactly linear, so few points
//!    suffice — this quantifies the safety margin.)
//! 3. **Refinement sample grid** — how many what-if samples the initial
//!    §5.1 model fit needs.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::costmodel::calibration::{CalibrationConfig, Calibrator};
use vda_core::problem::{Allocation, SearchSpace};
use vda_core::refine::{RefineOptions, RefinedModel};
use vda_simdb::engines::{Engine, EngineParams};

/// Run all three ablations.
pub fn run() -> Report {
    let mut report = Report::new("ablation", "Design-choice ablations (DESIGN.md §4)");

    // --- 1. greedy step size ---
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c, i) = setups::cpu_units(&engine, &cat);
    let adv = setups::advisor_for(
        &engine,
        &cat,
        vec![
            c.compose(8.0, &i, 2.0),
            c.compose(2.0, &i, 8.0),
            i.times(10.0),
        ],
    );
    let mut delta_table = Table::new(vec![
        "delta",
        "iterations",
        "weighted cost (s)",
        "vs delta=0.05",
    ]);
    let mut baseline = None;
    for &delta in &[0.025, 0.05, 0.10] {
        let mut space = SearchSpace::cpu_only(FIXED_512MB_SHARE).with_delta(delta);
        space.min_share = delta;
        let rec = adv.recommend(&space);
        let cost = rec.result.weighted_cost;
        if delta == 0.05 {
            baseline = Some(cost);
        }
        delta_table.row(vec![
            fmt_f(delta, 3),
            rec.result.iterations.to_string(),
            fmt_f(cost, 0),
            baseline.map_or("-".into(), |b| fmt_pct(cost / b - 1.0)),
        ]);
    }
    report.section("greedy step size δ", delta_table);

    // --- 2. calibration CPU levels ---
    let hv = setups::testbed();
    let pg = Engine::pg();
    let mut cal_table = Table::new(vec![
        "cpu levels",
        "cpu_tuple_cost err @35%cpu",
        "simulated cost (s)",
    ]);
    for &levels in &[2usize, 3, 5, 10] {
        let config = CalibrationConfig {
            cpu_levels: (1..=levels)
                .map(|k| 0.1 + 0.9 * (k - 1) as f64 / (levels.max(2) - 1) as f64)
                .collect(),
            ..CalibrationConfig::default()
        };
        let model = Calibrator::with_config(&hv, config).calibrate(&pg);
        let alloc = Allocation::new(0.35, 0.5);
        let EngineParams::Pg(got) = model.params_at(&pg, alloc) else {
            unreachable!("pg model")
        };
        let perf = hv.perf_for(alloc.vm_config().expect("valid"));
        let EngineParams::Pg(truth) = pg.true_params(&perf) else {
            unreachable!("pg params")
        };
        let err = (got.cpu_tuple_cost - truth.cpu_tuple_cost).abs() / truth.cpu_tuple_cost;
        cal_table.row(vec![
            levels.to_string(),
            fmt_pct(err),
            fmt_f(model.cost.simulated_seconds, 0),
        ]);
    }
    report.section(
        "calibration CPU-level count (§4.4 shortcut margin)",
        cal_table,
    );

    // --- 3. refinement sample grid ---
    let mut grid_table = Table::new(vec!["grid", "model err @0.35 cpu", "model err @0.85 cpu"]);
    let est_adv = setups::advisor_for(&engine, &cat, vec![c.times(5.0)]);
    let truth_est = est_adv.estimator(0);
    for &grid in &[3usize, 5, 8, 16] {
        let est = est_adv.estimator(0);
        let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
        let model = RefinedModel::fit_initial(&space, grid, &est);
        let mut row = vec![grid.to_string()];
        for &cpu in &[0.35, 0.85] {
            let a = Allocation::new(cpu, FIXED_512MB_SHARE);
            let want = truth_est.cost(a);
            let got = model.predict(a);
            row.push(fmt_pct((got - want).abs() / want));
        }
        grid_table.row(row);
    }
    report.section(
        "initial refinement-model sample grid (RefineOptions::sample_grid)",
        grid_table,
    );
    let _ = RefineOptions::default();

    report.note(
        "δ = 0.05 matches the paper's accuracy at a fraction of δ = 0.025's iterations; \
         2 calibration levels already pin the linear CPU fits (the margin behind §4.4); \
         8 grid samples suffice for the §5.1 initial model"
            .to_string(),
    );
    report
}
