//! Adaptive cost-model tuning under drifting actuals.
//!
//! The `BENCH_adaptive.json` scenario: a small heterogeneous fleet
//! where every machine hosts two DSS tenants (Db2Sim — the optimizer
//! prices these well) and one TPC-C tenant (PgSim — the optimizer's
//! §7.8 blind spot: lock contention and update costs are unmodeled,
//! so actuals run far above estimates). A **drift phase** replaces
//! every OLTP workload with a heavier-contention variant, widening the
//! estimate/actual gap; an **adaptation phase** then feeds
//! [`FleetEvent::ActualsReported`] events until every hardware class's
//! candidate correction has walked the full
//! Shadow → Canary → Promoted guardrail lifecycle.
//!
//! Two legs over the *same recorded event stream*:
//!
//! * **frozen** — [`ControlPlaneOptions::adaptive`] off: actuals
//!   reports are no-ops and the construction-time calibration prices
//!   every decision forever;
//! * **adaptive** — residuals accumulate per (hardware class, engine),
//!   refits propose corrections, and the guardrail promotes them.
//!
//! Gated contracts (`check_bench` against the committed baseline):
//! every class promotes (`all_promoted`); the adapted leg's final
//! placements cost strictly fewer *actual* seconds than the frozen
//! leg's (`adaptive_improves` — better predictions move the greedy
//! optimum toward the true optimum); and the adapted models' mean
//! relative prediction error is strictly lower (`reduces_error`).
//! Optimizer-call totals and lifecycle tallies are deterministic and
//! gated; wall times are recorded but ignored.
//!
//! # The rollback section
//!
//! A second, single-class fleet runs the same recipe with a guardrail
//! whose objective-regression budget is deliberately unsatisfiable
//! (−1.0): the candidate passes shadow, deploys on its canary subset —
//! visibly steering that machine's decisions away from the baseline —
//! and is then rolled back at the canary verdict. Gated contracts: the
//! canary acted (`canary_deployed`, `diverged_during_canary`), the
//! verdict rolled it back without ever promoting (`rolled_back`,
//! `never_promoted`), and the post-rollback fleet state — placements,
//! objective bits, and every installed calibration fingerprint — is
//! identical to a plane that ran the same stream with adaptation off
//! (`state_restored`).
//!
//! Tenant workloads carry per-global-index intensity salts (same trick
//! as `fleetbench`): fleet-unique workload fingerprints keep
//! probe-cache counters and optimizer-call totals identical across
//! `RAYON_NUM_THREADS` settings, so both CI matrix legs diff against
//! the same baseline.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use std::time::Instant;
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_core::VirtualizationDesignAdvisor;
use vda_core::{
    AdaptionOptions, AdaptiveTuningOptions, ControlPlane, ControlPlaneOptions, FleetEvent,
    GuardrailOptions,
};
use vda_simdb::engines::EngineKind;
use vda_vmm::{Hypervisor, PhysicalMachine};

/// Scenario dimensions. [`FULL`] is the committed `BENCH_adaptive.json`
/// scale; unit tests use a miniature with the same recipe.
#[derive(Debug, Clone, Copy)]
pub struct AdaptScale {
    /// Machines in the improvement fleet (a multiple of
    /// `GHZ_STEPS.len()`, so every hardware class is populated).
    pub machines: usize,
    /// Machines in the single-class rollback fleet.
    pub rollback_machines: usize,
    /// DSS tenants per machine (the OLTP tenant sits in the next slot).
    pub dss_per_machine: usize,
    /// TPC-C clients per warehouse after the drift phase (construction
    /// uses `BASE_CLIENTS`).
    pub drift_clients: u32,
    /// Fuel for the adaptation phase, in whole fleet rounds.
    pub max_rounds: usize,
}

/// The committed-baseline scale: 12 machines over two hardware
/// classes, 36 tenants (12 of them TPC-C).
pub const FULL: AdaptScale = AdaptScale {
    machines: 12,
    rollback_machines: 3,
    dss_per_machine: 2,
    drift_clients: 10,
    max_rounds: 24,
};

/// Per-core clock multipliers defining the improvement fleet's
/// hardware classes (machine `m` is `paper_testbed` with `core_ghz`
/// scaled by entry `m % 2`). Adaptions are tracked per class, so the
/// scenario exercises two independent guardrail lifecycles.
const GHZ_STEPS: [f64; 2] = [1.0, 1.5];

/// DSS queries cycled across the Db2 slots.
const DSS_MIX: [(usize, f64); 4] = [(18, 2.0), (6, 3.0), (21, 1.0), (7, 2.0)];

/// TPC-C warehouses accessed by every OLTP tenant.
const WAREHOUSES: u32 = 2;

/// Clients per warehouse at construction — light contention, so the
/// drift to [`AdaptScale::drift_clients`] visibly widens the
/// estimate/actual gap.
const BASE_CLIENTS: u32 = 2;

/// Control-plane knobs shared by every leg. The migration threshold is
/// prohibitive: with the topology pinned, the rollback leg's
/// state-equality contract compares like with like, and the
/// improvement leg isolates the effect of *allocations* (not tenant
/// moves) on actual cost.
fn options(adaptive: Option<AdaptiveTuningOptions>) -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 0.5,
        recalibration_surcharge: 1e-3,
        incremental: true,
        adaptive,
        ..ControlPlaneOptions::default()
    }
}

/// Guardrail + refit knobs. The objective-regression budget is the
/// fork between the two sections: correcting a systematic
/// *under*estimate legitimately raises the predicted fleet objective
/// (nothing real got worse — the lie got smaller), so the promotable
/// leg budgets generously; the rollback leg's −1.0 can never be
/// satisfied, forcing the canary verdict to fail.
fn tuning(promotable: bool) -> AdaptiveTuningOptions {
    AdaptiveTuningOptions {
        // The residual store keeps one row per (tenant, allocation),
        // so a class can hold at most as many distinct rows as it has
        // reporting tenants — the refit floor must fit the smallest
        // class (two OLTP tenants in the unit-test miniature).
        adaption: AdaptionOptions {
            min_samples: 2,
            ..AdaptionOptions::default()
        },
        guardrail: GuardrailOptions {
            min_shadow_samples: 4,
            canary_tenants: 1,
            min_canary_samples: 2,
            max_error_inflation: 0.5,
            max_objective_regression: if promotable { 10.0 } else { -1.0 },
        },
    }
}

/// Build one leg's fleet: `machines` machines over `classes` hardware
/// classes, each hosting `dss_per_machine` Db2 DSS tenants plus one
/// Pg TPC-C tenant in the last slot. Intensity salts are per global
/// tenant index, so workload fingerprints are fleet-unique.
fn fleet(
    machines: usize,
    classes: usize,
    scale: &AdaptScale,
) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let dss_engine = EngineChoice::Db2.engine();
    let oltp_engine = EngineChoice::Pg.engine();
    let dss_cat = setups::sf(1.0);
    let oltp_cat = vda_workloads::tpcc::catalog(WAREHOUSES);
    let slots = scale.dss_per_machine + 1;
    let mut advisors = Vec::with_capacity(machines);
    for m in 0..machines {
        let mut spec = PhysicalMachine::paper_testbed();
        spec.core_ghz *= GHZ_STEPS[m % classes];
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        for s in 0..scale.dss_per_machine {
            let (q, base) = DSS_MIX[(m + s) % DSS_MIX.len()];
            let g = m * slots + s;
            let name = format!("M{m}-S{s}-Q{q}");
            let w = vda_workloads::tpch::query_workload(q, base * (1.0 + 0.001 * g as f64))
                .named(name.clone());
            adv.add_tenant(
                Tenant::new(name, dss_engine.clone(), dss_cat.clone(), w)
                    .expect("bench workloads bind"),
                QoS::default(),
            );
        }
        let g = m * slots + scale.dss_per_machine;
        let w = vda_workloads::tpcc::workload(
            WAREHOUSES,
            BASE_CLIENTS,
            setups::TPCC_TXNS_PER_CLIENT * (1.0 + 0.001 * g as f64),
        )
        .named(format!("M{m}-oltp"));
        adv.add_tenant(
            Tenant::new(
                format!("M{m}-oltp"),
                oltp_engine.clone(),
                oltp_cat.clone(),
                w,
            )
            .expect("bench workloads bind"),
            QoS::default(),
        );
        advisors.push(adv);
    }
    let space = SearchSpace::cpu_only(setups::FIXED_512MB_SHARE);
    (advisors, vec![space; machines])
}

/// The drift event for machine `m`: its OLTP tenant's workload is
/// replaced by a heavier-contention variant (same warehouses, more
/// clients — lock-contention CPU grows with concurrency, and the
/// optimizer prices none of it). The intensity salt keeps the drifted
/// fingerprints fleet-unique and disjoint from every construction
/// salt (different client count, different transaction total).
fn drift_event(m: usize, scale: &AdaptScale) -> FleetEvent {
    let slots = scale.dss_per_machine + 1;
    let g = m * slots + scale.dss_per_machine;
    let workload = vda_workloads::tpcc::workload(
        WAREHOUSES,
        scale.drift_clients,
        setups::TPCC_TXNS_PER_CLIENT * (1.0 + 0.001 * g as f64),
    )
    .named(format!("M{m}-oltp-drift"));
    FleetEvent::WorkloadChanged {
        machine: m,
        slot: scale.dss_per_machine,
        workload,
    }
}

/// Total *actual* seconds of the fleet at its current placements — the
/// decision-quality metric both legs are judged on.
fn actual_total(plane: &ControlPlane) -> f64 {
    (0..plane.machine_count())
        .map(|m| {
            let result = plane.placements()[m]
                .as_ref()
                .expect("every bench machine is placed");
            plane.machine(m).total_actual(&result.allocations)
        })
        .sum()
}

/// Mean relative prediction error of the *installed* models over every
/// tenant at its placed allocation: `mean(|predicted − actual| /
/// actual)`. Frozen legs price with the construction calibration;
/// adapted legs with whatever the guardrail promoted.
fn fleet_mape(plane: &ControlPlane) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for m in 0..plane.machine_count() {
        let adv = plane.machine(m);
        let result = plane.placements()[m]
            .as_ref()
            .expect("every bench machine is placed");
        for (i, alloc) in result.allocations.iter().enumerate() {
            let predicted = adv.estimator(i).estimate(*alloc).seconds;
            let actual = adv.actual_cost(i, *alloc);
            if actual > 0.0 {
                sum += (predicted - actual).abs() / actual;
                n += 1;
            }
        }
    }
    sum / n.max(1) as f64
}

/// Per-machine installed-calibration fingerprints, per engine kind —
/// the rollback leg's state-equality certificate.
fn calibration_fingerprints(plane: &ControlPlane) -> Vec<Vec<(&'static str, u64)>> {
    (0..plane.machine_count())
        .map(|m| {
            let adv = plane.machine(m);
            [EngineKind::Db2Sim, EngineKind::PgSim, EngineKind::TupleSim]
                .into_iter()
                .filter_map(|kind| {
                    adv.calibration(kind)
                        .map(|c| (kind.name(), c.fingerprint()))
                })
                .collect()
        })
        .collect()
}

/// Guardrail verdict counts parsed out of actuals-reported decision
/// actions (`"actuals-reported m3 t2 (promoted)"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleTallies {
    /// Reports priced in shadow (no effect on decisions).
    pub shadows: u64,
    /// Canary deployments (candidate installed on the canary subset).
    pub canaries: u64,
    /// Fleet-wide promotions.
    pub promotions: u64,
    /// Rollbacks (shadow rejections and failed canary verdicts).
    pub rollbacks: u64,
}

impl LifecycleTallies {
    fn count(&mut self, action: &str) {
        if action.ends_with("(shadow)") {
            self.shadows += 1;
        } else if action.ends_with("(canary)") {
            self.canaries += 1;
        } else if action.ends_with("(promoted)") {
            self.promotions += 1;
        } else if action.ends_with("(rolled-back)") {
            self.rollbacks += 1;
        }
    }
}

/// The improvement measurement (root fields of `BENCH_adaptive.json`).
#[derive(Debug, Clone)]
pub struct ImproveBench {
    /// The dimensions measured.
    pub scale: AdaptScale,
    /// Hardware classes (independent adaption scopes).
    pub classes: usize,
    /// Drift-phase events.
    pub drift_events: u64,
    /// Adaptation-phase `ActualsReported` events.
    pub actuals_events: u64,
    /// Whole fleet rounds the adaptation phase used.
    pub rounds_used: u64,
    /// Optimizer calls standing one leg's plane up (the fleets are
    /// clones, so this is identical across legs).
    pub construction_calls: u64,
    /// Event-phase optimizer calls, adaptive leg.
    pub event_calls_adaptive: u64,
    /// Event-phase optimizer calls, frozen leg.
    pub event_calls_frozen: u64,
    /// Guardrail lifecycle tallies (adaptive leg).
    pub tallies: LifecycleTallies,
    /// Final *predicted* fleet objective, frozen leg (`{:.9}`-gated).
    pub frozen_objective: f64,
    /// Final predicted fleet objective, adaptive leg. Higher than the
    /// frozen leg's — the promoted corrections stop underpricing OLTP.
    pub adaptive_objective: f64,
    /// Total actual seconds at the frozen leg's final placements.
    pub frozen_actual_seconds: f64,
    /// Total actual seconds at the adaptive leg's final placements.
    pub adaptive_actual_seconds: f64,
    /// Mean relative prediction error, frozen leg.
    pub frozen_mape: f64,
    /// Mean relative prediction error, adaptive leg.
    pub adaptive_mape: f64,
    /// Every hardware class promoted its candidate.
    pub all_promoted: bool,
    /// Wall time of the adaptive leg (construction + events).
    pub adaptive_wall_ms: f64,
    /// Wall time of the frozen leg.
    pub frozen_wall_ms: f64,
}

impl ImproveBench {
    /// Fraction of actual seconds the adapted decisions saved.
    pub fn actual_improvement(&self) -> f64 {
        (self.frozen_actual_seconds - self.adaptive_actual_seconds) / self.frozen_actual_seconds
    }

    /// The headline contract: adapted decisions cost strictly fewer
    /// actual seconds than frozen-calibration decisions.
    pub fn adaptive_improves(&self) -> bool {
        self.adaptive_actual_seconds < self.frozen_actual_seconds
    }

    /// The promoted models predict strictly better than the frozen
    /// calibration.
    pub fn reduces_error(&self) -> bool {
        self.adaptive_mape < self.frozen_mape
    }
}

/// The rollback measurement (the `"rollback"` section).
#[derive(Debug, Clone)]
pub struct RollbackBench {
    /// Machines in the single-class rollback fleet.
    pub machines: usize,
    /// Events driven (drift + actuals, identical on both planes).
    pub events: u64,
    /// The candidate reached canary (it acted on real decisions).
    pub canary_deployed: bool,
    /// While the canary was live, the plane's objective diverged from
    /// the never-canaried baseline's.
    pub diverged_during_canary: bool,
    /// The canary verdict rolled the candidate back.
    pub rolled_back: bool,
    /// No candidate was ever promoted.
    pub never_promoted: bool,
    /// Post-rollback placements, objective bits, and every installed
    /// calibration fingerprint equal the never-canaried baseline's.
    pub state_restored: bool,
    /// Final fleet objective (both planes; `{:.9}`-gated).
    pub final_objective: f64,
    /// Wall time of the paired run.
    pub rollback_wall_ms: f64,
}

/// Run the improvement legs at the given scale.
pub fn measure_improvement(scale: AdaptScale) -> ImproveBench {
    let classes = GHZ_STEPS.len();
    assert!(
        scale.machines.is_multiple_of(classes),
        "every hardware class must be populated"
    );

    // Adaptive leg drives the stream: drift everything, then report
    // actuals round-robin until every class's candidate promoted.
    let (machines, spaces) = fleet(scale.machines, classes, &scale);
    let t0 = Instant::now();
    let mut adaptive = ControlPlane::new(machines, spaces, options(Some(tuning(true))));
    let construction_calls = adaptive.stats().optimizer_calls;
    let mut events: Vec<FleetEvent> = Vec::new();
    for m in 0..scale.machines {
        events.push(drift_event(m, &scale));
    }
    let mut outcomes = Vec::with_capacity(events.len());
    for ev in &events {
        outcomes.push(adaptive.process_event(ev.clone()));
    }

    let mut tallies = LifecycleTallies::default();
    let mut promoted = vec![false; classes];
    let mut rounds_used = 0u64;
    let mut actuals_events = 0u64;
    for _ in 0..scale.max_rounds {
        if promoted.iter().all(|p| *p) {
            break;
        }
        rounds_used += 1;
        for m in 0..scale.machines {
            if promoted[m % classes] {
                continue;
            }
            let ev = FleetEvent::ActualsReported {
                machine: m,
                slot: scale.dss_per_machine,
            };
            events.push(ev.clone());
            let out = adaptive.process_event(ev);
            actuals_events += 1;
            tallies.count(&out.action);
            if out.action.ends_with("(promoted)") {
                promoted[m % classes] = true;
            }
            outcomes.push(out);
        }
    }
    let adaptive_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let all_promoted = promoted.iter().all(|p| *p);
    let event_calls_adaptive: u64 = outcomes.iter().map(|o| o.optimizer_calls).sum();
    let adaptive_objective = adaptive.objective();
    let adaptive_actual_seconds = actual_total(&adaptive);
    let adaptive_mape = fleet_mape(&adaptive);
    drop(adaptive);

    // Frozen leg replays the recorded stream with adaptation off:
    // every actuals report is a no-op and the construction calibration
    // prices every decision.
    let (machines, spaces) = fleet(scale.machines, classes, &scale);
    let t0 = Instant::now();
    let mut frozen = ControlPlane::new(machines, spaces, options(None));
    let mut event_calls_frozen = 0u64;
    for ev in &events {
        event_calls_frozen += frozen.process_event(ev.clone()).optimizer_calls;
    }
    let frozen_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    ImproveBench {
        scale,
        classes,
        drift_events: scale.machines as u64,
        actuals_events,
        rounds_used,
        construction_calls,
        event_calls_adaptive,
        event_calls_frozen,
        tallies,
        frozen_objective: frozen.objective(),
        adaptive_objective,
        frozen_actual_seconds: actual_total(&frozen),
        adaptive_actual_seconds,
        frozen_mape: fleet_mape(&frozen),
        adaptive_mape,
        all_promoted,
        adaptive_wall_ms,
        frozen_wall_ms,
    }
}

/// Run the rollback section: a guardrail that cannot pass its canary
/// verdict, driven in lockstep with a never-canaried baseline.
pub fn measure_rollback(scale: AdaptScale) -> RollbackBench {
    let t0 = Instant::now();
    let (machines, spaces) = fleet(scale.rollback_machines, 1, &scale);
    let mut plane = ControlPlane::new(machines, spaces, options(Some(tuning(false))));
    let (machines, spaces) = fleet(scale.rollback_machines, 1, &scale);
    let mut baseline = ControlPlane::new(machines, spaces, options(None));

    let mut events = 0u64;
    let mut canary_deployed = false;
    let mut diverged_during_canary = false;
    let mut rolled_back = false;
    let mut never_promoted = true;
    let mut step = |plane: &mut ControlPlane, baseline: &mut ControlPlane, ev: FleetEvent| {
        let out = plane.process_event(ev.clone());
        let base = baseline.process_event(ev);
        events += 1;
        canary_deployed |= out.action.ends_with("(canary)");
        diverged_during_canary |= out.objective.to_bits() != base.objective.to_bits();
        rolled_back |= out.action.ends_with("(rolled-back)");
        never_promoted &= !out.action.ends_with("(promoted)");
        rolled_back
    };

    for m in 0..scale.rollback_machines {
        step(&mut plane, &mut baseline, drift_event(m, &scale));
    }
    'rounds: for _ in 0..scale.max_rounds {
        for m in 0..scale.rollback_machines {
            let ev = FleetEvent::ActualsReported {
                machine: m,
                slot: scale.dss_per_machine,
            };
            if step(&mut plane, &mut baseline, ev) {
                break 'rounds;
            }
        }
    }

    let state_restored = plane.placements() == baseline.placements()
        && plane.objective().to_bits() == baseline.objective().to_bits()
        && calibration_fingerprints(&plane) == calibration_fingerprints(&baseline)
        && plane.tuners().is_empty();

    RollbackBench {
        machines: scale.rollback_machines,
        events,
        canary_deployed,
        diverged_during_canary,
        rolled_back,
        never_promoted,
        state_restored,
        final_objective: plane.objective(),
        rollback_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run both sections at the given scale.
pub fn measure_with(scale: AdaptScale) -> (ImproveBench, RollbackBench) {
    (measure_improvement(scale), measure_rollback(scale))
}

/// Run the committed-baseline scale.
pub fn measure() -> (ImproveBench, RollbackBench) {
    measure_with(FULL)
}

/// Measure at full scale and render as a report.
pub fn run() -> Report {
    let (m, r) = measure();
    run_from(&m, &r)
}

/// Render existing measurements as a report.
pub fn run_from(m: &ImproveBench, r: &RollbackBench) -> Report {
    let mut report = Report::new(
        "adaptbench",
        "Adaptive calibration under OLTP contention drift: frozen vs guardrail-promoted models",
    );
    let mut table = Table::new(vec!["leg", "actual seconds", "MAPE", "predicted objective"]);
    table.row(vec![
        "frozen".to_string(),
        fmt_f(m.frozen_actual_seconds, 3),
        fmt_f(m.frozen_mape, 4),
        fmt_f(m.frozen_objective, 3),
    ]);
    table.row(vec![
        "adaptive".to_string(),
        fmt_f(m.adaptive_actual_seconds, 3),
        fmt_f(m.adaptive_mape, 4),
        fmt_f(m.adaptive_objective, 3),
    ]);
    report.section("frozen vs adaptive decision quality", table);

    let mut counters = Table::new(vec!["counter", "value"]);
    counters.row(vec!["drift events".to_string(), m.drift_events.to_string()]);
    counters.row(vec![
        "actuals events".to_string(),
        m.actuals_events.to_string(),
    ]);
    counters.row(vec!["rounds".to_string(), m.rounds_used.to_string()]);
    counters.row(vec![
        "shadow reports".to_string(),
        m.tallies.shadows.to_string(),
    ]);
    counters.row(vec![
        "canary deployments".to_string(),
        m.tallies.canaries.to_string(),
    ]);
    counters.row(vec![
        "promotions".to_string(),
        m.tallies.promotions.to_string(),
    ]);
    counters.row(vec![
        "rollbacks".to_string(),
        m.tallies.rollbacks.to_string(),
    ]);
    report.section("guardrail lifecycle", counters);

    let mut rb = Table::new(vec!["contract", "holds"]);
    rb.row(vec![
        "canary deployed".to_string(),
        r.canary_deployed.to_string(),
    ]);
    rb.row(vec![
        "diverged during canary".to_string(),
        r.diverged_during_canary.to_string(),
    ]);
    rb.row(vec!["rolled back".to_string(), r.rolled_back.to_string()]);
    rb.row(vec![
        "never promoted".to_string(),
        r.never_promoted.to_string(),
    ]);
    rb.row(vec![
        "state restored".to_string(),
        r.state_restored.to_string(),
    ]);
    report.section("rollback section (unsatisfiable canary gate)", rb);

    report.note(format!(
        "adapted decisions save {} actual seconds ({}); prediction error {} → {}; all classes promoted: {}",
        fmt_f(m.frozen_actual_seconds - m.adaptive_actual_seconds, 3),
        fmt_pct(m.actual_improvement()),
        fmt_f(m.frozen_mape, 4),
        fmt_f(m.adaptive_mape, 4),
        m.all_promoted
    ));
    report.note(format!(
        "mispredicting canary rolled back bit-identically to the never-canaried baseline: {}",
        r.state_restored
    ));
    report
}

/// Serialize both sections as the `BENCH_adaptive.json` artifact.
/// Everything except the `*_wall_ms` fields is deterministic and
/// gated by `check_bench`.
pub fn to_json(m: &ImproveBench, r: &RollbackBench) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"adaptbench\",\n",
            "  \"machines\": {},\n",
            "  \"tenants\": {},\n",
            "  \"hardware_classes\": {},\n",
            "  \"oltp_tenants\": {},\n",
            "  \"space\": \"cpu_only_512mb\",\n",
            "  \"drift_clients\": {},\n",
            "  \"drift_events\": {},\n",
            "  \"actuals_events\": {},\n",
            "  \"adaptation_rounds\": {},\n",
            "  \"adaptive_wall_ms\": {:.3},\n",
            "  \"frozen_wall_ms\": {:.3},\n",
            "  \"construction_optimizer_calls\": {},\n",
            "  \"event_optimizer_calls_adaptive\": {},\n",
            "  \"event_optimizer_calls_frozen\": {},\n",
            "  \"shadow_reports\": {},\n",
            "  \"canary_deployments\": {},\n",
            "  \"promotions\": {},\n",
            "  \"rollbacks\": {},\n",
            "  \"frozen_objective\": {:.9},\n",
            "  \"adaptive_objective\": {:.9},\n",
            "  \"frozen_actual_seconds\": {:.9},\n",
            "  \"adaptive_actual_seconds\": {:.9},\n",
            "  \"actual_improvement\": {:.6},\n",
            "  \"frozen_mape\": {:.6},\n",
            "  \"adaptive_mape\": {:.6},\n",
            "  \"all_promoted\": {},\n",
            "  \"adaptive_improves\": {},\n",
            "  \"reduces_error\": {},\n",
            "  \"rollback\": {{\n",
            "    \"machines\": {},\n",
            "    \"events\": {},\n",
            "    \"rollback_wall_ms\": {:.3},\n",
            "    \"canary_deployed\": {},\n",
            "    \"diverged_during_canary\": {},\n",
            "    \"rolled_back\": {},\n",
            "    \"never_promoted\": {},\n",
            "    \"state_restored\": {},\n",
            "    \"final_objective\": {:.9}\n",
            "  }}\n",
            "}}\n"
        ),
        m.scale.machines,
        m.scale.machines * (m.scale.dss_per_machine + 1),
        m.classes,
        m.scale.machines,
        m.scale.drift_clients,
        m.drift_events,
        m.actuals_events,
        m.rounds_used,
        m.adaptive_wall_ms,
        m.frozen_wall_ms,
        m.construction_calls,
        m.event_calls_adaptive,
        m.event_calls_frozen,
        m.tallies.shadows,
        m.tallies.canaries,
        m.tallies.promotions,
        m.tallies.rollbacks,
        m.frozen_objective,
        m.adaptive_objective,
        m.frozen_actual_seconds,
        m.adaptive_actual_seconds,
        m.actual_improvement(),
        m.frozen_mape,
        m.adaptive_mape,
        m.all_promoted,
        m.adaptive_improves(),
        m.reduces_error(),
        r.machines,
        r.events,
        r.rollback_wall_ms,
        r.canary_deployed,
        r.diverged_during_canary,
        r.rolled_back,
        r.never_promoted,
        r.state_restored,
        r.final_objective,
    )
}

/// Measure at full scale and write `BENCH_adaptive.json` to `path`.
pub fn write_json(path: &str) -> std::io::Result<(ImproveBench, RollbackBench)> {
    let (m, r) = measure();
    std::fs::write(path, to_json(&m, &r))?;
    Ok((m, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature scale: one machine pair per class, two rollback
    /// machines, same recipe as [`FULL`] at unit-test cost.
    const TINY: AdaptScale = AdaptScale {
        machines: 4,
        rollback_machines: 2,
        dss_per_machine: 2,
        drift_clients: 10,
        max_rounds: 24,
    };

    #[test]
    fn tiny_adaptive_scenario_holds_every_contract() {
        let (m, r) = measure_with(TINY);
        assert!(m.all_promoted, "every class must promote: {:?}", m.tallies);
        assert_eq!(m.tallies.promotions as usize, m.classes);
        assert!(
            m.adaptive_improves(),
            "adapted decisions must cost fewer actual seconds: adaptive {} vs frozen {}",
            m.adaptive_actual_seconds,
            m.frozen_actual_seconds
        );
        assert!(
            m.reduces_error(),
            "promoted models must predict better: adaptive {} vs frozen {}",
            m.adaptive_mape,
            m.frozen_mape
        );
        assert!(
            m.adaptive_objective > m.frozen_objective,
            "correcting an underestimate must raise the predicted objective"
        );
        assert!(m.tallies.canaries >= m.classes as u64);

        assert!(r.canary_deployed, "the rollback candidate must act");
        assert!(r.diverged_during_canary, "the canary must steer decisions");
        assert!(r.rolled_back && r.never_promoted);
        assert!(
            r.state_restored,
            "rollback must restore the never-canaried baseline exactly"
        );

        let json = to_json(&m, &r);
        assert!(json.contains("\"experiment\": \"adaptbench\""));
        assert!(json.contains("\"adaptive_improves\": true"));
        assert!(json.contains("\"reduces_error\": true"));
        assert!(json.contains("\"state_restored\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn tenant_fingerprints_are_fleet_unique() {
        // Thread-count determinism of the gated counters rests on
        // fleet-unique workload fingerprints (probe-cache rows are
        // then never contended across concurrently solving machines).
        let (machines, _) = fleet(TINY.machines, GHZ_STEPS.len(), &TINY);
        let mut fps: Vec<u64> = machines
            .iter()
            .flat_map(|adv| (0..adv.tenant_count()).map(|i| adv.tenant(i).fingerprint()))
            .collect();
        // Drifted workloads must not collide with construction salts
        // (tenant fingerprints hash engine + catalog + statements, so
        // wrapping the drifted workload in an equivalent tenant makes
        // the fingerprints comparable).
        let oltp_engine = EngineChoice::Pg.engine();
        let oltp_cat = vda_workloads::tpcc::catalog(WAREHOUSES);
        for m in 0..TINY.machines {
            let FleetEvent::WorkloadChanged { workload, .. } = drift_event(m, &TINY) else {
                unreachable!("drift events replace workloads");
            };
            let drifted = Tenant::new(
                format!("drift{m}"),
                oltp_engine.clone(),
                oltp_cat.clone(),
                workload,
            )
            .expect("bench workloads bind");
            fps.push(drifted.fingerprint());
        }
        let total = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), total, "duplicate workload fingerprints");
    }
}
