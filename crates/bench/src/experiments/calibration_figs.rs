//! Figures 5–8 — calibration parameter behaviour (§4.4).
//!
//! * Fig. 5: PgSim `cpu_tuple_cost` varies linearly with
//!   `1/(allocated CPU fraction)` and hardly at all with memory.
//! * Fig. 6: the same for Db2Sim `cpuspeed`.
//! * Fig. 7: PgSim `random_page_cost` is independent of both CPU and
//!   memory allocation.
//! * Fig. 8: the same for Db2Sim `transfer_rate`.
//!
//! Each CPU figure shows, per CPU level: the value measured at 50 %
//! memory, the average over seven memory allocations (20 %–80 %), and
//! the linear-regression prediction fitted on the 50 %-memory points.

use crate::harness::{fmt_f, Report, Table};
use crate::setups;
use vda_core::costmodel::calibration::Calibrator;
use vda_core::problem::Allocation;
use vda_simdb::engines::Engine;
use vda_stats::LinearFit;

const CPU_LEVELS: [f64; 7] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
const MEM_LEVELS: [f64; 7] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

fn cpu_param_figure(id: &str, title: &str, engine: Engine, value_index: usize) -> Report {
    let mut report = Report::new(id, title);
    let hv = setups::testbed();
    let cal = Calibrator::new(&hv);
    let points = cal.calibrate_grid(&engine, &CPU_LEVELS, &MEM_LEVELS);

    // Fit on the 50 %-memory points, as the calibration procedure does.
    let at_half: Vec<&_> = points.iter().filter(|p| p.memory_share == 0.5).collect();
    let inv: Vec<f64> = at_half.iter().map(|p| 1.0 / p.cpu_share).collect();
    let vals: Vec<f64> = at_half.iter().map(|p| p.values[value_index]).collect();
    let fit = LinearFit::fit(&inv, &vals).expect("distinct CPU levels");

    let mut table = Table::new(vec![
        "1/cpu share",
        "value @50% mem",
        "avg over 20-80% mem",
        "linear fit",
    ]);
    let mut max_mem_spread = 0.0_f64;
    for &cpu in &CPU_LEVELS {
        let across: Vec<f64> = points
            .iter()
            .filter(|p| p.cpu_share == cpu)
            .map(|p| p.values[value_index])
            .collect();
        let avg = vda_stats::mean(&across);
        let half = points
            .iter()
            .find(|p| p.cpu_share == cpu && p.memory_share == 0.5)
            .expect("grid contains 50% memory")
            .values[value_index];
        let spread = across
            .iter()
            .fold(0.0_f64, |m, &v| m.max((v - avg).abs() / avg));
        max_mem_spread = max_mem_spread.max(spread);
        table.row(vec![
            fmt_f(1.0 / cpu, 2),
            format!("{half:.3e}"),
            format!("{avg:.3e}"),
            format!("{:.3e}", fit.predict(1.0 / cpu)),
        ]);
    }
    report.section("parameter vs 1/cpu", table);
    report.note(format!(
        "linear in 1/cpu: regression R^2 = {:.6} (paper: 'a very accurate approximation')",
        fit.r_squared
    ));
    report.note(format!(
        "memory-independence: max relative spread across memory levels = {max_mem_spread:.4} \
         (paper: 'CPU parameters do not vary too much with memory')"
    ));
    report
}

fn io_param_figure(id: &str, title: &str, engine: Engine, value_index: usize) -> Report {
    let mut report = Report::new(id, title);
    let hv = setups::testbed();
    let cal = Calibrator::new(&hv);
    let mut table = Table::new(vec!["cpu share", "mem share", "value"]);
    let mut values = Vec::new();
    for &cpu in &[0.2, 0.5, 0.8] {
        for &mem in &[0.2, 0.5, 0.8] {
            let p = cal.io_point(&engine, Allocation::new(cpu, mem));
            values.push(p.values[value_index]);
            table.row(vec![
                fmt_f(cpu, 1),
                fmt_f(mem, 1),
                format!("{:.4e}", p.values[value_index]),
            ]);
        }
    }
    report.section("parameter across the allocation grid", table);
    let avg = vda_stats::mean(&values);
    let spread = values
        .iter()
        .fold(0.0_f64, |m, &v| m.max((v - avg).abs() / avg));
    report.note(format!(
        "I/O parameter independent of CPU and memory: max relative spread {spread:.2e} \
         (paper: 'I/O parameters do not depend on CPU or memory')"
    ));
    report
}

/// Fig. 5 — PgSim `cpu_tuple_cost`.
pub fn run_fig5() -> Report {
    cpu_param_figure(
        "fig5",
        "Variation in PgSim cpu_tuple_cost with 1/cpu share",
        Engine::pg(),
        0,
    )
}

/// Fig. 6 — Db2Sim `cpuspeed`.
pub fn run_fig6() -> Report {
    cpu_param_figure(
        "fig6",
        "Variation in Db2Sim cpuspeed with 1/cpu share",
        Engine::db2(),
        0,
    )
}

/// Fig. 7 — PgSim `random_page_cost`.
pub fn run_fig7() -> Report {
    io_param_figure(
        "fig7",
        "Variation in PgSim random_page_cost across allocations",
        Engine::pg(),
        0,
    )
}

/// Fig. 8 — Db2Sim `transfer_rate`.
pub fn run_fig8() -> Report {
    io_param_figure(
        "fig8",
        "Variation in Db2Sim transfer_rate across allocations",
        Engine::db2(),
        1,
    )
}
