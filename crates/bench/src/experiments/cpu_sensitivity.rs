//! Figures 12–17 — sensitivity to workload CPU needs (§7.3).
//!
//! Controlled validation on workload units `C` (CPU-intensive, k×Q18)
//! and `I` (not CPU-intensive, 1×Q21), count-balanced to equal cost at
//! 100 % CPU. Three experiments per engine:
//!
//! * Figs. 12/13: `W1 = 5C+5I` vs `W2 = kC+(10−k)I`, k = 0..10 — CPU
//!   given to W2 grows with k; improvement is U-shaped with its
//!   minimum where the workloads are alike (k ≈ 5).
//! * Figs. 14/15: `W3 = 1C` vs `W4 = kC` — the longer workload wins
//!   CPU, improvement grows with the asymmetry.
//! * Figs. 16/17: `W5 = 1C` vs `W6 = kI` — length without CPU appetite
//!   must NOT win CPU proportionally.
//!
//! The metric is the estimated improvement over the default 50/50
//! split, as in the paper's validation experiments.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::problem::SearchSpace;
use vda_workloads::units::WorkloadUnit;

fn space() -> SearchSpace {
    SearchSpace::cpu_only(FIXED_512MB_SHARE)
}

fn units(choice: EngineChoice) -> (WorkloadUnit, WorkloadUnit) {
    let engine = setups::engine_fixed_memory(choice);
    let cat = setups::sf(1.0);
    setups::cpu_units(&engine, &cat)
}

/// Figs. 12/13: varying CPU intensity at fixed workload size.
fn varying_intensity(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "Varying CPU intensity ({}): W1=5C+5I vs W2=kC+(10-k)I",
            choice.name()
        ),
    );
    let engine = setups::engine_fixed_memory(choice);
    let cat = setups::sf(1.0);
    let (c, i) = units(choice);
    report.note(format!(
        "balanced units: C = {:.0} x Q18, I = 1 x Q21",
        c.workload.total_statements()
    ));

    let mut table = Table::new(vec!["k", "CPU to W2", "est improvement"]);
    let mut shares = Vec::new();
    for k in 0..=10 {
        let w1 = c.compose(5.0, &i, 5.0);
        let w2 = c.compose(k as f64, &i, (10 - k) as f64);
        let adv = setups::advisor_for(&engine, &cat, vec![w1, w2]);
        let rec = adv.recommend(&space());
        let imp = adv.estimated_improvement(&space(), &rec.result.allocations);
        shares.push(rec.result.allocations[1].cpu());
        table.row(vec![
            k.to_string(),
            fmt_f(rec.result.allocations[1].cpu(), 2),
            fmt_pct(imp),
        ]);
    }
    report.section("allocation and improvement vs k", table);
    report.note(format!(
        "CPU to W2 is non-decreasing in k: {} (paper: advisor detects W2 becoming more \
         CPU-intensive)",
        shares.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    ));
    report.note(format!(
        "W2 below half at k=0 ({:.2}) and above half at k=10 ({:.2})",
        shares[0], shares[10]
    ));
    report
}

/// Figs. 14/15: varying workload size AND resource intensity.
fn varying_size(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "Varying workload size and intensity ({}): W3=1C vs W4=kC",
            choice.name()
        ),
    );
    let engine = setups::engine_fixed_memory(choice);
    let cat = setups::sf(1.0);
    let (c, _) = units(choice);

    let mut table = Table::new(vec!["k", "CPU to W4", "est improvement"]);
    let mut shares = Vec::new();
    for k in 1..=10 {
        let w3 = c.times(1.0);
        let w4 = c.times(k as f64);
        let adv = setups::advisor_for(&engine, &cat, vec![w3, w4]);
        let rec = adv.recommend(&space());
        let imp = adv.estimated_improvement(&space(), &rec.result.allocations);
        shares.push(rec.result.allocations[1].cpu());
        table.row(vec![
            k.to_string(),
            fmt_f(rec.result.allocations[1].cpu(), 2),
            fmt_pct(imp),
        ]);
    }
    report.section("allocation and improvement vs k", table);
    report.note(format!(
        "equal at k=1 ({:.2}), grows with k, reaching {:.2} at k=10",
        shares[0], shares[9]
    ));
    report
}

/// Figs. 16/17: varying size but NOT intensity.
fn size_without_intensity(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "Varying workload size but not CPU intensity ({}): W5=1C vs W6=kI",
            choice.name()
        ),
    );
    let engine = setups::engine_fixed_memory(choice);
    let cat = setups::sf(1.0);
    let (c, i) = units(choice);

    let mut table = Table::new(vec!["k", "CPU to W6", "est improvement"]);
    let mut shares = Vec::new();
    for k in 1..=10 {
        let w5 = c.times(1.0);
        let w6 = i.times(k as f64);
        let adv = setups::advisor_for(&engine, &cat, vec![w5, w6]);
        let rec = adv.recommend(&space());
        let imp = adv.estimated_improvement(&space(), &rec.result.allocations);
        shares.push(rec.result.allocations[1].cpu());
        table.row(vec![
            k.to_string(),
            fmt_f(rec.result.allocations[1].cpu(), 2),
            fmt_pct(imp),
        ]);
    }
    report.section("allocation and improvement vs k", table);
    // The paper's point: W6 must be *several times* as long as W5 to
    // reach an equal share; at small k the CPU-hungry W5 keeps more.
    let crossover = shares.iter().position(|&s| s >= 0.5).map(|p| p + 1);
    report.note(format!(
        "W6 reaches a 50% CPU share only at k = {:?} (paper: 'W6 has to be several times \
         as long as W5 to get the same CPU allocation')",
        crossover
    ));
    report
}

/// Fig. 12 — Db2Sim intensity sweep.
pub fn run_fig12() -> Report {
    varying_intensity("fig12", EngineChoice::Db2)
}

/// Fig. 13 — PgSim intensity sweep.
pub fn run_fig13() -> Report {
    varying_intensity("fig13", EngineChoice::Pg)
}

/// Fig. 14 — Db2Sim size sweep.
pub fn run_fig14() -> Report {
    varying_size("fig14", EngineChoice::Db2)
}

/// Fig. 15 — PgSim size sweep.
pub fn run_fig15() -> Report {
    varying_size("fig15", EngineChoice::Pg)
}

/// Fig. 16 — Db2Sim length-without-intensity sweep.
pub fn run_fig16() -> Report {
    size_without_intensity("fig16", EngineChoice::Db2)
}

/// Fig. 17 — PgSim length-without-intensity sweep.
pub fn run_fig17() -> Report {
    size_without_intensity("fig17", EngineChoice::Pg)
}
