//! Figures 35–36 — dynamic configuration management (§7.10).
//!
//! Two Db2Sim workloads: W24 (TPC-H DSS) and W25 (TPC-C). Nine
//! monitoring periods; every period the TPC-H workload grows by one
//! workload unit (a *minor* change), and at the end of periods 3 and 7
//! the two workloads swap VMs (a *major* change). Dynamic
//! configuration management detects the major changes through the
//! per-query cost-estimate metric and rebuilds its models, re-tracking
//! the optimal allocation within one period; continuous online
//! refinement drags its stale models along and recovers slowly.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use vda_core::advisor::VirtualizationDesignAdvisor;
use vda_core::dynamic::{DynamicConfigManager, DynamicOptions, ManagementMode};
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_workloads::tpch;

const MEM_SHARE: f64 = 0.25;
const PERIODS: usize = 9;

fn space() -> SearchSpace {
    SearchSpace::cpu_only(MEM_SHARE)
}

fn advisor() -> VirtualizationDesignAdvisor {
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let tpch_cat = setups::sf(1.0);
    let tpcc_cat = vda_workloads::tpcc::catalog(10);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    adv.add_tenant(
        Tenant::new(
            "W24-tpch",
            engine.clone(),
            tpch_cat,
            tpch::query_workload(18, 2.0),
        )
        .expect("tpch binds"),
        QoS::default(),
    );
    adv.add_tenant(
        Tenant::new(
            "W25-tpcc",
            engine,
            tpcc_cat,
            vda_workloads::tpcc::workload(4, 6, setups::TPCC_TXNS_PER_CLIENT),
        )
        .expect("tpcc binds"),
        QoS::default(),
    );
    adv.calibrate();
    adv
}

/// One simulation run under a management mode; returns per-period
/// (cpu share of VM0, cpu share of VM1, actual improvement over the
/// default allocation, decisions).
fn simulate(mode: ManagementMode) -> Vec<(f64, f64, f64, String)> {
    let mut adv = advisor();
    let opts = DynamicOptions {
        mode,
        ..DynamicOptions::default()
    };
    let mut mgr = DynamicConfigManager::new(&adv, space(), opts);
    let mut out = Vec::with_capacity(PERIODS);
    for p in 1..=PERIODS {
        // Minor change each period: the TPC-H workload grows by one
        // unit. (A swap may relocate it to the other VM.)
        for i in 0..2 {
            if adv.tenant(i).name.contains("tpch") {
                let grown = {
                    let t = adv.tenant(i);
                    let mut w = t.workload.clone();
                    let unit = tpch::query_workload(18, 1.0);
                    w.merge_scaled(&unit, 1.0);
                    w
                };
                adv.tenant_mut(i).set_workload(grown).expect("tpch grows");
            }
        }
        // Major change: swap the VMs' workloads (databases move with
        // them) after periods 3 and 7.
        if p == 4 || p == 8 {
            adv.swap_tenants(0, 1);
        }

        let report = mgr.process_period(&adv);
        let improvement = adv.actual_improvement(&space(), &report.allocations);
        let decisions = report
            .decisions
            .iter()
            .map(|d| format!("{d:?}"))
            .collect::<Vec<_>>()
            .join("/");
        out.push((
            report.allocations[0].cpu(),
            report.allocations[1].cpu(),
            improvement,
            decisions,
        ));
    }
    out
}

/// Fig. 35 — CPU shares per monitoring period.
pub fn run_fig35() -> Report {
    let mut report = Report::new(
        "fig35",
        "CPU allocation per period: dynamic management vs continuous refinement (Db2Sim)",
    );
    let dynamic = simulate(ManagementMode::Dynamic);
    let continuous = simulate(ManagementMode::ContinuousRefinement);

    let mut table = Table::new(vec![
        "period",
        "dyn VM0",
        "dyn VM1",
        "cont VM0",
        "cont VM1",
        "dynamic decisions",
    ]);
    for p in 0..PERIODS {
        table.row(vec![
            format!(
                "{}{}",
                p + 1,
                if p == 3 || p == 7 { " (post-swap)" } else { "" }
            ),
            fmt_f(dynamic[p].0, 2),
            fmt_f(dynamic[p].1, 2),
            fmt_f(continuous[p].0, 2),
            fmt_f(continuous[p].1, 2),
            dynamic[p].3.clone(),
        ]);
    }
    report.section("CPU shares per monitoring period", table);
    let rebuilds: usize = dynamic
        .iter()
        .enumerate()
        .filter(|(p, d)| (*p == 3 || *p == 7) && d.3.contains("RebuildOnChange"))
        .count();
    report.note(format!(
        "major changes (workload swaps) detected and models rebuilt in both swap periods: {}",
        rebuilds == 2
    ));
    report
}

/// Fig. 36 — improvement per monitoring period.
pub fn run_fig36() -> Report {
    let mut report = Report::new(
        "fig36",
        "Improvement per period: dynamic management vs continuous refinement (Db2Sim)",
    );
    let dynamic = simulate(ManagementMode::Dynamic);
    let continuous = simulate(ManagementMode::ContinuousRefinement);

    let mut table = Table::new(vec!["period", "dynamic", "continuous refinement"]);
    for p in 0..PERIODS {
        table.row(vec![
            format!(
                "{}{}",
                p + 1,
                if p == 3 || p == 7 { " (post-swap)" } else { "" }
            ),
            fmt_pct(dynamic[p].2),
            fmt_pct(continuous[p].2),
        ]);
    }
    report.section("actual improvement over the default allocation", table);
    let post_swap_gap: f64 = [3usize, 7]
        .iter()
        .map(|&p| dynamic[p].2 - continuous[p].2)
        .sum::<f64>()
        / 2.0;
    report.note(format!(
        "after the swaps, dynamic management beats continuous refinement by an average of \
         {:.1} percentage points (paper: continuous refinement 'gave poor recommendations \
         and was not able to recover')",
        post_swap_gap * 100.0
    ));
    report
}
