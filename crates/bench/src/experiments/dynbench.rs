//! Steady-state incremental re-optimization (beyond the paper).
//!
//! The paper's §6 manager re-optimizes every monitoring period; at
//! fleet scale the dominant cost is re-running the coarse-to-fine
//! search on machines where little or nothing changed. This scenario
//! runs a 3-machine / 10-tenant fleet for 20 periods with exactly one
//! tenant drifting per period and re-optimizes every machine every
//! period twice over:
//!
//! * **cold** — the baseline: fresh estimators, full coarse-to-fine
//!   search on every machine every period;
//! * **incremental** — [`VirtualizationDesignAdvisor::recommend_c2f_warm`]
//!   with a fleet-wide [`ProbeCache`]: unchanged machines return the
//!   cached solve at zero optimizer calls, the drifted machine
//!   delta-solves against its retained coarse lattice.
//!
//! Both legs must agree bit-for-bit on every period's objective,
//! allocations, and limit verdicts (`results_match`), and the
//! incremental leg must save at least 10× the steady-state optimizer
//! calls (`meets_10x`). [`write_json`] emits the deterministic numbers
//! as `BENCH_dynamic.json`; CI diffs them against the committed
//! baseline and fails on regression.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, cold_estimators, EngineChoice};
use std::time::Instant;
use vda_core::costmodel::ProbeCache;
use vda_core::metrics::CostAccounting;
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_core::{coarse_to_fine_search_with, CoarseToFineOptions, SearchResult};
use vda_core::{SearchOptions, VirtualizationDesignAdvisor};

/// Machines in the fleet.
pub const MACHINES: usize = 3;
/// Tenants across the fleet.
pub const TENANTS: usize = 10;
/// Monitoring periods after the initial solve.
pub const PERIODS: usize = 20;

/// Tenants per machine (sums to [`TENANTS`]).
const SPLIT: [usize; MACHINES] = [4, 3, 3];

/// The placement scenario's mixed-DSS tenant population: CPU-hungry
/// (Q18/Q21) and scan/memory-leaning (Q6/Q7/Q16) workloads.
const MIX: [(usize, f64); TENANTS] = [
    (18, 6.0),
    (18, 1.0),
    (21, 4.0),
    (6, 2.0),
    (7, 3.0),
    (16, 1.0),
    (6, 5.0),
    (7, 1.0),
    (21, 1.0),
    (16, 3.0),
];

/// Degradation limit given to each machine's first tenant — loose
/// enough to be met, finite so every machine exercises the limit-aware
/// coarse-to-fine path (the one that retains a coarse lattice for
/// delta-solves).
const FIRST_TENANT_LIMIT: f64 = 6.0;

/// One leg's fleet: three identically-built machines.
fn fleet() -> Vec<VirtualizationDesignAdvisor> {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let mut advisors = Vec::with_capacity(MACHINES);
    let mut g = 0;
    for &count in &SPLIT {
        let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
        for slot in 0..count {
            let (q, mult) = MIX[g];
            let w = vda_workloads::tpch::query_workload(q, mult).named(format!("T{g}-Q{q}"));
            let qos = if slot == 0 {
                QoS::with_limit(FIRST_TENANT_LIMIT)
            } else {
                QoS::default()
            };
            adv.add_tenant(
                Tenant::new(format!("T{g}-Q{q}"), engine.clone(), cat.clone(), w)
                    .expect("bench workloads bind"),
                qos,
            );
            g += 1;
        }
        adv.calibrate();
        advisors.push(adv);
    }
    advisors
}

/// Which machine hosts global tenant `g`, and at which slot.
fn host_of(g: usize) -> (usize, usize) {
    let mut offset = 0;
    for (m, &count) in SPLIT.iter().enumerate() {
        if g < offset + count {
            return (m, g - offset);
        }
        offset += count;
    }
    unreachable!("tenant index out of range")
}

/// The drifting tenant and its intensity factor for period `p`
/// (1-based): periods 1–10 scale each tenant up once, periods 11–20
/// scale each back down (×1.25 then ×0.8 restores the original
/// counts).
fn drift_for(p: usize) -> (usize, f64) {
    let g = (p - 1) % TENANTS;
    let factor = if p <= TENANTS { 1.25 } else { 0.8 };
    (g, factor)
}

/// A full cold re-solve of machine `adv`: fresh estimators (no cache
/// carried over from any previous period), full coarse-to-fine
/// search. Returns the result and the optimizer calls it paid.
fn cold_solve(adv: &VirtualizationDesignAdvisor, space: &SearchSpace) -> (SearchResult, u64) {
    let models = cold_estimators(adv);
    let c2f = CoarseToFineOptions::auto(space, models.len());
    let result =
        coarse_to_fine_search_with(space, adv.qos(), &models, &c2f, &SearchOptions::default());
    let calls = CostAccounting::tally(&models).optimizer_calls;
    (result, calls)
}

/// The steady-state measurement, as emitted into `BENCH_dynamic.json`.
#[derive(Debug, Clone)]
pub struct DynamicBench {
    /// Optimizer calls of the initial (period-0) solves, cold leg.
    pub init_cold_calls: u64,
    /// Optimizer calls of the initial solves, incremental leg (its
    /// first solve is cold too — there is nothing to warm-start from).
    pub init_warm_calls: u64,
    /// Per-period optimizer calls over periods 1..=[`PERIODS`], cold leg.
    pub cold_calls_per_period: Vec<u64>,
    /// Per-period optimizer calls, incremental leg.
    pub warm_calls_per_period: Vec<u64>,
    /// Summed warm-start counters over the fleet's machines:
    /// `(cold_solves, delta_solves, lattice_reuses)`.
    pub warm_solve_stats: (u64, u64, u64),
    /// Incremental-leg accounting: steady-state optimizer calls plus
    /// the fleet probe cache's cross-period hit/miss counters and the
    /// lattice-reuse count.
    pub accounting: CostAccounting,
    /// Whether every period's incremental result matched the cold one
    /// bit-for-bit (objective, allocations, limit verdicts).
    pub results_match: bool,
    /// Per-machine weighted cost after the final period (`{:.9}`-gated).
    pub final_objectives: Vec<f64>,
    /// Wall time of the cold leg, milliseconds.
    pub cold_wall_ms: f64,
    /// Wall time of the incremental leg, milliseconds.
    pub warm_wall_ms: f64,
}

impl DynamicBench {
    /// Total steady-state optimizer calls, cold leg.
    pub fn steady_cold_calls(&self) -> u64 {
        self.cold_calls_per_period.iter().sum()
    }

    /// Total steady-state optimizer calls, incremental leg.
    pub fn steady_warm_calls(&self) -> u64 {
        self.warm_calls_per_period.iter().sum()
    }

    /// Steady-state optimizer-call ratio, cold over incremental.
    pub fn speedup(&self) -> f64 {
        self.steady_cold_calls() as f64 / self.steady_warm_calls().max(1) as f64
    }

    /// The contract: incremental re-optimization saves at least 10×
    /// the steady-state optimizer calls.
    pub fn meets_10x(&self) -> bool {
        self.speedup() >= 10.0
    }
}

/// Run both legs of the steady-state scenario.
pub fn measure() -> DynamicBench {
    let space = SearchSpace::cpu_and_memory(); // δ = 0.05

    // Cold leg: full re-solve of every machine every period.
    let mut cold_fleet = fleet();
    let t0 = Instant::now();
    let mut init_cold_calls = 0;
    let mut cold_results: Vec<SearchResult> = Vec::with_capacity(MACHINES);
    for adv in &cold_fleet {
        let (r, calls) = cold_solve(adv, &space);
        init_cold_calls += calls;
        cold_results.push(r);
    }
    let mut cold_calls_per_period = Vec::with_capacity(PERIODS);
    let mut cold_history: Vec<Vec<SearchResult>> = Vec::with_capacity(PERIODS);
    for p in 1..=PERIODS {
        let (g, factor) = drift_for(p);
        let (m, slot) = host_of(g);
        cold_fleet[m].tenant_mut(slot).scale_workload(factor);
        let mut calls = 0;
        let mut results = Vec::with_capacity(MACHINES);
        for adv in &cold_fleet {
            let (r, c) = cold_solve(adv, &space);
            calls += c;
            results.push(r);
        }
        cold_calls_per_period.push(calls);
        cold_history.push(results);
    }
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Incremental leg: warm-started advisor solves over a fleet-wide
    // probe cache.
    let probe = ProbeCache::new();
    let mut warm_fleet = fleet();
    for adv in &mut warm_fleet {
        adv.attach_probe_cache(probe.clone());
    }
    let t0 = Instant::now();
    let mut init_warm_calls = 0;
    let mut warm_results: Vec<SearchResult> = Vec::with_capacity(MACHINES);
    for adv in &warm_fleet {
        let rec = adv.recommend_c2f_warm(&space);
        init_warm_calls += rec.optimizer_calls;
        warm_results.push(rec.result);
    }
    let mut results_match = warm_results
        .iter()
        .zip(&cold_results)
        .all(|(w, c)| identical(w, c));
    let mut warm_calls_per_period = Vec::with_capacity(PERIODS);
    for p in 1..=PERIODS {
        let (g, factor) = drift_for(p);
        let (m, slot) = host_of(g);
        warm_fleet[m].tenant_mut(slot).scale_workload(factor);
        let mut calls = 0;
        for (adv, cold) in warm_fleet.iter().zip(&cold_history[p - 1]) {
            let rec = adv.recommend_c2f_warm(&space);
            calls += rec.optimizer_calls;
            results_match &= identical(&rec.result, cold);
        }
        warm_calls_per_period.push(calls);
    }
    let warm_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut warm_solve_stats = (0, 0, 0);
    for adv in &warm_fleet {
        let (c, d, l) = adv.warm_stats();
        warm_solve_stats.0 += c;
        warm_solve_stats.1 += d;
        warm_solve_stats.2 += l;
    }
    let steady_warm: u64 = warm_calls_per_period.iter().sum();
    let accounting = CostAccounting {
        optimizer_calls: steady_warm,
        cache_hits: 0,
        ..CostAccounting::default()
    }
    .with_probe_cache(&probe)
    .with_lattice_reuses(warm_solve_stats.2);

    let final_objectives = cold_history
        .last()
        .expect("at least one period")
        .iter()
        .map(|r| r.weighted_cost)
        .collect();

    DynamicBench {
        init_cold_calls,
        init_warm_calls,
        cold_calls_per_period,
        warm_calls_per_period,
        warm_solve_stats,
        accounting,
        results_match,
        final_objectives,
        cold_wall_ms,
        warm_wall_ms,
    }
}

/// Bit-for-bit result identity: objective, allocations, limit
/// verdicts.
fn identical(a: &SearchResult, b: &SearchResult) -> bool {
    a.weighted_cost.to_bits() == b.weighted_cost.to_bits()
        && a.allocations == b.allocations
        && a.limits_met == b.limits_met
}

/// Measure and render as a report.
pub fn run() -> Report {
    run_from(measure())
}

/// Render an existing measurement as a report.
pub fn run_from(m: DynamicBench) -> Report {
    let mut report = Report::new(
        "dynbench",
        "Incremental re-optimization: 10 tenants / 3 machines / 20 periods, one drift per period",
    );
    let mut table = Table::new(vec!["leg", "init calls", "steady calls", "wall ms"]);
    table.row(vec![
        "cold".to_string(),
        m.init_cold_calls.to_string(),
        m.steady_cold_calls().to_string(),
        fmt_f(m.cold_wall_ms, 1),
    ]);
    table.row(vec![
        "incremental".to_string(),
        m.init_warm_calls.to_string(),
        m.steady_warm_calls().to_string(),
        fmt_f(m.warm_wall_ms, 1),
    ]);
    report.section("cold vs incremental optimizer calls", table);

    let mut counters = Table::new(vec!["counter", "value"]);
    let (cold_solves, delta_solves, lattice_reuses) = m.warm_solve_stats;
    counters.row(vec!["cold solves".to_string(), cold_solves.to_string()]);
    counters.row(vec!["delta solves".to_string(), delta_solves.to_string()]);
    counters.row(vec![
        "lattice reuses".to_string(),
        lattice_reuses.to_string(),
    ]);
    counters.row(vec![
        "probe hits".to_string(),
        m.accounting.probe_hits.to_string(),
    ]);
    counters.row(vec![
        "probe misses".to_string(),
        m.accounting.probe_misses.to_string(),
    ]);
    counters.row(vec![
        "steady-state speedup".to_string(),
        fmt_f(m.speedup(), 1),
    ]);
    report.section("incremental-leg counters", counters);
    report.note(format!(
        "incremental results identical to cold: {}; ≥10× fewer steady-state optimizer calls: {}",
        m.results_match,
        m.meets_10x()
    ));
    report
}

/// Serialize the measurement as the `BENCH_dynamic.json` artifact.
/// Everything except the `*_ms` fields is deterministic and gated by
/// `check_bench`.
pub fn to_json(m: &DynamicBench) -> String {
    let cold: Vec<String> = m.cold_calls_per_period.iter().map(u64::to_string).collect();
    let warm: Vec<String> = m.warm_calls_per_period.iter().map(u64::to_string).collect();
    let finals: Vec<String> = m
        .final_objectives
        .iter()
        .map(|o| format!("{o:.9}"))
        .collect();
    let (cold_solves, delta_solves, lattice_reuses) = m.warm_solve_stats;
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"dynbench\",\n",
            "  \"machines\": {},\n",
            "  \"workloads\": {},\n",
            "  \"periods\": {},\n",
            "  \"space\": \"cpu_and_memory\",\n",
            "  \"delta\": 0.05,\n",
            "  \"cold_wall_ms\": {:.3},\n",
            "  \"warm_wall_ms\": {:.3},\n",
            "  \"init_optimizer_calls_cold\": {},\n",
            "  \"init_optimizer_calls_incremental\": {},\n",
            "  \"steady_optimizer_calls_cold\": {},\n",
            "  \"steady_optimizer_calls_incremental\": {},\n",
            "  \"cold_calls_per_period\": [{}],\n",
            "  \"incremental_calls_per_period\": [{}],\n",
            "  \"cold_solves\": {},\n",
            "  \"delta_solves\": {},\n",
            "  \"lattice_reuses\": {},\n",
            "  \"probe_hits\": {},\n",
            "  \"probe_misses\": {},\n",
            "  \"final_objectives\": [{}],\n",
            "  \"speedup\": {:.3},\n",
            "  \"results_match\": {},\n",
            "  \"meets_10x\": {}\n",
            "}}\n"
        ),
        MACHINES,
        TENANTS,
        PERIODS,
        m.cold_wall_ms,
        m.warm_wall_ms,
        m.init_cold_calls,
        m.init_warm_calls,
        m.steady_cold_calls(),
        m.steady_warm_calls(),
        cold.join(", "),
        warm.join(", "),
        cold_solves,
        delta_solves,
        lattice_reuses,
        m.accounting.probe_hits,
        m.accounting.probe_misses,
        finals.join(", "),
        m.speedup(),
        m.results_match,
        m.meets_10x(),
    )
}

/// Measure and write `BENCH_dynamic.json` to `path`.
pub fn write_json(path: &str) -> std::io::Result<DynamicBench> {
    let m = measure();
    std::fs::write(path, to_json(&m))?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_incremental_and_exact() {
        let m = measure();
        assert!(m.results_match, "incremental must equal cold bit-for-bit");
        assert!(
            m.meets_10x(),
            "steady-state speedup {}× (cold {} vs incremental {})",
            m.speedup(),
            m.steady_cold_calls(),
            m.steady_warm_calls()
        );
        let (cold_solves, delta_solves, _) = m.warm_solve_stats;
        assert_eq!(cold_solves, MACHINES as u64, "one cold solve per machine");
        assert_eq!(
            delta_solves, PERIODS as u64,
            "exactly the drifted machine delta-solves each period"
        );
        assert!(m.accounting.lattice_reuses > 0);
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let m = measure();
        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"dynbench\""));
        assert!(json.contains("\"steady_optimizer_calls_cold\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"meets_10x\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
