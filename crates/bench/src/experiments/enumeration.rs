//! Enumeration performance: serial vs parallel candidate evaluation.
//!
//! The paper reports the advisor's search cost in optimizer calls
//! (§7.2); this experiment starts the repository's own performance
//! trajectory by measuring wall time too. For greedy and exhaustive
//! search it runs the serial and the parallel evaluation path on
//! identical cold caches, verifies the results are bit-identical (the
//! `SearchOptions` contract), and reports wall time, optimizer calls,
//! and cache hits. [`write_json`] emits the same numbers as
//! machine-readable `BENCH_enumeration.json` for the perf dashboard.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use std::time::Instant;
use vda_core::costmodel::{SharedEstimateCache, WhatIfEstimator};
use vda_core::enumerate::{
    exhaustive_search_with, greedy_search_with, SearchOptions, SearchResult,
};
use vda_core::metrics::CostAccounting;
use vda_core::problem::SearchSpace;
use vda_core::VirtualizationDesignAdvisor;

/// One algorithm's serial-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct AlgoMeasurement {
    /// `"greedy"` or `"exhaustive"`.
    pub name: &'static str,
    /// Serial wall time in milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time in milliseconds.
    pub parallel_ms: f64,
    /// Optimizer calls on the serial path.
    pub optimizer_calls_serial: u64,
    /// Optimizer calls on the parallel path.
    pub optimizer_calls_parallel: u64,
    /// Cache hits on the serial path.
    pub cache_hits: u64,
    /// Whether serial and parallel returned identical results.
    pub identical: bool,
    /// Greedy iterations (0 for exhaustive).
    pub iterations: usize,
}

impl AlgoMeasurement {
    /// serial/parallel wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

fn bench_advisor() -> VirtualizationDesignAdvisor {
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c_unit, i_unit) = setups::cpu_units(&engine, &cat);
    setups::advisor_for(
        &engine,
        &cat,
        vec![
            c_unit.compose(5.0, &i_unit, 5.0),
            c_unit.compose(2.0, &i_unit, 8.0),
            c_unit.compose(8.0, &i_unit, 2.0),
            c_unit.compose(1.0, &i_unit, 9.0),
            i_unit.times(10.0),
        ],
    )
}

/// Fresh estimators over cold caches, so each timed run pays the full
/// optimizer cost of enumeration.
fn cold_estimators(adv: &VirtualizationDesignAdvisor) -> Vec<WhatIfEstimator<'_>> {
    (0..adv.tenant_count())
        .map(|i| {
            WhatIfEstimator::with_shared_cache(
                adv.tenant(i),
                adv.model(i),
                SharedEstimateCache::new(),
            )
        })
        .collect()
}

fn search(
    exhaustive: bool,
    space: &SearchSpace,
    qos: &[vda_core::problem::QoS],
    models: &[WhatIfEstimator<'_>],
    options: &SearchOptions,
) -> SearchResult {
    if exhaustive {
        exhaustive_search_with(space, qos, models, options)
    } else {
        greedy_search_with(space, qos, models, options)
    }
}

/// Timed repetitions per path; the minimum is reported to suppress
/// scheduling noise on small problems.
const REPS: usize = 5;

fn measure(
    adv: &VirtualizationDesignAdvisor,
    space: &SearchSpace,
    name: &'static str,
    exhaustive: bool,
) -> AlgoMeasurement {
    let qos = adv.qos();

    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut serial = None;
    let mut parallel = None;
    let mut serial_acct = CostAccounting::default();
    let mut parallel_acct = CostAccounting::default();
    for _ in 0..REPS {
        let serial_models = cold_estimators(adv);
        let t0 = Instant::now();
        let r = search(
            exhaustive,
            space,
            qos,
            &serial_models,
            &SearchOptions::serial(),
        );
        serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        serial_acct = CostAccounting::tally(&serial_models);
        serial = Some(r);

        let parallel_models = cold_estimators(adv);
        let t1 = Instant::now();
        let r = search(
            exhaustive,
            space,
            qos,
            &parallel_models,
            &SearchOptions::parallel(),
        );
        parallel_ms = parallel_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        parallel_acct = CostAccounting::tally(&parallel_models);
        parallel = Some(r);
    }
    let serial = serial.expect("REPS >= 1");
    let parallel = parallel.expect("REPS >= 1");

    AlgoMeasurement {
        name,
        serial_ms,
        parallel_ms,
        optimizer_calls_serial: serial_acct.optimizer_calls,
        optimizer_calls_parallel: parallel_acct.optimizer_calls,
        cache_hits: serial_acct.cache_hits,
        identical: serial == parallel,
        iterations: serial.iterations,
    }
}

/// Run the measurements (5 workloads, CPU-only δ-grid).
pub fn measurements() -> Vec<AlgoMeasurement> {
    let adv = bench_advisor();
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
    vec![
        measure(&adv, &space, "greedy", false),
        measure(&adv, &space, "exhaustive", true),
    ]
}

/// Measure and render as a report.
pub fn run() -> Report {
    run_from(measurements())
}

/// Render existing measurements as a report.
pub fn run_from(ms: Vec<AlgoMeasurement>) -> Report {
    let mut report = Report::new(
        "enumbench",
        "Enumeration wall time: serial vs parallel candidate evaluation",
    );
    let mut table = Table::new(vec![
        "algorithm",
        "serial ms",
        "parallel ms",
        "speedup",
        "optimizer calls",
        "cache hits",
        "identical",
    ]);
    for m in &ms {
        table.row(vec![
            m.name.to_string(),
            fmt_f(m.serial_ms, 1),
            fmt_f(m.parallel_ms, 1),
            format!("{:.2}x", m.speedup()),
            m.optimizer_calls_serial.to_string(),
            m.cache_hits.to_string(),
            m.identical.to_string(),
        ]);
    }
    report.section("greedy vs exhaustive, serial vs parallel", table);
    let all_identical = ms.iter().all(|m| m.identical);
    let calls_match = ms
        .iter()
        .all(|m| m.optimizer_calls_serial == m.optimizer_calls_parallel);
    report.note(format!(
        "parallel results identical to serial: {all_identical}; optimizer-call counts match: {calls_match}"
    ));
    report.note(format!("worker threads: {}", rayon::current_num_threads()));
    report
}

/// Serialize measurements as the `BENCH_enumeration.json` artifact.
pub fn to_json(ms: &[AlgoMeasurement]) -> String {
    let algos: Vec<String> = ms
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"name\": \"{}\",\n",
                    "      \"serial_ms\": {:.3},\n",
                    "      \"parallel_ms\": {:.3},\n",
                    "      \"speedup\": {:.3},\n",
                    "      \"optimizer_calls_serial\": {},\n",
                    "      \"optimizer_calls_parallel\": {},\n",
                    "      \"cache_hits\": {},\n",
                    "      \"iterations\": {},\n",
                    "      \"allocations_identical\": {}\n",
                    "    }}"
                ),
                m.name,
                m.serial_ms,
                m.parallel_ms,
                m.speedup(),
                m.optimizer_calls_serial,
                m.optimizer_calls_parallel,
                m.cache_hits,
                m.iterations,
                m.identical,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"enumeration\",\n",
            "  \"workloads\": 5,\n",
            "  \"space\": \"cpu_only\",\n",
            "  \"delta\": 0.05,\n",
            "  \"threads\": {},\n",
            "  \"algorithms\": [\n{}\n  ]\n",
            "}}\n"
        ),
        rayon::current_num_threads(),
        algos.join(",\n"),
    )
}

/// Measure and write `BENCH_enumeration.json` to `path`.
pub fn write_json(path: &str) -> std::io::Result<Vec<AlgoMeasurement>> {
    let ms = measurements();
    std::fs::write(path, to_json(&ms))?;
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_wellformed_enough() {
        let ms = vec![AlgoMeasurement {
            name: "greedy",
            serial_ms: 12.5,
            parallel_ms: 5.0,
            optimizer_calls_serial: 100,
            optimizer_calls_parallel: 100,
            cache_hits: 40,
            identical: true,
            iterations: 6,
        }];
        let json = to_json(&ms);
        assert!(json.contains("\"experiment\": \"enumeration\""));
        assert!(json.contains("\"name\": \"greedy\""));
        assert!(json.contains("\"allocations_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
