//! Enumeration performance: serial vs parallel candidate evaluation,
//! and coarse-to-fine vs full-grid DP at production scale.
//!
//! The paper reports the advisor's search cost in optimizer calls
//! (§7.2); this experiment starts the repository's own performance
//! trajectory by measuring wall time too. For greedy and exhaustive
//! search it runs the serial and the parallel evaluation path on
//! identical cold caches, verifies the results are bit-identical (the
//! `SearchOptions` contract), and reports wall time, optimizer calls,
//! and cache hits. A second section pits coarse-to-fine refinement
//! against the full-grid DP on the paper's maximum tenant count
//! (N = 10) at a δ ten times finer than the paper's (0.01, CPU and
//! memory jointly): same objective, a fraction of the optimizer calls.
//! A third section repeats that comparison with four *finite, binding*
//! degradation limits — the regime where coarse-to-fine used to
//! silently degrade to the full grid — asserting identical objectives
//! *and* limit verdicts at ≥ 3× fewer optimizer calls. A fourth
//! section opens the **third resource axis**: N = 5 tenants over a
//! joint CPU + memory + disk-bandwidth grid (δ = 0.05, disk-calibrated
//! what-if estimators), coarse-to-fine against the 3-D full-grid DP —
//! same objective, ≥ 2× fewer optimizer calls. [`write_json`] emits
//! the same numbers as machine-readable `BENCH_enumeration.json`; CI
//! diffs the deterministic fields against the committed baseline and
//! fails on regression.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, cold_estimators, EngineChoice, FIXED_512MB_SHARE};
use std::time::Instant;
use vda_core::costmodel::{CalibrationConfig, WhatIfEstimator};
use vda_core::enumerate::{
    coarse_to_fine_search_with, exhaustive_search_with, greedy_search_with, CoarseToFineOptions,
    SearchOptions, SearchResult,
};
use vda_core::jsonio::fmt_f64;
use vda_core::metrics::CostAccounting;
use vda_core::problem::{Resource, SearchSpace};
use vda_core::tenant::Tenant;
use vda_core::VirtualizationDesignAdvisor;

/// One algorithm's serial-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct AlgoMeasurement {
    /// `"greedy"` or `"exhaustive"`.
    pub name: &'static str,
    /// Serial wall time in milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time in milliseconds.
    pub parallel_ms: f64,
    /// Optimizer calls on the serial path.
    pub optimizer_calls_serial: u64,
    /// Optimizer calls on the parallel path.
    pub optimizer_calls_parallel: u64,
    /// Cache hits on the serial path.
    pub cache_hits: u64,
    /// Whether serial and parallel returned identical results.
    pub identical: bool,
    /// Greedy iterations (0 for exhaustive).
    pub iterations: usize,
}

impl AlgoMeasurement {
    /// serial/parallel wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

fn bench_advisor() -> VirtualizationDesignAdvisor {
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c_unit, i_unit) = setups::cpu_units(&engine, &cat);
    setups::advisor_for(
        &engine,
        &cat,
        vec![
            c_unit.compose(5.0, &i_unit, 5.0),
            c_unit.compose(2.0, &i_unit, 8.0),
            c_unit.compose(8.0, &i_unit, 2.0),
            c_unit.compose(1.0, &i_unit, 9.0),
            i_unit.times(10.0),
        ],
    )
}

fn search(
    exhaustive: bool,
    space: &SearchSpace,
    qos: &[vda_core::problem::QoS],
    models: &[WhatIfEstimator<'_>],
    options: &SearchOptions,
) -> SearchResult {
    if exhaustive {
        exhaustive_search_with(space, qos, models, options)
    } else {
        greedy_search_with(space, qos, models, options)
    }
}

/// Timed repetitions per path; the minimum is reported to suppress
/// scheduling noise on small problems.
const REPS: usize = 5;

fn measure(
    adv: &VirtualizationDesignAdvisor,
    space: &SearchSpace,
    name: &'static str,
    exhaustive: bool,
) -> AlgoMeasurement {
    let qos = adv.qos();

    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut serial = None;
    let mut parallel = None;
    let mut serial_acct = CostAccounting::default();
    let mut parallel_acct = CostAccounting::default();
    for _ in 0..REPS {
        let serial_models = cold_estimators(adv);
        let t0 = Instant::now();
        let r = search(
            exhaustive,
            space,
            qos,
            &serial_models,
            &SearchOptions::serial(),
        );
        serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        serial_acct = CostAccounting::tally(&serial_models);
        serial = Some(r);

        let parallel_models = cold_estimators(adv);
        let t1 = Instant::now();
        let r = search(
            exhaustive,
            space,
            qos,
            &parallel_models,
            &SearchOptions::parallel(),
        );
        parallel_ms = parallel_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        parallel_acct = CostAccounting::tally(&parallel_models);
        parallel = Some(r);
    }
    let serial = serial.expect("REPS >= 1");
    let parallel = parallel.expect("REPS >= 1");

    AlgoMeasurement {
        name,
        serial_ms,
        parallel_ms,
        optimizer_calls_serial: serial_acct.optimizer_calls,
        optimizer_calls_parallel: parallel_acct.optimizer_calls,
        cache_hits: serial_acct.cache_hits,
        identical: serial == parallel,
        iterations: serial.iterations,
    }
}

/// Coarse-to-fine vs full-grid DP at the paper's maximum scale:
/// N = 10 tenants, CPU and memory jointly, δ = 0.01.
#[derive(Debug, Clone)]
pub struct C2fMeasurement {
    /// Tenant count.
    pub workloads: usize,
    /// Fine grid step.
    pub delta: f64,
    /// Coarse ladder the search used.
    pub coarse_deltas: Vec<f64>,
    /// Full-grid DP wall time in milliseconds.
    pub full_ms: f64,
    /// Coarse-to-fine wall time in milliseconds.
    pub c2f_ms: f64,
    /// Optimizer calls the full-grid DP issued (cold caches).
    pub full_optimizer_calls: u64,
    /// Optimizer calls coarse-to-fine issued (cold caches).
    pub c2f_optimizer_calls: u64,
    /// Full-grid objective.
    pub full_weighted_cost: f64,
    /// Coarse-to-fine objective.
    pub c2f_weighted_cost: f64,
}

impl C2fMeasurement {
    /// full/c2f optimizer-call ratio.
    pub fn call_ratio(&self) -> f64 {
        self.full_optimizer_calls as f64 / (self.c2f_optimizer_calls as f64).max(1.0)
    }

    /// Whether the objectives agree (1e-9 relative).
    pub fn objective_match(&self) -> bool {
        (self.full_weighted_cost - self.c2f_weighted_cost).abs()
            <= 1e-9 * self.full_weighted_cost.abs().max(1.0)
    }

    /// The acceptance bar: same objective, ≥ 5× fewer optimizer calls.
    pub fn meets_5x(&self) -> bool {
        self.objective_match() && self.call_ratio() >= 5.0
    }

    /// The 3-axis acceptance bar: same objective, ≥ 2× fewer
    /// optimizer calls (the 3-D windows are cubes, so the windowed
    /// fraction of the grid is larger than in 2-D — the savings bar is
    /// correspondingly lower).
    pub fn meets_2x(&self) -> bool {
        self.objective_match() && self.call_ratio() >= 2.0
    }
}

/// Ten light DSS tenants with mixed CPU/memory appetites (proportional
/// memory policy, so both resource axes matter). `limits[i]` is tenant
/// `i`'s degradation limit (`INFINITY` = unconstrained).
fn c2f_advisor_with_limits(limits: &[f64; 10]) -> VirtualizationDesignAdvisor {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    let mix: [(usize, f64); 10] = [
        (18, 3.0),
        (6, 1.0),
        (7, 2.0),
        (16, 1.0),
        (21, 2.0),
        (1, 1.0),
        (18, 1.0),
        (7, 4.0),
        (6, 3.0),
        (16, 2.0),
    ];
    for (i, &(q, count)) in mix.iter().enumerate() {
        let w = vda_workloads::tpch::query_workload(q, count).named(format!("T{i}-Q{q}"));
        let qos = if limits[i].is_finite() {
            vda_core::problem::QoS::with_limit(limits[i])
        } else {
            vda_core::problem::QoS::default()
        };
        adv.add_tenant(
            Tenant::new(format!("T{i}"), engine.clone(), cat.clone(), w)
                .expect("bench workloads bind"),
            qos,
        );
    }
    adv.calibrate();
    adv
}

fn c2f_advisor() -> VirtualizationDesignAdvisor {
    c2f_advisor_with_limits(&[f64::INFINITY; 10])
}

/// Disk-bandwidth shares the 3-axis scenario calibrates the what-if
/// estimators at (the multiplier fit over `1/disk_share`).
pub const DISK_CALIBRATION_LEVELS: [f64; 3] = [0.25, 0.5, 1.0];

/// Five DSS tenants with mixed CPU / I/O appetites for the 3-axis
/// scenario: scan-bound tenants (Q6) want disk bandwidth, Q18 wants
/// CPU, the rest sit in between — so all three axes genuinely trade
/// off. The advisor calibrates the disk axis
/// ([`DISK_CALIBRATION_LEVELS`]) so the estimators *price* it.
fn c2f_advisor_3axis() -> VirtualizationDesignAdvisor {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    adv.set_calibration_config(CalibrationConfig::with_disk_levels(
        DISK_CALIBRATION_LEVELS.to_vec(),
    ));
    let mix: [(usize, f64); 5] = [(18, 3.0), (6, 4.0), (7, 2.0), (21, 2.0), (16, 1.0)];
    for (i, &(q, count)) in mix.iter().enumerate() {
        let w = vda_workloads::tpch::query_workload(q, count).named(format!("T{i}-Q{q}"));
        adv.add_tenant(
            Tenant::new(format!("T{i}"), engine.clone(), cat.clone(), w)
                .expect("bench workloads bind"),
            vda_core::problem::QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

/// Degradation limits of the finite-limit scenario: four constrained
/// tenants, each limit *below* the tenant's degradation at the
/// unconstrained optimum (5.3×/9.9×/7.0×/6.1× respectively), so the
/// limit boundary genuinely moves the optimum — yet loose enough that
/// the ten limits stay jointly feasible.
pub const LIMITED_SCENARIO_LIMITS: [f64; 10] = [
    4.0,
    f64::INFINITY,
    8.0,
    f64::INFINITY,
    6.0,
    f64::INFINITY,
    f64::INFINITY,
    5.0,
    f64::INFINITY,
    f64::INFINITY,
];

/// One full-vs-coarse-to-fine comparison on cold caches: the shared
/// measurement protocol of every c2f section (the advisor/space pair
/// is the only thing that varies between them). Returns the
/// measurement plus both search results (the limited section also
/// needs the limit verdicts).
fn measure_c2f_pair(
    adv: &VirtualizationDesignAdvisor,
    space: &SearchSpace,
) -> (C2fMeasurement, SearchResult, SearchResult) {
    let qos = adv.qos();
    let n = adv.tenant_count();
    let options = SearchOptions::default();

    let full_models = cold_estimators(adv);
    let t0 = Instant::now();
    let full = exhaustive_search_with(space, qos, &full_models, &options);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let full_acct = CostAccounting::tally(&full_models);

    let c2f_opts = CoarseToFineOptions::auto(space, n);
    let c2f_models = cold_estimators(adv);
    let t1 = Instant::now();
    let c2f = coarse_to_fine_search_with(space, qos, &c2f_models, &c2f_opts, &options);
    let c2f_ms = t1.elapsed().as_secs_f64() * 1e3;
    let c2f_acct = CostAccounting::tally(&c2f_models);

    let m = C2fMeasurement {
        workloads: n,
        delta: space.delta_for(Resource::Cpu),
        coarse_deltas: c2f_opts.coarse_deltas,
        full_ms,
        c2f_ms,
        full_optimizer_calls: full_acct.optimizer_calls,
        c2f_optimizer_calls: c2f_acct.optimizer_calls,
        full_weighted_cost: full.weighted_cost,
        c2f_weighted_cost: c2f.weighted_cost,
    };
    (m, full, c2f)
}

/// Measure coarse-to-fine against the full-grid DP (one run each; the
/// gated quantities — optimizer calls, objectives — are deterministic).
pub fn measure_c2f() -> C2fMeasurement {
    let adv = c2f_advisor();
    let mut space = SearchSpace::cpu_and_memory();
    space.set_delta(0.01);
    measure_c2f_pair(&adv, &space).0
}

/// Measure coarse-to-fine against the 3-D full-grid DP on the
/// CPU + memory + disk scenario (one run each; the gated quantities —
/// optimizer calls, objectives — are deterministic).
pub fn measure_c2f_3axis() -> C2fMeasurement {
    let adv = c2f_advisor_3axis();
    let space = SearchSpace::cpu_memory_disk(); // δ = 0.05 per axis
    measure_c2f_pair(&adv, &space).0
}

/// The finite-limit counterpart of [`C2fMeasurement`]: same N = 10,
/// δ = 0.01, CPU+memory scenario, but with the
/// [`LIMITED_SCENARIO_LIMITS`] degradation limits in force — the
/// regime where coarse-to-fine used to silently degrade to the full
/// grid.
#[derive(Debug, Clone)]
pub struct C2fLimitedMeasurement {
    /// The base comparison (calls, objectives, wall times).
    pub base: C2fMeasurement,
    /// The configured degradation limits (`INFINITY` = none).
    pub degradation_limits: Vec<f64>,
    /// Per-tenant limit verdicts of the full-grid DP.
    pub full_limits_met: Vec<bool>,
    /// Whether coarse-to-fine reported identical limit verdicts.
    pub limits_match: bool,
}

impl C2fLimitedMeasurement {
    /// The acceptance bar: identical objective *and* limit verdicts,
    /// ≥ 3× fewer optimizer calls.
    pub fn meets_3x(&self) -> bool {
        self.base.objective_match() && self.limits_match && self.base.call_ratio() >= 3.0
    }
}

/// Measure the limit-aware coarse-to-fine path against the full-grid
/// DP on the finite-limit scenario (one run each; the gated quantities
/// — optimizer calls, objectives, limit verdicts — are deterministic).
pub fn measure_c2f_limited() -> C2fLimitedMeasurement {
    let adv = c2f_advisor_with_limits(&LIMITED_SCENARIO_LIMITS);
    let mut space = SearchSpace::cpu_and_memory();
    space.set_delta(0.01);
    let (base, full, c2f) = measure_c2f_pair(&adv, &space);
    C2fLimitedMeasurement {
        base,
        degradation_limits: LIMITED_SCENARIO_LIMITS.to_vec(),
        full_limits_met: full.limits_met.clone(),
        limits_match: c2f.limits_met == full.limits_met,
    }
}

/// The whole experiment's measurements.
#[derive(Debug, Clone)]
pub struct EnumerationBench {
    /// Serial-vs-parallel per algorithm (5 workloads, CPU-only).
    pub algos: Vec<AlgoMeasurement>,
    /// Coarse-to-fine vs full grid (10 workloads, CPU+memory, δ 0.01).
    pub c2f: C2fMeasurement,
    /// The same comparison under finite degradation limits.
    pub c2f_limited: C2fLimitedMeasurement,
    /// The third axis opened: coarse-to-fine vs the 3-D full grid
    /// (5 workloads, CPU+memory+disk, δ 0.05).
    pub c2f_3axis: C2fMeasurement,
}

/// Run the measurements (5 workloads CPU-only serial-vs-parallel, plus
/// the N = 10 coarse-to-fine comparisons with and without limits).
pub fn measurements() -> EnumerationBench {
    let adv = bench_advisor();
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);
    EnumerationBench {
        algos: vec![
            measure(&adv, &space, "greedy", false),
            measure(&adv, &space, "exhaustive", true),
        ],
        c2f: measure_c2f(),
        c2f_limited: measure_c2f_limited(),
        c2f_3axis: measure_c2f_3axis(),
    }
}

/// Measure and render as a report.
pub fn run() -> Report {
    run_from(measurements())
}

/// Render existing measurements as a report.
pub fn run_from(bench: EnumerationBench) -> Report {
    let ms = &bench.algos;
    let mut report = Report::new(
        "enumbench",
        "Enumeration perf: serial vs parallel, coarse-to-fine vs full grid",
    );
    let mut table = Table::new(vec![
        "algorithm",
        "serial ms",
        "parallel ms",
        "speedup",
        "optimizer calls",
        "cache hits",
        "identical",
    ]);
    for m in ms {
        table.row(vec![
            m.name.to_string(),
            fmt_f(m.serial_ms, 1),
            fmt_f(m.parallel_ms, 1),
            format!("{:.2}x", m.speedup()),
            m.optimizer_calls_serial.to_string(),
            m.cache_hits.to_string(),
            m.identical.to_string(),
        ]);
    }
    report.section("greedy vs exhaustive, serial vs parallel", table);

    let c2f = &bench.c2f;
    let mut c2f_table = Table::new(vec![
        "search",
        "wall ms",
        "optimizer calls",
        "weighted cost",
    ]);
    c2f_table.row(vec![
        format!("full grid (N={}, δ={})", c2f.workloads, fmt_f64(c2f.delta)),
        fmt_f(c2f.full_ms, 1),
        c2f.full_optimizer_calls.to_string(),
        fmt_f(c2f.full_weighted_cost, 6),
    ]);
    c2f_table.row(vec![
        format!("coarse-to-fine (ladder {:?})", c2f.coarse_deltas),
        fmt_f(c2f.c2f_ms, 1),
        c2f.c2f_optimizer_calls.to_string(),
        fmt_f(c2f.c2f_weighted_cost, 6),
    ]);
    report.section("coarse-to-fine vs full-grid DP", c2f_table);

    let lim = &bench.c2f_limited;
    let mut lim_table = Table::new(vec![
        "search",
        "wall ms",
        "optimizer calls",
        "weighted cost",
        "limits met",
    ]);
    let met = lim.full_limits_met.iter().filter(|&&m| m).count();
    lim_table.row(vec![
        format!(
            "full grid (N={}, δ={}, {} finite limits)",
            lim.base.workloads,
            fmt_f64(lim.base.delta),
            lim.degradation_limits
                .iter()
                .filter(|l| l.is_finite())
                .count()
        ),
        fmt_f(lim.base.full_ms, 1),
        lim.base.full_optimizer_calls.to_string(),
        fmt_f(lim.base.full_weighted_cost, 6),
        format!("{met}/{}", lim.full_limits_met.len()),
    ]);
    lim_table.row(vec![
        format!("limit-aware c2f (ladder {:?})", lim.base.coarse_deltas),
        fmt_f(lim.base.c2f_ms, 1),
        lim.base.c2f_optimizer_calls.to_string(),
        fmt_f(lim.base.c2f_weighted_cost, 6),
        if lim.limits_match {
            "identical".to_string()
        } else {
            "DIFFER".to_string()
        },
    ]);
    report.section("limit-aware coarse-to-fine vs full-grid DP", lim_table);

    let ax3 = &bench.c2f_3axis;
    let mut ax3_table = Table::new(vec![
        "search",
        "wall ms",
        "optimizer calls",
        "weighted cost",
    ]);
    ax3_table.row(vec![
        format!(
            "3-axis full grid (N={}, cpu+memory+disk, δ={})",
            ax3.workloads,
            fmt_f64(ax3.delta)
        ),
        fmt_f(ax3.full_ms, 1),
        ax3.full_optimizer_calls.to_string(),
        fmt_f(ax3.full_weighted_cost, 6),
    ]);
    ax3_table.row(vec![
        format!("3-axis coarse-to-fine (ladder {:?})", ax3.coarse_deltas),
        fmt_f(ax3.c2f_ms, 1),
        ax3.c2f_optimizer_calls.to_string(),
        fmt_f(ax3.c2f_weighted_cost, 6),
    ]);
    report.section("3-axis coarse-to-fine vs full-grid DP", ax3_table);

    let all_identical = ms.iter().all(|m| m.identical);
    let calls_match = ms
        .iter()
        .all(|m| m.optimizer_calls_serial == m.optimizer_calls_parallel);
    report.note(format!(
        "parallel results identical to serial: {all_identical}; optimizer-call counts match: {calls_match}"
    ));
    report.note(format!(
        "coarse-to-fine objective matches full grid: {}; {:.1}x fewer optimizer calls (>=5x: {})",
        c2f.objective_match(),
        c2f.call_ratio(),
        c2f.meets_5x(),
    ));
    report.note(format!(
        "under finite limits: objective match {}, limit verdicts match {}; {:.1}x fewer optimizer calls (>=3x: {})",
        lim.base.objective_match(),
        lim.limits_match,
        lim.base.call_ratio(),
        lim.meets_3x(),
    ));
    report.note(format!(
        "3-axis (cpu+memory+disk): objective match {}; {:.1}x fewer optimizer calls (>=2x: {})",
        ax3.objective_match(),
        ax3.call_ratio(),
        ax3.meets_2x(),
    ));
    report.note(format!("worker threads: {}", rayon::current_num_threads()));
    report
}

/// Serialize measurements as the `BENCH_enumeration.json` artifact.
pub fn to_json(bench: &EnumerationBench) -> String {
    let algos: Vec<String> = bench
        .algos
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"name\": \"{}\",\n",
                    "      \"serial_ms\": {:.3},\n",
                    "      \"parallel_ms\": {:.3},\n",
                    "      \"speedup\": {:.3},\n",
                    "      \"optimizer_calls_serial\": {},\n",
                    "      \"optimizer_calls_parallel\": {},\n",
                    "      \"cache_hits\": {},\n",
                    "      \"iterations\": {},\n",
                    "      \"allocations_identical\": {}\n",
                    "    }}"
                ),
                m.name,
                m.serial_ms,
                m.parallel_ms,
                m.speedup(),
                m.optimizer_calls_serial,
                m.optimizer_calls_parallel,
                m.cache_hits,
                m.iterations,
                m.identical,
            )
        })
        .collect();
    let c2f = &bench.c2f;
    let ladder: Vec<String> = c2f.coarse_deltas.iter().map(|d| fmt_f64(*d)).collect();
    let lim = &bench.c2f_limited;
    let lim_ladder: Vec<String> = lim.base.coarse_deltas.iter().map(|d| fmt_f64(*d)).collect();
    let lim_limits: Vec<String> = lim
        .degradation_limits
        .iter()
        .map(|l| {
            if l.is_finite() {
                fmt_f64(*l)
            } else {
                "null".to_string()
            }
        })
        .collect();
    let lim_met: Vec<String> = lim.full_limits_met.iter().map(|m| format!("{m}")).collect();
    let ax3 = &bench.c2f_3axis;
    let ax3_ladder: Vec<String> = ax3.coarse_deltas.iter().map(|d| fmt_f64(*d)).collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"enumeration\",\n",
            "  \"workloads\": 5,\n",
            "  \"space\": \"cpu_only\",\n",
            "  \"delta\": 0.05,\n",
            "  \"threads\": {},\n",
            "  \"algorithms\": [\n{}\n  ],\n",
            "  \"coarse_to_fine\": {{\n",
            "    \"workloads\": {},\n",
            "    \"space\": \"cpu_and_memory\",\n",
            "    \"delta\": {},\n",
            "    \"coarse_deltas\": [{}],\n",
            "    \"full_ms\": {:.3},\n",
            "    \"c2f_ms\": {:.3},\n",
            "    \"full_optimizer_calls\": {},\n",
            "    \"c2f_optimizer_calls\": {},\n",
            "    \"full_weighted_cost\": {:.9},\n",
            "    \"c2f_weighted_cost\": {:.9},\n",
            "    \"call_ratio\": {:.3},\n",
            "    \"objective_match\": {},\n",
            "    \"meets_5x\": {}\n",
            "  }},\n",
            "  \"coarse_to_fine_limited\": {{\n",
            "    \"workloads\": {},\n",
            "    \"space\": \"cpu_and_memory\",\n",
            "    \"delta\": {},\n",
            "    \"degradation_limits\": [{}],\n",
            "    \"coarse_deltas\": [{}],\n",
            "    \"full_ms\": {:.3},\n",
            "    \"c2f_ms\": {:.3},\n",
            "    \"full_optimizer_calls\": {},\n",
            "    \"c2f_optimizer_calls\": {},\n",
            "    \"full_weighted_cost\": {:.9},\n",
            "    \"c2f_weighted_cost\": {:.9},\n",
            "    \"limits_met\": [{}],\n",
            "    \"call_ratio\": {:.3},\n",
            "    \"objective_match\": {},\n",
            "    \"limits_match\": {},\n",
            "    \"meets_3x\": {}\n",
            "  }},\n",
            "  \"coarse_to_fine_3axis\": {{\n",
            "    \"workloads\": {},\n",
            "    \"space\": \"cpu_memory_disk\",\n",
            "    \"delta\": {},\n",
            "    \"disk_calibration_levels\": [{}],\n",
            "    \"coarse_deltas\": [{}],\n",
            "    \"full_ms\": {:.3},\n",
            "    \"c2f_ms\": {:.3},\n",
            "    \"full_optimizer_calls\": {},\n",
            "    \"c2f_optimizer_calls\": {},\n",
            "    \"full_weighted_cost\": {:.9},\n",
            "    \"c2f_weighted_cost\": {:.9},\n",
            "    \"call_ratio\": {:.3},\n",
            "    \"objective_match\": {},\n",
            "    \"meets_2x\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        rayon::current_num_threads(),
        algos.join(",\n"),
        c2f.workloads,
        fmt_f64(c2f.delta),
        ladder.join(", "),
        c2f.full_ms,
        c2f.c2f_ms,
        c2f.full_optimizer_calls,
        c2f.c2f_optimizer_calls,
        c2f.full_weighted_cost,
        c2f.c2f_weighted_cost,
        c2f.call_ratio(),
        c2f.objective_match(),
        c2f.meets_5x(),
        lim.base.workloads,
        fmt_f64(lim.base.delta),
        lim_limits.join(", "),
        lim_ladder.join(", "),
        lim.base.full_ms,
        lim.base.c2f_ms,
        lim.base.full_optimizer_calls,
        lim.base.c2f_optimizer_calls,
        lim.base.full_weighted_cost,
        lim.base.c2f_weighted_cost,
        lim_met.join(", "),
        lim.base.call_ratio(),
        lim.base.objective_match(),
        lim.limits_match,
        lim.meets_3x(),
        ax3.workloads,
        fmt_f64(ax3.delta),
        DISK_CALIBRATION_LEVELS
            .iter()
            .map(|d| fmt_f64(*d))
            .collect::<Vec<_>>()
            .join(", "),
        ax3_ladder.join(", "),
        ax3.full_ms,
        ax3.c2f_ms,
        ax3.full_optimizer_calls,
        ax3.c2f_optimizer_calls,
        ax3.full_weighted_cost,
        ax3.c2f_weighted_cost,
        ax3.call_ratio(),
        ax3.objective_match(),
        ax3.meets_2x(),
    )
}

/// Measure and write `BENCH_enumeration.json` to `path`.
pub fn write_json(path: &str) -> std::io::Result<EnumerationBench> {
    let bench = measurements();
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_bench() -> EnumerationBench {
        EnumerationBench {
            algos: vec![AlgoMeasurement {
                name: "greedy",
                serial_ms: 12.5,
                parallel_ms: 5.0,
                optimizer_calls_serial: 100,
                optimizer_calls_parallel: 100,
                cache_hits: 40,
                identical: true,
                iterations: 6,
            }],
            c2f: C2fMeasurement {
                workloads: 10,
                delta: 0.01,
                coarse_deltas: vec![0.05],
                full_ms: 1000.0,
                c2f_ms: 90.0,
                full_optimizer_calls: 52020,
                c2f_optimizer_calls: 4880,
                full_weighted_cost: 123.456,
                c2f_weighted_cost: 123.456,
            },
            c2f_limited: C2fLimitedMeasurement {
                base: C2fMeasurement {
                    workloads: 10,
                    delta: 0.01,
                    coarse_deltas: vec![0.05],
                    full_ms: 1100.0,
                    c2f_ms: 150.0,
                    full_optimizer_calls: 26020,
                    c2f_optimizer_calls: 7000,
                    full_weighted_cost: 130.0,
                    c2f_weighted_cost: 130.0,
                },
                degradation_limits: vec![
                    1.5,
                    f64::INFINITY,
                    2.0,
                    f64::INFINITY,
                    1.8,
                    f64::INFINITY,
                    f64::INFINITY,
                    2.5,
                    f64::INFINITY,
                    f64::INFINITY,
                ],
                full_limits_met: vec![true; 10],
                limits_match: true,
            },
            c2f_3axis: C2fMeasurement {
                workloads: 5,
                delta: 0.05,
                coarse_deltas: vec![0.1],
                full_ms: 2000.0,
                c2f_ms: 400.0,
                full_optimizer_calls: 20485,
                c2f_optimizer_calls: 6000,
                full_weighted_cost: 456.789,
                c2f_weighted_cost: 456.789,
            },
        }
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let json = to_json(&fake_bench());
        assert!(json.contains("\"experiment\": \"enumeration\""));
        assert!(json.contains("\"name\": \"greedy\""));
        assert!(json.contains("\"allocations_identical\": true"));
        assert!(json.contains("\"coarse_to_fine\""));
        assert!(json.contains("\"meets_5x\": true"));
        assert!(json.contains("\"coarse_to_fine_limited\""));
        assert!(json.contains(
            "\"degradation_limits\": [1.5, null, 2, null, 1.8, null, null, 2.5, null, null]"
        ));
        assert!(json.contains("\"limits_match\": true"));
        assert!(json.contains("\"meets_3x\": true"));
        assert!(json.contains("\"coarse_to_fine_3axis\""));
        assert!(json.contains("\"space\": \"cpu_memory_disk\""));
        assert!(json.contains("\"disk_calibration_levels\": [0.25, 0.5, 1]"));
        assert!(json.contains("\"meets_2x\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn c2f_limited_acceptance_math() {
        let lim = fake_bench().c2f_limited;
        assert!(lim.meets_3x());
        let worse_calls = C2fLimitedMeasurement {
            base: C2fMeasurement {
                c2f_optimizer_calls: 10000,
                ..lim.base.clone()
            },
            ..lim.clone()
        };
        assert!(!worse_calls.meets_3x());
        let verdicts_differ = C2fLimitedMeasurement {
            limits_match: false,
            ..lim
        };
        assert!(!verdicts_differ.meets_3x());
    }

    #[test]
    fn c2f_acceptance_math() {
        let c2f = fake_bench().c2f;
        assert!(c2f.objective_match());
        assert!((c2f.call_ratio() - 52020.0 / 4880.0).abs() < 1e-9);
        assert!(c2f.meets_5x());
        let worse = C2fMeasurement {
            c2f_optimizer_calls: 20000,
            ..c2f
        };
        assert!(!worse.meets_5x());
    }

    /// The real measurement: the acceptance bar — full-grid objective
    /// at N = 10, δ = 0.01 with ≥ 5× fewer optimizer calls — holds.
    /// Ignored by default (the full-grid DP costs ~5 s in debug
    /// builds); CI enforces the same bar in release via the
    /// bench-regression gate (`meets_5x` in `BENCH_enumeration.json`).
    /// Run explicitly with `cargo test --release -- --ignored`.
    #[test]
    #[ignore = "slow in debug; CI's release bench gate asserts the same bar"]
    fn measured_c2f_meets_acceptance_bar() {
        let c2f = measure_c2f();
        assert!(
            c2f.objective_match(),
            "objectives differ: {} vs {}",
            c2f.full_weighted_cost,
            c2f.c2f_weighted_cost
        );
        assert!(
            c2f.call_ratio() >= 5.0,
            "only {:.2}x fewer calls ({} vs {})",
            c2f.call_ratio(),
            c2f.full_optimizer_calls,
            c2f.c2f_optimizer_calls
        );
    }

    /// The 3-axis acceptance bar: on the N = 5, δ = 0.05
    /// CPU+memory+disk scenario, coarse-to-fine must match the 3-D
    /// full-grid objective with ≥ 2× fewer optimizer calls. Ignored
    /// for the same reason as above; CI's release bench gate enforces
    /// `meets_2x` via `BENCH_enumeration.json`.
    #[test]
    #[ignore = "slow in debug; CI's release bench gate asserts the same bar"]
    fn measured_c2f_3axis_meets_acceptance_bar() {
        let ax3 = measure_c2f_3axis();
        assert!(
            ax3.objective_match(),
            "objectives differ: {} vs {}",
            ax3.full_weighted_cost,
            ax3.c2f_weighted_cost
        );
        assert!(
            ax3.call_ratio() >= 2.0,
            "only {:.2}x fewer calls ({} vs {})",
            ax3.call_ratio(),
            ax3.full_optimizer_calls,
            ax3.c2f_optimizer_calls
        );
    }

    /// The finite-limit acceptance bar: on the N = 10, δ = 0.01
    /// scenario with four finite degradation limits, the limit-aware
    /// path must match the full grid's objective and limit verdicts
    /// exactly while issuing ≥ 3× fewer optimizer calls. Ignored for
    /// the same reason as above; CI's release bench gate enforces
    /// `meets_3x` via `BENCH_enumeration.json`.
    #[test]
    #[ignore = "slow in debug; CI's release bench gate asserts the same bar"]
    fn measured_c2f_limited_meets_acceptance_bar() {
        let lim = measure_c2f_limited();
        assert!(
            lim.base.objective_match(),
            "objectives differ: {} vs {}",
            lim.base.full_weighted_cost,
            lim.base.c2f_weighted_cost
        );
        assert!(lim.limits_match, "limit verdicts differ");
        assert!(
            lim.full_limits_met.iter().all(|&m| m),
            "scenario must be jointly feasible: {:?}",
            lim.full_limits_met
        );
        assert!(
            lim.base.call_ratio() >= 3.0,
            "only {:.2}x fewer calls ({} vs {})",
            lim.base.call_ratio(),
            lim.base.full_optimizer_calls,
            lim.base.c2f_optimizer_calls
        );
    }
}
