//! Diagnostic: estimated vs actual per-query costs on both engines.
//!
//! The §4 pipeline in one table: calibrated what-if estimates against
//! executor actuals for every TPC-H template at the fixed-memory
//! CPU-experiment configuration, for PgSim and Db2Sim side by side.
//! Useful for tuning and for validating the "estimates track actuals
//! for DSS" property the evaluation relies on.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::problem::Allocation;
use vda_workloads::tpch;

/// Run the diagnostic.
pub fn run() -> Report {
    let mut report = Report::new(
        "estcosts",
        "Estimated vs actual query costs at 100% CPU / fixed 512 MB (SF1)",
    );
    let cat = setups::sf(1.0);
    let alloc = Allocation::new(1.0, FIXED_512MB_SHARE);

    let mut table = Table::new(vec![
        "query",
        "pg est (s)",
        "pg act (s)",
        "pg err",
        "db2 est (s)",
        "db2 act (s)",
        "db2 err",
    ]);
    let mut max_err = [0.0_f64; 2];
    for n in 1..=22 {
        let mut row = vec![format!("Q{n}")];
        for (slot, choice) in [EngineChoice::Pg, EngineChoice::Db2].iter().enumerate() {
            let engine = setups::engine_fixed_memory(*choice);
            let adv = setups::advisor_for(&engine, &cat, vec![tpch::query_workload(n, 1.0)]);
            let est = adv.estimator(0).cost(alloc);
            let act = adv.actual_cost(0, alloc);
            let err = (est - act) / act;
            max_err[slot] = max_err[slot].max(err.abs());
            row.push(fmt_f(est, 1));
            row.push(fmt_f(act, 1));
            row.push(format!("{:+.1}%", err * 100.0));
        }
        table.row(row);
    }
    report.section("per-query estimates vs actuals", table);
    report.note(format!(
        "max |error|: pg {:.1}%, db2 {:.1}% (read-only DSS: unmodeled costs are small)",
        max_err[0] * 100.0,
        max_err[1] * 100.0
    ));

    // OLTP: the §7.8 misestimation. Estimates must *underestimate*
    // TPC-C, increasingly so at low CPU shares.
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let tpcc_cat = vda_workloads::tpcc::catalog(10);
    let w = vda_workloads::tpcc::workload(6, 8, setups::TPCC_TXNS_PER_CLIENT);
    let tenant = vda_core::tenant::Tenant::new("tpcc", engine, tpcc_cat, w).expect("binds");
    let mut adv = vda_core::advisor::VirtualizationDesignAdvisor::new(setups::testbed());
    adv.add_tenant(tenant, vda_core::problem::QoS::default());
    adv.calibrate();
    let mut oltp = Table::new(vec!["cpu share", "est (s)", "act (s)", "act/est"]);
    for &c in &[0.1, 0.3, 0.5, 1.0] {
        let a = Allocation::new(c, 0.25);
        let est = adv.estimator(0).cost(a);
        let act = adv.actual_cost(0, a);
        oltp.row(vec![
            fmt_f(c, 1),
            fmt_f(est, 1),
            fmt_f(act, 1),
            fmt_f(act / est, 2),
        ]);
    }
    report.section("TPC-C (Db2Sim, 6 warehouses x 8 clients): est vs act", oltp);
    report
}
