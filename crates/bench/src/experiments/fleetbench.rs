//! Fleet-scale control plane under a sustained event stream.
//!
//! The `BENCH_fleet.json` scenario: a 202-machine / 1000-tenant fleet
//! (200 populated machines plus two spares) across four hardware
//! classes, driven through 150 deterministic events (workload drift,
//! intensity scaling, tenant arrivals and departures, spare-machine
//! decommissions) three times over:
//!
//! * **incremental** — [`ControlPlane`] with its default warm path:
//!   per-event delta re-solves over persistent warm-start lattices and
//!   the fleet-wide probe cache;
//! * **cold** — the same events with
//!   [`ControlPlaneOptions::incremental`] off: every event invalidates
//!   all warm state and cold-starts the probe cache, the baseline the
//!   5× contract is measured against;
//! * **resumed** — the incremental plane snapshotted mid-stream
//!   (serialized through the real `FleetSnapshot` JSON format),
//!   restored into a freshly built fleet, and driven through the
//!   remaining events.
//!
//! The contracts, all gated by `check_bench` against the committed
//! baseline: every event's decision (action, re-solved machines,
//! migration, objective bits) identical between the incremental and
//! cold legs (`results_match`); the restored plane's immediate
//! re-snapshot byte-identical to the saved one (`snapshot_roundtrip`);
//! the resumed run's decision log, placements, and final objective
//! identical to the uninterrupted run (`resume_matches`); and the
//! incremental leg paying at least 5× fewer event-phase optimizer
//! calls than the cold leg (`meets_5x` — the call totals themselves
//! are deterministic and gated, unlike wall-clock). The per-event p99
//! decision latency is recorded as `p99_ms` (environment-dependent,
//! ignored by the gate).
//!
//! Every tenant's workload carries an intensity salt derived from its
//! global index, so no two tenants share a workload fingerprint: probe-cache entries are
//! then never contended across concurrently solving machines, which
//! keeps hit/miss counters and optimizer-call totals identical across
//! `RAYON_NUM_THREADS` settings (both CI matrix legs diff against the
//! same baseline).
//!
//! # The scaled batched-ingestion section
//!
//! The 202-machine scenario above stays as the fast smoke tier; the
//! `"scaled"` section of `BENCH_fleet.json` ([`SCALED`],
//! [`measure_scaled`]) stresses the batched-ingestion and
//! bounded-memory machinery at 1000 machines / 20,000 tenants, driven
//! through 500 workload-storm events three times over:
//!
//! * **per-event** — [`ControlPlane::process_event`] per event, the
//!   wave-count baseline (one re-solve wave per event);
//! * **batched** — the same events through
//!   [`ControlPlane::process_batch`] in batches of 25, coalescing
//!   same-slot touches and paying one wave per batch;
//! * **batched + capped** — the batched leg re-run with
//!   [`ControlPlaneOptions::probe_cache_capacity`] low enough that the
//!   LRU evicts live rows.
//!
//! Gated contracts: the batched leg's final placements and objective
//! bits equal the per-event leg's (`serial_equivalence` — batching
//! reorders *work*, never *state*); the capped leg's per-batch
//! decisions equal the uncapped leg's decision for decision
//! (`results_match` — eviction costs recomputation, never accuracy);
//! the batched legs dispatch strictly fewer re-solve waves
//! (`batching_cuts_waves`, with both wave counts gated exactly); and
//! the cap actually binds (`cache_bounded`: evictions observed, capped
//! resident bytes no larger than uncapped). Wall times per leg are
//! recorded but not gated. The scaled fleet has no spares and its
//! event storm takes no arrivals/departures, so every leg sees a
//! constant 20-tenants-per-machine topology; the migration threshold
//! is set high enough that reconcile never moves a tenant, which is
//! what pins `serial_equivalence` to bit-for-bit (batched
//! classification is documented last-write-wins and *may* diverge from
//! per-event classification on drift-then-revert patterns — decisions
//! may differ in wording, state may not).
//!
//! Fingerprint uniqueness at this scale is by construction rather than
//! by coincidence: construction salts are `1.0 + 1e-4·g` (distinct for
//! every global index `g < 20,000`, topping out below 3.0) and drift
//! events use intensities at 4.0 and above, so no drifted workload can
//! ever collide with a construction salt either.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, EngineChoice};
use std::time::Instant;
use vda_core::problem::{QoS, ResourceVector, SearchSpace};
use vda_core::tenant::Tenant;
use vda_core::VirtualizationDesignAdvisor;
use vda_core::{ControlPlane, ControlPlaneOptions, EventOutcome, FleetEvent, FleetSnapshot};
use vda_simdb::catalog::Catalog;
use vda_simdb::engines::Engine;
use vda_vmm::{Hypervisor, PhysicalMachine};

/// Scenario dimensions. [`FULL`] is the committed `BENCH_fleet.json`
/// scale; unit tests use a miniature with the same event recipe.
#[derive(Debug, Clone, Copy)]
pub struct FleetScale {
    /// Machines hosting tenants at construction.
    pub populated: usize,
    /// Empty spare machines, decommissioned by the first events.
    pub spares: usize,
    /// Tenants per populated machine at construction.
    pub tenants_per_machine: usize,
    /// Events in the stream.
    pub events: usize,
    /// Event index before which the incremental plane snapshots.
    pub snapshot_event: usize,
}

/// The committed-baseline scale: 202 machines (200 populated + 2
/// spares), 1000 tenants, 150 events, snapshot mid-stream. Five
/// tenants per machine keeps the automatic coarse ladder
/// ([`vda_core::CoarseToFineOptions::auto`]) non-degenerate on the
/// 20-share CPU grid, so drift events exercise warm *delta*-solves
/// over retained lattices, not just probe-cache reuse.
pub const FULL: FleetScale = FleetScale {
    populated: 200,
    spares: 2,
    tenants_per_machine: 5,
    events: 150,
    snapshot_event: 75,
};

/// Dimensions of the batched-ingestion stress scenario (the `"scaled"`
/// section — see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct BatchScale {
    /// Machines, all populated (the storm has no spares).
    pub populated: usize,
    /// Tenants per machine at construction (constant throughout: the
    /// storm carries no arrivals or departures).
    pub tenants_per_machine: usize,
    /// Events in the storm.
    pub events: usize,
    /// Events per [`ControlPlane::process_batch`] call in the batched
    /// legs (must divide `events`).
    pub batch: usize,
    /// [`ControlPlaneOptions::probe_cache_capacity`] of the capped leg
    /// (rows). Low enough that the LRU must evict live rows.
    pub probe_cache_rows: usize,
    /// [`ControlPlaneOptions::decision_log_capacity`] for every leg.
    /// Below the per-leg decision count, so the ring wraps at scale.
    pub log_horizon: usize,
}

/// The committed `"scaled"` dimensions: 1000 machines, 20,000 tenants,
/// 500 events in batches of 25.
pub const SCALED: BatchScale = BatchScale {
    populated: 1000,
    tenants_per_machine: 20,
    events: 500,
    batch: 25,
    probe_cache_rows: 120_000,
    log_horizon: 12,
};

/// Fixed memory share (and CPU `min_share`/δ) of the scaled scenario's
/// search space: 4 % each, so a machine fits 25 CPU grid shares — 20
/// resident tenants plus slack for the optimizer to shift, without the
/// degenerate everyone-gets-the-minimum grid that 20 tenants on the
/// default 5 % grid would force.
const SCALED_SHARE: f64 = 0.04;

/// Per-core clock multipliers defining the fleet's hardware classes
/// (machine `m` is `paper_testbed` with `core_ghz` scaled by entry
/// `m % 4`).
const GHZ_STEPS: [f64; 4] = [1.0, 1.25, 1.5, 2.0];

/// The mixed-DSS tenant population (same query pool as the placement
/// and dynamic scenarios): CPU-hungry Q18/Q21 and scan/memory-leaning
/// Q6/Q7/Q16.
const MIX: [(usize, f64); 10] = [
    (18, 6.0),
    (18, 1.0),
    (21, 4.0),
    (6, 2.0),
    (7, 3.0),
    (16, 1.0),
    (6, 5.0),
    (7, 1.0),
    (21, 1.0),
    (16, 3.0),
];

/// Queries cycled through by drift and arrival events.
const CYCLE: [usize; 5] = [18, 6, 21, 7, 16];

/// Degradation limit on each machine's first tenant: finite, so every
/// machine exercises the limit-aware coarse-to-fine path (the one that
/// retains a coarse lattice for delta-solves).
const FIRST_TENANT_LIMIT: f64 = 6.0;

/// Control-plane knobs for the scenario. The migration threshold and
/// recalibration surcharge are scaled down from their single-machine
/// defaults: both gate on *fleet-relative* objective gain, and no
/// single-tenant move can clear 5 % of a 100-machine objective.
fn options(incremental: bool) -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 1e-4,
        recalibration_surcharge: 1e-3,
        incremental,
        ..ControlPlaneOptions::default()
    }
}

/// Machine `m`'s hardware: the paper testbed with a per-class clock.
fn spec_for(m: usize) -> PhysicalMachine {
    let mut spec = PhysicalMachine::paper_testbed();
    spec.core_ghz *= GHZ_STEPS[m % GHZ_STEPS.len()];
    spec
}

/// Build one leg's fleet: populated machines first, spares last (so
/// decommissioning the current last machine always hits a spare).
/// Workload intensities carry a global-index salt — see the module
/// docs for why fingerprint uniqueness matters.
fn fleet(scale: &FleetScale) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let total = scale.populated + scale.spares;
    let mut machines = Vec::with_capacity(total);
    for m in 0..total {
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec_for(m)));
        if m < scale.populated {
            for s in 0..scale.tenants_per_machine {
                let (q, base) = MIX[(m + s) % MIX.len()];
                // Salted by the *global* tenant index: for fewer than
                // 1000 tenants no two (query, salted-intensity) pairs
                // coincide, so workload fingerprints are fleet-unique.
                let g = m * scale.tenants_per_machine + s;
                let mult = base * (1.0 + 0.001 * g as f64);
                let name = format!("M{m}-S{s}-Q{q}");
                let w = vda_workloads::tpch::query_workload(q, mult).named(name.clone());
                let qos = if s == 0 {
                    QoS::with_limit(FIRST_TENANT_LIMIT)
                } else {
                    QoS::default()
                };
                adv.add_tenant(
                    Tenant::new(name, engine.clone(), cat.clone(), w)
                        .expect("bench workloads bind"),
                    qos,
                );
            }
        }
        machines.push(adv);
    }
    let space = SearchSpace::cpu_only(setups::FIXED_512MB_SHARE);
    (machines, vec![space; total])
}

/// The deterministic event recipe for event `e`, generated against the
/// plane's *current* state (tenant counts and machine count shift as
/// events land, and the bit-identical contract guarantees every leg
/// sees the same state when the recorded stream is replayed).
fn next_event(
    plane: &ControlPlane,
    e: usize,
    scale: &FleetScale,
    engine: &Engine,
    cat: &Catalog,
) -> FleetEvent {
    let count = plane.machine_count();
    if e < scale.spares {
        // The spares sit at the end and nothing has migrated onto them
        // yet, so the current last machine is empty by construction.
        return FleetEvent::MachineDecommissioned { machine: count - 1 };
    }
    let occupied = |mut m: usize| {
        while plane.machine(m).tenant_count() == 0 {
            m = (m + 1) % count;
        }
        m
    };
    if e % 10 == 5 {
        let machine = occupied((e * 17) % count);
        let slot = e % plane.machine(machine).tenant_count();
        let q = CYCLE[e % CYCLE.len()];
        let workload = vda_workloads::tpch::query_workload(q, 2.0 + 0.001 * e as f64)
            .named(format!("drift-{e}-Q{q}"));
        FleetEvent::WorkloadChanged {
            machine,
            slot,
            workload,
        }
    } else if e % 25 == 7 {
        let machine = occupied((e * 11) % count);
        FleetEvent::TenantDeparted {
            machine,
            slot: plane.machine(machine).tenant_count() - 1,
        }
    } else if e % 25 == 17 {
        let machine = (e * 11) % count;
        let q = CYCLE[e % CYCLE.len()];
        let name = format!("A{e}-Q{q}");
        let w = vda_workloads::tpch::query_workload(q, 1.5 + 0.001 * e as f64).named(name.clone());
        let tenant =
            Tenant::new(name, engine.clone(), cat.clone(), w).expect("bench workloads bind");
        FleetEvent::TenantArrived {
            machine,
            tenant: Box::new(tenant),
            qos: QoS::default(),
        }
    } else {
        let machine = occupied((e * 13) % count);
        let slot = e % plane.machine(machine).tenant_count();
        let factor = if e.is_multiple_of(2) { 1.25 } else { 0.8 };
        FleetEvent::WorkloadScaled {
            machine,
            slot,
            factor,
        }
    }
}

/// Control-plane knobs for the scaled batched scenario. The migration
/// threshold is deliberately prohibitive (no reconcile move can gain
/// half the fleet objective): with migrations off and the storm free
/// of structural events, the per-event and batched legs must agree on
/// final state bit for bit, which is the `serial_equivalence` gate.
fn scaled_options(probe_cache_rows: usize, log_horizon: usize) -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 0.5,
        recalibration_surcharge: 1e-3,
        incremental: true,
        probe_cache_capacity: probe_cache_rows,
        decision_log_capacity: log_horizon,
        ..ControlPlaneOptions::default()
    }
}

/// The scaled scenario's search space: CPU-only over a 4 % grid with
/// memory fixed at 4 % per VM (see [`SCALED_SHARE`]).
fn scaled_space() -> SearchSpace {
    let mut space = SearchSpace::cpu_only(SCALED_SHARE);
    space.min_share = SCALED_SHARE;
    space.deltas = ResourceVector::splat(SCALED_SHARE);
    space
}

/// Build one scaled leg's fleet. Salts are `1.0 + 1e-4·g` over the
/// global tenant index `g`: distinct for every `g` up to 20,000, so
/// workload fingerprints are fleet-unique regardless of which query a
/// tenant drew (unlike [`fleet`], whose uniqueness argument leans on
/// the query mix and only stretches to 1000 tenants).
fn scaled_fleet(scale: &BatchScale) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let mut machines = Vec::with_capacity(scale.populated);
    for m in 0..scale.populated {
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec_for(m)));
        for s in 0..scale.tenants_per_machine {
            let (q, _) = MIX[(m + s) % MIX.len()];
            let g = m * scale.tenants_per_machine + s;
            let mult = 1.0 + 1e-4 * g as f64;
            let name = format!("S{m}-T{s}-Q{q}");
            let w = vda_workloads::tpch::query_workload(q, mult).named(name.clone());
            let qos = if s == 0 {
                QoS::with_limit(FIRST_TENANT_LIMIT)
            } else {
                QoS::default()
            };
            adv.add_tenant(
                Tenant::new(name, engine.clone(), cat.clone(), w).expect("bench workloads bind"),
                qos,
            );
        }
        machines.push(adv);
    }
    let space = scaled_space();
    (machines, vec![space; scale.populated])
}

/// The scaled storm's event `e` — a pure function of the index (no
/// plane peeks), so the same stream drives every leg whether it is
/// applied one event or 25 events at a time.
///
/// Events come in aligned groups of five on one machine, touching
/// slots `[0, 7, 14, 0, 7]` — two slots per group are touched twice,
/// so every batch coalesces a deterministic share of its events.
/// Every fourth event is a workload *change* (drift to a new query at
/// intensity `4.0 + 1e-4·e` — distinct per event, and disjoint from
/// every construction salt); the rest are intensity scalings. The
/// factors 1.21 / 0.83 are deliberately not reciprocal on the f64
/// lattice, so repeated scalings never reproduce another tenant's
/// workload fingerprint.
fn scaled_event(e: usize, scale: &BatchScale) -> FleetEvent {
    let machine = ((e / 5) * 131) % scale.populated;
    let slot = ((e % 5) % 3) * 7 % scale.tenants_per_machine;
    if e % 4 == 1 {
        let q = CYCLE[(e / 4) % CYCLE.len()];
        let workload = vda_workloads::tpch::query_workload(q, 4.0 + 1e-4 * e as f64)
            .named(format!("storm-{e}-Q{q}"));
        FleetEvent::WorkloadChanged {
            machine,
            slot,
            workload,
        }
    } else {
        FleetEvent::WorkloadScaled {
            machine,
            slot,
            factor: if e.is_multiple_of(2) { 1.21 } else { 0.83 },
        }
    }
}

/// The snapshot-time fleet topology: per machine, its hardware spec,
/// search space, and `(tenant, qos)` slots — what a restarted process
/// reconstructs before calling [`ControlPlane::restore`].
type Topology = Vec<(PhysicalMachine, SearchSpace, Vec<(Tenant, QoS)>)>;

fn topology_of(plane: &ControlPlane) -> Topology {
    (0..plane.machine_count())
        .map(|m| {
            let adv = plane.machine(m);
            let qos = adv.qos();
            let slots = (0..adv.tenant_count())
                .map(|i| (adv.tenant(i).clone(), qos[i]))
                .collect();
            (*adv.hypervisor().machine(), *plane.space(m), slots)
        })
        .collect()
}

/// Fresh *uncalibrated* advisors from a captured topology (restore
/// reinstalls the calibrations — no refitting).
fn rebuild(topology: Topology) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::with_capacity(topology.len());
    let mut spaces = Vec::with_capacity(topology.len());
    for (spec, space, slots) in topology {
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        for (tenant, qos) in slots {
            adv.add_tenant(tenant, qos);
        }
        machines.push(adv);
        spaces.push(space);
    }
    (machines, spaces)
}

/// Per-kind event tallies (from the incremental leg's decision log).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventKinds {
    /// Intensity scalings (always minor per §6.1).
    pub scaled: u64,
    /// Workload replacements classified major.
    pub changed_major: u64,
    /// Workload replacements classified minor.
    pub changed_minor: u64,
    /// Tenant arrivals.
    pub arrived: u64,
    /// Tenant departures.
    pub departed: u64,
    /// Machine decommissions.
    pub decommissioned: u64,
}

/// The fleet scenario's measurement, as emitted into `BENCH_fleet.json`.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// The scenario dimensions measured.
    pub scale: FleetScale,
    /// Pricing-class shards after construction.
    pub shards: usize,
    /// Optimizer calls paid standing the plane up (calibration probes
    /// plus the initial full-fleet solve).
    pub construction_calls: u64,
    /// Fleet objective after the initial solve (`{:.9}`-gated).
    pub initial_objective: f64,
    /// Event-phase optimizer calls, incremental leg.
    pub warm_event_calls: u64,
    /// Event-phase optimizer calls, cold leg.
    pub cold_event_calls: u64,
    /// Event tallies by kind.
    pub kinds: EventKinds,
    /// Reconcile migrations executed (incremental leg).
    pub migrations: u64,
    /// Per-machine re-solves performed (incremental leg, including
    /// construction).
    pub resolves: u64,
    /// Fleet probe-cache hits / misses (incremental leg).
    pub probe_hits: u64,
    /// See [`Self::probe_hits`].
    pub probe_misses: u64,
    /// Summed warm-start counters over the incremental leg's machines:
    /// `(cold_solves, delta_solves, lattice_reuses)`.
    pub warm_solve_stats: (u64, u64, u64),
    /// Fleet objective after the final event (`{:.9}`-gated).
    pub final_objective: f64,
    /// Size of the serialized mid-stream snapshot, bytes.
    pub snapshot_bytes: usize,
    /// Snapshot JSON parsed back equal, and the restored plane's
    /// immediate re-snapshot byte-identical to the saved document.
    pub snapshot_roundtrip: bool,
    /// Resumed run's decision log, placements, and final objective
    /// identical to the uninterrupted incremental run.
    pub resume_matches: bool,
    /// Every event's decision identical between the incremental and
    /// cold legs (action, resolved set, migration, objective bits).
    pub results_match: bool,
    /// Nearest-rank p99 of per-event decision latency, incremental leg
    /// (recorded, not gated).
    pub p99_ms: f64,
    /// Mean per-event decision latency, incremental leg.
    pub mean_ms: f64,
    /// Wall time of the incremental leg (construction + events).
    pub warm_wall_ms: f64,
    /// Wall time of the cold leg.
    pub cold_wall_ms: f64,
}

impl FleetBench {
    /// Event-phase optimizer-call ratio, cold over incremental. Unlike
    /// a wall-clock speedup this is deterministic, so it is gated.
    pub fn call_ratio(&self) -> f64 {
        self.cold_event_calls as f64 / self.warm_event_calls.max(1) as f64
    }

    /// The contract: incremental event handling pays at least 5× fewer
    /// optimizer calls than per-event cold re-solves.
    pub fn meets_5x(&self) -> bool {
        self.call_ratio() >= 5.0
    }
}

/// Run all three legs of the fleet scenario at the given scale.
///
/// Errors instead of panicking when the resume leg's load path fails
/// (snapshot missing from the stream, JSON that does not parse back,
/// or a restore-time topology mismatch).
pub fn measure_with(scale: FleetScale) -> Result<FleetBench, String> {
    assert!(
        scale.snapshot_event < scale.events,
        "snapshot must be mid-stream"
    );
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);

    // Incremental leg: drives the event stream (events reference live
    // tenant counts, and the bit-identical contract makes the recorded
    // stream valid for every other leg).
    let (machines, spaces) = fleet(&scale);
    let t0 = Instant::now();
    let mut warm = ControlPlane::new(machines, spaces, options(true));
    let construction_calls = warm.stats().optimizer_calls;
    let initial_objective = warm.objective();
    let shards = warm.shards().len();
    let mut events: Vec<FleetEvent> = Vec::with_capacity(scale.events);
    let mut warm_outcomes: Vec<EventOutcome> = Vec::with_capacity(scale.events);
    let mut snapshot = None;
    let mut topology = Vec::new();
    for e in 0..scale.events {
        if e == scale.snapshot_event {
            snapshot = Some(warm.snapshot());
            topology = topology_of(&warm);
        }
        let ev = next_event(&warm, e, &scale, &engine, &cat);
        events.push(ev.clone());
        warm_outcomes.push(warm.process_event(ev));
    }
    let warm_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_event_calls: u64 = warm_outcomes.iter().map(|o| o.optimizer_calls).sum();

    // Cold leg: identical events, warm state invalidated per event.
    let (machines, spaces) = fleet(&scale);
    let t0 = Instant::now();
    let mut cold = ControlPlane::new(machines, spaces, options(false));
    let mut results_match = true;
    let mut cold_event_calls = 0;
    for (ev, w) in events.iter().zip(&warm_outcomes) {
        let c = cold.process_event(ev.clone());
        cold_event_calls += c.optimizer_calls;
        results_match &= c.action == w.action
            && c.resolved == w.resolved
            && c.migration == w.migration
            && c.objective.to_bits() == w.objective.to_bits();
    }
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Resumed leg: restore from the serialized mid-stream snapshot and
    // replay the remaining events.
    let snapshot = snapshot.ok_or("snapshot event index beyond the end of the stream")?;
    let snap_json = snapshot.to_json();
    let parsed = FleetSnapshot::from_json(&snap_json)
        .map_err(|e| format!("mid-stream snapshot failed to parse back: {e}"))?;
    let (machines, spaces) = rebuild(topology);
    let mut resumed = ControlPlane::restore(machines, spaces, options(true), &parsed)
        .map_err(|e| format!("restore rejected the rebuilt topology: {e}"))?;
    let snapshot_roundtrip = parsed == snapshot && resumed.snapshot().to_json() == snap_json;
    for ev in &events[scale.snapshot_event..] {
        resumed.process_event(ev.clone());
    }
    let resume_matches = resumed.decision_log() == warm.decision_log()
        && resumed.placements() == warm.placements()
        && resumed.objective().to_bits() == warm.objective().to_bits();

    let mut kinds = EventKinds::default();
    for o in &warm_outcomes {
        match o.action.split(' ').next().unwrap_or("") {
            "workload-scaled" => kinds.scaled += 1,
            "workload-changed" if o.action.ends_with("(major)") => kinds.changed_major += 1,
            "workload-changed" => kinds.changed_minor += 1,
            "tenant-arrived" => kinds.arrived += 1,
            "tenant-departed" => kinds.departed += 1,
            "machine-decommissioned" => kinds.decommissioned += 1,
            other => unreachable!("unknown action {other:?}"),
        }
    }
    let stats = warm.stats();
    let mut warm_solve_stats = (0, 0, 0);
    for m in 0..warm.machine_count() {
        let (c, d, l) = warm.machine(m).warm_stats();
        warm_solve_stats.0 += c;
        warm_solve_stats.1 += d;
        warm_solve_stats.2 += l;
    }
    let latencies = warm.latencies_ms();
    let mean_ms = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;

    Ok(FleetBench {
        scale,
        shards,
        construction_calls,
        initial_objective,
        warm_event_calls,
        cold_event_calls,
        kinds,
        migrations: stats.migrations,
        resolves: stats.resolves,
        probe_hits: stats.probe_hits,
        probe_misses: stats.probe_misses,
        warm_solve_stats,
        final_objective: warm.objective(),
        snapshot_bytes: snap_json.len(),
        snapshot_roundtrip,
        resume_matches,
        results_match,
        p99_ms: warm.p99_latency_ms(),
        mean_ms,
        warm_wall_ms,
        cold_wall_ms,
    })
}

/// Run the committed-baseline scale.
pub fn measure() -> Result<FleetBench, String> {
    measure_with(FULL)
}

/// The scaled batched-ingestion measurement, as emitted into the
/// `"scaled"` section of `BENCH_fleet.json`. Everything except the
/// `*_wall_ms` fields is deterministic and gated.
#[derive(Debug, Clone)]
pub struct ScaledBench {
    /// The dimensions measured.
    pub scale: BatchScale,
    /// Pricing-class shards after construction.
    pub shards: usize,
    /// Optimizer calls standing one leg's plane up (identical across
    /// legs — the fleets are clones).
    pub construction_calls: u64,
    /// Fleet objective after the initial solve (`{:.9}`-gated).
    pub initial_objective: f64,
    /// Event-phase optimizer calls, per-event leg.
    pub per_event_calls: u64,
    /// Event-phase optimizer calls, batched uncapped leg.
    pub batched_calls: u64,
    /// Event-phase optimizer calls, batched capped leg (≥ the uncapped
    /// leg's: evicted rows are recomputed on demand).
    pub capped_calls: u64,
    /// Re-solve waves dispatched by the per-event leg (construction's
    /// initial wave plus one per event).
    pub waves_per_event: u64,
    /// Re-solve waves dispatched by the batched legs (construction
    /// plus one per batch; the capped leg must match or
    /// `results_match` goes false).
    pub waves_batched: u64,
    /// Events absorbed by same-slot coalescing across all batches
    /// (summed from the batch decisions' action strings).
    pub coalesced: u64,
    /// Ring-buffer decisions dropped by the per-event leg
    /// (`events − log_horizon`).
    pub log_dropped_per_event: u64,
    /// Decisions resident in the batched leg's ring at the end.
    pub log_len_batched: usize,
    /// Ring-buffer decisions dropped by the batched leg.
    pub log_dropped_batched: u64,
    /// Probe-cache misses, batched uncapped leg.
    pub probe_misses_uncapped: u64,
    /// Probe-cache misses, batched capped leg.
    pub probe_misses_capped: u64,
    /// Rows the capped leg's LRU evicted (the cap must bind).
    pub probe_evictions: u64,
    /// Final probe-cache resident bytes, uncapped leg (deterministic
    /// size model, not a heap measurement).
    pub probe_bytes_uncapped: u64,
    /// Final probe-cache resident bytes, capped leg.
    pub probe_bytes_capped: u64,
    /// Fleet objective after the storm (`{:.9}`-gated).
    pub final_objective: f64,
    /// Batched leg's final placements and objective bits equal the
    /// per-event leg's.
    pub serial_equivalence: bool,
    /// Capped leg's per-batch decisions (action, resolved set,
    /// migrations, objective bits) and wave count identical to the
    /// uncapped leg's.
    pub results_match: bool,
    /// Wall time of the per-event leg, construction included
    /// (recorded, not gated).
    pub per_event_wall_ms: f64,
    /// Wall time of the batched uncapped leg.
    pub batched_wall_ms: f64,
    /// Wall time of the batched capped leg.
    pub capped_wall_ms: f64,
}

impl ScaledBench {
    /// The headline contract: batching dispatches strictly fewer
    /// re-solve waves than per-event ingestion.
    pub fn batching_cuts_waves(&self) -> bool {
        self.waves_batched < self.waves_per_event
    }

    /// The bounded-memory contract held *and* bound: rows were
    /// evicted, and the capped cache never outgrew the uncapped one.
    pub fn cache_bounded(&self) -> bool {
        self.probe_evictions > 0 && self.probe_bytes_capped <= self.probe_bytes_uncapped
    }
}

/// Events a batch decision reports as coalesced, parsed back out of
/// its action string (`"batch n25 (…; 3 major, 10 coalesced)"`).
fn coalesced_in(action: &str) -> u64 {
    action
        .strip_suffix(" coalesced)")
        .and_then(|head| head.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Run all three legs of the scaled batched scenario.
pub fn measure_scaled_with(scale: BatchScale) -> ScaledBench {
    assert!(
        scale.events.is_multiple_of(scale.batch),
        "batch size must divide the event count"
    );
    let events: Vec<FleetEvent> = (0..scale.events).map(|e| scaled_event(e, &scale)).collect();

    // Per-event leg: the wave-count baseline.
    let (machines, spaces) = scaled_fleet(&scale);
    let t0 = Instant::now();
    let mut plane = ControlPlane::new(machines, spaces, scaled_options(0, scale.log_horizon));
    let construction_calls = plane.stats().optimizer_calls;
    let initial_objective = plane.objective();
    let shards = plane.shards().len();
    for ev in &events {
        plane.process_event(ev.clone());
    }
    let per_event_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let per_event_stats = plane.stats();
    let log_dropped_per_event = plane.decision_log().dropped();
    // Keep only what `serial_equivalence` needs and release the rest —
    // three live 20k-tenant planes would triple peak memory for
    // nothing.
    let per_event_placements = plane.placements().to_vec();
    let per_event_objective = plane.objective();
    drop(plane);

    // Batched leg, unbounded cache.
    let (machines, spaces) = scaled_fleet(&scale);
    let t0 = Instant::now();
    let mut plane = ControlPlane::new(machines, spaces, scaled_options(0, scale.log_horizon));
    let batched_construction = plane.stats().optimizer_calls;
    let mut batched_outcomes = Vec::with_capacity(scale.events / scale.batch);
    for chunk in events.chunks(scale.batch) {
        batched_outcomes.push(plane.process_batch(chunk));
    }
    let batched_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let batched_stats = plane.stats();
    let serial_equivalence = plane.placements() == &per_event_placements[..]
        && plane.objective().to_bits() == per_event_objective.to_bits();
    let log_len_batched = plane.decision_log().len();
    let log_dropped_batched = plane.decision_log().dropped();
    let final_objective = plane.objective();
    drop(plane);

    // Batched leg, capped cache: decisions must not move.
    let (machines, spaces) = scaled_fleet(&scale);
    let t0 = Instant::now();
    let mut plane = ControlPlane::new(
        machines,
        spaces,
        scaled_options(scale.probe_cache_rows, scale.log_horizon),
    );
    let capped_construction = plane.stats().optimizer_calls;
    let mut results_match = true;
    for (chunk, uncapped) in events.chunks(scale.batch).zip(&batched_outcomes) {
        let capped = plane.process_batch(chunk);
        results_match &= capped.action == uncapped.action
            && capped.resolved == uncapped.resolved
            && capped.migrations == uncapped.migrations
            && capped.objective.to_bits() == uncapped.objective.to_bits();
    }
    let capped_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let capped_stats = plane.stats();
    results_match &= capped_stats.waves == batched_stats.waves;

    ScaledBench {
        scale,
        shards,
        construction_calls,
        initial_objective,
        per_event_calls: per_event_stats.optimizer_calls - construction_calls,
        batched_calls: batched_stats.optimizer_calls - batched_construction,
        capped_calls: capped_stats.optimizer_calls - capped_construction,
        waves_per_event: per_event_stats.waves,
        waves_batched: batched_stats.waves,
        coalesced: batched_outcomes
            .iter()
            .map(|o| coalesced_in(&o.action))
            .sum(),
        log_dropped_per_event,
        log_len_batched,
        log_dropped_batched,
        probe_misses_uncapped: batched_stats.probe_misses,
        probe_misses_capped: capped_stats.probe_misses,
        probe_evictions: capped_stats.probe_evictions,
        probe_bytes_uncapped: batched_stats.probe_bytes,
        probe_bytes_capped: capped_stats.probe_bytes,
        final_objective,
        serial_equivalence,
        results_match,
        per_event_wall_ms,
        batched_wall_ms,
        capped_wall_ms,
    }
}

/// Run the committed scaled dimensions.
pub fn measure_scaled() -> ScaledBench {
    measure_scaled_with(SCALED)
}

/// Measure and render as a report. A failed measurement renders as an
/// error report instead of panicking.
pub fn run() -> Report {
    match measure() {
        Ok(m) => run_from(m),
        Err(e) => {
            let mut report = Report::new(
                "fleetbench",
                "Sharded control plane: 1000 tenants / 202 machines / 150 events, snapshot + resume",
            );
            let mut table = Table::new(vec!["error"]);
            table.row(vec![e]);
            report.section("measurement failed", table);
            report
        }
    }
}

/// Render an existing measurement as a report.
pub fn run_from(m: FleetBench) -> Report {
    let mut report = Report::new(
        "fleetbench",
        "Sharded control plane: 1000 tenants / 202 machines / 150 events, snapshot + resume",
    );
    let mut table = Table::new(vec!["leg", "event calls", "wall ms"]);
    table.row(vec![
        "cold".to_string(),
        m.cold_event_calls.to_string(),
        fmt_f(m.cold_wall_ms, 1),
    ]);
    table.row(vec![
        "incremental".to_string(),
        m.warm_event_calls.to_string(),
        fmt_f(m.warm_wall_ms, 1),
    ]);
    report.section("cold vs incremental event handling", table);

    let mut counters = Table::new(vec!["counter", "value"]);
    counters.row(vec!["shards".to_string(), m.shards.to_string()]);
    counters.row(vec![
        "construction calls".to_string(),
        m.construction_calls.to_string(),
    ]);
    counters.row(vec!["migrations".to_string(), m.migrations.to_string()]);
    counters.row(vec!["re-solves".to_string(), m.resolves.to_string()]);
    let (cold_solves, delta_solves, lattice_reuses) = m.warm_solve_stats;
    counters.row(vec!["cold solves".to_string(), cold_solves.to_string()]);
    counters.row(vec!["delta solves".to_string(), delta_solves.to_string()]);
    counters.row(vec![
        "lattice reuses".to_string(),
        lattice_reuses.to_string(),
    ]);
    counters.row(vec!["probe hits".to_string(), m.probe_hits.to_string()]);
    counters.row(vec!["probe misses".to_string(), m.probe_misses.to_string()]);
    counters.row(vec![
        "snapshot bytes".to_string(),
        m.snapshot_bytes.to_string(),
    ]);
    counters.row(vec!["p99 latency ms".to_string(), fmt_f(m.p99_ms, 3)]);
    counters.row(vec!["call ratio".to_string(), fmt_f(m.call_ratio(), 1)]);
    report.section("incremental-leg counters", counters);
    report.note(format!(
        "cold ≡ incremental decisions: {}; snapshot round-trips: {}; resume ≡ uninterrupted: {}; ≥5× fewer event optimizer calls: {}",
        m.results_match,
        m.snapshot_roundtrip,
        m.resume_matches,
        m.meets_5x()
    ));
    report
}

/// Serialize the measurement as the `BENCH_fleet.json` artifact.
/// Everything except the `*_ms` fields is deterministic and gated by
/// `check_bench` (including `call_ratio` — it counts optimizer calls,
/// not wall-clock).
pub fn to_json(m: &FleetBench) -> String {
    let (cold_solves, delta_solves, lattice_reuses) = m.warm_solve_stats;
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"fleetbench\",\n",
            "  \"machines\": {},\n",
            "  \"spares\": {},\n",
            "  \"tenants\": {},\n",
            "  \"hardware_classes\": {},\n",
            "  \"events\": {},\n",
            "  \"snapshot_event\": {},\n",
            "  \"space\": \"cpu_only_512mb\",\n",
            "  \"shards\": {},\n",
            "  \"warm_wall_ms\": {:.3},\n",
            "  \"cold_wall_ms\": {:.3},\n",
            "  \"p99_ms\": {:.3},\n",
            "  \"mean_latency_ms\": {:.3},\n",
            "  \"construction_optimizer_calls\": {},\n",
            "  \"event_optimizer_calls_incremental\": {},\n",
            "  \"event_optimizer_calls_cold\": {},\n",
            "  \"call_ratio\": {:.3},\n",
            "  \"event_kinds\": {{\n",
            "    \"scaled\": {},\n",
            "    \"changed_major\": {},\n",
            "    \"changed_minor\": {},\n",
            "    \"arrived\": {},\n",
            "    \"departed\": {},\n",
            "    \"decommissioned\": {}\n",
            "  }},\n",
            "  \"migrations\": {},\n",
            "  \"resolves\": {},\n",
            "  \"cold_solves\": {},\n",
            "  \"delta_solves\": {},\n",
            "  \"lattice_reuses\": {},\n",
            "  \"probe_hits\": {},\n",
            "  \"probe_misses\": {},\n",
            "  \"initial_objective\": {:.9},\n",
            "  \"final_objective\": {:.9},\n",
            "  \"snapshot_bytes\": {},\n",
            "  \"snapshot_roundtrip\": {},\n",
            "  \"resume_matches\": {},\n",
            "  \"results_match\": {},\n",
            "  \"meets_5x\": {}\n",
            "}}\n"
        ),
        m.scale.populated + m.scale.spares,
        m.scale.spares,
        m.scale.populated * m.scale.tenants_per_machine,
        GHZ_STEPS.len(),
        m.scale.events,
        m.scale.snapshot_event,
        m.shards,
        m.warm_wall_ms,
        m.cold_wall_ms,
        m.p99_ms,
        m.mean_ms,
        m.construction_calls,
        m.warm_event_calls,
        m.cold_event_calls,
        m.call_ratio(),
        m.kinds.scaled,
        m.kinds.changed_major,
        m.kinds.changed_minor,
        m.kinds.arrived,
        m.kinds.departed,
        m.kinds.decommissioned,
        m.migrations,
        m.resolves,
        cold_solves,
        delta_solves,
        lattice_reuses,
        m.probe_hits,
        m.probe_misses,
        m.initial_objective,
        m.final_objective,
        m.snapshot_bytes,
        m.snapshot_roundtrip,
        m.resume_matches,
        m.results_match,
        m.meets_5x(),
    )
}

/// The nested `"scaled"` object of `BENCH_fleet.json` (no trailing
/// comma or newline — [`full_json`] splices it into the root
/// document). Everything except the `*_wall_ms` leaves is
/// deterministic and gated by `check_bench`.
pub fn scaled_section_json(s: &ScaledBench) -> String {
    format!(
        concat!(
            "  \"scaled\": {{\n",
            "    \"machines\": {},\n",
            "    \"tenants\": {},\n",
            "    \"hardware_classes\": {},\n",
            "    \"events\": {},\n",
            "    \"batch_size\": {},\n",
            "    \"batches\": {},\n",
            "    \"space\": \"cpu_only_4pct\",\n",
            "    \"shards\": {},\n",
            "    \"probe_cache_rows\": {},\n",
            "    \"decision_log_horizon\": {},\n",
            "    \"per_event_wall_ms\": {:.3},\n",
            "    \"batched_wall_ms\": {:.3},\n",
            "    \"capped_wall_ms\": {:.3},\n",
            "    \"construction_optimizer_calls\": {},\n",
            "    \"event_optimizer_calls_per_event\": {},\n",
            "    \"event_optimizer_calls_batched\": {},\n",
            "    \"event_optimizer_calls_capped\": {},\n",
            "    \"waves_per_event\": {},\n",
            "    \"waves_batched\": {},\n",
            "    \"coalesced_events\": {},\n",
            "    \"log_dropped_per_event\": {},\n",
            "    \"log_len_batched\": {},\n",
            "    \"log_dropped_batched\": {},\n",
            "    \"probe_misses_uncapped\": {},\n",
            "    \"probe_misses_capped\": {},\n",
            "    \"probe_evictions\": {},\n",
            "    \"probe_bytes_uncapped\": {},\n",
            "    \"probe_bytes_capped\": {},\n",
            "    \"initial_objective\": {:.9},\n",
            "    \"final_objective\": {:.9},\n",
            "    \"serial_equivalence\": {},\n",
            "    \"results_match\": {},\n",
            "    \"batching_cuts_waves\": {},\n",
            "    \"cache_bounded\": {}\n",
            "  }}"
        ),
        s.scale.populated,
        s.scale.populated * s.scale.tenants_per_machine,
        GHZ_STEPS.len(),
        s.scale.events,
        s.scale.batch,
        s.scale.events / s.scale.batch,
        s.shards,
        s.scale.probe_cache_rows,
        s.scale.log_horizon,
        s.per_event_wall_ms,
        s.batched_wall_ms,
        s.capped_wall_ms,
        s.construction_calls,
        s.per_event_calls,
        s.batched_calls,
        s.capped_calls,
        s.waves_per_event,
        s.waves_batched,
        s.coalesced,
        s.log_dropped_per_event,
        s.log_len_batched,
        s.log_dropped_batched,
        s.probe_misses_uncapped,
        s.probe_misses_capped,
        s.probe_evictions,
        s.probe_bytes_uncapped,
        s.probe_bytes_capped,
        s.initial_objective,
        s.final_objective,
        s.serial_equivalence,
        s.results_match,
        s.batching_cuts_waves(),
        s.cache_bounded(),
    )
}

/// The complete `BENCH_fleet.json` document: the 202-machine smoke
/// section at the root plus the nested `"scaled"` batched section.
pub fn full_json(m: &FleetBench, s: &ScaledBench) -> String {
    let root = to_json(m);
    let head = root
        .strip_suffix("\n}\n")
        .expect("root fleet json ends with its closing brace");
    format!("{head},\n{}\n}}\n", scaled_section_json(s))
}

/// Render a scaled measurement as a report.
pub fn run_scaled_from(s: &ScaledBench) -> Report {
    let mut report = Report::new(
        "fleetbench-scaled",
        "Batched ingestion: 20,000 tenants / 1000 machines / 500 events in batches of 25",
    );
    let mut table = Table::new(vec!["leg", "event calls", "waves", "wall ms"]);
    table.row(vec![
        "per-event".to_string(),
        s.per_event_calls.to_string(),
        s.waves_per_event.to_string(),
        fmt_f(s.per_event_wall_ms, 1),
    ]);
    table.row(vec![
        "batched".to_string(),
        s.batched_calls.to_string(),
        s.waves_batched.to_string(),
        fmt_f(s.batched_wall_ms, 1),
    ]);
    table.row(vec![
        "batched+capped".to_string(),
        s.capped_calls.to_string(),
        s.waves_batched.to_string(),
        fmt_f(s.capped_wall_ms, 1),
    ]);
    report.section("per-event vs batched ingestion", table);

    let mut counters = Table::new(vec!["counter", "value"]);
    counters.row(vec![
        "coalesced events".to_string(),
        s.coalesced.to_string(),
    ]);
    counters.row(vec![
        "probe evictions (capped)".to_string(),
        s.probe_evictions.to_string(),
    ]);
    counters.row(vec![
        "probe bytes uncapped".to_string(),
        s.probe_bytes_uncapped.to_string(),
    ]);
    counters.row(vec![
        "probe bytes capped".to_string(),
        s.probe_bytes_capped.to_string(),
    ]);
    counters.row(vec![
        "ring decisions dropped (batched)".to_string(),
        s.log_dropped_batched.to_string(),
    ]);
    report.section("bounded-memory counters", counters);
    report.note(format!(
        "batched ≡ per-event state: {}; capped ≡ uncapped decisions: {}; fewer waves batched: {}; cache cap bound: {}",
        s.serial_equivalence,
        s.results_match,
        s.batching_cuts_waves(),
        s.cache_bounded()
    ));
    report
}

/// Measure both sections at full scale and write `BENCH_fleet.json` to
/// `path`.
pub fn write_json(path: &str) -> std::io::Result<(FleetBench, ScaledBench)> {
    let m = measure().map_err(std::io::Error::other)?;
    let s = measure_scaled();
    std::fs::write(path, full_json(&m, &s))?;
    Ok((m, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature scale exercising every event kind (decommission at
    /// event 0, drift at 5/15/25, departure at 7, arrival at 17) at
    /// unit-test cost.
    const TINY: FleetScale = FleetScale {
        populated: 5,
        spares: 1,
        tenants_per_machine: 3,
        events: 26,
        snapshot_event: 13,
    };

    #[test]
    fn tiny_fleet_holds_every_contract() {
        let m = measure_with(TINY).expect("tiny fleet scenario measures");
        assert!(m.results_match, "cold and incremental decisions diverged");
        assert!(m.snapshot_roundtrip, "snapshot did not round-trip");
        assert!(m.resume_matches, "resumed run diverged from uninterrupted");
        assert!(
            m.warm_event_calls < m.cold_event_calls,
            "incremental {} vs cold {}",
            m.warm_event_calls,
            m.cold_event_calls
        );
        assert_eq!(
            m.kinds.decommissioned, 1,
            "the spare must be decommissioned"
        );
        assert!(m.kinds.arrived >= 1 && m.kinds.departed >= 1);
        assert!(m.kinds.changed_major + m.kinds.changed_minor >= 1);
        assert_eq!(m.shards, 4, "four hardware classes, one space");
        assert!(
            m.warm_solve_stats.1 > 0,
            "drift events must hit the warm delta-solve path, got {:?}",
            m.warm_solve_stats
        );

        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"fleetbench\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"resume_matches\": true"));
        assert!(json.contains("\"snapshot_roundtrip\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// Miniature batched scenario: small enough for debug-mode unit
    /// tests, large enough that batches coalesce, the ring wraps, and
    /// the probe-cache cap binds.
    const TINY_SCALED: BatchScale = BatchScale {
        populated: 6,
        tenants_per_machine: 4,
        events: 40,
        batch: 10,
        probe_cache_rows: 96,
        log_horizon: 3,
    };

    #[test]
    fn tiny_batched_scenario_holds_every_contract() {
        let s = measure_scaled_with(TINY_SCALED);
        assert!(s.serial_equivalence, "batched state diverged from serial");
        assert!(s.results_match, "capped decisions diverged from uncapped");
        assert!(s.batching_cuts_waves());
        assert_eq!(s.waves_per_event, 1 + TINY_SCALED.events as u64);
        assert_eq!(
            s.waves_batched,
            1 + (TINY_SCALED.events / TINY_SCALED.batch) as u64
        );
        assert!(s.coalesced > 0, "the storm must produce same-slot touches");
        assert!(s.probe_evictions > 0, "the cache cap must bind");
        assert!(s.cache_bounded());
        assert!(
            s.probe_misses_capped >= s.probe_misses_uncapped,
            "eviction can only add misses"
        );
        assert!(
            s.batched_calls <= s.per_event_calls,
            "batched {} vs per-event {}",
            s.batched_calls,
            s.per_event_calls
        );
        assert_eq!(s.log_len_batched, TINY_SCALED.log_horizon);
        assert_eq!(
            s.log_dropped_batched,
            (TINY_SCALED.events / TINY_SCALED.batch - TINY_SCALED.log_horizon) as u64
        );
        assert_eq!(
            s.log_dropped_per_event,
            (TINY_SCALED.events - TINY_SCALED.log_horizon) as u64
        );

        let json = scaled_section_json(&s);
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"serial_equivalence\": true"));
        assert!(json.contains("\"cache_bounded\": true"));
        assert!(json.ends_with("  }"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn coalesced_counts_parse_back_out_of_action_strings() {
        assert_eq!(
            coalesced_in("batch n25 (changed 6, scaled 19; 3 major, 10 coalesced)"),
            10
        );
        assert_eq!(coalesced_in("batch n1 (scaled 1; 0 major, 0 coalesced)"), 0);
        assert_eq!(coalesced_in("workload-scaled M3 S1 x1.25 (minor)"), 0);
    }

    #[test]
    fn tenant_fingerprints_are_fleet_unique() {
        // The thread-count determinism of the gated counters rests on
        // this (see the module docs): no two tenants may share a
        // workload fingerprint.
        let (machines, _) = fleet(&TINY);
        let mut fps: Vec<u64> = machines
            .iter()
            .flat_map(|adv| (0..adv.tenant_count()).map(|i| adv.tenant(i).fingerprint()))
            .collect();
        let total = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), total, "duplicate tenant fingerprints");

        // Same property for the scaled fleet's by-construction salts.
        let (machines, _) = scaled_fleet(&TINY_SCALED);
        let mut fps: Vec<u64> = machines
            .iter()
            .flat_map(|adv| (0..adv.tenant_count()).map(|i| adv.tenant(i).fingerprint()))
            .collect();
        let total = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), total, "duplicate scaled-fleet fingerprints");
    }
}
