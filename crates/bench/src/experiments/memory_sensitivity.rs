//! Figure 18 — sensitivity to workload memory needs (§7.4).
//!
//! Db2Sim over the 10 GB TPC-H database, with the proportional memory
//! policy (70 % of free memory to the buffer pool, 30 % to the sort
//! heap). Units: `B` = 1×Q7 (memory-sensitive: its big aggregation
//! spills below a sort-heap threshold) and `D` = k×Q16
//! (memory-insensitive), balanced at 100 % memory.
//! `W7 = 5B+5D` vs `W8 = kB+(10−k)D`: as k grows, W8 becomes more
//! memory-intensive and the advisor gives it more memory.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use vda_core::problem::SearchSpace;

/// Run the experiment.
pub fn run() -> Report {
    let mut report = Report::new(
        "fig18",
        "Varying memory intensity (Db2Sim, SF10): W7=5B+5D vs W8=kB+(10-k)D",
    );
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(10.0);
    let (b, d) = setups::memory_units(&engine, &cat);
    report.note(format!(
        "balanced units: B = 1 x Q7, D = {:.0} x Q16",
        d.workload.total_statements()
    ));

    let space = SearchSpace::memory_only(0.5);
    let mut table = Table::new(vec!["k", "memory to W8", "est improvement"]);
    let mut shares = Vec::new();
    for k in 0..=10 {
        let w7 = b.compose(5.0, &d, 5.0);
        let w8 = b.compose(k as f64, &d, (10 - k) as f64);
        let adv = setups::advisor_for(&engine, &cat, vec![w7, w8]);
        let rec = adv.recommend(&space);
        let imp = adv.estimated_improvement(&space, &rec.result.allocations);
        shares.push(rec.result.allocations[1].memory());
        table.row(vec![
            k.to_string(),
            fmt_f(rec.result.allocations[1].memory(), 2),
            fmt_pct(imp),
        ]);
    }
    report.section("allocation and improvement vs k", table);
    report.note(format!(
        "memory to W8 non-decreasing in k: {}",
        shares.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    ));
    report.note(format!(
        "W8 at or below half for small k ({:.2} at k=0), above for large k ({:.2} at k=10) \
         (paper: advisor detects W8 becoming more memory-intensive)",
        shares[0], shares[10]
    ));
    report
}
