//! One module per paper artifact (figure/table), plus diagnostics.
//!
//! Every experiment is a `fn run() -> Report` printing the same
//! rows/series the paper's figure plots, with notes asserting the
//! qualitative claims ("who wins, by roughly what factor, where the
//! crossovers fall").

pub mod ablation;
pub mod adaptbench;
pub mod calibration_figs;
pub mod cpu_sensitivity;
pub mod dynamic_mgmt;
pub mod dynbench;
pub mod enumeration;
pub mod estcosts;
pub mod fleetbench;
pub mod memory_sensitivity;
pub mod motivating;
pub mod multi_resource;
pub mod placement;
pub mod profiles;
pub mod qos;
pub mod random_workloads;
pub mod refinement;
pub mod sec72_costs;
pub mod surface;
pub mod tables;

use crate::harness::Report;

/// All experiment ids with their runners, in paper order.
#[allow(clippy::type_complexity)] // id → runner table
pub fn registry() -> Vec<(&'static str, fn() -> Report)> {
    vec![
        ("profiles", profiles::run as fn() -> Report),
        ("estcosts", estcosts::run),
        ("fig2", motivating::run),
        ("fig5", calibration_figs::run_fig5),
        ("fig6", calibration_figs::run_fig6),
        ("fig7", calibration_figs::run_fig7),
        ("fig8", calibration_figs::run_fig8),
        ("fig9", surface::run_fig9),
        ("fig10", surface::run_fig10),
        ("fig12", cpu_sensitivity::run_fig12),
        ("fig13", cpu_sensitivity::run_fig13),
        ("fig14", cpu_sensitivity::run_fig14),
        ("fig15", cpu_sensitivity::run_fig15),
        ("fig16", cpu_sensitivity::run_fig16),
        ("fig17", cpu_sensitivity::run_fig17),
        ("fig18", memory_sensitivity::run),
        ("fig19", qos::run_fig19),
        ("fig20", qos::run_fig20),
        ("fig21", random_workloads::run_fig21),
        ("fig22", random_workloads::run_fig22),
        ("fig23", random_workloads::run_fig23),
        ("fig24", random_workloads::run_fig24),
        ("fig25", multi_resource::run_fig25_26),
        ("fig27", multi_resource::run_fig27),
        ("fig28", refinement::run_fig28),
        ("fig29", refinement::run_fig29),
        ("fig30", refinement::run_fig30),
        ("fig31", refinement::run_fig31),
        ("fig32", refinement::run_fig32_33),
        ("fig34", refinement::run_fig34),
        ("fig35", dynamic_mgmt::run_fig35),
        ("fig36", dynamic_mgmt::run_fig36),
        ("tab2", tables::run_tab2),
        ("tab3", tables::run_tab3),
        ("sec72", sec72_costs::run),
        ("ablation", ablation::run),
        ("adaptbench", adaptbench::run),
        ("enumbench", enumeration::run),
        ("dynbench", dynbench::run),
        ("fleetbench", fleetbench::run),
        ("placement", placement::run),
        ("placement-het", placement::run_heterogeneous),
    ]
}

/// Run one experiment by id.
pub fn run_by_id(id: &str) -> Option<Report> {
    registry()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f())
}
