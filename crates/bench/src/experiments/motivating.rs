//! Figure 2 — the motivating example (§1).
//!
//! Two VMs on one server: PostgreSQL running 1×Q17 and DB2 running
//! 1×Q18, both over 10 GB TPC-H databases. Starting from the default
//! 50 %/50 % split, the advisor recommends shifting most of the CPU
//! and memory to the DB2 VM (the paper recommends 15 %/20 % CPU/memory
//! for PostgreSQL and 85 %/80 % for DB2): the PostgreSQL workload is
//! I/O-bound in this environment and barely degrades, while the DB2
//! workload is CPU-bound and speeds up massively, for an overall
//! improvement around 24 %.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups;
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_workloads::tpch;

/// Run the experiment.
pub fn run() -> Report {
    let mut report = Report::new(
        "fig2",
        "Motivating example: PostgreSQL 1xQ17 vs DB2 1xQ18 on 10 GB TPC-H",
    );
    let cat = setups::sf(10.0);
    let pg = Tenant::new(
        "postgresql-Q17",
        setups::EngineChoice::Pg.engine(),
        cat.clone(),
        tpch::query_workload(17, 1.0),
    )
    .expect("Q17 binds");
    let db2 = Tenant::new(
        "db2-Q18",
        setups::EngineChoice::Db2.engine(),
        cat,
        tpch::query_workload(18, 1.0),
    )
    .expect("Q18 binds");
    let adv = setups::advisor_from_tenants(vec![(pg, QoS::default()), (db2, QoS::default())]);

    let space = SearchSpace::cpu_and_memory();
    let rec = adv.recommend(&space);
    let default = adv.default_allocations(&space);

    let mut alloc_table = Table::new(vec!["VM", "CPU share", "memory share"]);
    for (name, a) in [
        ("postgresql-Q17", rec.result.allocations[0]),
        ("db2-Q18", rec.result.allocations[1]),
    ] {
        alloc_table.row(vec![
            name.to_string(),
            fmt_f(a.cpu(), 2),
            fmt_f(a.memory(), 2),
        ]);
    }
    report.section("recommended configuration", alloc_table);

    let mut rt = Table::new(vec!["workload", "default (s)", "recommended (s)", "change"]);
    let mut t_def = 0.0;
    let mut t_rec = 0.0;
    for (i, name) in ["postgresql-Q17", "db2-Q18"].iter().enumerate() {
        let d = adv.actual_cost(i, default[i]);
        let r = adv.actual_cost(i, rec.result.allocations[i]);
        t_def += d;
        t_rec += r;
        rt.row(vec![
            name.to_string(),
            fmt_f(d, 0),
            fmt_f(r, 0),
            fmt_pct((d - r) / d),
        ]);
    }
    rt.row(vec![
        "TOTAL".to_string(),
        fmt_f(t_def, 0),
        fmt_f(t_rec, 0),
        fmt_pct((t_def - t_rec) / t_def),
    ]);
    report.section("actual execution times (Fig. 2)", rt);

    let pg_alloc = rec.result.allocations[0];
    let db2_alloc = rec.result.allocations[1];
    report.note(format!(
        "paper: pg gets 15% CPU / 20% memory; measured: {:.0}% / {:.0}%",
        pg_alloc.cpu() * 100.0,
        pg_alloc.memory() * 100.0
    ));
    report.note(format!(
        "CPU direction matches the paper (db2 wins CPU: {}); the memory split differs \
         by design: our simulated Q17 runs as an index-probe storm whose heap fetches \
         benefit from cache residency, while the paper's PostgreSQL plan was scan-bound \
         and memory-insensitive (see EXPERIMENTS.md)",
        db2_alloc.cpu() > pg_alloc.cpu(),
    ));
    report.note(format!(
        "overall improvement {} (paper: ~24%)",
        fmt_pct((t_def - t_rec) / t_def)
    ));
    report
}
