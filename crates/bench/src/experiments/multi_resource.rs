//! Figures 25–27 — allocating CPU and memory together (§7.7).
//!
//! Db2Sim over two databases: the memory/CPU-rich unit is one Q7 plus
//! one Q21 on SF10, the other unit is k×Q18 on SF1 (counts balanced at
//! full allocation). Ten random workloads of up to 10 units each; for
//! N = 2..10 the advisor allocates both resources jointly.
//!
//! * Fig. 25: CPU allocations keep their relative order as workloads
//!   are introduced.
//! * Fig. 26: memory allocations do NOT always keep their order — the
//!   memory cost model is piecewise, not linear.
//! * Fig. 27: the advisor's actual improvement tracks the actual-cost
//!   optimum.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use rand::Rng;
use vda_core::advisor::VirtualizationDesignAdvisor;
use vda_core::problem::{QoS, Resource, SearchSpace};
use vda_core::tenant::Tenant;
use vda_workloads::{random, tpch, Workload, WorkloadStatement};

fn space() -> SearchSpace {
    SearchSpace::cpu_and_memory()
}

/// Build the N-tenant advisor for this experiment. Workloads 0,2,4,…
/// run the SF10 unit mix, workloads 1,3,5,… the SF1 unit mix, so both
/// database sizes are always present.
fn advisor(n: usize) -> VirtualizationDesignAdvisor {
    let engine = EngineChoice::Db2.engine();
    let sf10 = setups::sf(10.0);
    let sf1 = setups::sf(1.0);

    // Unit definitions per §7.7, balanced at full allocation.
    let mut unit10 = Workload::new("u10");
    unit10.push(WorkloadStatement::dss(tpch::query(7), 1.0));
    unit10.push(WorkloadStatement::dss(tpch::query(21), 1.0));
    let at = vda_core::problem::Allocation::full();
    let unit10_cost = setups::full_allocation_cost(&engine, &sf10, &unit10, at);
    let q18_cost = setups::full_allocation_cost(&engine, &sf1, &tpch::query_workload(18, 1.0), at);
    let copies = (unit10_cost / q18_cost).max(1.0).round();

    let mut rng = random::rng(0xF1625);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    for i in 0..n {
        let units = rng.random_range(1..=10u32) as f64;
        let (cat, mut w) = if i % 2 == 0 {
            let mut w = Workload::new(format!("W{i}-sf10"));
            w.merge_scaled(&unit10, units);
            (sf10.clone(), w)
        } else {
            let mut w = Workload::new(format!("W{i}-sf1"));
            w.merge_scaled(&tpch::query_workload(18, copies), units);
            (sf1.clone(), w)
        };
        w.name = format!("W{i}");
        adv.add_tenant(
            Tenant::new(format!("W{i}"), engine.clone(), cat, w).expect("workloads bind"),
            QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

fn sweep(resource: Resource) -> (Table, Vec<Vec<f64>>) {
    let mut table = Table::new(
        std::iter::once("N".to_string())
            .chain((0..10).map(|i| format!("W{i}")))
            .collect::<Vec<_>>(),
    );
    let mut all = Vec::new();
    for n in 2..=10 {
        let adv = advisor(n);
        let rec = adv.recommend(&space());
        let mut row = vec![n.to_string()];
        let mut shares = Vec::new();
        for i in 0..10 {
            if i < n {
                row.push(fmt_f(rec.result.allocations[i].get(resource), 2));
                shares.push(rec.result.allocations[i].get(resource));
            } else {
                row.push(String::new());
            }
        }
        table.row(row);
        all.push(shares);
    }
    (table, all)
}

fn order_stability(all: &[Vec<f64>]) -> f64 {
    let mut stable = 0.0;
    let mut total = 0.0;
    for w in all.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for i in 0..prev.len() {
            for j in (i + 1)..prev.len() {
                total += 1.0;
                if (prev[i] >= prev[j]) == (next[i] >= next[j]) {
                    stable += 1.0;
                }
            }
        }
    }
    if total > 0.0 {
        stable / total
    } else {
        1.0
    }
}

/// Figs. 25 & 26 — CPU and memory allocations with M = 2.
pub fn run_fig25_26() -> Report {
    let mut report = Report::new(
        "fig25",
        "CPU and memory allocation for N workloads, M=2 (Db2Sim, SF10+SF1)",
    );
    let (cpu_table, cpu_all) = sweep(Resource::Cpu);
    report.section("Fig. 25: CPU share per workload", cpu_table);
    let (mem_table, mem_all) = sweep(Resource::Memory);
    report.section("Fig. 26: memory share per workload", mem_table);
    let cpu_stab = order_stability(&cpu_all);
    let mem_stab = order_stability(&mem_all);
    report.note(format!(
        "CPU share-order stability {:.0}% vs memory {:.0}% (paper: CPU order preserved, \
         memory order 'not always preserved' because the memory model is nonlinear)",
        cpu_stab * 100.0,
        mem_stab * 100.0
    ));
    report
}

/// Fig. 27 — advisor vs optimal actual improvement with M = 2.
pub fn run_fig27() -> Report {
    let mut report = Report::new(
        "fig27",
        "Actual improvement, M=2: advisor vs optimal (Db2Sim, SF10+SF1)",
    );
    let mut table = Table::new(vec!["N", "advisor improvement", "optimal improvement"]);
    let mut gaps = Vec::new();
    for n in 2..=10 {
        let adv = advisor(n);
        let rec = adv.recommend(&space());
        let adv_imp = adv.actual_improvement(&space(), &rec.result.allocations);
        let optimal = adv.optimal_actual(&space());
        let opt_imp = adv.actual_improvement(&space(), &optimal.allocations);
        gaps.push(opt_imp - adv_imp);
        table.row(vec![n.to_string(), fmt_pct(adv_imp), fmt_pct(opt_imp)]);
    }
    report.section("improvement over the default 1/N allocation", table);
    report.note(format!(
        "max gap to optimal: {:.1} percentage points",
        gaps.iter().cloned().fold(0.0_f64, f64::max) * 100.0
    ));
    report
}
