//! Fleet placement: N tenants over K machines (beyond the paper).
//!
//! The paper stops at N = 10 tenants on one machine; the fleet layer
//! decides *which* tenant lands on *which* machine before the
//! per-machine advisor configures it. This scenario places ten mixed
//! DSS tenants on three identical machines (CPU + memory jointly) and
//! compares the placer — marginal-benefit bin-packing plus
//! swap/migrate local search, greedy per-machine inner solves —
//! against naive round-robin placement. [`write_json`] emits the
//! deterministic numbers (assignment, objectives, optimizer calls,
//! move/solve counts) as `BENCH_placement.json`; CI diffs them against
//! the committed baseline and fails on regression.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, cold_estimators, EngineChoice};
use std::time::Instant;
use vda_core::metrics::CostAccounting;
use vda_core::placement::{
    assignment_objective, assignment_objective_heterogeneous, place_tenants,
    place_tenants_heterogeneous, FleetOptions, MachineSpec, PlacementResult,
};
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_core::VirtualizationDesignAdvisor;

/// Machines in the fleet scenario.
pub const MACHINES: usize = 3;

/// Big (reference-sized) machines in the heterogeneous scenario.
pub const HET_BIG: usize = 2;
/// Small machines in the heterogeneous scenario.
pub const HET_SMALL: usize = 2;
/// The small machines' CPU and memory capacity relative to the big
/// ones.
pub const HET_SMALL_SCALE: f64 = 0.5;

/// The placement measurement: the placer's answer plus the round-robin
/// baseline, with optimizer-call accounting.
#[derive(Debug, Clone)]
pub struct PlacementMeasurement {
    /// Tenant count.
    pub workloads: usize,
    /// Machine count.
    pub machines: usize,
    /// The placer's result.
    pub result: PlacementResult,
    /// Round-robin fleet objective (same pricing).
    pub round_robin_objective: f64,
    /// Wall time of the placement run, milliseconds.
    pub wall_ms: f64,
    /// Optimizer calls the placement run issued (cold caches).
    pub optimizer_calls: u64,
    /// Per-tenant names, for the report.
    pub tenant_names: Vec<String>,
}

impl PlacementMeasurement {
    /// Relative improvement of the placer over round-robin.
    pub fn improvement(&self) -> f64 {
        (self.round_robin_objective - self.result.objective) / self.round_robin_objective
    }
}

/// Ten mixed DSS tenants: CPU-hungry (Q18/Q21), scan/memory-leaning
/// (Q6/Q7/Q16), and a couple of heavyweights, so machines genuinely
/// differ in attractiveness.
fn fleet_advisor() -> VirtualizationDesignAdvisor {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(1.0);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    let mix: [(usize, f64); 10] = [
        (18, 6.0),
        (18, 1.0),
        (21, 4.0),
        (6, 2.0),
        (7, 3.0),
        (16, 1.0),
        (6, 5.0),
        (7, 1.0),
        (21, 1.0),
        (16, 3.0),
    ];
    for (i, &(q, count)) in mix.iter().enumerate() {
        let w = vda_workloads::tpch::query_workload(q, count).named(format!("T{i}-Q{q}"));
        adv.add_tenant(
            Tenant::new(format!("T{i}-Q{q}"), engine.clone(), cat.clone(), w)
                .expect("bench workloads bind"),
            QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

/// Run the fleet scenario.
pub fn measure() -> PlacementMeasurement {
    let adv = fleet_advisor();
    let space = SearchSpace::cpu_and_memory(); // δ = 0.05
    let qos = adv.qos();
    let n = adv.tenant_count();
    let options = FleetOptions::for_machines(MACHINES);

    let models = cold_estimators(&adv);
    let t0 = Instant::now();
    let result = place_tenants(&space, qos, &models, &options);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let optimizer_calls = CostAccounting::tally(&models).optimizer_calls;

    let round_robin: Vec<usize> = (0..n).map(|i| i % MACHINES).collect();
    let round_robin_objective = assignment_objective(&space, qos, &models, &round_robin, &options);

    PlacementMeasurement {
        workloads: n,
        machines: MACHINES,
        result,
        round_robin_objective,
        wall_ms,
        optimizer_calls,
        tenant_names: (0..n).map(|i| adv.tenant(i).name.clone()).collect(),
    }
}

/// The heterogeneous fleet measurement: heterogeneity-aware placement
/// over 2 big + 2 small machines vs the homogeneous assumption
/// (placing as if every machine were the smallest, then paying the
/// true fleet).
#[derive(Debug, Clone)]
pub struct HeterogeneousMeasurement {
    /// Tenant count.
    pub workloads: usize,
    /// The true fleet's machine specs (small machines first — the
    /// homogeneous assumption cannot see which slots are big).
    pub specs: Vec<MachineSpec>,
    /// The heterogeneity-aware placer's result.
    pub result: PlacementResult,
    /// Assignment chosen under the all-machines-are-smallest
    /// assumption.
    pub smallest_assignment: Vec<usize>,
    /// That assignment's objective priced on the TRUE fleet.
    pub smallest_objective: f64,
    /// Wall time of the heterogeneity-aware placement run, ms.
    pub wall_ms: f64,
    /// Optimizer calls the aware placement issued (cold caches).
    pub optimizer_calls: u64,
    /// Per-tenant names, for the report.
    pub tenant_names: Vec<String>,
}

impl HeterogeneousMeasurement {
    /// Relative improvement of heterogeneity-aware placement over the
    /// smallest-machine assumption.
    pub fn improvement(&self) -> f64 {
        (self.smallest_objective - self.result.objective) / self.smallest_objective
    }
}

/// The heterogeneous fleet: `HET_SMALL` half-scale machines followed
/// by `HET_BIG` reference machines, all on the same joint CPU+memory
/// δ-grid. Small machines come first so the homogeneous baseline —
/// which sees four interchangeable machines — packs its
/// most-resource-sensitive tenants onto slots that are, in truth, the
/// small ones.
fn het_specs() -> Vec<MachineSpec> {
    let space = SearchSpace::cpu_and_memory();
    let mut specs = vec![MachineSpec::scaled(space, HET_SMALL_SCALE, HET_SMALL_SCALE); HET_SMALL];
    specs.extend(vec![MachineSpec::reference(space); HET_BIG]);
    specs
}

/// Run the heterogeneous fleet scenario.
pub fn measure_heterogeneous() -> HeterogeneousMeasurement {
    let adv = fleet_advisor();
    let qos = adv.qos();
    let n = adv.tenant_count();
    let specs = het_specs();
    let options = FleetOptions::for_machines(specs.len());

    let models = cold_estimators(&adv);
    let t0 = Instant::now();
    let result = place_tenants_heterogeneous(&specs, qos, &models, &options);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let optimizer_calls = CostAccounting::tally(&models).optimizer_calls;

    // The homogeneous assumption: every machine is the smallest. Place
    // under that fiction, then pay the true fleet for the resulting
    // assignment.
    let smallest = vec![specs[0]; specs.len()];
    let blind = place_tenants_heterogeneous(&smallest, qos, &models, &options);
    let smallest_objective =
        assignment_objective_heterogeneous(&specs, qos, &models, &blind.assignment, &options);

    HeterogeneousMeasurement {
        workloads: n,
        specs,
        result,
        smallest_assignment: blind.assignment,
        smallest_objective,
        wall_ms,
        optimizer_calls,
        tenant_names: (0..n).map(|i| adv.tenant(i).name.clone()).collect(),
    }
}

/// Both placement measurements, as emitted into
/// `BENCH_placement.json`.
#[derive(Debug, Clone)]
pub struct PlacementBench {
    /// The homogeneous 10-tenants-over-3-machines scenario.
    pub homogeneous: PlacementMeasurement,
    /// The heterogeneous 2-big + 2-small scenario.
    pub heterogeneous: HeterogeneousMeasurement,
}

/// Measure and render as a report.
pub fn run() -> Report {
    run_from(measure())
}

/// Measure the heterogeneous scenario and render as a report.
pub fn run_heterogeneous() -> Report {
    run_heterogeneous_from(measure_heterogeneous())
}

/// Render the heterogeneous measurement as a report.
pub fn run_heterogeneous_from(m: HeterogeneousMeasurement) -> Report {
    let mut report = Report::new(
        "placement-heterogeneous",
        "Heterogeneous fleet: 10 tenants over 2 big + 2 small machines",
    );
    let mut table = Table::new(vec!["machine", "cpu/mem scale", "tenants", "weighted cost"]);
    for (machine, spec) in m.specs.iter().enumerate() {
        let tenants = m.result.tenants_on(machine);
        let names: Vec<&str> = tenants
            .iter()
            .map(|&i| m.tenant_names[i].as_str())
            .collect();
        let cost = match &m.result.per_machine[machine] {
            Some(r) => fmt_f(r.weighted_cost, 2),
            None => "-".to_string(),
        };
        table.row(vec![
            machine.to_string(),
            format!(
                "{}/{}",
                fmt_f(spec.scale.cpu(), 2),
                fmt_f(spec.scale.memory(), 2)
            ),
            names.join(","),
            cost,
        ]);
    }
    report.section("heterogeneity-aware placement", table);

    let mut summary = Table::new(vec!["metric", "value"]);
    summary.row(vec![
        "aware objective".to_string(),
        fmt_f(m.result.objective, 2),
    ]);
    summary.row(vec![
        "smallest-assumption objective".to_string(),
        fmt_f(m.smallest_objective, 2),
    ]);
    summary.row(vec!["improvement".to_string(), fmt_pct(m.improvement())]);
    summary.row(vec![
        "local-search moves".to_string(),
        m.result.moves.len().to_string(),
    ]);
    summary.row(vec![
        "inner solves (memoized)".to_string(),
        m.result.inner_solves.to_string(),
    ]);
    summary.row(vec![
        "optimizer calls".to_string(),
        m.optimizer_calls.to_string(),
    ]);
    summary.row(vec!["wall ms".to_string(), fmt_f(m.wall_ms, 1)]);
    report.section("aware vs smallest-machine assumption", summary);
    report.note(format!(
        "heterogeneity-aware placement beats the homogeneous assumption: {}",
        m.improvement() > 0.0
    ));
    report
}

/// Render an existing measurement as a report.
pub fn run_from(m: PlacementMeasurement) -> Report {
    let mut report = Report::new(
        "placement",
        "Fleet placement: 10 tenants over 3 machines vs round-robin",
    );
    let mut table = Table::new(vec!["machine", "tenants", "weighted cost", "cpu shares"]);
    for machine in 0..m.machines {
        let tenants = m.result.tenants_on(machine);
        let names: Vec<&str> = tenants
            .iter()
            .map(|&i| m.tenant_names[i].as_str())
            .collect();
        let (cost, shares) = match &m.result.per_machine[machine] {
            Some(r) => (
                fmt_f(r.weighted_cost, 2),
                r.allocations
                    .iter()
                    .map(|a| fmt_f(a.cpu(), 2))
                    .collect::<Vec<_>>()
                    .join("/"),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        table.row(vec![machine.to_string(), names.join(","), cost, shares]);
    }
    report.section("final placement", table);

    let mut summary = Table::new(vec!["metric", "value"]);
    summary.row(vec![
        "fleet objective".to_string(),
        fmt_f(m.result.objective, 2),
    ]);
    summary.row(vec![
        "round-robin objective".to_string(),
        fmt_f(m.round_robin_objective, 2),
    ]);
    summary.row(vec!["improvement".to_string(), fmt_pct(m.improvement())]);
    summary.row(vec![
        "local-search moves".to_string(),
        m.result.moves.len().to_string(),
    ]);
    summary.row(vec![
        "inner solves (memoized)".to_string(),
        m.result.inner_solves.to_string(),
    ]);
    summary.row(vec![
        "optimizer calls".to_string(),
        m.optimizer_calls.to_string(),
    ]);
    summary.row(vec!["wall ms".to_string(), fmt_f(m.wall_ms, 1)]);
    report.section("placer vs round-robin", summary);
    report.note(format!(
        "placement beats round-robin: {} ({} over {} machines)",
        m.improvement() > 0.0,
        m.workloads,
        m.machines
    ));
    report
}

/// Serialize both measurements as the `BENCH_placement.json`
/// artifact: the homogeneous scenario's fields at the top level (as
/// before), the heterogeneous scenario nested under
/// `"heterogeneous"`.
pub fn to_json(bench: &PlacementBench) -> String {
    let m = &bench.homogeneous;
    let assignment: Vec<String> = m.result.assignment.iter().map(usize::to_string).collect();
    let per_machine: Vec<String> = (0..m.machines)
        .map(|machine| {
            let tenants: Vec<String> = m
                .result
                .tenants_on(machine)
                .iter()
                .map(|t| t.to_string())
                .collect();
            let cost = m.result.per_machine[machine]
                .as_ref()
                .map(|r| format!("{:.9}", r.weighted_cost))
                .unwrap_or_else(|| "null".to_string());
            format!(
                concat!(
                    "    {{\n",
                    "      \"machine\": {},\n",
                    "      \"tenants\": [{}],\n",
                    "      \"weighted_cost\": {}\n",
                    "    }}"
                ),
                machine,
                tenants.join(", "),
                cost,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"placement\",\n",
            "  \"workloads\": {},\n",
            "  \"machines\": {},\n",
            "  \"space\": \"cpu_and_memory\",\n",
            "  \"delta\": 0.05,\n",
            "  \"wall_ms\": {:.3},\n",
            "  \"assignment\": [{}],\n",
            "  \"total_weighted_cost\": {:.9},\n",
            "  \"objective\": {:.9},\n",
            "  \"round_robin_objective\": {:.9},\n",
            "  \"improvement\": {:.6},\n",
            "  \"moves\": {},\n",
            "  \"inner_solves\": {},\n",
            "  \"optimizer_calls\": {},\n",
            "  \"per_machine\": [\n{}\n  ],\n",
            "{}",
            "}}\n"
        ),
        m.workloads,
        m.machines,
        m.wall_ms,
        assignment.join(", "),
        m.result.total_weighted_cost,
        m.result.objective,
        m.round_robin_objective,
        m.improvement(),
        m.result.moves.len(),
        m.result.inner_solves,
        m.optimizer_calls,
        per_machine.join(",\n"),
        heterogeneous_json(&bench.heterogeneous),
    )
}

/// The nested `"heterogeneous"` JSON section. Every field except
/// `wall_ms` is deterministic and gated by `check_bench`.
fn heterogeneous_json(m: &HeterogeneousMeasurement) -> String {
    let assignment: Vec<String> = m.result.assignment.iter().map(usize::to_string).collect();
    let smallest: Vec<String> = m.smallest_assignment.iter().map(usize::to_string).collect();
    // Both resource dimensions are gated: an asymmetric scale change
    // (cpu ≠ memory) must fail the gate too.
    let cpu_scales: Vec<String> = m
        .specs
        .iter()
        .map(|s| format!("{:.3}", s.scale.cpu()))
        .collect();
    let memory_scales: Vec<String> = m
        .specs
        .iter()
        .map(|s| format!("{:.3}", s.scale.memory()))
        .collect();
    format!(
        concat!(
            "  \"heterogeneous\": {{\n",
            "    \"workloads\": {},\n",
            "    \"machines\": {},\n",
            "    \"big_machines\": {},\n",
            "    \"small_machines\": {},\n",
            "    \"machine_scales_cpu\": [{}],\n",
            "    \"machine_scales_memory\": [{}],\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"assignment\": [{}],\n",
            "    \"total_weighted_cost\": {:.9},\n",
            "    \"objective\": {:.9},\n",
            "    \"smallest_assumption_assignment\": [{}],\n",
            "    \"smallest_assumption_objective\": {:.9},\n",
            "    \"improvement\": {:.6},\n",
            "    \"moves\": {},\n",
            "    \"inner_solves\": {},\n",
            "    \"optimizer_calls\": {},\n",
            "    \"beats_smallest_assumption\": {}\n",
            "  }}\n",
        ),
        m.workloads,
        m.specs.len(),
        HET_BIG,
        HET_SMALL,
        cpu_scales.join(", "),
        memory_scales.join(", "),
        m.wall_ms,
        assignment.join(", "),
        m.result.total_weighted_cost,
        m.result.objective,
        smallest.join(", "),
        m.smallest_objective,
        m.improvement(),
        m.result.moves.len(),
        m.result.inner_solves,
        m.optimizer_calls,
        m.improvement() > 0.0,
    )
}

/// Measure both scenarios and write `BENCH_placement.json` to `path`.
pub fn write_json(path: &str) -> std::io::Result<PlacementBench> {
    let bench = PlacementBench {
        homogeneous: measure(),
        heterogeneous: measure_heterogeneous(),
    };
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_scenario_beats_round_robin_and_is_feasible() {
        let m = measure();
        assert_eq!(m.workloads, 10);
        assert!(
            m.result.objective <= m.round_robin_objective + 1e-9,
            "placer {} vs round-robin {}",
            m.result.objective,
            m.round_robin_objective
        );
        assert!(m.optimizer_calls > 0);
        // Every machine hosts someone and stays within budget.
        for machine in 0..m.machines {
            let r = m.result.per_machine[machine]
                .as_ref()
                .expect("no machine should sit idle at N=10, K=3");
            let cpu: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
            let mem: f64 = r.allocations.iter().map(|a| a.memory()).sum();
            assert!(cpu <= 1.0 + 1e-9);
            assert!(mem <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn heterogeneous_scenario_beats_smallest_machine_assumption() {
        let m = measure_heterogeneous();
        assert_eq!(m.workloads, 10);
        assert_eq!(m.specs.len(), HET_BIG + HET_SMALL);
        assert!(
            m.result.objective < m.smallest_objective,
            "aware {} must beat the smallest-machine assumption {}",
            m.result.objective,
            m.smallest_objective
        );
        assert!(m.improvement() > 0.0);
        assert!(m.optimizer_calls > 0);
        // Every machine stays within its own budget (shares of itself).
        for machine in 0..m.specs.len() {
            if let Some(r) = &m.result.per_machine[machine] {
                let cpu: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
                let mem: f64 = r.allocations.iter().map(|a| a.memory()).sum();
                assert!(cpu <= 1.0 + 1e-9);
                assert!(mem <= 1.0 + 1e-9);
            }
        }
        // The big machines (slots 2, 3) must host more of the fleet
        // than the small ones.
        let small_load = m.result.tenants_on(0).len() + m.result.tenants_on(1).len();
        let big_load = m.result.tenants_on(2).len() + m.result.tenants_on(3).len();
        assert!(
            big_load >= small_load,
            "big machines should carry at least as many tenants: {:?}",
            m.result.assignment
        );
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let bench = PlacementBench {
            homogeneous: measure(),
            heterogeneous: measure_heterogeneous(),
        };
        let json = to_json(&bench);
        assert!(json.contains("\"experiment\": \"placement\""));
        assert!(json.contains("\"assignment\""));
        assert!(json.contains("\"per_machine\""));
        assert!(json.contains("\"heterogeneous\""));
        assert!(json.contains("\"smallest_assumption_objective\""));
        assert!(json.contains("\"beats_smallest_assumption\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
