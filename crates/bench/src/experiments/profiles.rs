//! Diagnostic: per-query resource profiles of the 22 TPC-H-like
//! templates.
//!
//! Not a paper figure, but the foundation under §7.3–7.4: the paper
//! "examined the behavior of the 22 TPC-H queries" to pick Q18 as the
//! most CPU-intensive, Q21 as the least, Q7 as memory-sensitive and
//! Q16 as insensitive. This experiment performs that examination on
//! the simulated stack under the paper's own conditions — CPU
//! sensitivity on SF1 with the fixed 512 MB memory policy (§7.3),
//! memory sensitivity on SF10 with the proportional policy (§7.4) —
//! and reports the resulting rankings.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_simdb::bind_statement;
use vda_simdb::exec::{ExecContext, Executor};
use vda_vmm::VmConfig;
use vda_workloads::tpch;

/// Run the diagnostic.
pub fn run() -> Report {
    let mut report = Report::new(
        "profiles",
        "TPC-H-like query resource profiles (diagnostic for §7.3–7.4 anchor queries)",
    );
    let hv = setups::testbed();
    let ctx = ExecContext::default();

    // --- CPU sensitivity: SF1, fixed 512 MB memory (§7.3 setup) ---
    let cat1 = tpch::catalog(1.0);
    let engine_fixed = setups::engine_fixed_memory(EngineChoice::Db2);
    let exec_fixed = Executor::new(&engine_fixed, &cat1);
    let mut cpu_table = Table::new(vec![
        "query",
        "t@100%cpu (s)",
        "cpu fraction",
        "cpu sens (t20%/t100%)",
    ]);
    let mut cpu_rank: Vec<(usize, f64)> = Vec::new();
    for n in 1..=22 {
        let q = bind_statement(&tpch::query(n), &cat1).expect("templates bind");
        let lo = exec_fixed.execute(
            &q,
            &hv.perf_for(VmConfig::new(0.2, FIXED_512MB_SHARE).unwrap()),
            &ctx,
        );
        let hi = exec_fixed.execute(
            &q,
            &hv.perf_for(VmConfig::new(1.0, FIXED_512MB_SHARE).unwrap()),
            &ctx,
        );
        let sens = lo.seconds / hi.seconds;
        cpu_rank.push((n, sens));
        cpu_table.row(vec![
            format!("Q{n}"),
            fmt_f(hi.seconds, 1),
            fmt_f(hi.cpu_seconds / hi.seconds, 3),
            fmt_f(sens, 2),
        ]);
    }
    report.section("CPU profiles (Db2Sim, SF1, fixed 512 MB)", cpu_table);

    // --- Memory sensitivity: SF10, proportional policy (§7.4 setup) ---
    let cat10 = tpch::catalog(10.0);
    let engine_prop = EngineChoice::Db2.engine();
    let exec_prop = Executor::new(&engine_prop, &cat10);
    let mut mem_table = Table::new(vec!["query", "t@90%mem (s)", "mem sens (t10%/t90%)"]);
    let mut mem_rank: Vec<(usize, f64)> = Vec::new();
    for n in 1..=22 {
        let q = bind_statement(&tpch::query(n), &cat10).expect("templates bind");
        let lo = exec_prop.execute(&q, &hv.perf_for(VmConfig::new(0.5, 0.1).unwrap()), &ctx);
        let hi = exec_prop.execute(&q, &hv.perf_for(VmConfig::new(0.5, 0.9).unwrap()), &ctx);
        let sens = lo.seconds / hi.seconds;
        mem_rank.push((n, sens));
        mem_table.row(vec![format!("Q{n}"), fmt_f(hi.seconds, 1), fmt_f(sens, 2)]);
    }
    report.section("memory profiles (Db2Sim, SF10, proportional)", mem_table);

    cpu_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    mem_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let cpu_top: Vec<usize> = cpu_rank.iter().take(5).map(|x| x.0).collect();
    let cpu_bottom: Vec<usize> = cpu_rank.iter().rev().take(5).map(|x| x.0).collect();
    let mem_top: Vec<usize> = mem_rank.iter().take(5).map(|x| x.0).collect();
    let mem_bottom: Vec<usize> = mem_rank.iter().rev().take(8).map(|x| x.0).collect();

    report.note(format!(
        "most CPU-sensitive: {cpu_top:?} (paper anchor: Q18)"
    ));
    report.note(format!(
        "least CPU-sensitive: {cpu_bottom:?} (paper anchor: Q21)"
    ));
    report.note(format!(
        "most memory-sensitive: {mem_top:?} (paper anchor: Q7)"
    ));
    report.note(format!(
        "least memory-sensitive: {mem_bottom:?} (paper anchor: Q16)"
    ));
    report.note(format!(
        "anchors hold: Q18 cpu-top5={} Q21 cpu-bottom5={} Q7 mem-top5={} Q16 mem-bottom8={}",
        cpu_top.contains(&18),
        cpu_bottom.contains(&21),
        mem_top.contains(&7),
        mem_bottom.contains(&16),
    ));
    report
}
