//! Figures 19–20 — QoS metrics: degradation limits and benefit gain
//! factors (§7.5).
//!
//! Five identical workloads `W9..W13`, each one C unit on Db2Sim. The
//! symmetric optimum is a 20 % share each; QoS settings on W9/W10 bend
//! the recommendation:
//!
//! * Fig. 19: `L9` sweeps 1.5–4.5 with `L10 = 2.5`. At `L9 = 1.5` the
//!   constraints are infeasible (the paper's advisor "was not able to
//!   meet all of the required constraints"); for looser settings both
//!   limits hold, at the price of higher degradation for W11–W13.
//! * Fig. 20: `G9` sweeps 1–10 with `G10 = 4`. W10 receives the most
//!   CPU until `G9 ≥ 5`, where W9 overtakes it.

use crate::harness::{fmt_f, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::problem::{QoS, SearchSpace};

fn space() -> SearchSpace {
    SearchSpace::cpu_only(FIXED_512MB_SHARE)
}

/// Fig. 19 — degradation limits.
pub fn run_fig19() -> Report {
    let mut report = Report::new(
        "fig19",
        "Effect of degradation limit L9 (Db2Sim): five identical 1C workloads, L10=2.5",
    );
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c, _) = setups::cpu_units(&engine, &cat);

    let mut table = Table::new(vec![
        "L9",
        "deg W9",
        "deg W10",
        "deg W11",
        "deg W12",
        "deg W13",
        "limits met",
    ]);
    let mut met_at: Vec<(f64, bool)> = Vec::new();
    let mut others_degrade_more = true;
    for &l9 in &[1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5] {
        let qos = [
            QoS::with_limit(l9),
            QoS::with_limit(2.5),
            QoS::default(),
            QoS::default(),
            QoS::default(),
        ];
        let workloads: Vec<_> = (0..5)
            .map(|i| c.times(1.0).named(format!("W{}", 9 + i)))
            .collect();
        let adv = setups::advisor_with_qos(
            &engine,
            &cat,
            workloads.into_iter().zip(qos.iter().copied()).collect(),
        );
        let rec = adv.recommend(&space());
        // Degradation = est cost at recommendation / est cost at full
        // allocation.
        let solo = space().solo_allocation();
        let mut row = vec![fmt_f(l9, 1)];
        let mut degs = [0.0; 5];
        #[allow(clippy::needless_range_loop)] // fixed five-workload sweep
        for i in 0..5 {
            let est = adv.estimator(i);
            degs[i] = rec.result.costs[i] / est.cost(solo);
            row.push(fmt_f(degs[i], 2));
        }
        met_at.push((l9, rec.result.limits_met[0] && rec.result.limits_met[1]));
        others_degrade_more &= degs[2..].iter().all(|&d| d >= degs[0] && d >= degs[1]);
        row.push(format!(
            "W9:{} W10:{}",
            rec.result.limits_met[0], rec.result.limits_met[1]
        ));
        table.row(row);
    }
    report.section("degradation per workload vs L9", table);
    report.note(format!(
        "limits met per L9: {met_at:?} (paper: infeasible at L9=1.5, met for all looser \
         settings; our simulated cost curves are shallow enough that even 1.5 is \
         attainable by starving W11-W13 — see EXPERIMENTS.md)"
    ));
    report.note(format!(
        "constrained workloads are protected at the expense of the unconstrained ones \
         in every setting: {others_degrade_more} (paper: 'at the cost of higher \
         degradation for the other workloads')"
    ));
    report
}

/// Fig. 20 — benefit gain factors.
pub fn run_fig20() -> Report {
    let mut report = Report::new(
        "fig20",
        "Effect of gain factor G9 (Db2Sim): five identical 1C workloads, G10=4",
    );
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c, _) = setups::cpu_units(&engine, &cat);

    let mut table = Table::new(vec!["G9", "CPU W9", "CPU W10", "CPU W11-13 (avg)"]);
    let mut w9_shares = Vec::new();
    let mut w10_shares = Vec::new();
    for g9 in 1..=10 {
        let qos = [
            QoS::with_gain(g9 as f64),
            QoS::with_gain(4.0),
            QoS::default(),
            QoS::default(),
            QoS::default(),
        ];
        let workloads: Vec<_> = (0..5)
            .map(|i| c.times(1.0).named(format!("W{}", 9 + i)))
            .collect();
        let adv = setups::advisor_with_qos(
            &engine,
            &cat,
            workloads.into_iter().zip(qos.iter().copied()).collect(),
        );
        let rec = adv.recommend(&space());
        let a = &rec.result.allocations;
        let rest = (a[2].cpu() + a[3].cpu() + a[4].cpu()) / 3.0;
        w9_shares.push(a[0].cpu());
        w10_shares.push(a[1].cpu());
        table.row(vec![
            g9.to_string(),
            fmt_f(a[0].cpu(), 2),
            fmt_f(a[1].cpu(), 2),
            fmt_f(rest, 2),
        ]);
    }
    report.section("CPU shares vs G9", table);
    let crossover = w9_shares
        .iter()
        .zip(&w10_shares)
        .position(|(w9, w10)| w9 >= w10)
        .map(|p| p + 1);
    report.note(format!(
        "W10 leads for small G9; W9 overtakes at G9 = {crossover:?} (paper: G9 >= 5)"
    ));
    report.note(format!(
        "W9's share is non-decreasing in G9: {}",
        w9_shares.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    ));
    report
}
