//! Figures 21–24 — CPU allocation for random workloads (§7.6).
//!
//! * Fig. 21: ten random TPC-H workloads on PgSim/SF10 (each 10–20
//!   units of either 1×Q17 or k×modified-Q18); for N = 2..10
//!   concurrent workloads the advisor's CPU split is shown per
//!   workload.
//! * Figs. 22/23: five TPC-C + five random TPC-H workloads on
//!   Db2Sim/PgSim. (These recommendations look fine by the estimates
//!   but are *wrong* — §7.8 refines them.)
//! * Fig. 24: actual improvement of the advisor vs the actual-cost
//!   optimal allocation for the Fig. 21 workloads.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use vda_core::advisor::VirtualizationDesignAdvisor;
use vda_core::problem::{QoS, SearchSpace};
use vda_core::tenant::Tenant;
use vda_workloads::random;

/// Memory share for the SF10 PostgreSQL VMs of Figs. 21/24: the paper
/// gives those VMs 6 GB ("we give the virtual machine 6GB of memory"),
/// i.e. ~73 % of the 8 GB machine. Memory is not under advisor
/// control here and the paper measures VMs individually, so the grant
/// need not be divided among the N VMs.
const MEM_SHARE: f64 = 6144.0 / 8192.0;

/// Memory share for the TPC-C + TPC-H mixes of Figs. 22/23 (mostly
/// ~1 GB databases; the paper used 512 MB VMs for those — we use a
/// uniform 2 GB grant because one tenant hosts the 10 GB database).
const MIX_MEM_SHARE: f64 = 0.25;

fn cpu_space() -> SearchSpace {
    SearchSpace::cpu_only(MEM_SHARE)
}

fn mix_space() -> SearchSpace {
    SearchSpace::cpu_only(MIX_MEM_SHARE)
}

/// The Fig. 21 workload set: PgSim on SF10.
fn fig21_advisor(n: usize) -> VirtualizationDesignAdvisor {
    let engine = setups::engine_fixed_memory(EngineChoice::Pg);
    let cat = setups::sf(10.0);
    // Balance the two unit kinds at 100 % CPU, like the paper's "66
    // copies of a modified Q18".
    let at = vda_core::problem::Allocation::new(1.0, MEM_SHARE);
    let q17_cost = setups::full_allocation_cost(
        &engine,
        &cat,
        &vda_workloads::tpch::query_workload(17, 1.0),
        at,
    );
    let mut q18m = vda_workloads::Workload::new("q18m");
    q18m.push(vda_workloads::WorkloadStatement::dss(
        vda_workloads::tpch::query18_modified(),
        1.0,
    ));
    let q18m_cost = setups::full_allocation_cost(&engine, &cat, &q18m, at);
    let copies = (q17_cost / q18m_cost).max(1.0).round();

    let mut rng = random::rng(0xF1621);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    for i in 0..n {
        let w = random::tpch_random_workload(&mut rng, i, copies);
        adv.add_tenant(
            Tenant::new(format!("W{i}"), engine.clone(), cat.clone(), w)
                .expect("random workloads bind"),
            QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

/// Shared N-sweep: for N = 2..=max, recommend CPU and tabulate shares.
fn allocation_sweep(
    adv_for: &dyn Fn(usize) -> VirtualizationDesignAdvisor,
    max_n: usize,
) -> (Table, Vec<Vec<f64>>) {
    allocation_sweep_in(adv_for, max_n, &cpu_space())
}

fn allocation_sweep_in(
    adv_for: &dyn Fn(usize) -> VirtualizationDesignAdvisor,
    max_n: usize,
    space: &SearchSpace,
) -> (Table, Vec<Vec<f64>>) {
    let mut table = Table::new(
        std::iter::once("N".to_string())
            .chain((0..max_n).map(|i| format!("W{i}")))
            .collect::<Vec<_>>(),
    );
    let mut all = Vec::new();
    for n in 2..=max_n {
        let adv = adv_for(n);
        let rec = adv.recommend(space);
        let mut row = vec![n.to_string()];
        let mut shares = Vec::new();
        for i in 0..max_n {
            if i < n {
                row.push(fmt_f(rec.result.allocations[i].cpu(), 2));
                shares.push(rec.result.allocations[i].cpu());
            } else {
                row.push(String::new());
            }
        }
        all.push(shares);
        table.row(row);
    }
    (table, all)
}

/// Rank-stability note: does the share *order* of the first workloads
/// stay put as N grows? (The paper: "the advisor maintains the
/// relative order of the CPU allocation ... even as new workloads are
/// introduced".)
fn rank_stability(all: &[Vec<f64>]) -> f64 {
    let mut stable = 0.0;
    let mut total = 0.0;
    for w in all.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for i in 0..prev.len() {
            for j in (i + 1)..prev.len() {
                total += 1.0;
                let before = prev[i] >= prev[j];
                let after = next[i] >= next[j];
                if before == after {
                    stable += 1.0;
                }
            }
        }
    }
    if total > 0.0 {
        stable / total
    } else {
        1.0
    }
}

/// Fig. 21 — CPU allocation for N random TPC-H workloads (PgSim SF10).
pub fn run_fig21() -> Report {
    let mut report = Report::new(
        "fig21",
        "CPU allocation for N random TPC-H workloads (PgSim, SF10)",
    );
    let (table, all) = allocation_sweep(&fig21_advisor, 10);
    report.section("CPU share per workload as N grows", table);
    report.note(format!(
        "pairwise share-order stability across N: {:.0}% (paper: relative order maintained)",
        rank_stability(&all) * 100.0
    ));
    report
}

fn mix_advisor(choice: EngineChoice, n: usize) -> VirtualizationDesignAdvisor {
    let tenants = setups::tpcc_tpch_mix(choice, 0xF1622);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    // Interleave TPC-C and TPC-H tenants so every prefix has both
    // kinds, like the paper's incremental introduction.
    let (tpcc, tpch): (Vec<_>, Vec<_>) = tenants
        .into_iter()
        .partition(|t| t.name.starts_with("tpcc"));
    let mut interleaved = Vec::new();
    for (a, b) in tpcc.into_iter().zip(tpch) {
        interleaved.push(a);
        interleaved.push(b);
    }
    for t in interleaved.into_iter().take(n) {
        adv.add_tenant(t, QoS::default());
    }
    adv.calibrate();
    adv
}

fn mix_figure(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "CPU allocation for N TPC-C + TPC-H workloads ({}), before refinement",
            choice.name()
        ),
    );
    let (table, all) = allocation_sweep_in(&|n| mix_advisor(choice, n), 10, &mix_space());
    report.section("CPU share per workload as N grows", table);
    report.note(format!(
        "pairwise share-order stability across N: {:.0}%",
        rank_stability(&all) * 100.0
    ));
    report.note(
        "TPC-C workloads (even indexes) receive little CPU here: the optimizers \
         underestimate their CPU needs — corrected by online refinement in Figs. 28-31"
            .to_string(),
    );
    report
}

/// Fig. 22 — Db2Sim TPC-C + TPC-H mix.
pub fn run_fig22() -> Report {
    mix_figure("fig22", EngineChoice::Db2)
}

/// Fig. 23 — PgSim TPC-C + TPC-H mix.
pub fn run_fig23() -> Report {
    mix_figure("fig23", EngineChoice::Pg)
}

/// Fig. 24 — advisor vs optimal actual improvement (Fig. 21 set).
pub fn run_fig24() -> Report {
    let mut report = Report::new(
        "fig24",
        "Actual improvement: advisor vs optimal (random TPC-H on PgSim, SF10)",
    );
    let mut table = Table::new(vec!["N", "advisor improvement", "optimal improvement"]);
    let mut gaps = Vec::new();
    for n in 2..=10 {
        let adv = fig21_advisor(n);
        let space = cpu_space();
        let rec = adv.recommend(&space);
        let adv_imp = adv.actual_improvement(&space, &rec.result.allocations);
        let optimal = adv.optimal_actual(&space);
        let opt_imp = adv.actual_improvement(&space, &optimal.allocations);
        gaps.push(opt_imp - adv_imp);
        table.row(vec![n.to_string(), fmt_pct(adv_imp), fmt_pct(opt_imp)]);
    }
    report.section("improvement over the default 1/N allocation", table);
    let max_gap = gaps.iter().cloned().fold(0.0_f64, f64::max);
    report.note(format!(
        "max gap to optimal: {:.1} percentage points (paper: 'near-optimal resource \
         allocations')",
        max_gap * 100.0
    ));
    report
}
