//! Figures 28–34 — online refinement (§7.8–7.9).
//!
//! §7.8 (Figs. 28–31): on the TPC-C + TPC-H mixes, the optimizers
//! underestimate TPC-C's CPU needs (lock contention and update costs
//! are unmodeled), so the initial recommendations starve the TPC-C
//! VMs and the *actual* improvement is negative. Online refinement
//! observes actual runtimes, corrects the linear CPU cost models, and
//! converges to allocations that hand CPU back to TPC-C — positive
//! improvements up to ~28 % (DB2) / ~25 % (PostgreSQL) in the paper.
//!
//! §7.9 (Figs. 32–34): with CPU *and* memory allocated, DB2's
//! optimizer underestimates how much sort-heavy queries (Q4, Q18)
//! benefit from sort memory. The generalized multi-resource
//! refinement fixes the memory misallocation, with improvements up to
//! ~38 % in the paper.

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice};
use vda_core::advisor::VirtualizationDesignAdvisor;
use vda_core::problem::{QoS, Resource, SearchSpace};
use vda_core::refine::RefineOptions;
use vda_core::tenant::Tenant;
use vda_workloads::random;

const MEM_SHARE: f64 = 0.25;

fn cpu_space() -> SearchSpace {
    SearchSpace::cpu_only(MEM_SHARE)
}

fn mix_advisor(choice: EngineChoice, n: usize) -> VirtualizationDesignAdvisor {
    let tenants = setups::tpcc_tpch_mix(choice, 0xF1622);
    let (tpcc, tpch): (Vec<_>, Vec<_>) = tenants
        .into_iter()
        .partition(|t| t.name.starts_with("tpcc"));
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    let mut interleaved = Vec::new();
    for (a, b) in tpcc.into_iter().zip(tpch) {
        interleaved.push(a);
        interleaved.push(b);
    }
    for t in interleaved.into_iter().take(n) {
        adv.add_tenant(t, QoS::default());
    }
    adv.calibrate();
    adv
}

/// Shared §7.8 run: refined CPU allocations per N.
fn refined_allocations(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "CPU allocation for N TPC-C+TPC-H workloads AFTER online refinement ({})",
            choice.name()
        ),
    );
    let mut table = Table::new(
        std::iter::once("N".to_string())
            .chain((0..10).map(|i| format!("W{i}")))
            .collect::<Vec<_>>(),
    );
    let mut tpcc_gain = Vec::new();
    for n in (2..=10).step_by(2) {
        let adv = mix_advisor(choice, n);
        let rec = adv.recommend(&cpu_space());
        let (outcome, _) = adv.refine_recommendation(
            &cpu_space(),
            &rec.result.allocations,
            &RefineOptions::default(),
        );
        // TPC-C tenants are the even indexes.
        let before: f64 = (0..n)
            .step_by(2)
            .map(|i| rec.result.allocations[i].cpu())
            .sum();
        let after: f64 = (0..n)
            .step_by(2)
            .map(|i| outcome.final_allocations[i].cpu())
            .sum();
        tpcc_gain.push(after - before);
        let mut row = vec![n.to_string()];
        for i in 0..10 {
            if i < n {
                row.push(fmt_f(outcome.final_allocations[i].cpu(), 2));
            } else {
                row.push(String::new());
            }
        }
        table.row(row);
    }
    report.section("refined CPU share per workload (even = TPC-C)", table);
    let gains: Vec<String> = tpcc_gain.iter().map(|g| format!("{:+.2}", g)).collect();
    report.note(format!(
        "total CPU moved to the TPC-C VMs by refinement, per N: {gains:?} (paper: 'the \
         CPU taken from [TPC-H] is given to the TPC-C workloads')"
    ));
    report
}

/// Shared §7.8 run: improvements before/after refinement per N.
fn refinement_improvements(id: &str, choice: EngineChoice) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "Actual improvement for TPC-C+TPC-H with online refinement ({})",
            choice.name()
        ),
    );
    let mut table = Table::new(vec![
        "N",
        "before refinement",
        "after refinement",
        "optimal",
        "iterations",
    ]);
    let mut worst_before = f64::INFINITY;
    let mut best_after = f64::NEG_INFINITY;
    for n in (2..=10).step_by(2) {
        let adv = mix_advisor(choice, n);
        let space = cpu_space();
        let rec = adv.recommend(&space);
        let before = adv.actual_improvement(&space, &rec.result.allocations);
        let (outcome, _) =
            adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
        let after = adv.actual_improvement(&space, &outcome.final_allocations);
        let optimal = adv.optimal_actual(&space);
        let opt = adv.actual_improvement(&space, &optimal.allocations);
        worst_before = worst_before.min(before);
        best_after = best_after.max(after);
        table.row(vec![
            n.to_string(),
            fmt_pct(before),
            fmt_pct(after),
            fmt_pct(opt),
            outcome.iterations.to_string(),
        ]);
    }
    report.section("improvement over the default allocation", table);
    report.note(format!(
        "refinement improves on the initial recommendation everywhere and tracks the \
         optimum (before min {}, after max {}). Deviation from the paper: our \
         pre-refinement improvements stay positive because workload-length differences \
         already dominate the initial estimates, while the paper's misestimates were \
         severe enough to go negative — the *correction direction and convergence* \
         match (see EXPERIMENTS.md)",
        fmt_pct(worst_before),
        fmt_pct(best_after)
    ));
    report
}

/// Fig. 28 — Db2Sim refined CPU allocations.
pub fn run_fig28() -> Report {
    refined_allocations("fig28", EngineChoice::Db2)
}

/// Fig. 29 — PgSim refined CPU allocations.
pub fn run_fig29() -> Report {
    refined_allocations("fig29", EngineChoice::Pg)
}

/// Fig. 30 — Db2Sim improvements with refinement.
pub fn run_fig30() -> Report {
    refinement_improvements("fig30", EngineChoice::Db2)
}

/// Fig. 31 — PgSim improvements with refinement.
pub fn run_fig31() -> Report {
    refinement_improvements("fig31", EngineChoice::Pg)
}

// ---- §7.9: multiple resources --------------------------------------

fn sort_advisor(n: usize) -> VirtualizationDesignAdvisor {
    let engine = EngineChoice::Db2.engine();
    let cat = setups::sf(10.0);
    let mut rng = random::rng(0xF1632);
    let mut adv = VirtualizationDesignAdvisor::new(setups::testbed());
    for i in 0..n {
        let w = random::sort_sensitive_workload(&mut rng, i);
        adv.add_tenant(
            Tenant::new(format!("W{i}"), engine.clone(), cat.clone(), w).expect("workloads bind"),
            QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

/// Figs. 32/33 — CPU and memory allocations after multi-resource
/// refinement.
pub fn run_fig32_33() -> Report {
    let mut report = Report::new(
        "fig32",
        "CPU & memory allocation after refinement of M=2 resources (Db2Sim, SF10)",
    );
    let space = SearchSpace::cpu_and_memory();
    let mut cpu_table = Table::new(
        std::iter::once("N".to_string())
            .chain((0..8).map(|i| format!("W{i}")))
            .collect::<Vec<_>>(),
    );
    let mut mem_table = cpu_table.clone();
    for n in [2usize, 4, 6, 8] {
        let adv = sort_advisor(n);
        let rec = adv.recommend(&space);
        let (outcome, _) =
            adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
        let mut crow = vec![n.to_string()];
        let mut mrow = vec![n.to_string()];
        for i in 0..8 {
            if i < n {
                crow.push(fmt_f(outcome.final_allocations[i].get(Resource::Cpu), 2));
                mrow.push(fmt_f(outcome.final_allocations[i].get(Resource::Memory), 2));
            } else {
                crow.push(String::new());
                mrow.push(String::new());
            }
        }
        cpu_table.row(crow);
        mem_table.row(mrow);
    }
    report.section("Fig. 32: refined CPU shares", cpu_table);
    report.section("Fig. 33: refined memory shares", mem_table);
    report.note(
        "refinement compensates for the optimizer's underestimated sort-heap benefit; \
         memory shifts toward the sort-heavy (Q4+Q18) workloads"
            .to_string(),
    );
    report
}

/// Fig. 34 — improvements with multi-resource refinement.
pub fn run_fig34() -> Report {
    let mut report = Report::new(
        "fig34",
        "Actual improvement with refinement of M=2 resources (Db2Sim, SF10)",
    );
    let space = SearchSpace::cpu_and_memory();
    let mut table = Table::new(vec![
        "N",
        "before refinement",
        "after refinement",
        "iterations",
    ]);
    let mut best_after = f64::NEG_INFINITY;
    let mut improved_all = true;
    for n in [2usize, 4, 6, 8] {
        let adv = sort_advisor(n);
        let rec = adv.recommend(&space);
        let before = adv.actual_improvement(&space, &rec.result.allocations);
        let (outcome, _) =
            adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
        let after = adv.actual_improvement(&space, &outcome.final_allocations);
        best_after = best_after.max(after);
        improved_all &= after >= before - 1e-9;
        table.row(vec![
            n.to_string(),
            fmt_pct(before),
            fmt_pct(after),
            outcome.iterations.to_string(),
        ]);
    }
    report.section("improvement over the default allocation", table);
    report.note(format!(
        "refinement never hurts: {improved_all}; best improvement {} (paper: up to ~38%)",
        fmt_pct(best_after)
    ));
    report
}
