//! §7.2 — cost of calibration and of the search algorithms.
//!
//! The paper reports: DB2 calibration under 6 minutes, PostgreSQL
//! under 9; greedy search converging in ≤ 8 iterations; online
//! refinement needing no optimizer calls; and greedy "very often
//! optimal and always within 5 % of the optimal". This experiment
//! regenerates all four numbers, plus the §4.5 cache ablation
//! (optimizer calls with and without the per-allocation cache).

use crate::harness::{fmt_f, fmt_pct, Report, Table};
use crate::setups::{self, EngineChoice, FIXED_512MB_SHARE};
use vda_core::costmodel::calibration::Calibrator;
use vda_core::costmodel::whatif::WhatIfEstimator;
use vda_core::enumerate::greedy_search;
use vda_core::problem::{Allocation, QoS, SearchSpace};
use vda_simdb::engines::Engine;
use vda_workloads::tpch;

/// Run the experiment.
pub fn run() -> Report {
    let mut report = Report::new("sec72", "Cost of calibration and search (§7.2)");
    let hv = setups::testbed();

    // --- calibration cost ---
    let mut cal_table = Table::new(vec![
        "engine",
        "simulated time",
        "VM configs",
        "queries run",
    ]);
    for (name, engine) in [("PgSim", Engine::pg()), ("Db2Sim", Engine::db2())] {
        let model = Calibrator::new(&hv).calibrate(&engine);
        cal_table.row(vec![
            name.to_string(),
            format!("{:.1} min", model.cost.simulated_seconds / 60.0),
            model.cost.vm_configurations.to_string(),
            model.cost.queries_run.to_string(),
        ]);
    }
    report.section(
        "one-time calibration cost (paper: < 6 min DB2, < 9 min PostgreSQL)",
        cal_table,
    );

    // --- greedy iterations + greedy-vs-optimal gap over a sweep ---
    let engine = setups::engine_fixed_memory(EngineChoice::Db2);
    let cat = setups::sf(1.0);
    let (c, i) = setups::cpu_units(&engine, &cat);
    let space = SearchSpace::cpu_only(FIXED_512MB_SHARE);

    let mut sweep = Table::new(vec![
        "problem",
        "iterations",
        "greedy cost",
        "optimal cost",
        "gap",
    ]);
    let mut max_gap = 0.0_f64;
    let mut max_iters = 0usize;
    for k in [0usize, 2, 5, 8, 10] {
        let w1 = c.compose(5.0, &i, 5.0);
        let w2 = c.compose(k as f64, &i, (10 - k) as f64);
        let adv = setups::advisor_for(&engine, &cat, vec![w1, w2]);
        let greedy = adv.recommend(&space);
        let exact = adv.recommend_exhaustive(&space);
        let gap = greedy.result.weighted_cost / exact.result.weighted_cost - 1.0;
        max_gap = max_gap.max(gap);
        max_iters = max_iters.max(greedy.result.iterations);
        sweep.row(vec![
            format!("5C+5I vs {k}C+{}I", 10 - k),
            greedy.result.iterations.to_string(),
            fmt_f(greedy.result.weighted_cost, 0),
            fmt_f(exact.result.weighted_cost, 0),
            fmt_pct(gap),
        ]);
    }
    report.section("greedy search vs exhaustive optimum", sweep);
    report.note(format!(
        "greedy within 5% of optimal everywhere: {} (max gap {}); iterations <= {}",
        max_gap <= 0.05,
        fmt_pct(max_gap),
        max_iters
    ));

    // --- §4.5 cache ablation ---
    let tenant = vda_core::tenant::Tenant::new(
        "cache-ablation",
        engine.clone(),
        cat.clone(),
        tpch::query_workload(18, 5.0),
    )
    .expect("workload binds");
    let model = Calibrator::new(&hv).calibrate(&engine);
    let cached = WhatIfEstimator::new(&tenant, &model);
    let uncached = WhatIfEstimator::without_cache(&tenant, &model);
    // A synthetic greedy-like probe sequence revisiting allocations.
    let probes: Vec<Allocation> = (1..=10)
        .flat_map(|i| {
            vec![
                Allocation::new(i as f64 / 10.0, 0.5),
                Allocation::new(0.5, 0.5),
            ]
        })
        .collect();
    for a in &probes {
        cached.cost(*a);
        uncached.cost(*a);
    }
    let mut ablation = Table::new(vec!["estimator", "optimizer calls", "cache hits"]);
    ablation.row(vec![
        "with cache (§4.5)".to_string(),
        cached.optimizer_calls().to_string(),
        cached.cache_hits().to_string(),
    ]);
    ablation.row(vec![
        "without cache".to_string(),
        uncached.optimizer_calls().to_string(),
        uncached.cache_hits().to_string(),
    ]);
    report.section(
        "what-if cache ablation over a revisiting probe sequence",
        ablation,
    );
    report.note(format!(
        "the cache eliminates {}% of optimizer calls on the probe sequence",
        (100.0 * (1.0 - cached.optimizer_calls() as f64 / uncached.optimizer_calls() as f64))
            .round()
    ));

    // --- QoS feasibility sanity (greedy honors limits) ---
    let w1 = c.times(1.0);
    let w2 = c.times(1.0);
    let adv = setups::advisor_with_qos(
        &engine,
        &cat,
        vec![(w1, QoS::with_limit(2.0)), (w2, QoS::default())],
    );
    let estimators = [adv.estimator(0), adv.estimator(1)];
    let res = greedy_search(&space, adv.qos(), &estimators);
    report.note(format!(
        "degradation limits respected in the QoS spot check: {:?}",
        res.limits_met
    ));
    report
}
