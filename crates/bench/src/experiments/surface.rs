//! Figures 9–10 — the shape of the objective function (§4.5).
//!
//! Sum of the estimated costs of two PgSim TPC-H workloads as a
//! function of the (CPU, memory) share given to the first workload
//! (the second receives the remainder). The paper's observation:
//! the surface is smooth and concave-shaped (bowl-like along each
//! axis), so greedy search does not get trapped — Fig. 9 for a pair
//! that does not compete for CPU, Fig. 10 for a pair that does.

use crate::harness::{fmt_f, Report, Table};
use crate::setups;
use vda_core::problem::Allocation;
use vda_workloads::tpch;

const LEVELS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

fn surface_figure(id: &str, title: &str, q_a: usize, q_b: usize) -> Report {
    let mut report = Report::new(id, title);
    let engine = setups::EngineChoice::Pg.engine();
    let cat = setups::sf(1.0);
    let adv = setups::advisor_for(
        &engine,
        &cat,
        vec![
            tpch::query_workload(q_a, 4.0),
            tpch::query_workload(q_b, 4.0),
        ],
    );
    let est0 = adv.estimator(0);
    let est1 = adv.estimator(1);

    let mut table = Table::new(
        std::iter::once("cpu\\mem".to_string())
            .chain(LEVELS.iter().map(|m| format!("{m:.1}")))
            .collect::<Vec<_>>(),
    );
    let mut grid = vec![vec![0.0; LEVELS.len()]; LEVELS.len()];
    for (ci, &c) in LEVELS.iter().enumerate() {
        let mut row = vec![format!("{c:.1}")];
        for (mi, &m) in LEVELS.iter().enumerate() {
            let total =
                est0.cost(Allocation::new(c, m)) + est1.cost(Allocation::new(1.0 - c, 1.0 - m));
            grid[ci][mi] = total;
            row.push(fmt_f(total, 0));
        }
        table.row(row);
    }
    report.section(
        "total estimated cost (s); axes = share of workload 1",
        table,
    );

    // Smoothness/unimodality check: count interior strict local minima
    // on the grid (4-neighbourhood). A smooth concave-shaped bowl has
    // exactly one.
    let mut minima = 0;
    for ci in 1..LEVELS.len() - 1 {
        for mi in 1..LEVELS.len() - 1 {
            let v = grid[ci][mi];
            if v < grid[ci - 1][mi]
                && v < grid[ci + 1][mi]
                && v < grid[ci][mi - 1]
                && v < grid[ci][mi + 1]
            {
                minima += 1;
            }
        }
    }
    report.note(format!(
        "interior local minima on the grid: {minima} (paper: smooth surface, greedy 'not \
         likely to terminate at a local minimum')"
    ));
    report
}

/// Fig. 9 — workloads NOT competing for CPU (CPU-intensive Q18 mix vs
/// I/O-intensive Q17 mix).
pub fn run_fig9() -> Report {
    surface_figure(
        "fig9",
        "Objective surface: CPU-intensive vs I/O-intensive workload (no CPU competition)",
        18,
        17,
    )
}

/// Fig. 10 — both workloads CPU-intensive (Q18 mix vs Q1 mix).
pub fn run_fig10() -> Report {
    surface_figure(
        "fig10",
        "Objective surface: two CPU-intensive workloads competing",
        18,
        1,
    )
}
