//! Tables II and III — the optimizer configuration parameters of the
//! two engines, with calibrated values at sample allocations.

use crate::harness::{fmt_f, Report, Table};
use crate::setups;
use vda_core::costmodel::calibration::Calibrator;
use vda_core::problem::Allocation;
use vda_simdb::engines::{Engine, EngineParams};

/// Table II — PgSim parameters.
pub fn run_tab2() -> Report {
    let mut report = Report::new("tab2", "PgSim query optimizer parameters (Table II)");
    let hv = setups::testbed();
    let engine = Engine::pg();
    let model = Calibrator::new(&hv).calibrate(&engine);

    let mut table = Table::new(vec![
        "parameter",
        "description",
        "kind",
        "@25%cpu/25%mem",
        "@75%cpu/75%mem",
    ]);
    let lo = model.params_at(&engine, Allocation::new(0.25, 0.25));
    let hi = model.params_at(&engine, Allocation::new(0.75, 0.75));
    let (EngineParams::Pg(lo), EngineParams::Pg(hi)) = (lo, hi) else {
        unreachable!("pg model yields pg params")
    };
    let rows: Vec<(&str, &str, &str, f64, f64)> = vec![
        (
            "random_page_cost",
            "cost of non-sequential disk page I/O",
            "descriptive",
            lo.random_page_cost,
            hi.random_page_cost,
        ),
        (
            "cpu_tuple_cost",
            "CPU cost of processing one tuple",
            "descriptive",
            lo.cpu_tuple_cost,
            hi.cpu_tuple_cost,
        ),
        (
            "cpu_operator_cost",
            "per-tuple CPU cost per WHERE predicate",
            "descriptive",
            lo.cpu_operator_cost,
            hi.cpu_operator_cost,
        ),
        (
            "cpu_index_tuple_cost",
            "CPU cost of processing one index tuple",
            "descriptive",
            lo.cpu_index_tuple_cost,
            hi.cpu_index_tuple_cost,
        ),
        (
            "shared_buffers (MB)",
            "shared bufferpool size",
            "prescriptive",
            lo.shared_buffers_mb,
            hi.shared_buffers_mb,
        ),
        (
            "work_mem (MB)",
            "memory per sort/hash operator",
            "prescriptive",
            lo.work_mem_mb,
            hi.work_mem_mb,
        ),
        (
            "effective_cache_size (MB)",
            "OS file-cache size",
            "descriptive",
            lo.effective_cache_size_mb,
            hi.effective_cache_size_mb,
        ),
    ];
    for (name, desc, kind, l, h) in rows {
        table.row(vec![
            name.to_string(),
            desc.to_string(),
            kind.to_string(),
            fmt_f(l, 4),
            fmt_f(h, 4),
        ]);
    }
    report.section("calibrated parameters", table);
    report.note(
        "CPU parameters shrink with more CPU; prescriptive memory parameters follow the \
         tuning policy (10/16 buffers, fixed 5 MB work_mem)"
            .to_string(),
    );
    report
}

/// Table III — Db2Sim parameters.
pub fn run_tab3() -> Report {
    let mut report = Report::new("tab3", "Db2Sim query optimizer parameters (Table III)");
    let hv = setups::testbed();
    let engine = Engine::db2();
    let model = Calibrator::new(&hv).calibrate(&engine);

    let mut table = Table::new(vec![
        "parameter",
        "description",
        "kind",
        "@25%cpu/25%mem",
        "@75%cpu/75%mem",
    ]);
    let lo = model.params_at(&engine, Allocation::new(0.25, 0.25));
    let hi = model.params_at(&engine, Allocation::new(0.75, 0.75));
    let (EngineParams::Db2(lo), EngineParams::Db2(hi)) = (lo, hi) else {
        unreachable!("db2 model yields db2 params")
    };
    let rows: Vec<(&str, &str, &str, String, String)> = vec![
        (
            "cpuspeed",
            "ms per instruction",
            "descriptive",
            format!("{:.3e}", lo.cpuspeed_ms_per_instr),
            format!("{:.3e}", hi.cpuspeed_ms_per_instr),
        ),
        (
            "overhead",
            "random I/O overhead (ms)",
            "descriptive",
            fmt_f(lo.overhead_ms, 3),
            fmt_f(hi.overhead_ms, 3),
        ),
        (
            "transfer_rate",
            "ms per page read",
            "descriptive",
            fmt_f(lo.transfer_rate_ms, 3),
            fmt_f(hi.transfer_rate_ms, 3),
        ),
        (
            "sortheap (MB)",
            "sort memory",
            "prescriptive",
            fmt_f(lo.sortheap_mb, 0),
            fmt_f(hi.sortheap_mb, 0),
        ),
        (
            "bufferpool (MB)",
            "bufferpool size",
            "prescriptive",
            fmt_f(lo.bufferpool_mb, 0),
            fmt_f(hi.bufferpool_mb, 0),
        ),
    ];
    for (name, desc, kind, l, h) in rows {
        table.row(vec![
            name.to_string(),
            desc.to_string(),
            kind.to_string(),
            l,
            h,
        ]);
    }
    report.section("calibrated parameters", table);
    report.note(
        "cpuspeed is linear in 1/cpu-share; I/O parameters are allocation-independent; \
         memory parameters follow the 70/30 policy"
            .to_string(),
    );
    report
}
