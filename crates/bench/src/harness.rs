//! Minimal reporting toolkit: aligned text tables and experiment
//! reports, so every experiment prints the same row/series structure
//! the paper's figures plot.

use std::fmt;

/// An aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to raw rows (used by tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// One experiment's printable report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (`fig12`, `tab2`, …).
    pub id: String,
    /// Human title (what the paper's figure shows).
    pub title: String,
    /// Named tables (series).
    pub sections: Vec<(String, Table)>,
    /// Free-form findings (the qualitative claims checked).
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Report::default()
        }
    }

    /// Append a table section.
    pub fn section(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.sections.push((name.into(), table));
        self
    }

    /// Append a findings note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (name, table) in &self.sections {
            writeln!(f, "\n--- {name} ---")?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\nFindings:")?;
            for n in &self.notes {
                writeln!(f, "  * {n}")?;
            }
        }
        writeln!(f)
    }
}

/// Format a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a ratio as a signed percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["k", "value"]);
        t.row(vec!["cpu", "0.85"]);
        t.row(vec!["memory", "0.15"]);
        let s = t.to_string();
        assert!(s.contains("| k      | value |"));
        assert!(s.contains("| memory | 0.15  |"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.rows()[0].len(), 3);
    }

    #[test]
    fn report_displays_sections_and_notes() {
        let mut r = Report::new("figX", "demo");
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        r.section("series", t);
        r.note("qualitative claim holds");
        let s = r.to_string();
        assert!(s.contains("== figX — demo =="));
        assert!(s.contains("--- series ---"));
        assert!(s.contains("* qualitative claim holds"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.241), "+24.1%");
        assert_eq!(fmt_pct(-0.05), "-5.0%");
    }
}
