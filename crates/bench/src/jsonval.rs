//! A minimal JSON reader for the CI bench-regression gate.
//!
//! This module used to own the hand-rolled recursive-descent parser;
//! the control plane's snapshot format (`vda_core::snapshot`)
//! promoted the value type, parser, and a new writer into
//! [`vda_core::jsonio`]. The bench crate re-exports it so
//! `check_bench` and the benchcheck fixtures keep their import paths.

pub use vda_core::jsonio::{parse, write, Json};
