#![warn(missing_docs)]

//! # vda-bench
//!
//! The experiment harness regenerating every figure and table of the
//! paper's evaluation (§7), plus criterion micro-benchmarks of the
//! advisor and substrate.
//!
//! Run `cargo run -p vda-bench --release --bin experiments -- all` to
//! regenerate everything; individual ids (`fig2`, `fig12`, …, `sec72`)
//! run one experiment. `EXPERIMENTS.md` records paper-vs-measured for
//! each.

pub mod experiments;
pub mod harness;
pub mod setups;

pub use harness::{fmt_f, fmt_pct, Report, Table};
