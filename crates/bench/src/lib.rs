#![warn(missing_docs)]

//! # vda-bench
//!
//! The experiment harness regenerating every figure and table of the
//! paper's evaluation (§7), plus criterion micro-benchmarks of the
//! advisor and substrate.
//!
//! Run `cargo run -p vda-bench --release --bin experiments -- all` to
//! regenerate everything; individual ids (`fig2`, `fig12`, …, `sec72`)
//! run one experiment. `EXPERIMENTS.md` records paper-vs-measured for
//! each.
//!
//! The `check_bench` binary is CI's bench-regression gate: it diffs
//! freshly measured `BENCH_*.json` artifacts against the committed
//! baselines ([`benchcheck`]) and verifies the `vendor/` stubs match
//! the `Cargo.lock` pins.

pub mod benchcheck;
pub mod experiments;
pub mod harness;
pub mod jsonval;
pub mod setups;

pub use harness::{fmt_f, fmt_pct, Report, Table};
