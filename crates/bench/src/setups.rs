//! Shared experiment scaffolding: machines, advisors, workload units.

use vda_core::advisor::VirtualizationDesignAdvisor;
use vda_core::costmodel::{SharedEstimateCache, WhatIfEstimator};
use vda_core::problem::{Allocation, QoS};
use vda_core::tenant::Tenant;
use vda_simdb::catalog::Catalog;
use vda_simdb::engines::{Engine, TuningPolicy};
use vda_vmm::{Hypervisor, PhysicalMachine};
use vda_workloads::units::WorkloadUnit;
use vda_workloads::{tpch, Workload};

/// The paper's physical testbed with its always-on I/O-contention VM.
pub fn testbed() -> Hypervisor {
    Hypervisor::new(PhysicalMachine::paper_testbed())
}

/// Memory share equivalent to the paper's fixed 512 MB VMs (CPU-only
/// experiments give each VM 512 MB of the 8 GB machine).
pub const FIXED_512MB_SHARE: f64 = 512.0 / 8192.0;

/// An engine configured like the paper's CPU-only experiments: fixed
/// memory settings so only CPU matters.
pub fn engine_fixed_memory(kind: EngineChoice) -> Engine {
    match kind {
        EngineChoice::Pg => Engine::pg().with_policy(fixed_policy(EngineChoice::Pg)),
        EngineChoice::Db2 => Engine::db2().with_policy(fixed_policy(EngineChoice::Db2)),
    }
}

/// Which engine an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// PostgreSQL-like.
    Pg,
    /// DB2-like.
    Db2,
}

impl EngineChoice {
    /// Display name used in report titles.
    pub fn name(self) -> &'static str {
        match self {
            EngineChoice::Pg => "PgSim",
            EngineChoice::Db2 => "Db2Sim",
        }
    }

    /// The proportional-policy engine (memory experiments).
    pub fn engine(self) -> Engine {
        match self {
            EngineChoice::Pg => Engine::pg(),
            EngineChoice::Db2 => Engine::db2(),
        }
    }
}

fn fixed_policy(kind: EngineChoice) -> TuningPolicy {
    match kind {
        EngineChoice::Pg => vda_simdb::engines::PgSim::fixed_memory_policy(),
        EngineChoice::Db2 => vda_simdb::engines::Db2Sim::fixed_memory_policy(),
    }
}

/// Build a calibrated advisor hosting the given `(name, workload)`
/// pairs, all on the same engine and catalog.
pub fn advisor_for(
    engine: &Engine,
    catalog: &Catalog,
    workloads: Vec<Workload>,
) -> VirtualizationDesignAdvisor {
    advisor_with_qos(
        engine,
        catalog,
        workloads.into_iter().map(|w| (w, QoS::default())).collect(),
    )
}

/// Build a calibrated advisor with explicit QoS per workload.
pub fn advisor_with_qos(
    engine: &Engine,
    catalog: &Catalog,
    workloads: Vec<(Workload, QoS)>,
) -> VirtualizationDesignAdvisor {
    let mut adv = VirtualizationDesignAdvisor::new(testbed());
    for (w, qos) in workloads {
        let name = w.name.clone();
        let tenant = Tenant::new(name, engine.clone(), catalog.clone(), w)
            .expect("experiment workloads bind");
        adv.add_tenant(tenant, qos);
    }
    adv.calibrate();
    adv
}

/// Estimated cost of a workload at a given allocation, through a
/// freshly calibrated what-if estimator — the unit-balancing oracle of
/// §7.3/§7.4. Units are balanced at 100 % of the *varied* resource
/// with the non-varied resource at its experimental fixed level
/// (the paper equalizes runtimes "when running with 100 % of the
/// available CPU", with memory at its per-VM fixed setting).
pub fn full_allocation_cost(
    engine: &Engine,
    catalog: &Catalog,
    w: &Workload,
    at: Allocation,
) -> f64 {
    let adv = advisor_for(engine, catalog, vec![w.clone()]);
    adv.estimator(0).cost(at)
}

/// The §7.3 C/I units: `C` multiples of Q18 vs `I` multiples of Q21,
/// balanced at 100 % CPU with the fixed 512 MB memory grant.
pub fn cpu_units(engine: &Engine, catalog: &Catalog) -> (WorkloadUnit, WorkloadUnit) {
    let at = Allocation::new(1.0, FIXED_512MB_SHARE);
    let mut oracle = |w: &Workload| full_allocation_cost(engine, catalog, w, at);
    let (i_unit, c_unit) = vda_workloads::units::balanced_pair(21, "I", 18, "C", &mut oracle);
    (c_unit, i_unit)
}

/// The §7.4 B/D units: `B` multiples of Q7 vs `D` multiples of Q16,
/// balanced at 100 % memory with CPU at its fixed 50 % level.
pub fn memory_units(engine: &Engine, catalog: &Catalog) -> (WorkloadUnit, WorkloadUnit) {
    let at = Allocation::new(0.5, 1.0);
    let mut oracle = |w: &Workload| full_allocation_cost(engine, catalog, w, at);
    let (b_unit, d_unit) = vda_workloads::units::balanced_pair(7, "B", 16, "D", &mut oracle);
    (b_unit, d_unit)
}

/// TPC-H catalog shorthand.
pub fn sf(scale: f64) -> Catalog {
    tpch::catalog(scale)
}

/// Build a calibrated advisor from fully-formed tenants (mixed engines
/// and catalogs).
pub fn advisor_from_tenants(tenants: Vec<(Tenant, QoS)>) -> VirtualizationDesignAdvisor {
    let mut adv = VirtualizationDesignAdvisor::new(testbed());
    for (t, q) in tenants {
        adv.add_tenant(t, q);
    }
    adv.calibrate();
    adv
}

/// The §7.6 TPC-C + TPC-H tenant mix: five TPC-C workloads (2–10
/// warehouses, 5–10 clients each) and five DSS workloads of up to 40
/// random TPC-H queries — four on SF1, one on SF10.
pub fn tpcc_tpch_mix(choice: EngineChoice, seed: u64) -> Vec<Tenant> {
    use rand::Rng;
    let mut rng = vda_workloads::random::rng(seed);
    let engine = engine_fixed_memory(choice);
    let tpcc_cat = vda_workloads::tpcc::catalog(10);
    let mut tenants = Vec::with_capacity(10);
    for i in 0..5 {
        let wh = rng.random_range(2..=10u32);
        let clients = rng.random_range(5..=10u32);
        let w = vda_workloads::tpcc::workload(wh, clients, TPCC_TXNS_PER_CLIENT);
        tenants.push(
            Tenant::new(format!("tpcc-{i}"), engine.clone(), tpcc_cat.clone(), w)
                .expect("tpcc workloads bind"),
        );
    }
    let sf1 = tpch::catalog(1.0);
    let sf10 = tpch::catalog(10.0);
    for i in 0..5 {
        let w = vda_workloads::random::random_tpch_queries(&mut rng, i, 40);
        let (cat, label) = if i == 4 {
            (sf10.clone(), "tpch-sf10")
        } else {
            (sf1.clone(), "tpch-sf1")
        };
        tenants.push(
            Tenant::new(
                format!("{label}-{i}"),
                engine.clone(),
                cat,
                w.named(format!("{label}-{i}")),
            )
            .expect("tpch workloads bind"),
        );
    }
    tenants
}

/// Transactions per client per monitoring interval in the TPC-C
/// workloads, sized so a 2-warehouse TPC-C tenant is in the same
/// cost ballpark as a random DSS tenant.
pub const TPCC_TXNS_PER_CLIENT: f64 = 40.0;

/// Fresh estimators over cold caches, one per tenant, so a timed
/// measurement pays the full optimizer cost of its search instead of
/// reusing the advisor's warm shared caches.
pub fn cold_estimators(adv: &VirtualizationDesignAdvisor) -> Vec<WhatIfEstimator<'_>> {
    (0..adv.tenant_count())
        .map(|i| {
            WhatIfEstimator::with_shared_cache(
                adv.tenant(i),
                adv.model(i),
                SharedEstimateCache::new(),
            )
        })
        .collect()
}
