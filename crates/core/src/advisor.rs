//! The virtualization design advisor (Figure 3 of the paper).
//!
//! Ties the pieces together: tenants (DBMS + database + workload per
//! VM), per-engine calibrated cost models, the what-if cost estimator,
//! and the configuration enumerator. Also provides the ground-truth
//! oracles the experiments need: actual workload costs from the
//! simulated executor, and the actual-cost optimum for
//! advisor-vs-optimal comparisons (§7.6–7.7).

use crate::costmodel::calibration::{CalibratedModel, CalibrationConfig, Calibrator};
use crate::costmodel::whatif::WhatIfEstimator;
use crate::enumerate::{exhaustive_search, greedy_search, SearchResult};
use crate::problem::{Allocation, QoS, SearchSpace};
use crate::refine::{refine, RefineOptions, RefinedModel, RefinementOutcome};
use crate::tenant::Tenant;
use serde::{Deserialize, Serialize};
use vda_simdb::engines::EngineKind;
use vda_vmm::Hypervisor;

/// A recommendation produced by the advisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The search outcome (allocations, per-workload estimated costs,
    /// iterations, trace).
    pub result: SearchResult,
    /// Query-optimizer invocations spent producing it.
    pub optimizer_calls: u64,
}

/// The advisor: a set of consolidated tenants on one physical machine.
#[derive(Debug)]
pub struct VirtualizationDesignAdvisor {
    hv: Hypervisor,
    tenants: Vec<Tenant>,
    qos: Vec<QoS>,
    /// One calibrated model per tenant (computed once per engine kind
    /// and shared).
    models: Vec<CalibratedModel>,
    calibration_config: CalibrationConfig,
}

impl VirtualizationDesignAdvisor {
    /// Create an advisor for a physical machine.
    pub fn new(hv: Hypervisor) -> Self {
        VirtualizationDesignAdvisor {
            hv,
            tenants: Vec::new(),
            qos: Vec::new(),
            models: Vec::new(),
            calibration_config: CalibrationConfig::default(),
        }
    }

    /// Override calibration settings (must be called before
    /// [`Self::calibrate`]).
    pub fn set_calibration_config(&mut self, config: CalibrationConfig) {
        self.calibration_config = config;
    }

    /// Register a tenant with its QoS settings; returns its index.
    pub fn add_tenant(&mut self, tenant: Tenant, qos: QoS) -> usize {
        self.tenants.push(tenant);
        self.qos.push(qos);
        self.tenants.len() - 1
    }

    /// The hypervisor model.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A registered tenant.
    pub fn tenant(&self, i: usize) -> &Tenant {
        &self.tenants[i]
    }

    /// Mutable access to a tenant (dynamic workload changes between
    /// monitoring periods).
    pub fn tenant_mut(&mut self, i: usize) -> &mut Tenant {
        &mut self.tenants[i]
    }

    /// Swap two tenants between their VM slots (the §7.10 scenario:
    /// "the two workloads are switched between the virtual machines").
    /// Allocations attach to VM slots, so after the swap each workload
    /// runs under the other's resources until the manager reacts.
    pub fn swap_tenants(&mut self, i: usize, j: usize) {
        self.tenants.swap(i, j);
        self.qos.swap(i, j);
        if self.models.len() > i.max(j) {
            self.models.swap(i, j);
        }
    }

    /// Per-tenant QoS settings.
    pub fn qos(&self) -> &[QoS] {
        &self.qos
    }

    /// Replace a tenant's QoS settings.
    pub fn set_qos(&mut self, i: usize, qos: QoS) {
        self.qos[i] = qos;
    }

    /// Run optimizer calibration (§4.3) — once per engine kind present,
    /// shared across tenants of that kind, exactly like the one-time
    /// per-machine calibration of the paper.
    pub fn calibrate(&mut self) {
        let calibrator = Calibrator::with_config(&self.hv, self.calibration_config.clone());
        let mut by_kind: Vec<(EngineKind, CalibratedModel)> = Vec::new();
        self.models.clear();
        for t in &self.tenants {
            let kind = t.engine.kind();
            let model = match by_kind.iter().find(|(k, _)| *k == kind) {
                Some((_, m)) => m.clone(),
                None => {
                    let m = calibrator.calibrate(&t.engine);
                    by_kind.push((kind, m.clone()));
                    m
                }
            };
            self.models.push(model);
        }
    }

    /// Whether [`Self::calibrate`] has run for the current tenant set.
    pub fn is_calibrated(&self) -> bool {
        self.models.len() == self.tenants.len() && !self.tenants.is_empty()
    }

    /// The calibrated model for tenant `i`.
    pub fn model(&self, i: usize) -> &CalibratedModel {
        assert!(self.is_calibrated(), "call calibrate() first");
        &self.models[i]
    }

    /// A what-if estimator for tenant `i`.
    pub fn estimator(&self, i: usize) -> WhatIfEstimator<'_> {
        assert!(self.is_calibrated(), "call calibrate() first");
        WhatIfEstimator::new(&self.tenants[i], &self.models[i])
    }

    /// Produce the initial static recommendation with the greedy
    /// enumerator (§4.5).
    pub fn recommend(&self, space: &SearchSpace) -> Recommendation {
        let estimators: Vec<WhatIfEstimator<'_>> =
            (0..self.tenants.len()).map(|i| self.estimator(i)).collect();
        let mut cost = |i: usize, a: Allocation| estimators[i].cost(a);
        let result = greedy_search(self.tenants.len(), space, &self.qos, &mut cost);
        Recommendation {
            result,
            optimizer_calls: estimators.iter().map(|e| e.optimizer_calls()).sum(),
        }
    }

    /// The estimate-based optimum over the δ-grid (the paper's
    /// exhaustive-search comparison for §4.5).
    pub fn recommend_exhaustive(&self, space: &SearchSpace) -> Recommendation {
        let estimators: Vec<WhatIfEstimator<'_>> =
            (0..self.tenants.len()).map(|i| self.estimator(i)).collect();
        let mut cost = |i: usize, a: Allocation| estimators[i].cost(a);
        let result = exhaustive_search(self.tenants.len(), space, &self.qos, &mut cost);
        Recommendation {
            result,
            optimizer_calls: estimators.iter().map(|e| e.optimizer_calls()).sum(),
        }
    }

    /// Actual cost (seconds) of tenant `i` under `alloc` — the
    /// simulation's ground truth.
    pub fn actual_cost(&self, i: usize, alloc: Allocation) -> f64 {
        self.tenants[i].actual_cost(&self.hv, alloc)
    }

    /// Total actual cost over all tenants for a full allocation vector.
    pub fn total_actual(&self, allocations: &[Allocation]) -> f64 {
        allocations
            .iter()
            .enumerate()
            .map(|(i, a)| self.actual_cost(i, *a))
            .sum()
    }

    /// The *actual-cost* optimum over the δ-grid, "obtained by
    /// exhaustively enumerating all feasible allocations and measuring
    /// performance in each one" (§7.6).
    pub fn optimal_actual(&self, space: &SearchSpace) -> SearchResult {
        let mut cost = |i: usize, a: Allocation| self.actual_cost(i, a);
        exhaustive_search(self.tenants.len(), space, &self.qos, &mut cost)
    }

    /// The default (1/N) allocation vector.
    pub fn default_allocations(&self, space: &SearchSpace) -> Vec<Allocation> {
        vec![space.default_allocation(self.tenants.len()); self.tenants.len()]
    }

    /// Relative actual improvement of `allocations` over the default
    /// allocation: `(T_default − T_alloc) / T_default` (§7.1).
    pub fn actual_improvement(&self, space: &SearchSpace, allocations: &[Allocation]) -> f64 {
        let t_default = self.total_actual(&self.default_allocations(space));
        let t_alloc = self.total_actual(allocations);
        (t_default - t_alloc) / t_default
    }

    /// Relative *estimated* improvement over the default allocation —
    /// the metric of the controlled validation experiments (§7.3–7.5).
    pub fn estimated_improvement(&self, space: &SearchSpace, allocations: &[Allocation]) -> f64 {
        let estimators: Vec<WhatIfEstimator<'_>> =
            (0..self.tenants.len()).map(|i| self.estimator(i)).collect();
        let default = self.default_allocations(space);
        let t_default: f64 = estimators
            .iter()
            .zip(&default)
            .map(|(e, a)| e.cost(*a))
            .sum();
        let t_alloc: f64 = estimators
            .iter()
            .zip(allocations)
            .map(|(e, a)| e.cost(*a))
            .sum();
        (t_default - t_alloc) / t_default
    }

    /// Fit the initial refinement model for tenant `i` from what-if
    /// estimates (§5.1).
    pub fn fit_refinement_model(
        &self,
        i: usize,
        space: &SearchSpace,
        grid: usize,
    ) -> RefinedModel {
        let est = self.estimator(i);
        let mut f = |a: Allocation| {
            let e = est.estimate(a);
            (e.seconds, e.plan_regime)
        };
        RefinedModel::fit_initial(space, grid, &mut f)
    }

    /// Run online refinement (§5) starting from `start`, observing
    /// actual executor costs. Returns the outcome plus the refined
    /// models (for continued dynamic management).
    pub fn refine_recommendation(
        &self,
        space: &SearchSpace,
        start: &[Allocation],
        opts: &RefineOptions,
    ) -> (RefinementOutcome, Vec<RefinedModel>) {
        let mut models: Vec<RefinedModel> = (0..self.tenants.len())
            .map(|i| self.fit_refinement_model(i, space, opts.sample_grid))
            .collect();
        let mut actual = |i: usize, a: Allocation| self.actual_cost(i, a);
        let outcome = refine(&mut models, space, &self.qos, start, &mut actual, opts);
        (outcome, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_simdb::engines::Engine;
    use vda_vmm::PhysicalMachine;
    use vda_workloads::tpch;

    fn advisor_two_dss() -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        // Q18 (CPU-heavy) vs Q6 (scan-only): clear CPU asymmetry.
        adv.add_tenant(
            Tenant::new("cpuheavy", Engine::pg(), cat.clone(), tpch::query_workload(18, 2.0))
                .unwrap(),
            QoS::default(),
        );
        adv.add_tenant(
            Tenant::new("ioheavy", Engine::pg(), cat, tpch::query_workload(6, 2.0)).unwrap(),
            QoS::default(),
        );
        adv.calibrate();
        adv
    }

    #[test]
    fn recommend_requires_calibration() {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        adv.add_tenant(
            Tenant::new(
                "t",
                Engine::pg(),
                tpch::catalog(1.0),
                tpch::query_workload(6, 1.0),
            )
            .unwrap(),
            QoS::default(),
        );
        assert!(!adv.is_calibrated());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            adv.estimator(0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn recommendation_shifts_cpu_to_cpu_bound_tenant() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        assert!(
            rec.result.allocations[0].cpu > 0.5,
            "CPU-heavy tenant should win CPU: {:?}",
            rec.result.allocations
        );
        assert!(rec.optimizer_calls > 0);
        // Feasibility.
        let total: f64 = rec.result.allocations.iter().map(|a| a.cpu).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn greedy_close_to_exhaustive_estimate_optimum() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let greedy = adv.recommend(&space);
        let exact = adv.recommend_exhaustive(&space);
        assert!(
            greedy.result.weighted_cost <= exact.result.weighted_cost * 1.05 + 1e-9,
            "greedy {} vs optimal {}",
            greedy.result.weighted_cost,
            exact.result.weighted_cost
        );
    }

    #[test]
    fn recommendation_improves_actual_performance() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        let imp = adv.actual_improvement(&space, &rec.result.allocations);
        assert!(imp >= -0.02, "advisor must not hurt performance: {imp}");
    }

    #[test]
    fn calibration_is_shared_per_engine_kind() {
        let adv = advisor_two_dss();
        // Both tenants run PgSim: identical models.
        assert_eq!(adv.model(0), adv.model(1));
    }

    #[test]
    fn swap_tenants_moves_workload_and_model() {
        let mut adv = advisor_two_dss();
        let n0 = adv.tenant(0).name.clone();
        let c0 = adv.actual_cost(0, crate::problem::Allocation::new(0.5, 0.5));
        adv.swap_tenants(0, 1);
        assert_eq!(adv.tenant(1).name, n0);
        let c1 = adv.actual_cost(1, crate::problem::Allocation::new(0.5, 0.5));
        assert!((c0 - c1).abs() < 1e-9, "workload must move with the swap");
        // Estimators keep working after the swap (models moved too).
        let _ = adv.estimator(0).cost(crate::problem::Allocation::new(0.5, 0.5));
    }

    #[test]
    fn refinement_runs_end_to_end() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        let (outcome, models) = adv.refine_recommendation(
            &space,
            &rec.result.allocations,
            &RefineOptions::default(),
        );
        assert_eq!(models.len(), 2);
        assert!(outcome.iterations >= 1);
        let total: f64 = outcome.final_allocations.iter().map(|a| a.cpu).sum();
        assert!(total <= 1.0 + 1e-9);
    }
}
