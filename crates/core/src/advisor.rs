//! The virtualization design advisor (Figure 3 of the paper).
//!
//! Ties the pieces together: tenants (DBMS + database + workload per
//! VM), per-engine calibrated cost models, the what-if cost estimator,
//! and the configuration enumerator. Also provides the ground-truth
//! oracles the experiments need: actual workload costs from the
//! simulated executor, and the actual-cost optimum for
//! advisor-vs-optimal comparisons (§7.6–7.7).
//!
//! Every search runs through the
//! [`CostModel`](crate::costmodel::CostModel) interface:
//! [`VirtualizationDesignAdvisor::recommend`] /
//! [`VirtualizationDesignAdvisor::recommend_exhaustive`] build one
//! [`WhatIfEstimator`] per tenant (all sharing the advisor's
//! per-tenant [`SharedEstimateCache`]s, so repeated searches reuse
//! optimizer work), and [`VirtualizationDesignAdvisor::optimal_actual`]
//! builds [`ActualCostModel`] executor oracles.
//!
//! Calibrated models are stored **per engine kind**, exactly like the
//! paper's one-time per-DBMS-per-machine calibration. Tenant ↔ model
//! pairing is re-derived from the tenant's engine kind on every
//! lookup, so reordering or swapping tenants (the §7.10 scenario) can
//! never pair a tenant with another engine's calibration.

use crate::costmodel::calibration::{CalibratedModel, CalibrationConfig, Calibrator};
use crate::costmodel::model::ActualCostModel;
use crate::costmodel::whatif::{ProbeCache, SharedEstimateCache, WhatIfEstimator};
use crate::enumerate::{
    coarse_to_fine_search_warm, exhaustive_search_with, greedy_search_with, CoarseToFineOptions,
    SearchOptions, SearchResult, WarmStart,
};
use crate::metrics::CostAccounting;
use crate::problem::{Allocation, QoS, SearchSpace};
use crate::refine::{refine, RefineOptions, RefinedModel, RefinementOutcome};
use crate::tenant::Tenant;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use vda_simdb::engines::EngineKind;
use vda_simdb::hash::Fnv64;
use vda_vmm::Hypervisor;

/// A recommendation produced by the advisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The search outcome (allocations, per-workload estimated costs,
    /// iterations, trace).
    pub result: SearchResult,
    /// Query-optimizer invocations spent producing it.
    pub optimizer_calls: u64,
    /// Estimate-cache hits recorded while producing it.
    pub cache_hits: u64,
}

/// What happened to a tenant's calibrated model and estimate cache
/// during [`VirtualizationDesignAdvisor::transfer_tenant`] — the
/// fleet layer's calibration-management policy, made explicit so a
/// migration can never *silently* reuse a model fit on different
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferCalibration {
    /// Machines physically identical and the destination lacked the
    /// engine kind: the source's calibrated model was copied over and
    /// the estimate cache traveled (calibration is per-DBMS
    /// **per-machine**, §4.3 — identical hardware needs no refit).
    Traveled,
    /// The destination already held the *identical* calibration:
    /// nothing to copy, and the estimate cache stayed valid and
    /// traveled.
    ReusedIdentical,
    /// The destination was already calibrated for the kind but
    /// *differently* (different hardware or calibration run): the
    /// tenant adopts the destination's model and starts with a cold
    /// estimate cache.
    AdoptedDestination,
    /// The machines are not physically identical and the destination
    /// has no calibration for the kind: the calibrated model did NOT
    /// travel. The tenant is demoted to a what-if prior — the
    /// destination must calibrate (see
    /// [`VirtualizationDesignAdvisor::ensure_calibrated`]) and the
    /// refined model is rebuilt lazily by the usual refinement rounds.
    /// The estimate cache was dropped as stale.
    Demoted,
    /// The source itself had no calibration for the kind; the (empty
    /// or estimate-only) cache traveled untouched.
    SourceUncalibrated,
}

impl TransferCalibration {
    /// Whether the destination can serve estimates for this tenant
    /// without running its own calibration first.
    pub fn destination_ready(self) -> bool {
        !matches!(
            self,
            TransferCalibration::Demoted | TransferCalibration::SourceUncalibrated
        )
    }
}

/// Outcome of [`VirtualizationDesignAdvisor::transfer_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantTransfer {
    /// The tenant's index on the destination advisor.
    pub index: usize,
    /// What happened to the calibrated model and estimate cache.
    pub calibration: TransferCalibration,
}

/// The advisor: a set of consolidated tenants on one physical machine.
#[derive(Debug)]
pub struct VirtualizationDesignAdvisor {
    hv: Hypervisor,
    tenants: Vec<Tenant>,
    qos: Vec<QoS>,
    /// One calibrated model per engine kind present (computed once per
    /// kind per machine, shared by every tenant of that kind).
    models: Vec<(EngineKind, CalibratedModel)>,
    /// One shared estimate cache per tenant slot; estimates persist
    /// across searches and estimator instances.
    caches: Vec<SharedEstimateCache>,
    /// Optional fleet-wide probe cache. When attached, estimators key
    /// their entries by `(calibrated-model fingerprint, tenant
    /// fingerprint, allocation)` in this cache instead of the
    /// per-tenant slot caches, so identical probes are shared across
    /// machines and across periods.
    probe: Option<ProbeCache>,
    /// Warm-start state for [`Self::recommend_c2f_warm`]; interior
    /// mutability keeps the recommend API `&self` like its siblings.
    warm: RefCell<WarmStart>,
    calibration_config: CalibrationConfig,
    search_options: SearchOptions,
}

impl VirtualizationDesignAdvisor {
    /// Create an advisor for a physical machine.
    pub fn new(hv: Hypervisor) -> Self {
        VirtualizationDesignAdvisor {
            hv,
            tenants: Vec::new(),
            qos: Vec::new(),
            models: Vec::new(),
            caches: Vec::new(),
            probe: None,
            warm: RefCell::new(WarmStart::new()),
            calibration_config: CalibrationConfig::default(),
            search_options: SearchOptions::default(),
        }
    }

    /// Back every estimator with a fleet-wide [`ProbeCache`] instead of
    /// the per-tenant slot caches. Entries are keyed by calibrated
    /// model and tenant fingerprint, so a recalibration or workload
    /// drift never reads stale estimates — and two machines pricing
    /// the same tenant under the same calibration share probes.
    pub fn attach_probe_cache(&mut self, cache: ProbeCache) {
        self.probe = Some(cache);
    }

    /// The attached fleet probe cache, if any.
    pub fn probe_cache(&self) -> Option<&ProbeCache> {
        self.probe.as_ref()
    }

    /// Override calibration settings (must be called before
    /// [`Self::calibrate`]).
    pub fn set_calibration_config(&mut self, config: CalibrationConfig) {
        self.calibration_config = config;
    }

    /// Override how searches evaluate candidate sets (parallel by
    /// default; results are identical either way).
    pub fn set_search_options(&mut self, options: SearchOptions) {
        self.search_options = options;
    }

    /// Register a tenant with its QoS settings; returns its index.
    pub fn add_tenant(&mut self, tenant: Tenant, qos: QoS) -> usize {
        self.tenants.push(tenant);
        self.qos.push(qos);
        self.caches.push(SharedEstimateCache::new());
        self.tenants.len() - 1
    }

    /// The hypervisor model.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A registered tenant.
    pub fn tenant(&self, i: usize) -> &Tenant {
        &self.tenants[i]
    }

    /// Mutable access to a tenant (dynamic workload changes between
    /// monitoring periods).
    pub fn tenant_mut(&mut self, i: usize) -> &mut Tenant {
        &mut self.tenants[i]
    }

    /// Swap two tenants between their VM slots (the §7.10 scenario:
    /// "the two workloads are switched between the virtual machines").
    /// Allocations attach to VM slots, so after the swap each workload
    /// runs under the other's resources until the manager reacts.
    ///
    /// Calibrated models are keyed by engine kind, not slot, so the
    /// swap cannot desynchronize tenant ↔ model pairing even when the
    /// swapped tenants run different engines. The slots' estimate
    /// caches move with the tenants (entries are fingerprint-keyed, so
    /// this only affects warmth, never correctness).
    pub fn swap_tenants(&mut self, i: usize, j: usize) {
        self.tenants.swap(i, j);
        self.qos.swap(i, j);
        self.caches.swap(i, j);
    }

    /// Move tenant `i` — workload, QoS, and estimate cache — onto
    /// another machine's advisor. The fleet layer's migration
    /// primitive. Returns the tenant's destination index plus the
    /// calibration-management verdict ([`TransferCalibration`]).
    ///
    /// Calibration management: a calibrated model travels with the
    /// tenant **only to a physically identical machine** (calibration
    /// is per-DBMS-**per-machine**, §4.3 — identical hardware needs no
    /// refit, so a migration never forces a recalibration the paper
    /// says is unnecessary). Across *non-identical* machines the model
    /// is demoted to a what-if prior: the destination must calibrate
    /// for itself ([`Self::ensure_calibrated`], or a fleet manager
    /// installing a per-class model via [`Self::install_calibration`])
    /// and the refined model is rebuilt lazily by the usual refinement
    /// rounds. Cached estimates move along only while they remain
    /// valid — i.e. the destination prices them with the very same
    /// calibration — and are dropped as stale otherwise.
    pub fn transfer_tenant(
        &mut self,
        i: usize,
        dest: &mut VirtualizationDesignAdvisor,
    ) -> TenantTransfer {
        let tenant = self.tenants.remove(i);
        let qos = self.qos.remove(i);
        let cache = self.caches.remove(i);
        let kind = tenant.engine.kind();
        let source_model = self
            .models
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m.clone());
        let dest_model = dest.models.iter().find(|(k, _)| *k == kind);
        let same_machine = self.hv.machine() == dest.hv.machine();
        let (cache, calibration) = match (&source_model, dest_model) {
            // Destination already calibrated: estimates stay valid only
            // if they were produced by the very same calibration.
            (Some(m), Some((_, dm))) if dm == m => (cache, TransferCalibration::ReusedIdentical),
            (_, Some(_)) => (
                SharedEstimateCache::new(),
                TransferCalibration::AdoptedDestination,
            ),
            // Model travels with the tenant across identical machines.
            (Some(m), None) if same_machine => {
                dest.models.push((kind, m.clone()));
                (cache, TransferCalibration::Traveled)
            }
            // Different physical machine: the model must NOT travel —
            // the destination calibrates for itself, and cached
            // estimates from the old machine would be wrong there.
            (Some(_), None) => (SharedEstimateCache::new(), TransferCalibration::Demoted),
            (None, None) => (cache, TransferCalibration::SourceUncalibrated),
        };
        dest.tenants.push(tenant);
        dest.qos.push(qos);
        dest.caches.push(cache);
        // Both tenant sets changed; neither machine's previous-period
        // solve describes its current workloads.
        self.warm.get_mut().invalidate();
        dest.warm.get_mut().invalidate();
        TenantTransfer {
            index: dest.tenants.len() - 1,
            calibration,
        }
    }

    /// Deregister tenant `i` — the fleet layer's departure primitive.
    /// Returns the tenant and its QoS settings. The slot's estimate
    /// cache is dropped; calibrated models stay (they are per engine
    /// kind per machine, not per tenant). The warm-start state is
    /// invalidated: the machine's tenant set changed.
    pub fn remove_tenant(&mut self, i: usize) -> (Tenant, QoS) {
        let tenant = self.tenants.remove(i);
        let qos = self.qos.remove(i);
        self.caches.remove(i);
        self.warm.get_mut().invalidate();
        (tenant, qos)
    }

    /// Per-tenant QoS settings.
    pub fn qos(&self) -> &[QoS] {
        &self.qos
    }

    /// Replace a tenant's QoS settings.
    pub fn set_qos(&mut self, i: usize, qos: QoS) {
        self.qos[i] = qos;
    }

    /// Run optimizer calibration (§4.3) — once per engine kind present,
    /// shared across tenants of that kind, exactly like the one-time
    /// per-machine calibration of the paper. Resets the estimate
    /// caches: cached estimates embed the previous calibration.
    pub fn calibrate(&mut self) {
        let calibrator = Calibrator::with_config(&self.hv, self.calibration_config.clone());
        self.models.clear();
        for t in &self.tenants {
            let kind = t.engine.kind();
            if !self.models.iter().any(|(k, _)| *k == kind) {
                let model = calibrator.calibrate(&t.engine);
                self.models.push((kind, model));
            }
        }
        for cache in &mut self.caches {
            *cache = SharedEstimateCache::new();
        }
        // New calibration ⇒ new model fingerprints; warm-start state
        // and cached coarse lattices are stale.
        self.warm.get_mut().invalidate();
    }

    /// Calibrate only the engine kinds that are still missing a model
    /// (e.g. after a cross-hardware [`Self::transfer_tenant`] demoted
    /// a tenant's calibration). Existing calibrations — and the
    /// estimate caches they back — are left untouched, unlike
    /// [`Self::calibrate`], which refits everything and cold-starts
    /// every cache.
    pub fn ensure_calibrated(&mut self) {
        let calibrator = Calibrator::with_config(&self.hv, self.calibration_config.clone());
        let mut fresh: Vec<EngineKind> = Vec::new();
        for t in &self.tenants {
            let kind = t.engine.kind();
            if !self.models.iter().any(|(k, _)| *k == kind) {
                let model = calibrator.calibrate(&t.engine);
                self.models.push((kind, model));
                fresh.push(kind);
            }
        }
        // Tenants of a freshly calibrated kind must not serve
        // estimates produced under no/other calibration.
        for (t, cache) in self.tenants.iter().zip(&mut self.caches) {
            if fresh.contains(&t.engine.kind()) {
                *cache = SharedEstimateCache::new();
            }
        }
    }

    /// Install a calibrated model for `kind` (replacing any existing
    /// one) and cold-start the estimate caches of that kind's tenants.
    /// The fleet manager uses this to share one per-machine-class
    /// calibration across machines of identical hardware instead of
    /// refitting on every migration.
    pub fn install_calibration(&mut self, kind: EngineKind, model: CalibratedModel) {
        match self.models.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, m)) => {
                if *m == model {
                    return; // identical calibration: caches stay warm
                }
                *m = model;
            }
            None => self.models.push((kind, model)),
        }
        for (t, cache) in self.tenants.iter().zip(&mut self.caches) {
            if t.engine.kind() == kind {
                *cache = SharedEstimateCache::new();
            }
        }
        // A genuinely different calibration invalidates the previous
        // period's solve and coarse lattices.
        self.warm.get_mut().invalidate();
    }

    /// The calibrated model for an engine kind, if any.
    pub fn calibration(&self, kind: EngineKind) -> Option<&CalibratedModel> {
        self.models.iter().find(|(k, _)| *k == kind).map(|(_, m)| m)
    }

    /// All (engine kind, calibrated model) pairs this machine holds.
    pub fn calibrations(&self) -> &[(EngineKind, CalibratedModel)] {
        &self.models
    }

    /// The calibration settings this advisor calibrates with.
    pub fn calibration_config(&self) -> &CalibrationConfig {
        &self.calibration_config
    }

    /// Whether every registered tenant's engine kind has a calibrated
    /// model.
    pub fn is_calibrated(&self) -> bool {
        !self.tenants.is_empty()
            && self
                .tenants
                .iter()
                .all(|t| self.models.iter().any(|(k, _)| *k == t.engine.kind()))
    }

    /// The calibrated model for tenant `i` (looked up by the tenant's
    /// engine kind).
    pub fn model(&self, i: usize) -> &CalibratedModel {
        let kind = self.tenants[i].engine.kind();
        self.models
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m)
            .expect("call calibrate() first")
    }

    /// A what-if estimator for tenant `i`, backed by the fleet probe
    /// cache when one is attached ([`Self::attach_probe_cache`]), by
    /// the tenant slot's shared estimate cache otherwise.
    pub fn estimator(&self, i: usize) -> WhatIfEstimator<'_> {
        assert!(self.is_calibrated(), "call calibrate() first");
        match &self.probe {
            Some(cache) => {
                WhatIfEstimator::with_probe_cache(&self.tenants[i], self.model(i), cache.clone())
            }
            None => WhatIfEstimator::with_shared_cache(
                &self.tenants[i],
                self.model(i),
                self.caches[i].clone(),
            ),
        }
    }

    /// One estimator per tenant, for a full search.
    fn estimators(&self) -> Vec<WhatIfEstimator<'_>> {
        (0..self.tenants.len()).map(|i| self.estimator(i)).collect()
    }

    /// One executor-backed ground-truth oracle per tenant.
    pub fn actual_models(&self) -> Vec<ActualCostModel<'_>> {
        self.tenants
            .iter()
            .map(|t| ActualCostModel::new(t, &self.hv))
            .collect()
    }

    /// Produce the initial static recommendation with the greedy
    /// enumerator (§4.5).
    pub fn recommend(&self, space: &SearchSpace) -> Recommendation {
        let estimators = self.estimators();
        let result = greedy_search_with(space, &self.qos, &estimators, &self.search_options);
        let accounting = CostAccounting::tally(&estimators);
        Recommendation {
            result,
            optimizer_calls: accounting.optimizer_calls,
            cache_hits: accounting.cache_hits,
        }
    }

    /// The estimate-based optimum over the δ-grid (the paper's
    /// exhaustive-search comparison for §4.5).
    pub fn recommend_exhaustive(&self, space: &SearchSpace) -> Recommendation {
        let estimators = self.estimators();
        let result = exhaustive_search_with(space, &self.qos, &estimators, &self.search_options);
        let accounting = CostAccounting::tally(&estimators);
        Recommendation {
            result,
            optimizer_calls: accounting.optimizer_calls,
            cache_hits: accounting.cache_hits,
        }
    }

    /// Warm-started coarse-to-fine recommendation: bit-identical to a
    /// cold [`coarse_to_fine_search_with`](crate::enumerate::coarse_to_fine_search_with)
    /// over the same estimators, but period-over-period re-runs reuse
    /// the previous solve. The warm key folds in every calibrated
    /// model's fingerprint, so a recalibration (or QoS / search-space
    /// change) cold re-solves automatically; per-tenant workload
    /// fingerprints route unchanged tenants to the cached coarse
    /// tables ([`WarmStart`] delta-solves).
    pub fn recommend_c2f_warm(&self, space: &SearchSpace) -> Recommendation {
        let estimators = self.estimators();
        let c2f = CoarseToFineOptions::auto(space, estimators.len());
        let mut salt_h = Fnv64::new();
        for i in 0..self.tenants.len() {
            salt_h.write_u64(self.model(i).fingerprint());
        }
        let salt = salt_h.finish();
        let fingerprints: Vec<u64> = self.tenants.iter().map(Tenant::fingerprint).collect();
        let mut warm = self.warm.borrow_mut();
        let result = coarse_to_fine_search_warm(
            space,
            &self.qos,
            &estimators,
            &c2f,
            &self.search_options,
            salt,
            &fingerprints,
            &mut warm,
        )
        .expect("no grid can host the workloads (min_share too large)");
        let accounting = CostAccounting::tally(&estimators);
        Recommendation {
            result,
            optimizer_calls: accounting.optimizer_calls,
            cache_hits: accounting.cache_hits,
        }
    }

    /// Cumulative warm-start counters of [`Self::recommend_c2f_warm`]:
    /// `(cold_solves, delta_solves, lattice_reuses)`.
    pub fn warm_stats(&self) -> (u64, u64, u64) {
        let warm = self.warm.borrow();
        (
            warm.cold_solves(),
            warm.delta_solves(),
            warm.lattice_reuses(),
        )
    }

    /// The durable part of this machine's warm-start state (see
    /// [`WarmStart::export`]), or `None` when cold — what a
    /// [`crate::snapshot::FleetSnapshot`] persists per machine.
    pub fn export_warm(&self) -> Option<(u64, Vec<u64>, Vec<Allocation>, SearchResult)> {
        self.warm.borrow().export()
    }

    /// Reinstall a previously [`export_warm`](Self::export_warm)ed
    /// state plus its [`WarmStart::counters`]. The key is re-checked on
    /// the next [`Self::recommend_c2f_warm`], so restoring a snapshot
    /// taken under different calibrations/QoS simply cold re-solves.
    pub fn restore_warm(
        &mut self,
        key: u64,
        fingerprints: Vec<u64>,
        centers: Vec<Allocation>,
        last: SearchResult,
        counters: (u64, u64, u64),
    ) {
        *self.warm.get_mut() = WarmStart::restore(key, fingerprints, centers, last, counters);
    }

    /// Drop the warm-start state so the next
    /// [`Self::recommend_c2f_warm`] is a full cold solve. The control
    /// plane's cold-baseline mode uses this to measure what the
    /// incremental path saves.
    pub fn invalidate_warm(&mut self) {
        self.warm.get_mut().invalidate();
    }

    /// Actual cost (seconds) of tenant `i` under `alloc` — the
    /// simulation's ground truth.
    pub fn actual_cost(&self, i: usize, alloc: Allocation) -> f64 {
        self.tenants[i].actual_cost(&self.hv, alloc)
    }

    /// Price tenant `i` at `alloc`, observe the executor's actual, and
    /// record the residual into `storage`. The prediction is reduced to
    /// the **base** (un-adapted) model — any
    /// [`Adaption`](crate::costmodel::Adaption) overlay on the
    /// installed calibration is divided back out — so refits over the
    /// store always correct the analytic fit, never a correction of a
    /// correction (the same rule the control plane's
    /// `ActualsReported` path follows). Returns `(base predicted,
    /// actual)` seconds.
    pub fn record_actual(
        &self,
        i: usize,
        alloc: Allocation,
        storage: &mut crate::costmodel::RuntimeAdaptionStorage,
    ) -> (f64, f64) {
        let est = self.estimator(i);
        let installed = est.estimate(alloc).seconds;
        let kind = self.tenants[i].engine.kind();
        let factor = self
            .calibration(kind)
            .and_then(|model| model.adaption)
            .map_or(1.0, |a| a.factor(alloc));
        let predicted = installed / factor;
        let actual = self.actual_cost(i, alloc);
        storage.record(self.tenants[i].fingerprint(), alloc, predicted, actual);
        (predicted, actual)
    }

    /// Total actual cost over all tenants for a full allocation vector.
    pub fn total_actual(&self, allocations: &[Allocation]) -> f64 {
        allocations
            .iter()
            .enumerate()
            .map(|(i, a)| self.actual_cost(i, *a))
            .sum()
    }

    /// The *actual-cost* optimum over the δ-grid, "obtained by
    /// exhaustively enumerating all feasible allocations and measuring
    /// performance in each one" (§7.6).
    pub fn optimal_actual(&self, space: &SearchSpace) -> SearchResult {
        exhaustive_search_with(
            space,
            &self.qos,
            &self.actual_models(),
            &self.search_options,
        )
    }

    /// The default (1/N) allocation vector.
    pub fn default_allocations(&self, space: &SearchSpace) -> Vec<Allocation> {
        vec![space.default_allocation(self.tenants.len()); self.tenants.len()]
    }

    /// Relative actual improvement of `allocations` over the default
    /// allocation: `(T_default − T_alloc) / T_default` (§7.1).
    pub fn actual_improvement(&self, space: &SearchSpace, allocations: &[Allocation]) -> f64 {
        let t_default = self.total_actual(&self.default_allocations(space));
        let t_alloc = self.total_actual(allocations);
        (t_default - t_alloc) / t_default
    }

    /// Relative *estimated* improvement over the default allocation —
    /// the metric of the controlled validation experiments (§7.3–7.5).
    pub fn estimated_improvement(&self, space: &SearchSpace, allocations: &[Allocation]) -> f64 {
        let estimators = self.estimators();
        let default = self.default_allocations(space);
        let t_default: f64 = estimators
            .iter()
            .zip(&default)
            .map(|(e, a)| e.cost(*a))
            .sum();
        let t_alloc: f64 = estimators
            .iter()
            .zip(allocations)
            .map(|(e, a)| e.cost(*a))
            .sum();
        (t_default - t_alloc) / t_default
    }

    /// Fit the initial refinement model for tenant `i` from what-if
    /// estimates (§5.1).
    pub fn fit_refinement_model(&self, i: usize, space: &SearchSpace, grid: usize) -> RefinedModel {
        RefinedModel::fit_initial(space, grid, &self.estimator(i))
    }

    /// Run online refinement (§5) starting from `start`, observing
    /// actual executor costs. Returns the outcome plus the refined
    /// models (for continued dynamic management).
    pub fn refine_recommendation(
        &self,
        space: &SearchSpace,
        start: &[Allocation],
        opts: &RefineOptions,
    ) -> (RefinementOutcome, Vec<RefinedModel>) {
        let mut models: Vec<RefinedModel> = (0..self.tenants.len())
            .map(|i| self.fit_refinement_model(i, space, opts.sample_grid))
            .collect();
        let outcome = refine(
            &mut models,
            space,
            &self.qos,
            start,
            &self.actual_models(),
            opts,
        );
        (outcome, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_simdb::engines::Engine;
    use vda_vmm::PhysicalMachine;
    use vda_workloads::tpch;

    fn advisor_two_dss() -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        // Q18 (CPU-heavy) vs Q6 (scan-only): clear CPU asymmetry.
        adv.add_tenant(
            Tenant::new(
                "cpuheavy",
                Engine::pg(),
                cat.clone(),
                tpch::query_workload(18, 2.0),
            )
            .unwrap(),
            QoS::default(),
        );
        adv.add_tenant(
            Tenant::new("ioheavy", Engine::pg(), cat, tpch::query_workload(6, 2.0)).unwrap(),
            QoS::default(),
        );
        adv.calibrate();
        adv
    }

    fn advisor_mixed_engines() -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        adv.add_tenant(
            Tenant::new(
                "pg",
                Engine::pg(),
                cat.clone(),
                tpch::query_workload(18, 2.0),
            )
            .unwrap(),
            QoS::default(),
        );
        adv.add_tenant(
            Tenant::new("db2", Engine::db2(), cat, tpch::query_workload(6, 2.0)).unwrap(),
            QoS::default(),
        );
        adv.calibrate();
        adv
    }

    #[test]
    fn recommend_requires_calibration() {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        adv.add_tenant(
            Tenant::new(
                "t",
                Engine::pg(),
                tpch::catalog(1.0),
                tpch::query_workload(6, 1.0),
            )
            .unwrap(),
            QoS::default(),
        );
        assert!(!adv.is_calibrated());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            adv.estimator(0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn recommendation_shifts_cpu_to_cpu_bound_tenant() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        assert!(
            rec.result.allocations[0].cpu() > 0.5,
            "CPU-heavy tenant should win CPU: {:?}",
            rec.result.allocations
        );
        assert!(rec.optimizer_calls > 0);
        // Feasibility.
        let total: f64 = rec.result.allocations.iter().map(|a| a.cpu()).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn greedy_close_to_exhaustive_estimate_optimum() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let greedy = adv.recommend(&space);
        let exact = adv.recommend_exhaustive(&space);
        assert!(
            greedy.result.weighted_cost <= exact.result.weighted_cost * 1.05 + 1e-9,
            "greedy {} vs optimal {}",
            greedy.result.weighted_cost,
            exact.result.weighted_cost
        );
    }

    #[test]
    fn shared_cache_amortizes_optimizer_calls_across_searches() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let first = adv.recommend(&space);
        assert!(first.optimizer_calls > 0);
        // The same search again is answered from the shared caches.
        let second = adv.recommend(&space);
        assert_eq!(second.optimizer_calls, 0, "{second:?}");
        assert!(second.cache_hits > 0);
        assert_eq!(first.result, second.result);
    }

    #[test]
    fn recommendation_improves_actual_performance() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        let imp = adv.actual_improvement(&space, &rec.result.allocations);
        assert!(imp >= -0.02, "advisor must not hurt performance: {imp}");
    }

    #[test]
    fn calibration_is_shared_per_engine_kind() {
        let adv = advisor_two_dss();
        // Both tenants run PgSim: identical models.
        assert_eq!(adv.model(0), adv.model(1));
    }

    #[test]
    fn swap_tenants_moves_workload_and_model() {
        let mut adv = advisor_two_dss();
        let n0 = adv.tenant(0).name.clone();
        let c0 = adv.actual_cost(0, crate::problem::Allocation::new(0.5, 0.5));
        adv.swap_tenants(0, 1);
        assert_eq!(adv.tenant(1).name, n0);
        let c1 = adv.actual_cost(1, crate::problem::Allocation::new(0.5, 0.5));
        assert!((c0 - c1).abs() < 1e-9, "workload must move with the swap");
        // Estimators keep working after the swap (models moved too).
        let _ = adv
            .estimator(0)
            .cost(crate::problem::Allocation::new(0.5, 0.5));
    }

    #[test]
    fn swap_tenants_keeps_engine_model_pairing_for_mixed_engines() {
        // §7.10 regression: swapping tenants of *different* engine
        // kinds must keep each tenant paired with its own engine's
        // calibration, and estimates must move with the tenant.
        let mut adv = advisor_mixed_engines();
        let a = Allocation::new(0.5, 0.5);
        let pg_est = adv.estimator(0).cost(a);
        let db2_est = adv.estimator(1).cost(a);
        let pg_kind = adv.tenant(0).engine.kind();

        adv.swap_tenants(0, 1);
        assert!(adv.is_calibrated(), "swap must not lose calibration");
        // Slot 1 now hosts the pg tenant; its model must be the pg
        // calibration, and its estimate must equal the pre-swap value.
        assert_eq!(adv.tenant(1).engine.kind(), pg_kind);
        assert_eq!(
            adv.estimator(1).cost(a),
            pg_est,
            "estimate must follow the tenant through the swap"
        );
        assert_eq!(adv.estimator(0).cost(a), db2_est);
        // Swapping back restores the original pairing too.
        adv.swap_tenants(0, 1);
        assert_eq!(adv.estimator(0).cost(a), pg_est);
        assert_eq!(adv.estimator(1).cost(a), db2_est);
    }

    #[test]
    fn adding_a_tenant_of_known_kind_stays_calibrated() {
        let mut adv = advisor_two_dss();
        assert!(adv.is_calibrated());
        // Per the paper, calibration is per-DBMS-per-machine: a new
        // tenant on an already-calibrated engine needs no recalibration.
        adv.add_tenant(
            Tenant::new(
                "late",
                Engine::pg(),
                tpch::catalog(1.0),
                tpch::query_workload(1, 1.0),
            )
            .unwrap(),
            QoS::default(),
        );
        assert!(adv.is_calibrated());
        let _ = adv.estimator(2).cost(Allocation::new(0.5, 0.5));
        // A tenant of a *new* kind does require recalibration.
        adv.add_tenant(
            Tenant::new(
                "newkind",
                Engine::db2(),
                tpch::catalog(1.0),
                tpch::query_workload(1, 1.0),
            )
            .unwrap(),
            QoS::default(),
        );
        assert!(!adv.is_calibrated());
        adv.calibrate();
        assert!(adv.is_calibrated());
    }

    #[test]
    fn transfer_tenant_carries_model_and_cache_to_identical_machine() {
        let mut src = advisor_two_dss();
        let a = Allocation::new(0.5, 0.5);
        let warm = src.estimator(0).cost(a); // warms the shared cache
        let mut dst =
            VirtualizationDesignAdvisor::new(Hypervisor::new(PhysicalMachine::paper_testbed()));
        let t = src.transfer_tenant(0, &mut dst);
        assert_eq!(src.tenant_count(), 1);
        assert_eq!(dst.tenant_count(), 1);
        // Calibrated model traveled: no recalibration needed.
        assert_eq!(t.calibration, TransferCalibration::Traveled);
        assert!(t.calibration.destination_ready());
        assert!(dst.is_calibrated(), "model must travel with the tenant");
        // Cached estimates traveled too: same answer, zero new
        // optimizer calls.
        let est = dst.estimator(t.index);
        assert_eq!(est.cost(a), warm);
        assert_eq!(est.optimizer_calls(), 0);
        assert!(est.cache_hits() > 0);
    }

    #[test]
    fn transfer_tenant_to_different_machine_demotes_calibration() {
        let mut src = advisor_two_dss();
        let a = Allocation::new(0.5, 0.5);
        let _ = src.estimator(0).cost(a);
        let mut spec = PhysicalMachine::paper_testbed();
        spec.core_ghz *= 2.0;
        let mut dst = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        let t = src.transfer_tenant(0, &mut dst);
        // Calibration is per-machine: the source's model must not be
        // trusted on different hardware.
        assert_eq!(t.calibration, TransferCalibration::Demoted);
        assert!(!t.calibration.destination_ready());
        assert!(!dst.is_calibrated());
        dst.ensure_calibrated();
        assert!(dst.is_calibrated());
        let est = dst.estimator(t.index);
        let _ = est.cost(a);
        assert!(est.optimizer_calls() > 0, "stale cache must not be served");
    }

    #[test]
    fn transfer_across_hardware_recalibrates_to_destination_oracle() {
        // The full calibration-management contract of a cross-hardware
        // migration: the source model must NOT travel, the estimate
        // cache must be dropped, and — after the destination
        // calibrates — the usual refinement rounds must converge the
        // tenant's model to the *destination's* actual-cost oracle,
        // not the source's.
        let mut src = advisor_two_dss();
        let a = Allocation::new(0.5, 0.5);
        let src_model = src.model(0).clone();
        let _ = src.estimator(0).cost(a); // warm the cache that must be dropped
        let mut spec = PhysicalMachine::paper_testbed();
        spec.core_ghz *= 2.0;
        spec.memory_mb *= 2.0;
        let mut dst = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        let t = src.transfer_tenant(0, &mut dst);
        assert_eq!(t.calibration, TransferCalibration::Demoted);
        // Cache dropped: nothing is served without optimizer work.
        dst.ensure_calibrated();
        assert_ne!(
            dst.model(t.index),
            &src_model,
            "destination must fit its own calibration, not reuse the source's"
        );
        let est = dst.estimator(t.index);
        let _ = est.cost(a);
        assert!(est.optimizer_calls() > 0, "stale cache must not be served");
        // Refinement on the destination converges toward the
        // destination's ground truth within the usual rounds.
        let space = SearchSpace::cpu_only(0.5);
        let rec = dst.recommend(&space);
        let (_, models) =
            dst.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
        let check = rec.result.allocations[t.index];
        let actual = dst.actual_cost(t.index, check);
        let refined = models[t.index].predict(check);
        let rel_err = (refined - actual).abs() / actual.max(1e-12);
        assert!(
            rel_err < 0.05,
            "refined model must track the destination oracle: rel err {rel_err}"
        );
    }

    #[test]
    fn transfer_to_identically_calibrated_machine_reuses_calibration() {
        let mut src = advisor_two_dss();
        let mut dst = advisor_two_dss(); // same hardware, same calibration
        let a = Allocation::new(0.5, 0.5);
        let warm = src.estimator(0).cost(a);
        let t = src.transfer_tenant(0, &mut dst);
        assert_eq!(t.calibration, TransferCalibration::ReusedIdentical);
        // The warm cache traveled and stays valid under the identical
        // calibration.
        let est = dst.estimator(t.index);
        assert_eq!(est.cost(a), warm);
        assert_eq!(est.optimizer_calls(), 0);
    }

    #[test]
    fn install_calibration_replaces_and_cold_starts() {
        let mut adv = advisor_two_dss();
        let a = Allocation::new(0.5, 0.5);
        let _ = adv.estimator(0).cost(a);
        let kind = adv.tenant(0).engine.kind();
        let same = adv.model(0).clone();
        // Identical model: caches stay warm.
        adv.install_calibration(kind, same);
        let est = adv.estimator(0);
        let _ = est.cost(a);
        assert_eq!(
            est.optimizer_calls(),
            0,
            "identical install must keep caches"
        );
        // A genuinely different calibration cold-starts the caches.
        let mut spec = PhysicalMachine::paper_testbed();
        spec.core_ghz *= 2.0;
        let other_hv = Hypervisor::new(spec);
        let other = Calibrator::with_config(&other_hv, adv.calibration_config().clone())
            .calibrate(&adv.tenant(0).engine.clone());
        adv.install_calibration(kind, other.clone());
        assert_eq!(adv.calibration(kind), Some(&other));
        let est = adv.estimator(0);
        let _ = est.cost(a);
        assert!(est.optimizer_calls() > 0, "stale cache must be dropped");
    }

    #[test]
    fn refinement_runs_end_to_end() {
        let adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let rec = adv.recommend(&space);
        let (outcome, models) =
            adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
        assert_eq!(models.len(), 2);
        assert!(outcome.iterations >= 1);
        let total: f64 = outcome.final_allocations.iter().map(|a| a.cpu()).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn warm_recommend_caches_and_delta_solves_on_drift() {
        let mut adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let first = adv.recommend_c2f_warm(&space);
        assert_eq!(adv.warm_stats().0, 1, "first call is cold");
        assert!(first.optimizer_calls > 0);
        // Unchanged period: cached result, zero optimizer calls.
        let second = adv.recommend_c2f_warm(&space);
        assert_eq!(adv.warm_stats(), (1, 0, adv.warm_stats().2));
        assert_eq!(second.optimizer_calls, 0, "{second:?}");
        assert_eq!(first.result, second.result);
        // One tenant drifts: delta-solve, matching a cold solve on a
        // fresh identical advisor bit-for-bit.
        adv.tenant_mut(0).scale_workload(3.0);
        let drifted = adv.recommend_c2f_warm(&space);
        assert_eq!(adv.warm_stats().1, 1, "drift must delta-solve");
        let mut cold = advisor_two_dss();
        cold.tenant_mut(0).scale_workload(3.0);
        let reference = cold.recommend_c2f_warm(&space);
        assert_eq!(drifted.result, reference.result);
    }

    #[test]
    fn warm_recommend_cold_resolves_after_calibration_flip() {
        let mut adv = advisor_two_dss();
        let space = SearchSpace::cpu_only(0.5);
        let before = adv.recommend_c2f_warm(&space);
        let _ = adv.recommend_c2f_warm(&space);
        assert_eq!(adv.warm_stats().0, 1, "second call must stay cached");
        // Flip the calibration (a genuinely different model): the warm
        // state and cached lattices must be invalidated — the next
        // recommend is a full cold re-solve, not a cache hit.
        let kind = adv.tenant(0).engine.kind();
        let mut model = adv.calibration(kind).unwrap().clone();
        let old_fingerprint = model.fingerprint();
        model.machine_mem_mb *= 2.0;
        assert_ne!(model.fingerprint(), old_fingerprint);
        adv.install_calibration(kind, model);
        let after = adv.recommend_c2f_warm(&space);
        assert_eq!(adv.warm_stats().0, 2, "calibration flip must cold re-solve");
        assert!(after.optimizer_calls > 0);
        // The re-solve runs against the flipped model; for this
        // CPU-only space its answer must still be self-consistent.
        assert_eq!(
            after.result.allocations.len(),
            before.result.allocations.len()
        );
    }

    #[test]
    fn probe_cache_shares_probes_across_advisors() {
        let cache = ProbeCache::new();
        let mut a = advisor_two_dss();
        let mut b = advisor_two_dss();
        a.attach_probe_cache(cache.clone());
        b.attach_probe_cache(cache.clone());
        let space = SearchSpace::cpu_only(0.5);
        let ra = a.recommend(&space);
        assert!(ra.optimizer_calls > 0);
        // Identical hardware ⇒ identical calibration fingerprints, and
        // the same tenants ⇒ identical probe keys: machine B prices the
        // whole search from machine A's probes.
        let rb = b.recommend(&space);
        assert_eq!(rb.optimizer_calls, 0, "{rb:?}");
        assert_eq!(ra.result, rb.result);
        assert!(cache.hits() > 0);
    }
}
