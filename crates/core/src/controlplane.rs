//! The sharded fleet **control plane**: event-driven re-optimization
//! at production scale.
//!
//! [`FleetManager`](crate::dynamic::FleetManager) runs the paper's §6
//! loop as synchronous monitoring periods: every machine re-solves
//! every period. That is the right shape for tens of machines and the
//! paper's experiments, but a fleet of hundreds of machines and
//! thousands of tenants does not change in lockstep — it emits a
//! stream of *events* (a workload drifts, a tenant arrives or leaves,
//! a machine is decommissioned), and only a handful of machines are
//! affected by each one. [`ControlPlane`] is the event-driven layer:
//!
//! 1. **Shard** the fleet by pricing class
//!    ([`MachineClass::of`]`(space).salted(hardware)` — see
//!    [`ControlPlane::shards`]): machines of one shard share
//!    calibrations (the class registry), probe-cache entries (the
//!    fleet-wide [`ProbeCache`]), and therefore most of each other's
//!    optimizer work.
//! 2. **Re-solve only the dirty machines** of an event, in parallel,
//!    each through its advisor's warm-started coarse-to-fine search
//!    ([`VirtualizationDesignAdvisor::recommend_c2f_warm`]): unchanged
//!    machines keep their placements, drifted machines delta-solve
//!    against their retained DP lattices, and everything stays
//!    bit-identical to a cold re-solve of the whole fleet.
//! 3. **Reconcile**: a *major* workload change (the §6.1 per-query
//!    estimate metric against
//!    [`ControlPlaneOptions::change_threshold`]) or a tenant arrival
//!    makes that tenant a cross-shard migration candidate. Candidate
//!    destinations (the least-loaded machines with capacity,
//!    [`ControlPlaneOptions::reconcile_fanout`] of them) are priced
//!    non-destructively with hypothetical estimator sets; the merge is
//!    deterministic — candidates are visited in `(tenant count,
//!    machine index)` order and a move is taken only if its
//!    surcharge-netted gain strictly beats the best so far and clears
//!    [`ControlPlaneOptions::migration_threshold`]. Calibration
//!    management follows
//!    [`VirtualizationDesignAdvisor::transfer_tenant`]: cross-class
//!    moves install the destination class's registry model instead of
//!    trusting one fit on different hardware.
//! 4. **Record**: each event appends a [`Decision`] to the log and a
//!    wall-clock decision latency to the (non-durable) latency ring;
//!    [`ControlPlane::p99_latency_ms`] summarizes via
//!    [`crate::metrics::percentile`].
//!
//! Events can also be ingested **in batches**
//! ([`ControlPlane::process_batch`]): same-slot workload events are
//! coalesced (last-write-wins — see the method docs for the exact
//! rule), every dirty machine is marked once, and the whole batch is
//! re-solved in a *single* parallel wave instead of one wave per
//! event. At scale both the probe cache and the decision log run in
//! **bounded-memory modes**: a row-capped [`ProbeCache`] with
//! deterministic logical-epoch LRU eviction
//! ([`ControlPlaneOptions::probe_cache_capacity`]) and a ring-buffer
//! [`DecisionLog`] with a configurable retention horizon
//! ([`ControlPlaneOptions::decision_log_capacity`]). Capping either
//! never changes any decision — only the optimizer-call bill and the
//! retained history.
//!
//! The whole control-plane state — calibrations, class registry,
//! placements, warm-start exports, probe entries, decision log — is
//! durable: [`ControlPlane::snapshot`] captures a
//! [`crate::snapshot::FleetSnapshot`] and
//! [`ControlPlane::restore`] resumes from one at delta-solve cost, with
//! results bit-identical to a process that never restarted.

use crate::advisor::{Recommendation, VirtualizationDesignAdvisor};
use crate::costmodel::adaptive::{refit, Adaption, AdaptionOptions, RuntimeAdaptionStorage};
use crate::costmodel::calibration::{CalibratedModel, Calibrator};
use crate::costmodel::whatif::{ProbeCache, WhatIfEstimator};
use crate::dynamic::{migration_gain, two_mut, Migration};
use crate::enumerate::{
    try_coarse_to_fine_search_with, CoarseToFineOptions, MachineClass, SearchOptions, SearchResult,
};
use crate::guardrail::{GuardrailOptions, GuardrailState, GuardrailTracker};
use crate::metrics::{percentile, Clock, CostAccounting};
use crate::placement::machine_capacity;
use crate::problem::{QoS, SearchSpace};
use crate::snapshot::{
    AdaptionSnapshot, FleetSnapshot, MachineSnapshot, TunerSnapshot, WarmSnapshot,
};
use crate::tenant::Tenant;
use parking_lot::Mutex;
use rayon::prelude::ParallelMapSlice;
use std::collections::{BTreeMap, HashSet};
use vda_simdb::engines::EngineKind;
use vda_workloads::Workload;

/// One fleet state change, applied by [`ControlPlane::process_event`].
///
/// Machine and slot indices refer to the control plane's *current*
/// numbering; [`FleetEvent::MachineDecommissioned`] swap-removes, so
/// the last machine takes the removed machine's index.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A tenant's workload was replaced (the §6 drift scenario).
    /// Classified major/minor by the per-query cost-estimate metric;
    /// major changes become migration candidates.
    WorkloadChanged {
        /// Host machine index.
        machine: usize,
        /// Tenant slot on that machine.
        slot: usize,
        /// The new workload (must bind against the tenant's catalog).
        workload: Workload,
    },
    /// A tenant's workload intensity was scaled (statement counts
    /// multiplied by `factor`). Per §6.1 the per-query metric is
    /// deliberately insensitive to intensity, so this classifies minor:
    /// the host re-solves (relative weights shifted) but no migration
    /// is considered.
    WorkloadScaled {
        /// Host machine index.
        machine: usize,
        /// Tenant slot on that machine.
        slot: usize,
        /// Multiplier applied to every statement count.
        factor: f64,
    },
    /// A new tenant was provisioned onto a machine. The control plane
    /// calibrates the host for the tenant's engine kind if needed
    /// (through the class registry — one fit per hardware class per
    /// kind) and immediately treats the tenant as a migration
    /// candidate, so a bad initial placement is corrected in the same
    /// event.
    TenantArrived {
        /// Host machine index (must have a free capacity slot).
        machine: usize,
        /// The tenant (boxed: tenants carry their catalog + workload).
        tenant: Box<Tenant>,
        /// The tenant's service-level settings.
        qos: QoS,
    },
    /// A tenant was deprovisioned.
    TenantDeparted {
        /// Host machine index.
        machine: usize,
        /// Tenant slot on that machine.
        slot: usize,
    },
    /// An *empty* machine left the fleet (swap-remove: the last
    /// machine takes index `machine`). Dead calibrations and their
    /// probe-cache entries are pruned immediately — see
    /// [`ProbeCache::retain_models`].
    MachineDecommissioned {
        /// Index of the machine to remove; it must host no tenants.
        machine: usize,
    },
    /// The executor reported actual runtimes for a hosted tenant. A
    /// no-op unless [`ControlPlaneOptions::adaptive`] is set; with
    /// adaptive tuning on, the residual against the *base* (un-adapted)
    /// calibrated model is recorded into the per-(hardware class,
    /// engine kind) [`RuntimeAdaptionStorage`], a refit may open a
    /// [`GuardrailTracker`], and the tracker's Shadow → Canary →
    /// Promoted/RolledBack verdicts install or retire adapted models
    /// (see the decision-log labels `(shadow)`, `(canary)`,
    /// `(promoted)`, `(rolled-back)`).
    ActualsReported {
        /// Host machine index.
        machine: usize,
        /// Tenant slot on that machine.
        slot: usize,
    },
}

/// Everything adaptive tuning needs, bundled so
/// [`ControlPlaneOptions::adaptive`] is a single opt-in: the residual
/// store / refit knobs plus the guardrail thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdaptiveTuningOptions {
    /// Residual storage and refit knobs.
    pub adaption: AdaptionOptions,
    /// Shadow/canary promotion gates.
    pub guardrail: GuardrailOptions,
}

/// Tuning knobs of the [`ControlPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPlaneOptions {
    /// λ of the §6.1 major/minor classifier on the per-query
    /// cost-estimate change (the paper uses 10 %). Only major changes
    /// become migration candidates.
    pub change_threshold: f64,
    /// Minimum relative fleet-objective gain (net of any surcharge)
    /// before a reconcile migration is taken.
    pub migration_threshold: f64,
    /// Gain penalty applied to cross-hardware-class candidates — the
    /// destination must recalibrate the tenant's model, so the move
    /// has to promise strictly more than a same-class one.
    pub recalibration_surcharge: f64,
    /// How many candidate destinations (least-loaded first) the
    /// reconcile pass prices per migration candidate.
    pub reconcile_fanout: usize,
    /// Prune the probe cache and class registry every this many events
    /// (`0` disables periodic pruning; decommissions always prune).
    pub prune_every: u64,
    /// `true` (the default): warm-started delta solves over persistent
    /// caches. `false`: every event invalidates all warm state and
    /// cold-starts the probe cache first — the baseline the incremental
    /// path is measured against. Results are bit-identical either way.
    pub incremental: bool,
    /// Row capacity of the fleet [`ProbeCache`] (`0`, the default:
    /// unbounded). When set, least-recently-used `(model, tenant)`
    /// generations are evicted at the end of each event or batch —
    /// recency is the logical event sequence, so eviction (and every
    /// gated counter downstream of it) is bit-identical across thread
    /// counts. Decisions never change: the cache is read-through, a
    /// capped run just pays more optimizer calls.
    pub probe_cache_capacity: usize,
    /// Retention horizon of the [`DecisionLog`] in entries (`0`, the
    /// default: unbounded). When set, the log becomes a ring buffer:
    /// the oldest decision is overwritten and counted in
    /// [`DecisionLog::dropped`].
    pub decision_log_capacity: usize,
    /// Adaptive cost-model tuning (`None`, the default: off).
    /// With `None` every [`FleetEvent::ActualsReported`] is a recorded
    /// no-op and the plane's decisions are bit-identical to a build
    /// without the adaptive subsystem.
    pub adaptive: Option<AdaptiveTuningOptions>,
}

impl Default for ControlPlaneOptions {
    fn default() -> Self {
        ControlPlaneOptions {
            change_threshold: 0.10,
            migration_threshold: 0.05,
            recalibration_surcharge: 0.02,
            reconcile_fanout: 4,
            prune_every: 64,
            incremental: true,
            probe_cache_capacity: 0,
            decision_log_capacity: 0,
            adaptive: None,
        }
    }
}

/// One entry of the durable decision log: what an event (or batch)
/// changed. Deliberately excludes wall-clock measurements so snapshots
/// of two runs over the same event stream compare bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Event sequence number (1-based; `seq` events processed so far).
    /// A batch decision carries the sequence number of its *last*
    /// event.
    pub seq: u64,
    /// Compact human-readable description of the event and its
    /// classification, e.g. `"workload-changed m12 t3 (major)"`, or of
    /// the batch composition.
    pub action: String,
    /// Machines re-solved by this event (sorted).
    pub resolved: Vec<usize>,
    /// The reconcile migrations taken — at most one per single event,
    /// possibly several for a batch.
    pub migrations: Vec<Migration>,
    /// Estimated fleet objective after the event.
    pub objective: f64,
}

/// The decision log: unbounded by default, a fixed-capacity **ring
/// buffer** when [`ControlPlaneOptions::decision_log_capacity`] is
/// set. Once full, each push overwrites the oldest entry and bumps
/// [`Self::dropped`]; iteration ([`Self::iter`], [`Self::to_vec`]) is
/// always oldest → newest regardless of where the ring's head sits.
///
/// Equality is *logical*: two logs are equal when they hold the same
/// decisions in the same order and dropped the same count — the
/// internal head position does not participate. Snapshots serialize
/// the log in logical order plus the dropped counter
/// (`docs/FORMATS.md`), so a restored ring (head reset to `0`)
/// re-serializes byte-identically.
#[derive(Debug, Clone)]
pub struct DecisionLog {
    capacity: usize,
    buf: Vec<Decision>,
    head: usize,
    dropped: u64,
}

impl DecisionLog {
    /// An empty log: ring of `capacity` entries, unbounded when `0`.
    pub fn with_capacity(capacity: usize) -> Self {
        DecisionLog {
            capacity,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Rebuild from snapshot state: `entries` in logical order plus
    /// the historical drop counter. If `entries` exceeds the
    /// configured capacity, the oldest excess is dropped (and
    /// counted) — the snapshot may have been taken with a larger
    /// horizon than the restoring process is configured with.
    pub(crate) fn restore(capacity: usize, mut entries: Vec<Decision>, dropped: u64) -> Self {
        let mut dropped = dropped;
        if capacity > 0 && entries.len() > capacity {
            let excess = entries.len() - capacity;
            entries.drain(..excess);
            dropped += excess as u64;
        }
        DecisionLog {
            capacity,
            buf: entries,
            head: 0,
            dropped,
        }
    }

    /// The configured retention horizon (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a decision, overwriting the oldest entry once the ring
    /// is full.
    pub fn push(&mut self, decision: Decision) {
        if self.capacity == 0 || self.buf.len() < self.capacity {
            self.buf.push(decision);
        } else {
            self.buf[self.head] = decision;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained decisions, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Decision> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The retained decisions as a vector, oldest → newest.
    pub fn to_vec(&self) -> Vec<Decision> {
        self.iter().cloned().collect()
    }

    /// The most recent decision, if any.
    pub fn latest(&self) -> Option<&Decision> {
        if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }

    /// Number of retained decisions (≤ capacity once bounded).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Decisions overwritten (dropped) since the log was created.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl PartialEq for DecisionLog {
    fn eq(&self, other: &Self) -> bool {
        self.dropped == other.dropped && self.iter().eq(other.iter())
    }
}

/// What [`ControlPlane::process_event`] returns to the caller: the
/// durable [`Decision`] fields plus the non-durable measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// Event sequence number.
    pub seq: u64,
    /// Compact description (same string as the logged [`Decision`]).
    pub action: String,
    /// Machines re-solved by this event (sorted).
    pub resolved: Vec<usize>,
    /// The reconcile migration taken, if any.
    pub migration: Option<Migration>,
    /// Estimated fleet objective after the event.
    pub objective: f64,
    /// Wall-clock decision latency of this event, milliseconds.
    pub latency_ms: f64,
    /// Query-optimizer invocations this event paid (re-solves plus
    /// reconcile pricing plus classification estimates).
    pub optimizer_calls: u64,
}

/// What [`ControlPlane::process_batch`] returns: the durable
/// [`Decision`] fields of the one batch decision plus the non-durable
/// measurements for the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Event sequence number after the batch (the last event's).
    pub seq: u64,
    /// Number of events the batch carried.
    pub events: usize,
    /// Compact description of the batch composition (same string as
    /// the logged [`Decision`]).
    pub action: String,
    /// Machines re-solved by this batch (sorted).
    pub resolved: Vec<usize>,
    /// The reconcile migrations taken, in candidate order.
    pub migrations: Vec<Migration>,
    /// Estimated fleet objective after the batch.
    pub objective: f64,
    /// Wall-clock decision latency of the whole batch, milliseconds.
    pub latency_ms: f64,
    /// Query-optimizer invocations the batch paid.
    pub optimizer_calls: u64,
}

/// Cumulative control-plane counters, from [`ControlPlane::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlPlaneStats {
    /// Machines currently in the fleet.
    pub machines: usize,
    /// Tenants currently hosted.
    pub tenants: usize,
    /// Distinct pricing classes (shards) present.
    pub shards: usize,
    /// Events processed.
    pub events: u64,
    /// Per-machine re-solves performed.
    pub resolves: u64,
    /// Parallel re-solve waves dispatched (one [`resolve`] pass over a
    /// non-empty dirty set — batching exists to keep this low).
    ///
    /// [`resolve`]: ControlPlane::process_batch
    pub waves: u64,
    /// Reconcile migrations executed.
    pub migrations: u64,
    /// Total query-optimizer invocations (construction + events).
    pub optimizer_calls: u64,
    /// Fleet probe-cache hits.
    pub probe_hits: u64,
    /// Fleet probe-cache misses.
    pub probe_misses: u64,
    /// Probe rows evicted by the bounded-memory LRU (`0` while the
    /// cache runs unbounded — see
    /// [`ControlPlaneOptions::probe_cache_capacity`]).
    pub probe_evictions: u64,
    /// Approximate probe-cache resident bytes under its deterministic
    /// size model ([`ProbeCache::approx_bytes`]).
    pub probe_bytes: u64,
}

/// Per-kind event tally of one batch, for the batch decision's action
/// string.
#[derive(Debug, Default)]
struct BatchKinds {
    changed: usize,
    scaled: usize,
    arrived: usize,
    departed: usize,
    decommissioned: usize,
    actuals: usize,
    coalesced: usize,
    major: usize,
}

impl BatchKinds {
    /// Deterministic, compact batch description, e.g.
    /// `"batch n4 (changed 2, scaled 1, arrived 1; 1 major, 1 coalesced)"`.
    fn describe(&self, n: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (label, count) in [
            ("changed", self.changed),
            ("scaled", self.scaled),
            ("arrived", self.arrived),
            ("departed", self.departed),
            ("decommissioned", self.decommissioned),
            ("actuals", self.actuals),
        ] {
            if count > 0 {
                parts.push(format!("{label} {count}"));
            }
        }
        format!(
            "batch n{n} ({}; {} major, {} coalesced)",
            parts.join(", "),
            self.major,
            self.coalesced
        )
    }
}

/// The event-driven fleet controller. See the [module docs](self) for
/// the event lifecycle.
#[derive(Debug)]
pub struct ControlPlane {
    machines: Vec<VirtualizationDesignAdvisor>,
    spaces: Vec<SearchSpace>,
    options: ControlPlaneOptions,
    /// Fleet-wide probe cache, shared by every advisor and by the
    /// reconcile pass's hypothetical estimators.
    probe: ProbeCache,
    /// Class calibration registry: one fitted model per (hardware
    /// fingerprint, engine kind), installed on machines instead of
    /// refitting per machine. Ordered so every traversal (snapshot
    /// registry, cache pruning) is independent of insertion history.
    class_models: BTreeMap<(u64, EngineKind), CalibratedModel>,
    /// Current placement per machine (`None` while a machine is
    /// empty).
    placements: Vec<Option<SearchResult>>,
    /// Per-(hardware class, engine kind) residual stores feeding the
    /// adaptive refits. Empty unless
    /// [`ControlPlaneOptions::adaptive`] is set.
    adaption: BTreeMap<(u64, EngineKind), RuntimeAdaptionStorage>,
    /// Live guardrail trackers — at most one candidate correction in
    /// flight per (hardware class, engine kind).
    tuners: BTreeMap<(u64, EngineKind), GuardrailTracker>,
    log: DecisionLog,
    seq: u64,
    /// Latency source for [`process_event`](Self::process_event):
    /// wall by default, injectable ([`Self::set_clock`]) so tests and
    /// replays get deterministic latency reports.
    clock: Clock,
    latencies_ms: Vec<f64>,
    optimizer_calls: u64,
    resolves: u64,
    waves: u64,
    migrations: u64,
}

impl ControlPlane {
    /// Stand up the control plane: attach the shared probe cache,
    /// calibrate every tenant-hosting machine through the class
    /// registry (one fit per hardware class per engine kind — machines
    /// already calibrated seed the registry), and solve every machine
    /// for the initial placements.
    ///
    /// # Panics
    ///
    /// If `machines` and `spaces` lengths differ, the fleet is empty,
    /// or any machine hosts more tenants than its space has capacity
    /// for.
    pub fn new(
        machines: Vec<VirtualizationDesignAdvisor>,
        spaces: Vec<SearchSpace>,
        options: ControlPlaneOptions,
    ) -> Self {
        assert_eq!(machines.len(), spaces.len(), "one search space per machine");
        assert!(!machines.is_empty(), "fleet must not be empty");
        let k = machines.len();
        let placements = vec![None; k];
        let probe = ProbeCache::new();
        probe.set_capacity(options.probe_cache_capacity);
        let log = DecisionLog::with_capacity(options.decision_log_capacity);
        let mut plane = ControlPlane {
            machines,
            spaces,
            options,
            probe,
            class_models: BTreeMap::new(),
            placements,
            adaption: BTreeMap::new(),
            tuners: BTreeMap::new(),
            log,
            seq: 0,
            clock: Clock::wall(),
            latencies_ms: Vec::new(),
            optimizer_calls: 0,
            resolves: 0,
            waves: 0,
            migrations: 0,
        };
        for m in 0..k {
            assert!(
                plane.machines[m].tenant_count() <= machine_capacity(&plane.spaces[m]),
                "machine {m} over capacity"
            );
            plane.machines[m].attach_probe_cache(plane.probe.clone());
            // Pre-calibrated machines seed the registry for their class.
            let hw = plane.hardware_class(m);
            for (kind, model) in plane.machines[m].calibrations().to_vec() {
                plane.class_models.entry((hw, kind)).or_insert(model);
            }
        }
        for m in 0..k {
            plane.ensure_machine_calibrated(m);
        }
        let all: Vec<usize> = (0..k).collect();
        plane.resolve(&all);
        plane.probe.enforce_capacity();
        plane
    }

    /// Machine `m`'s advisor.
    pub fn machine(&self, m: usize) -> &VirtualizationDesignAdvisor {
        &self.machines[m]
    }

    /// Number of machines currently in the fleet.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Machine `m`'s search space.
    pub fn space(&self, m: usize) -> &SearchSpace {
        &self.spaces[m]
    }

    /// The control plane's tuning knobs.
    pub fn options(&self) -> &ControlPlaneOptions {
        &self.options
    }

    /// Current placement per machine (`None` while a machine is
    /// empty).
    pub fn placements(&self) -> &[Option<SearchResult>] {
        &self.placements
    }

    /// The durable decision log: one [`Decision`] per processed event
    /// or batch, ring-bounded when
    /// [`ControlPlaneOptions::decision_log_capacity`] is set.
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// Events processed so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shared fleet probe cache.
    pub fn probe_cache(&self) -> &ProbeCache {
        &self.probe
    }

    /// Live guardrail trackers, keyed by (hardware class fingerprint,
    /// engine kind). Empty unless [`ControlPlaneOptions::adaptive`]
    /// tuning has opened a candidate.
    pub fn tuners(&self) -> &BTreeMap<(u64, EngineKind), GuardrailTracker> {
        &self.tuners
    }

    /// Adaptive residual stores, keyed like [`Self::tuners`].
    pub fn adaption_storages(&self) -> &BTreeMap<(u64, EngineKind), RuntimeAdaptionStorage> {
        &self.adaption
    }

    /// Estimated fleet objective: the sum of every machine's current
    /// weighted placement cost.
    pub fn objective(&self) -> f64 {
        self.placements
            .iter()
            .flatten()
            .map(|r| r.weighted_cost)
            .sum()
    }

    /// Per-event wall-clock decision latencies (ms) since this process
    /// started. Deliberately *not* part of snapshots: wall-clock is not
    /// deterministic state.
    pub fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }

    /// Nearest-rank p99 over [`Self::latencies_ms`].
    pub fn p99_latency_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 99.0)
    }

    /// Replace the latency clock. Wall by default; inject a
    /// [`Clock::manual`] to make [`Self::latencies_ms`] deterministic
    /// (tests, replay harnesses). Takes effect from the next event.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ControlPlaneStats {
        ControlPlaneStats {
            machines: self.machines.len(),
            tenants: self.machines.iter().map(|a| a.tenant_count()).sum(),
            shards: self.shards().len(),
            events: self.seq,
            resolves: self.resolves,
            waves: self.waves,
            migrations: self.migrations,
            optimizer_calls: self.optimizer_calls,
            probe_hits: self.probe.hits(),
            probe_misses: self.probe.misses(),
            probe_evictions: self.probe.evictions(),
            probe_bytes: self.probe.approx_bytes(),
        }
    }

    /// The fleet's shards: machine indices grouped by pricing class
    /// (search space + hardware, see [`MachineClass`]). Machines of one
    /// shard share class calibrations and probe-cache entries, so one
    /// shard member's optimizer work warms the whole shard.
    pub fn shards(&self) -> BTreeMap<u64, Vec<usize>> {
        let mut map: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for m in 0..self.machines.len() {
            map.entry(self.pricing_class(m).id()).or_default().push(m);
        }
        map
    }

    /// Apply one fleet event: re-solve the dirty machines (in
    /// parallel, warm), reconcile migration candidates, log the
    /// [`Decision`], and record the decision latency.
    pub fn process_event(&mut self, event: FleetEvent) -> EventOutcome {
        let started_ms = self.clock.now_ms();
        let calls_before = self.optimizer_calls;
        if !self.options.incremental {
            self.cold_start();
        }
        // Probe recency for this event's lookups is the event's own
        // 1-based sequence number — a logical epoch, never wall clock.
        self.probe.set_epoch(self.seq + 1);
        let (action, mut dirty, candidate) = self.apply(event);
        self.resolve(&dirty);
        let migration = candidate.and_then(|(m, slot)| self.reconcile(m, slot));
        if let Some(mig) = &migration {
            dirty.push(mig.from);
            dirty.push(mig.to);
        }
        dirty.sort_unstable();
        dirty.dedup();
        self.seq += 1;
        if self.options.prune_every > 0 && self.seq.is_multiple_of(self.options.prune_every) {
            self.prune_caches();
        }
        // The serial sync point: no solve wave is in flight, so the
        // LRU eviction scan sees a thread-count-independent recency
        // map.
        self.probe.enforce_capacity();
        let objective = self.objective();
        self.log.push(Decision {
            seq: self.seq,
            action: action.clone(),
            resolved: dirty.clone(),
            migrations: migration.clone().into_iter().collect(),
            objective,
        });
        let latency_ms = self.clock.now_ms() - started_ms;
        self.latencies_ms.push(latency_ms);
        EventOutcome {
            seq: self.seq,
            action,
            resolved: dirty,
            migration,
            objective,
            latency_ms,
            optimizer_calls: self.optimizer_calls - calls_before,
        }
    }

    /// Apply a batch of fleet events with **one** parallel re-solve
    /// wave, instead of one wave per event.
    ///
    /// # The coalescing rule (deterministic, last-write-wins)
    ///
    /// Event *mutations* are applied strictly in order, so the fleet
    /// state after the batch is identical to what serial
    /// [`process_event`](Self::process_event) replay would leave
    /// behind — and since every placement is recomputed
    /// deterministically from that state, the re-solved placements and
    /// the batch objective are bit-identical to the serial replay's
    /// (on unconstrained machines, i.e. when the serial replay takes
    /// no intermediate migration). What *is* coalesced:
    ///
    /// * **Major/minor classification** runs once per touched `(machine,
    ///   slot)`, comparing the per-query estimate *before the slot's
    ///   first mutation in the batch* against the estimate *after its
    ///   last* — last-write-wins per tenant slot. Two sub-threshold
    ///   drifts that compose to a major change classify **major** here
    ///   where serial replay would have said minor twice; the reverse
    ///   (a change and its revert) classifies minor. This is the
    ///   explicit divergence, pinned by
    ///   `batch_classification_is_last_write_wins_per_slot`.
    /// * **Dirty machines are marked once** and re-solved in a single
    ///   wave (one [`ControlPlaneStats::waves`] increment), no matter
    ///   how many events touched them.
    /// * **Reconcile candidates** (arrivals, in event order, then
    ///   major-classified slots in ascending `(machine, slot)` order)
    ///   are priced *after* the wave, against the batch-final state.
    ///
    /// Structural events keep their serial semantics: indices inside
    /// the batch refer to the fleet numbering *at that point in the
    /// batch*, exactly as if the events were applied one at a time
    /// (departures shift higher slots down,
    /// [`FleetEvent::MachineDecommissioned`] swap-removes).
    ///
    /// One [`Decision`] is logged per batch; `seq` advances by the
    /// number of events carried, so the probe cache's logical epoch
    /// and [`ControlPlaneOptions::prune_every`] see the same event
    /// arithmetic as serial ingestion.
    ///
    /// # Example
    ///
    /// Three events, two of them touching the same slot: one re-solve
    /// wave, one coalesced classification.
    ///
    /// ```
    /// use vda_core::{ControlPlane, ControlPlaneOptions, FleetEvent};
    /// # use vda_core::problem::{QoS, SearchSpace};
    /// # use vda_core::tenant::Tenant;
    /// # use vda_core::VirtualizationDesignAdvisor;
    /// # use vda_vmm::{Hypervisor, PhysicalMachine};
    /// # let mut adv =
    /// #     VirtualizationDesignAdvisor::new(Hypervisor::new(PhysicalMachine::paper_testbed()));
    /// # for (i, q) in [6usize, 16].into_iter().enumerate() {
    /// #     let name = format!("t{i}-q{q}");
    /// #     adv.add_tenant(
    /// #         Tenant::new(
    /// #             name.clone(),
    /// #             vda_simdb::engines::Engine::db2(),
    /// #             vda_workloads::tpch::catalog(1.0),
    /// #             vda_workloads::tpch::query_workload(q, 1.0 + i as f64).named(name),
    /// #         )
    /// #         .unwrap(),
    /// #         QoS::default(),
    /// #     );
    /// # }
    /// # let space = SearchSpace::cpu_only(512.0 / 8192.0);
    ///
    /// // `adv` hosts two tenants on one machine (setup hidden).
    /// let mut plane = ControlPlane::new(vec![adv], vec![space], ControlPlaneOptions::default());
    /// let waves_before = plane.stats().waves;
    ///
    /// let outcome = plane.process_batch(&[
    ///     FleetEvent::WorkloadScaled { machine: 0, slot: 0, factor: 1.25 },
    ///     FleetEvent::WorkloadScaled { machine: 0, slot: 1, factor: 0.8 },
    ///     FleetEvent::WorkloadScaled { machine: 0, slot: 0, factor: 1.25 },
    /// ]);
    ///
    /// assert_eq!(plane.stats().waves, waves_before + 1); // one wave, not three
    /// assert_eq!(outcome.action, "batch n3 (scaled 3; 0 major, 1 coalesced)");
    /// assert_eq!(outcome.resolved, vec![0]);
    /// assert_eq!(plane.seq(), 3); // seq advances by events carried
    /// ```
    ///
    /// # Panics
    ///
    /// On an empty batch, and under the same conditions as
    /// [`process_event`](Self::process_event) (capacity, binding,
    /// decommissioning a non-empty machine).
    pub fn process_batch(&mut self, events: &[FleetEvent]) -> BatchOutcome {
        assert!(!events.is_empty(), "batch must carry at least one event");
        let started_ms = self.clock.now_ms();
        let calls_before = self.optimizer_calls;
        if !self.options.incremental {
            self.cold_start();
        }
        // One logical epoch for the whole batch: the first event's
        // sequence number.
        self.probe.set_epoch(self.seq + 1);

        // Per-slot classification records: first-touch pre-estimate,
        // keyed by (machine, slot). BTreeMap so the end-of-batch
        // classification pass runs in deterministic key order.
        let mut pending: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        // Arrival candidates, in event order.
        let mut arrivals: Vec<(usize, usize)> = Vec::new();
        let mut dirty: Vec<usize> = Vec::new();
        let mut kinds = BatchKinds::default();

        for event in events.iter().cloned() {
            match event {
                FleetEvent::WorkloadChanged {
                    machine,
                    slot,
                    workload,
                } => {
                    self.note_first_touch(&mut pending, &mut kinds, machine, slot);
                    self.machines[machine]
                        .tenant_mut(slot)
                        .set_workload(workload)
                        .expect("new workload must bind against the tenant's catalog");
                    dirty.push(machine);
                    kinds.changed += 1;
                }
                FleetEvent::WorkloadScaled {
                    machine,
                    slot,
                    factor,
                } => {
                    self.note_first_touch(&mut pending, &mut kinds, machine, slot);
                    self.machines[machine]
                        .tenant_mut(slot)
                        .scale_workload(factor);
                    dirty.push(machine);
                    kinds.scaled += 1;
                }
                FleetEvent::TenantArrived {
                    machine,
                    tenant,
                    qos,
                } => {
                    assert!(
                        self.machines[machine].tenant_count()
                            < machine_capacity(&self.spaces[machine]),
                        "machine {machine} has no free capacity slot"
                    );
                    let slot = self.machines[machine].add_tenant(*tenant, qos);
                    self.ensure_machine_calibrated(machine);
                    arrivals.push((machine, slot));
                    dirty.push(machine);
                    kinds.arrived += 1;
                }
                FleetEvent::TenantDeparted { machine, slot } => {
                    let (tenant, _) = self.machines[machine].remove_tenant(slot);
                    dirty.extend(self.rollback_canaries_of_tenant(tenant.fingerprint()));
                    // The departed slot's records die with it; higher
                    // slots shift down (Vec::remove semantics).
                    pending.remove(&(machine, slot));
                    pending = pending
                        .into_iter()
                        .map(|((m, s), v)| {
                            if m == machine && s > slot {
                                ((m, s - 1), v)
                            } else {
                                ((m, s), v)
                            }
                        })
                        .collect();
                    arrivals.retain(|&(m, s)| !(m == machine && s == slot));
                    for a in arrivals.iter_mut() {
                        if a.0 == machine && a.1 > slot {
                            a.1 -= 1;
                        }
                    }
                    dirty.push(machine);
                    kinds.departed += 1;
                }
                FleetEvent::MachineDecommissioned { machine } => {
                    assert_eq!(
                        self.machines[machine].tenant_count(),
                        0,
                        "decommissioned machine must be empty"
                    );
                    let last = self.machines.len() - 1;
                    self.machines.swap_remove(machine);
                    self.spaces.swap_remove(machine);
                    self.placements.swap_remove(machine);
                    // Swap-remove renumbering: records on the removed
                    // (empty) machine are gone, the former last
                    // machine now answers to `machine`.
                    pending = pending
                        .into_iter()
                        .filter(|&((m, _), _)| m != machine)
                        .map(|((m, s), v)| {
                            if m == last {
                                ((machine, s), v)
                            } else {
                                ((m, s), v)
                            }
                        })
                        .collect();
                    arrivals.retain(|&(m, _)| m != machine);
                    for a in arrivals.iter_mut() {
                        if a.0 == last {
                            a.0 = machine;
                        }
                    }
                    dirty.retain(|&m| m != machine);
                    for d in dirty.iter_mut() {
                        if *d == last {
                            *d = machine;
                        }
                    }
                    self.prune_caches();
                    kinds.decommissioned += 1;
                }
                FleetEvent::ActualsReported { machine, slot } => {
                    let (_, d) = self.handle_actuals(machine, slot);
                    dirty.extend(d);
                    kinds.actuals += 1;
                }
            }
        }

        // Classify every coalesced workload mutation once, against the
        // batch-final workload (last-write-wins). Major slots join the
        // candidate list unless an in-batch arrival already put them
        // there.
        let mut candidates = arrivals;
        for (&(machine, slot), &before) in &pending {
            if self.classify_major(machine, slot, before) {
                kinds.major += 1;
                if !candidates.contains(&(machine, slot)) {
                    candidates.push((machine, slot));
                }
            }
        }

        dirty.sort_unstable();
        dirty.dedup();
        // The single wave.
        self.resolve(&dirty);

        let mut migrations: Vec<Migration> = Vec::new();
        let mut i = 0;
        while i < candidates.len() {
            let (machine, slot) = candidates[i];
            i += 1;
            if let Some(mig) = self.reconcile(machine, slot) {
                dirty.push(mig.from);
                dirty.push(mig.to);
                // The executed transfer removed `slot` from `from`;
                // later candidates on that machine shift down.
                for c in candidates[i..].iter_mut() {
                    if c.0 == mig.from && c.1 > slot {
                        c.1 -= 1;
                    }
                }
                migrations.push(mig);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        let seq_before = self.seq;
        self.seq += events.len() as u64;
        if self.options.prune_every > 0
            && seq_before / self.options.prune_every < self.seq / self.options.prune_every
        {
            self.prune_caches();
        }
        // Serial sync point, as in process_event.
        self.probe.enforce_capacity();
        let objective = self.objective();
        let action = kinds.describe(events.len());
        self.log.push(Decision {
            seq: self.seq,
            action: action.clone(),
            resolved: dirty.clone(),
            migrations: migrations.clone(),
            objective,
        });
        let latency_ms = self.clock.now_ms() - started_ms;
        self.latencies_ms.push(latency_ms);
        BatchOutcome {
            seq: self.seq,
            events: events.len(),
            action,
            resolved: dirty,
            migrations,
            objective,
            latency_ms,
            optimizer_calls: self.optimizer_calls - calls_before,
        }
    }

    /// Record the pre-mutation per-query estimate the first time a
    /// batch touches `(machine, slot)`; later touches coalesce.
    fn note_first_touch(
        &mut self,
        pending: &mut BTreeMap<(usize, usize), f64>,
        kinds: &mut BatchKinds,
        machine: usize,
        slot: usize,
    ) {
        if let std::collections::btree_map::Entry::Vacant(e) = pending.entry((machine, slot)) {
            let before = self.per_query_estimate(machine, slot);
            e.insert(before);
        } else {
            kinds.coalesced += 1;
        }
    }

    /// Capture the durable control-plane state — see
    /// [`FleetSnapshot`] for the format and
    /// [`Self::restore`] for the other half of the round trip.
    pub fn snapshot(&self) -> FleetSnapshot {
        let machines = (0..self.machines.len())
            .map(|m| {
                let adv = &self.machines[m];
                MachineSnapshot {
                    hardware: self.hardware_class(m),
                    tenants: (0..adv.tenant_count())
                        .map(|i| adv.tenant(i).fingerprint())
                        .collect(),
                    calibrations: adv.calibrations().to_vec(),
                    placement: self.placements[m].clone(),
                    warm: adv.export_warm().map(|(key, fingerprints, centers, last)| {
                        WarmSnapshot {
                            key,
                            fingerprints,
                            centers,
                            last,
                        }
                    }),
                    warm_counters: adv.warm_stats(),
                }
            })
            .collect();
        let mut registry: Vec<(u64, EngineKind, CalibratedModel)> = self
            .class_models
            .iter()
            .map(|(&(hw, kind), model)| (hw, kind, model.clone()))
            .collect();
        registry.sort_by_key(|(hw, kind, _)| (*hw, kind.name()));
        let mut adaption: Vec<AdaptionSnapshot> = self
            .adaption
            .iter()
            .map(|(&(hw, kind), storage)| AdaptionSnapshot {
                hardware: hw,
                kind,
                epoch: storage.epoch(),
                version: storage.version(),
                rows: storage.export(),
            })
            .collect();
        adaption.sort_by_key(|s| (s.hardware, s.kind.name()));
        let mut tuners: Vec<TunerSnapshot> = self
            .tuners
            .iter()
            .map(|(&(hw, kind), tracker)| TunerSnapshot {
                hardware: hw,
                kind,
                tracker: tracker.export(),
            })
            .collect();
        tuners.sort_by_key(|t| (t.hardware, t.kind.name()));
        FleetSnapshot {
            seq: self.seq,
            optimizer_calls: self.optimizer_calls,
            resolves: self.resolves,
            waves: self.waves,
            migrations: self.migrations,
            machines,
            registry,
            probes: self.probe.export(),
            log: self.log.to_vec(),
            log_dropped: self.log.dropped(),
            adaption,
            tuners,
        }
    }

    /// Resume from a [`FleetSnapshot`]. The caller reconstructs the
    /// snapshot-time fleet topology — one *uncalibrated* advisor per
    /// machine with the same hardware, tenants (in order), and QoS —
    /// and `restore` reinstalls everything durable: calibrations (no
    /// refit), the class registry, probe-cache entries, placements,
    /// per-machine warm-start state, and the decision log. Subsequent
    /// events then cost delta solves, and their results are
    /// bit-identical to a process that never restarted.
    ///
    /// # Errors
    ///
    /// A human-readable description when the provided fleet does not
    /// match the snapshot (machine count, per-machine hardware
    /// fingerprint, or per-slot tenant fingerprints).
    pub fn restore(
        mut machines: Vec<VirtualizationDesignAdvisor>,
        spaces: Vec<SearchSpace>,
        options: ControlPlaneOptions,
        snapshot: &FleetSnapshot,
    ) -> Result<Self, String> {
        if machines.len() != snapshot.machines.len() {
            return Err(format!(
                "snapshot holds {} machines, {} provided",
                snapshot.machines.len(),
                machines.len()
            ));
        }
        if machines.len() != spaces.len() {
            return Err("one search space per machine required".to_string());
        }
        let probe = ProbeCache::new();
        probe.set_capacity(options.probe_cache_capacity);
        // Recency is runtime state: imported generations are stamped
        // with the restore-time epoch (the snapshot's seq), so the
        // restored cache treats everything as just-used.
        probe.set_epoch(snapshot.seq);
        probe.import(&snapshot.probes);
        for (m, (adv, ms)) in machines.iter_mut().zip(&snapshot.machines).enumerate() {
            let hw = adv.hypervisor().machine().fingerprint();
            if hw != ms.hardware {
                return Err(format!("machine {m}: hardware fingerprint mismatch"));
            }
            let tenants: Vec<u64> = (0..adv.tenant_count())
                .map(|i| adv.tenant(i).fingerprint())
                .collect();
            if tenants != ms.tenants {
                return Err(format!("machine {m}: tenant set mismatch"));
            }
            for (kind, model) in &ms.calibrations {
                adv.install_calibration(*kind, model.clone());
            }
            adv.attach_probe_cache(probe.clone());
            if let Some(w) = &ms.warm {
                adv.restore_warm(
                    w.key,
                    w.fingerprints.clone(),
                    w.centers.clone(),
                    w.last.clone(),
                    ms.warm_counters,
                );
            }
        }
        let class_models = snapshot
            .registry
            .iter()
            .map(|(hw, kind, model)| ((*hw, *kind), model.clone()))
            .collect();
        let placements = snapshot
            .machines
            .iter()
            .map(|ms| ms.placement.clone())
            .collect();
        let log = DecisionLog::restore(
            options.decision_log_capacity,
            snapshot.log.clone(),
            snapshot.log_dropped,
        );
        // Adaptive state restores regardless of whether the restoring
        // process has tuning enabled: with `adaptive: None` the maps
        // are inert (ActualsReported no-ops) but still round-trip, so
        // snapshot → restore → snapshot is lossless either way. The
        // knobs themselves come from `options`, not the snapshot.
        let tuning = options.adaptive.unwrap_or_default();
        let mut adaption: BTreeMap<(u64, EngineKind), RuntimeAdaptionStorage> = BTreeMap::new();
        for s in &snapshot.adaption {
            let mut storage = RuntimeAdaptionStorage::new(tuning.adaption.capacity);
            storage.import(s.rows.clone(), s.epoch, s.version);
            adaption.insert((s.hardware, s.kind), storage);
        }
        let tuners: BTreeMap<(u64, EngineKind), GuardrailTracker> = snapshot
            .tuners
            .iter()
            .map(|t| {
                (
                    (t.hardware, t.kind),
                    GuardrailTracker::import(t.tracker.clone(), tuning.guardrail),
                )
            })
            .collect();
        Ok(ControlPlane {
            machines,
            spaces,
            options,
            probe,
            class_models,
            placements,
            adaption,
            tuners,
            log,
            seq: snapshot.seq,
            clock: Clock::wall(),
            latencies_ms: Vec::new(),
            optimizer_calls: snapshot.optimizer_calls,
            resolves: snapshot.resolves,
            waves: snapshot.waves,
            migrations: snapshot.migrations,
        })
    }

    // ------------------------------------------------------------------
    // Event application
    // ------------------------------------------------------------------

    /// Mutate the fleet per the event. Returns the action description,
    /// the dirty machine set, and the migration candidate (machine,
    /// slot), if the event produced one.
    fn apply(&mut self, event: FleetEvent) -> (String, Vec<usize>, Option<(usize, usize)>) {
        match event {
            FleetEvent::WorkloadChanged {
                machine,
                slot,
                workload,
            } => {
                let before = self.per_query_estimate(machine, slot);
                self.machines[machine]
                    .tenant_mut(slot)
                    .set_workload(workload)
                    .expect("new workload must bind against the tenant's catalog");
                let major = self.classify_major(machine, slot, before);
                let label = if major { "major" } else { "minor" };
                (
                    format!("workload-changed m{machine} t{slot} ({label})"),
                    vec![machine],
                    major.then_some((machine, slot)),
                )
            }
            FleetEvent::WorkloadScaled {
                machine,
                slot,
                factor,
            } => {
                let before = self.per_query_estimate(machine, slot);
                self.machines[machine]
                    .tenant_mut(slot)
                    .scale_workload(factor);
                let major = self.classify_major(machine, slot, before);
                let label = if major { "major" } else { "minor" };
                (
                    format!("workload-scaled m{machine} t{slot} ({label})"),
                    vec![machine],
                    major.then_some((machine, slot)),
                )
            }
            FleetEvent::TenantArrived {
                machine,
                tenant,
                qos,
            } => {
                assert!(
                    self.machines[machine].tenant_count() < machine_capacity(&self.spaces[machine]),
                    "machine {machine} has no free capacity slot"
                );
                let slot = self.machines[machine].add_tenant(*tenant, qos);
                self.ensure_machine_calibrated(machine);
                (
                    format!("tenant-arrived m{machine} t{slot}"),
                    vec![machine],
                    Some((machine, slot)),
                )
            }
            FleetEvent::TenantDeparted { machine, slot } => {
                let (tenant, _) = self.machines[machine].remove_tenant(slot);
                let mut dirty = vec![machine];
                // A canary must not outlive its evidence stream: if the
                // departed tenant was in any live canary subset, that
                // candidate rolls back deterministically.
                dirty.extend(self.rollback_canaries_of_tenant(tenant.fingerprint()));
                (
                    format!("tenant-departed m{machine} ({})", tenant.name),
                    dirty,
                    None,
                )
            }
            FleetEvent::MachineDecommissioned { machine } => {
                assert_eq!(
                    self.machines[machine].tenant_count(),
                    0,
                    "decommissioned machine must be empty"
                );
                self.machines.swap_remove(machine);
                self.spaces.swap_remove(machine);
                self.placements.swap_remove(machine);
                // Models only this machine's class used are now dead
                // weight in the probe cache; reclaim immediately.
                self.prune_caches();
                (format!("machine-decommissioned m{machine}"), vec![], None)
            }
            FleetEvent::ActualsReported { machine, slot } => {
                let (action, dirty) = self.handle_actuals(machine, slot);
                (action, dirty, None)
            }
        }
    }

    /// §6.1 change metric at a fixed reference allocation, after the
    /// workload mutated: relative per-query estimate change vs
    /// `before`, classified against
    /// [`ControlPlaneOptions::change_threshold`].
    fn classify_major(&mut self, m: usize, slot: usize, before: f64) -> bool {
        let after = self.per_query_estimate(m, slot);
        let change = if before > 0.0 {
            (after - before).abs() / before
        } else {
            0.0
        };
        change > self.options.change_threshold
    }

    /// Per-query cost estimate of tenant `slot` on machine `m` at the
    /// machine's reference (1/N) allocation.
    fn per_query_estimate(&mut self, m: usize, slot: usize) -> f64 {
        let reference = self.spaces[m].default_allocation(self.machines[m].tenant_count());
        let est = self.machines[m].estimator(slot);
        let per_query = est.estimate(reference).avg_cost_per_statement;
        let calls = est.optimizer_calls();
        self.optimizer_calls += calls;
        per_query
    }

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /// Re-solve the given machines in parallel through their warm
    /// advisors, shard-ordered so same-class machines run adjacently
    /// and feed each other's probe entries. Empty machines get a
    /// `None` placement.
    fn resolve(&mut self, dirty: &[usize]) {
        let mut dirty: Vec<usize> = dirty.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        // Deterministic shard ordering of the work list.
        dirty.sort_by_key(|&m| (self.pricing_class(m).id(), m));
        let dirty_set: HashSet<usize> = dirty.iter().copied().collect();
        let spaces = &self.spaces;
        // Advisors are !Sync (interior warm-start state), so the
        // vendored rayon's `par_map` cannot iterate them directly;
        // per-machine mutexes make the work list `Sync` while each
        // advisor is still touched by exactly one task.
        let work: Vec<(usize, Mutex<&mut VirtualizationDesignAdvisor>)> = self
            .machines
            .iter_mut()
            .enumerate()
            .filter(|(m, adv)| dirty_set.contains(m) && adv.tenant_count() > 0)
            .map(|(m, adv)| (m, Mutex::new(adv)))
            .collect();
        let wave = !work.is_empty();
        let solved: Vec<(usize, Recommendation)> =
            work.par_map(|(m, cell)| (*m, cell.lock().recommend_c2f_warm(&spaces[*m])));
        if wave {
            self.waves += 1;
        }
        for (m, rec) in solved {
            self.optimizer_calls += rec.optimizer_calls;
            self.resolves += 1;
            self.placements[m] = Some(rec.result);
        }
        for &m in &dirty {
            if self.machines[m].tenant_count() == 0 {
                self.placements[m] = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Reconciliation
    // ------------------------------------------------------------------

    /// Price moving tenant `slot` off machine `from` onto each of the
    /// least-loaded candidate destinations, and execute the best move
    /// whose net gain clears the threshold. Deterministic: candidates
    /// are visited in `(tenant count, machine index)` order and only a
    /// strictly better net gain displaces the incumbent.
    fn reconcile(&mut self, from: usize, slot: usize) -> Option<Migration> {
        let base_total = self.objective();
        let mut dests: Vec<usize> = (0..self.machines.len())
            .filter(|&d| {
                d != from && self.machines[d].tenant_count() < machine_capacity(&self.spaces[d])
            })
            .collect();
        dests.sort_by_key(|&d| (self.machines[d].tenant_count(), d));
        dests.truncate(self.options.reconcile_fanout);
        if dests.is_empty() {
            return None;
        }
        let kind = self.machines[from].tenant(slot).engine.kind();
        for &d in &dests {
            self.ensure_class_model_for(d, kind, (from, slot));
        }

        let src_cur = self.current_cost(from);
        let (src_new, src_calls) = self.price_without(from, slot);
        self.optimizer_calls += src_calls;
        let src_new = src_new?;

        let from_class = self.pricing_class(from);
        let mut best: Option<(f64, usize, f64)> = None; // (net, dest, raw gain)
        for &d in &dests {
            let (dst_new, dst_calls) = self.price_with_extra(d, from, slot);
            self.optimizer_calls += dst_calls;
            let Some(dst_new) = dst_new else { continue };
            let candidate_total = base_total - src_cur - self.current_cost(d) + src_new + dst_new;
            let Some(gain) = migration_gain(base_total, candidate_total) else {
                continue;
            };
            let net = if self.pricing_class(d) != from_class {
                gain - self.options.recalibration_surcharge
            } else {
                gain
            };
            if net <= self.options.migration_threshold {
                continue;
            }
            if best.map(|(bn, _, _)| net > bn).unwrap_or(true) {
                best = Some((net, d, gain));
            }
        }
        let (_, to, gain) = best?;

        let tenant = self.machines[from].tenant(slot).name.clone();
        let hw_to = self.hardware_class(to);
        let (src_adv, dst_adv) = two_mut(&mut self.machines, from, to);
        let transfer = src_adv.transfer_tenant(slot, dst_adv);
        let recalibrated = !transfer.calibration.destination_ready();
        if recalibrated {
            // The model could not travel across hardware classes; the
            // registry holds the destination class's fit (ensured
            // above), so installation costs no calibration run.
            let model = self.class_models[&(hw_to, kind)].clone();
            self.machines[to].install_calibration(kind, model);
        }
        self.resolve(&[from, to]);
        self.migrations += 1;
        Some(Migration {
            tenant,
            from,
            to,
            estimated_gain: gain,
            recalibrated,
        })
    }

    /// Machine `m`'s current placement cost (0 while empty).
    fn current_cost(&self, m: usize) -> f64 {
        self.placements[m]
            .as_ref()
            .map(|r| r.weighted_cost)
            .unwrap_or(0.0)
    }

    /// Hypothetical cost of machine `m` without tenant `skip`
    /// (`Some(0.0)` if that empties the machine), plus the optimizer
    /// calls spent pricing it.
    fn price_without(&self, m: usize, skip: usize) -> (Option<f64>, u64) {
        let adv = &self.machines[m];
        let n = adv.tenant_count();
        if n <= 1 {
            return (Some(0.0), 0);
        }
        let estimators: Vec<WhatIfEstimator<'_>> = (0..n)
            .filter(|&i| i != skip)
            .map(|i| adv.estimator(i))
            .collect();
        let qos: Vec<QoS> = adv
            .qos()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, q)| *q)
            .collect();
        self.solve_hypothetical(m, &qos, &estimators)
    }

    /// Hypothetical cost of machine `d` hosting its tenants plus
    /// tenant `slot` of machine `from` — priced with `d`'s own
    /// calibration for the moved tenant's kind when present, the class
    /// registry's otherwise (see [`Self::ensure_class_model_for`]).
    fn price_with_extra(&self, d: usize, from: usize, slot: usize) -> (Option<f64>, u64) {
        let adv = &self.machines[d];
        let moved = self.machines[from].tenant(slot);
        let kind = moved.engine.kind();
        let model = match adv.calibration(kind) {
            Some(model) => model,
            None => &self.class_models[&(self.hardware_class(d), kind)],
        };
        let mut estimators: Vec<WhatIfEstimator<'_>> =
            (0..adv.tenant_count()).map(|i| adv.estimator(i)).collect();
        estimators.push(WhatIfEstimator::with_probe_cache(
            moved,
            model,
            self.probe.clone(),
        ));
        let mut qos: Vec<QoS> = adv.qos().to_vec();
        qos.push(self.machines[from].qos()[slot]);
        self.solve_hypothetical(d, &qos, &estimators)
    }

    /// One non-destructive coarse-to-fine solve over a hypothetical
    /// estimator set (`None` when no grid can host the set).
    fn solve_hypothetical(
        &self,
        m: usize,
        qos: &[QoS],
        estimators: &[WhatIfEstimator<'_>],
    ) -> (Option<f64>, u64) {
        let space = &self.spaces[m];
        let c2f = CoarseToFineOptions::auto(space, estimators.len());
        let result =
            try_coarse_to_fine_search_with(space, qos, estimators, &c2f, &SearchOptions::default());
        let calls = CostAccounting::tally(estimators).optimizer_calls;
        (result.map(|r| r.weighted_cost), calls)
    }

    // ------------------------------------------------------------------
    // Calibration management
    // ------------------------------------------------------------------

    fn hardware_class(&self, m: usize) -> u64 {
        self.machines[m].hypervisor().machine().fingerprint()
    }

    fn pricing_class(&self, m: usize) -> MachineClass {
        MachineClass::of(&self.spaces[m]).salted(self.hardware_class(m))
    }

    /// Calibrate machine `m` for every engine kind its tenants need,
    /// through the class registry: an existing registry model installs
    /// without a fit; a missing one is fitted once on `m` and
    /// registered for the whole hardware class.
    fn ensure_machine_calibrated(&mut self, m: usize) {
        let hw = self.hardware_class(m);
        let kinds: Vec<(usize, EngineKind)> = (0..self.machines[m].tenant_count())
            .map(|i| (i, self.machines[m].tenant(i).engine.kind()))
            .collect();
        for (slot, kind) in kinds {
            if self.machines[m].calibration(kind).is_some() {
                continue;
            }
            let model = match self.class_models.get(&(hw, kind)) {
                Some(model) => model.clone(),
                None => {
                    let adv = &self.machines[m];
                    let engine = adv.tenant(slot).engine.clone();
                    let model =
                        Calibrator::with_config(adv.hypervisor(), adv.calibration_config().clone())
                            .calibrate(&engine);
                    self.class_models.insert((hw, kind), model.clone());
                    model
                }
            };
            self.machines[m].install_calibration(kind, model);
        }
    }

    /// Make sure the registry holds a model for machine `d`'s hardware
    /// class and `kind`, fitting on `d` if needed (the engine instance
    /// comes from the migration-source tenant, like
    /// [`crate::dynamic::FleetManager`] does).
    fn ensure_class_model_for(&mut self, d: usize, kind: EngineKind, source: (usize, usize)) {
        let hw = self.hardware_class(d);
        if let Some(model) = self.machines[d].calibration(kind) {
            let model = model.clone();
            self.class_models.entry((hw, kind)).or_insert(model);
            return;
        }
        if self.class_models.contains_key(&(hw, kind)) {
            return;
        }
        let engine = self.machines[source.0].tenant(source.1).engine.clone();
        let adv = &self.machines[d];
        let model = Calibrator::with_config(adv.hypervisor(), adv.calibration_config().clone())
            .calibrate(&engine);
        self.class_models.insert((hw, kind), model);
    }

    // ------------------------------------------------------------------
    // Adaptive tuning (ActualsReported lifecycle)
    // ------------------------------------------------------------------

    /// Handle one executor actuals report for tenant `slot` on machine
    /// `m`. Returns the decision-log action string and the machines
    /// whose installed calibration changed (canary deploys, promotions,
    /// rollbacks) — those re-solve in the caller's wave.
    ///
    /// Residuals are recorded against the **base** (un-adapted) model:
    /// the installed model's correction factor is divided back out of
    /// its prediction, so a refit always proposes a correction *of the
    /// analytic fit*, never a correction of a correction. The class
    /// registry holds the currently-promoted model; canary installs
    /// touch only the machines hosting canary tenants, and a rollback
    /// reinstalls the registry incumbent bit-identically (model
    /// installation cold-starts the machine's caches, which the
    /// incremental-vs-cold contract already pins).
    fn handle_actuals(&mut self, m: usize, slot: usize) -> (String, Vec<usize>) {
        let prefix = format!("actuals-reported m{m} t{slot}");
        let Some(tuning) = self.options.adaptive else {
            return (format!("{prefix} (off)"), Vec::new());
        };
        let Some(alloc) = self.placements[m]
            .as_ref()
            .and_then(|r| r.allocations.get(slot).copied())
        else {
            return (format!("{prefix} (unplaced)"), Vec::new());
        };
        let kind = self.machines[m].tenant(slot).engine.kind();
        let hw = self.hardware_class(m);
        let key = (hw, kind);
        let tenant_fp = self.machines[m].tenant(slot).fingerprint();

        // Price with the machine's installed (possibly canary) model,
        // then divide its correction factor back out for the base
        // prediction.
        let est = self.machines[m].estimator(slot);
        let installed_pred = est.estimate(alloc).seconds;
        self.optimizer_calls += est.optimizer_calls();
        let installed_factor = self.machines[m]
            .calibration(kind)
            .and_then(|model| model.adaption)
            .map_or(1.0, |a| a.factor(alloc));
        let base_pred = installed_pred / installed_factor;
        let actual = self.machines[m].actual_cost(slot, alloc);

        let incumbent = self
            .class_models
            .get(&key)
            .cloned()
            .expect("machine hosting a tenant is calibrated through the registry");
        let incumbent_pred = base_pred * incumbent.adaption.map_or(1.0, |a| a.factor(alloc));

        let storage = self
            .adaption
            .entry(key)
            .or_insert_with(|| RuntimeAdaptionStorage::new(tuning.adaption.capacity));
        storage.set_epoch(self.seq + 1);
        storage.record(tenant_fp, alloc, base_pred, actual);

        // Open a tracker when the evidence proposes a correction the
        // fleet is not already running. After a promotion the same
        // samples refit to the promoted correction, so no tracker
        // churns; after a rollback the cleared store cannot re-propose
        // the rejected candidate from the same evidence.
        if !self.tuners.contains_key(&key) {
            let storage = &self.adaption[&key];
            if let Some(correction) = refit(storage, &tuning.adaption) {
                let proposes_change = match incumbent.adaption {
                    Some(current) => correction != current.correction,
                    None => !correction.is_identity(),
                };
                if proposes_change {
                    let candidate = Adaption {
                        correction,
                        version: storage.version(),
                    };
                    let base_fp = incumbent.clone().without_adaption().fingerprint();
                    self.tuners.insert(
                        key,
                        GuardrailTracker::new(candidate, base_fp, tuning.guardrail),
                    );
                }
            }
        }

        let objective = self.objective();
        let verdict = {
            let Some(tracker) = self.tuners.get_mut(&key) else {
                return (format!("{prefix} (recorded)"), Vec::new());
            };
            let cand_pred = base_pred * tracker.candidate().factor(alloc);
            tracker.observe(tenant_fp, cand_pred, incumbent_pred, actual, objective)
        };
        match verdict {
            GuardrailState::Shadow => (format!("{prefix} (shadow)"), Vec::new()),
            GuardrailState::Canary => {
                let dirty = self.deploy_canary(key, &incumbent);
                (format!("{prefix} (canary)"), dirty)
            }
            GuardrailState::Promoted => {
                let dirty = self.promote_candidate(key, &incumbent);
                (format!("{prefix} (promoted)"), dirty)
            }
            GuardrailState::RolledBack => {
                let dirty = self.rollback_candidate(key);
                (format!("{prefix} (rolled-back)"), dirty)
            }
        }
    }

    /// Install `key`'s candidate model on every machine of the
    /// hardware class hosting a canary tenant of that kind (idempotent:
    /// machines already running the candidate are skipped). Returns
    /// the machines whose calibration changed.
    fn deploy_canary(&mut self, key: (u64, EngineKind), incumbent: &CalibratedModel) -> Vec<usize> {
        let Some(tracker) = self.tuners.get(&key) else {
            return Vec::new();
        };
        let candidate_model = incumbent
            .clone()
            .without_adaption()
            .with_adaption(tracker.candidate());
        let candidate_fp = candidate_model.fingerprint();
        let fps: Vec<u64> = tracker.canary_tenants().to_vec();
        let (hw, kind) = key;
        let mut dirty = Vec::new();
        for m in 0..self.machines.len() {
            if self.hardware_class(m) != hw {
                continue;
            }
            let hosts_canary = (0..self.machines[m].tenant_count()).any(|i| {
                self.machines[m].tenant(i).engine.kind() == kind
                    && fps.contains(&self.machines[m].tenant(i).fingerprint())
            });
            if !hosts_canary {
                continue;
            }
            if self.machines[m].calibration(kind).map(|c| c.fingerprint()) == Some(candidate_fp) {
                continue;
            }
            self.machines[m].install_calibration(kind, candidate_model.clone());
            dirty.push(m);
        }
        dirty
    }

    /// The candidate survived both gates: it becomes the class
    /// registry's model for `key` and installs on every calibrated
    /// machine of the class. The tracker retires.
    fn promote_candidate(
        &mut self,
        key: (u64, EngineKind),
        incumbent: &CalibratedModel,
    ) -> Vec<usize> {
        let Some(tracker) = self.tuners.remove(&key) else {
            return Vec::new();
        };
        let promoted = incumbent
            .clone()
            .without_adaption()
            .with_adaption(tracker.candidate());
        let promoted_fp = promoted.fingerprint();
        self.class_models.insert(key, promoted.clone());
        let (hw, kind) = key;
        let mut dirty = Vec::new();
        for m in 0..self.machines.len() {
            if self.hardware_class(m) != hw {
                continue;
            }
            match self.machines[m].calibration(kind) {
                Some(c) if c.fingerprint() != promoted_fp => {}
                _ => continue,
            }
            self.machines[m].install_calibration(kind, promoted.clone());
            dirty.push(m);
        }
        dirty
    }

    /// The candidate was rejected (shadow gate, canary gate, or a
    /// forced rollback): reinstall the registry incumbent on exactly
    /// the machines running the candidate, retire the tracker, and
    /// clear the residual store so the same evidence cannot re-propose
    /// the rejected correction.
    fn rollback_candidate(&mut self, key: (u64, EngineKind)) -> Vec<usize> {
        let Some(tracker) = self.tuners.remove(&key) else {
            return Vec::new();
        };
        if let Some(storage) = self.adaption.get_mut(&key) {
            storage.clear();
        }
        let Some(incumbent) = self.class_models.get(&key).cloned() else {
            return Vec::new();
        };
        let candidate_fp = incumbent
            .clone()
            .without_adaption()
            .with_adaption(tracker.candidate())
            .fingerprint();
        let (hw, kind) = key;
        let mut dirty = Vec::new();
        for m in 0..self.machines.len() {
            if self.hardware_class(m) != hw {
                continue;
            }
            if self.machines[m].calibration(kind).map(|c| c.fingerprint()) != Some(candidate_fp) {
                continue;
            }
            self.machines[m].install_calibration(kind, incumbent.clone());
            dirty.push(m);
        }
        dirty
    }

    /// Roll back every candidate whose canary subset contains the
    /// departed tenant — a canary must not outlive its evidence
    /// stream. Shadow-phase trackers are unaffected (they keep
    /// accumulating from the remaining tenants).
    fn rollback_canaries_of_tenant(&mut self, tenant_fp: u64) -> Vec<usize> {
        let keys: Vec<(u64, EngineKind)> = self
            .tuners
            .iter()
            .filter(|(_, t)| t.state() == GuardrailState::Canary && t.is_canary_tenant(tenant_fp))
            .map(|(&k, _)| k)
            .collect();
        let mut dirty = Vec::new();
        for key in keys {
            if let Some(tracker) = self.tuners.get_mut(&key) {
                tracker.force_rollback();
            }
            dirty.extend(self.rollback_candidate(key));
        }
        dirty
    }

    // ------------------------------------------------------------------
    // Cache management
    // ------------------------------------------------------------------

    /// Drop probe entries and registry models that nothing in the
    /// fleet can read anymore: registry entries of departed hardware
    /// classes, probe rows of dead model generations
    /// ([`ProbeCache::retain_models`]) and of departed tenants
    /// ([`ProbeCache::retain_tenants`]).
    fn prune_caches(&mut self) {
        let hw_live: HashSet<u64> = (0..self.machines.len())
            .map(|m| self.hardware_class(m))
            .collect();
        self.class_models.retain(|(hw, _), _| hw_live.contains(hw));
        // Adaptive state of a departed hardware class is unreadable:
        // a decommission mid-lifecycle deterministically retires the
        // class's residual store and any in-flight tracker.
        self.adaption.retain(|(hw, _), _| hw_live.contains(hw));
        self.tuners.retain(|(hw, _), _| hw_live.contains(hw));
        let live_models: HashSet<u64> = self
            .machines
            .iter()
            .flat_map(|a| a.calibrations().iter().map(|(_, m)| m.fingerprint()))
            .chain(self.class_models.values().map(|m| m.fingerprint()))
            .collect();
        self.probe.retain_models(&live_models);
        let live_tenants: HashSet<u64> = self
            .machines
            .iter()
            .flat_map(|a| (0..a.tenant_count()).map(|i| a.tenant(i).fingerprint()))
            .collect();
        self.probe.retain_tenants(&live_tenants);
    }

    /// Cold-baseline mode: drop every persistent cache so the next
    /// event pays full price — a fresh probe cache on every advisor
    /// and no warm-start state anywhere.
    fn cold_start(&mut self) {
        self.probe = ProbeCache::new();
        self.probe.set_capacity(self.options.probe_cache_capacity);
        for adv in &mut self.machines {
            adv.attach_probe_cache(self.probe.clone());
            adv.invalidate_warm();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Allocation;
    use vda_simdb::engines::Engine;
    use vda_vmm::{Hypervisor, PhysicalMachine};
    use vda_workloads::tpch;

    fn machine_with(tenants: &[(&str, usize, f64)]) -> VirtualizationDesignAdvisor {
        machine_on(PhysicalMachine::paper_testbed(), tenants)
    }

    fn machine_on(
        spec: PhysicalMachine,
        tenants: &[(&str, usize, f64)],
    ) -> VirtualizationDesignAdvisor {
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        let cat = tpch::catalog(0.1);
        for &(name, q, mult) in tenants {
            adv.add_tenant(
                Tenant::new(
                    name,
                    Engine::pg(),
                    cat.clone(),
                    tpch::query_workload(q, mult),
                )
                .unwrap(),
                QoS::default(),
            );
        }
        adv
    }

    fn small_fleet() -> ControlPlane {
        let machines = vec![
            machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
            machine_with(&[("b0", 1, 1.0)]),
            machine_with(&[]),
        ];
        let spaces = vec![SearchSpace::cpu_only(0.25); 3];
        ControlPlane::new(machines, spaces, ControlPlaneOptions::default())
    }

    #[test]
    fn construction_solves_all_occupied_machines() {
        let plane = small_fleet();
        assert!(plane.placements()[0].is_some());
        assert!(plane.placements()[1].is_some());
        assert!(
            plane.placements()[2].is_none(),
            "empty machine stays unsolved"
        );
        let stats = plane.stats();
        assert_eq!(stats.machines, 3);
        assert_eq!(stats.tenants, 3);
        assert_eq!(stats.shards, 1, "identical hardware + space = one shard");
        assert!(stats.optimizer_calls > 0);
        assert!(plane.objective() > 0.0);
    }

    #[test]
    fn registry_calibrates_once_per_class() {
        let plane = small_fleet();
        // Same hardware class: both occupied machines hold the *same*
        // calibrated model, fitted exactly once through the registry.
        let kind = plane.machine(0).tenant(0).engine.kind();
        assert_eq!(
            plane.machine(0).calibration(kind),
            plane.machine(1).calibration(kind)
        );
    }

    #[test]
    fn minor_drift_resolves_only_the_dirty_machine() {
        let mut plane = small_fleet();
        let outcome = plane.process_event(FleetEvent::WorkloadScaled {
            machine: 0,
            slot: 0,
            factor: 1.5,
        });
        assert_eq!(outcome.resolved, vec![0], "only the host re-solves");
        assert!(
            outcome.migration.is_none(),
            "intensity scaling is minor (§6.1)"
        );
        assert!(outcome.action.contains("minor"), "{}", outcome.action);
        assert_eq!(plane.seq(), 1);
        assert_eq!(plane.decision_log().len(), 1);
    }

    #[test]
    fn unchanged_event_stream_costs_no_optimizer_calls_when_warm() {
        let mut plane = small_fleet();
        // Scaling by 1.0 leaves fingerprints unchanged: the warm solve
        // returns the cached placement without touching the optimizer
        // (the classification estimates hit the probe cache after the
        // first event).
        let first = plane.process_event(FleetEvent::WorkloadScaled {
            machine: 1,
            slot: 0,
            factor: 1.0,
        });
        let second = plane.process_event(FleetEvent::WorkloadScaled {
            machine: 1,
            slot: 0,
            factor: 1.0,
        });
        assert!(second.optimizer_calls <= first.optimizer_calls);
        assert_eq!(second.optimizer_calls, 0, "{second:?}");
    }

    #[test]
    fn cold_mode_matches_incremental_results_at_higher_cost() {
        let build = || {
            vec![
                machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
                machine_with(&[("b0", 1, 1.0)]),
                machine_with(&[]),
            ]
        };
        let spaces = vec![SearchSpace::cpu_only(0.25); 3];
        let mut warm = ControlPlane::new(build(), spaces.clone(), ControlPlaneOptions::default());
        let mut cold = ControlPlane::new(
            build(),
            spaces,
            ControlPlaneOptions {
                incremental: false,
                ..ControlPlaneOptions::default()
            },
        );
        let events = |_: ()| {
            vec![
                FleetEvent::WorkloadScaled {
                    machine: 0,
                    slot: 0,
                    factor: 2.0,
                },
                FleetEvent::WorkloadScaled {
                    machine: 0,
                    slot: 0,
                    factor: 1.0 / 2.0,
                },
                FleetEvent::WorkloadScaled {
                    machine: 1,
                    slot: 0,
                    factor: 3.0,
                },
            ]
        };
        let mut warm_calls = 0;
        let mut cold_calls = 0;
        for (we, ce) in events(()).into_iter().zip(events(())) {
            let w = warm.process_event(we);
            let c = cold.process_event(ce);
            assert_eq!(w.resolved, c.resolved);
            assert_eq!(w.migration, c.migration);
            assert_eq!(
                w.objective.to_bits(),
                c.objective.to_bits(),
                "incremental and cold paths must agree bit-for-bit"
            );
            warm_calls += w.optimizer_calls;
            cold_calls += c.optimizer_calls;
        }
        assert!(
            warm_calls < cold_calls,
            "warm {warm_calls} vs cold {cold_calls}"
        );
    }

    #[test]
    fn arrival_on_loaded_machine_reconciles_to_idle_machine() {
        let mut plane = small_fleet();
        let cat = tpch::catalog(0.1);
        let tenant = Tenant::new("hot", Engine::pg(), cat, tpch::query_workload(18, 3.0)).unwrap();
        // Arrives on the busiest machine while machine 2 sits idle: the
        // reconcile pass should move it (no surcharge — same class).
        let outcome = plane.process_event(FleetEvent::TenantArrived {
            machine: 0,
            tenant: Box::new(tenant),
            qos: QoS::default(),
        });
        let mig = outcome.migration.as_ref().expect("expected a migration");
        assert_eq!(mig.tenant, "hot");
        assert_eq!(mig.from, 0);
        assert_eq!(mig.to, 2, "least-loaded destination wins");
        assert!(!mig.recalibrated, "same hardware class: model travels");
        assert!(mig.estimated_gain > plane.options().migration_threshold);
        assert_eq!(plane.machine(2).tenant_count(), 1);
        assert!(plane.placements()[2].is_some());
        assert_eq!(plane.stats().migrations, 1);
    }

    #[test]
    fn departure_and_decommission_prune_dead_state() {
        let mut plane = small_fleet();
        let models_before = plane.probe_cache().export().len();
        assert!(models_before > 0);
        plane.process_event(FleetEvent::TenantDeparted {
            machine: 1,
            slot: 0,
        });
        assert_eq!(plane.machine(1).tenant_count(), 0);
        assert!(plane.placements()[1].is_none());
        // Decommission the now-empty machine: fleet shrinks, and the
        // prune drops probe rows no live (model, tenant) can read.
        plane.process_event(FleetEvent::MachineDecommissioned { machine: 1 });
        assert_eq!(plane.machine_count(), 2);
        let fingerprints: HashSet<u64> = plane
            .probe_cache()
            .export()
            .iter()
            .map(|&(_, tenant, _, _)| tenant)
            .collect();
        let live: HashSet<u64> = (0..plane.machine_count())
            .flat_map(|m| (0..plane.machine(m).tenant_count()).map(move |i| (m, i)))
            .map(|(m, i)| plane.machine(m).tenant(i).fingerprint())
            .collect();
        assert!(
            fingerprints.is_subset(&live),
            "pruned cache must only hold live tenants"
        );
    }

    #[test]
    fn decision_latencies_are_recorded_but_not_durable() {
        let mut plane = small_fleet();
        plane.process_event(FleetEvent::WorkloadScaled {
            machine: 0,
            slot: 0,
            factor: 1.2,
        });
        assert_eq!(plane.latencies_ms().len(), 1);
        assert!(plane.p99_latency_ms() >= 0.0);
        let snap = plane.snapshot();
        assert_eq!(snap.log.len(), 1);
        // Latency is measurement, not state: Decision carries none.
        assert!(plane.machine(0).tenant_count() > 0);
    }

    #[test]
    fn injected_manual_clock_makes_latencies_deterministic() {
        let mut plane = small_fleet();
        let clock = Clock::manual();
        plane.set_clock(clock.clone());
        // The clock never advances during the event, so the measured
        // latency is exactly zero — bit-identical on every run.
        plane.process_event(FleetEvent::WorkloadScaled {
            machine: 0,
            slot: 0,
            factor: 1.2,
        });
        clock.advance_ms(7.25);
        plane.process_event(FleetEvent::WorkloadScaled {
            machine: 0,
            slot: 0,
            factor: 1.1,
        });
        assert_eq!(plane.latencies_ms(), &[0.0, 0.0]);
        assert_eq!(plane.p99_latency_ms(), 0.0);
    }

    #[test]
    fn heterogeneous_arrival_pays_recalibration_surcharge() {
        let mut fast = PhysicalMachine::paper_testbed();
        fast.core_ghz *= 2.0;
        let machines = vec![
            machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
            machine_on(fast, &[]),
        ];
        let spaces = vec![SearchSpace::cpu_only(0.25); 2];
        let mut plane = ControlPlane::new(
            machines,
            spaces,
            ControlPlaneOptions {
                // Surcharge so high no cross-class move can clear it.
                recalibration_surcharge: 1e6,
                ..ControlPlaneOptions::default()
            },
        );
        let cat = tpch::catalog(0.1);
        let tenant = Tenant::new("hot", Engine::pg(), cat, tpch::query_workload(18, 3.0)).unwrap();
        let outcome = plane.process_event(FleetEvent::TenantArrived {
            machine: 0,
            tenant: Box::new(tenant),
            qos: QoS::default(),
        });
        assert!(
            outcome.migration.is_none(),
            "prohibitive surcharge must gate the cross-class move: {outcome:?}"
        );
        assert_eq!(plane.machine(0).tenant_count(), 3);
    }

    #[test]
    fn shards_group_by_hardware_and_space() {
        let mut fast = PhysicalMachine::paper_testbed();
        fast.core_ghz *= 2.0;
        let machines = vec![
            machine_with(&[("a", 6, 1.0)]),
            machine_with(&[("b", 6, 1.0)]),
            machine_on(fast, &[("c", 6, 1.0)]),
        ];
        let spaces = vec![SearchSpace::cpu_only(0.25); 3];
        let plane = ControlPlane::new(machines, spaces, ControlPlaneOptions::default());
        let shards = plane.shards();
        assert_eq!(shards.len(), 2);
        let sizes: Vec<usize> = shards.values().map(|v| v.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1), "{shards:?}");
    }

    #[test]
    fn default_allocation_reference_is_stable() {
        // Guards the classification metric's reference point.
        let space = SearchSpace::cpu_only(0.25);
        let r = space.default_allocation(2);
        assert_eq!(r, Allocation::new(0.5, 0.25));
    }

    #[test]
    fn batch_matches_serial_replay_bit_for_bit() {
        // Minor-only workload events: serial replay takes no migration,
        // so the batch contract promises bit-identical placements and
        // objective — with fewer waves.
        let mut serial = small_fleet();
        let mut batched = small_fleet();
        let events = vec![
            FleetEvent::WorkloadScaled {
                machine: 0,
                slot: 0,
                factor: 1.5,
            },
            FleetEvent::WorkloadScaled {
                machine: 1,
                slot: 0,
                factor: 0.8,
            },
            FleetEvent::WorkloadScaled {
                machine: 0,
                slot: 1,
                factor: 2.0,
            },
        ];
        let waves_before_serial = serial.stats().waves;
        for e in events.clone() {
            serial.process_event(e);
        }
        let waves_before_batch = batched.stats().waves;
        let outcome = batched.process_batch(&events);
        assert_eq!(outcome.events, 3);
        assert_eq!(outcome.resolved, vec![0, 1], "each dirty machine once");
        assert!(outcome.migrations.is_empty());
        assert_eq!(
            outcome.objective.to_bits(),
            serial.objective().to_bits(),
            "batch-final state must equal serial replay"
        );
        for (b, s) in batched.placements().iter().zip(serial.placements()) {
            assert_eq!(b, s, "placements must be bit-identical");
        }
        assert_eq!(
            batched.seq(),
            serial.seq(),
            "seq counts events, not batches"
        );
        let serial_waves = serial.stats().waves - waves_before_serial;
        let batch_waves = batched.stats().waves - waves_before_batch;
        assert_eq!(serial_waves, 3, "serial: one wave per event");
        assert_eq!(batch_waves, 1, "batched: one wave for the whole batch");
    }

    #[test]
    fn batch_classification_is_last_write_wins_per_slot() {
        // A drift and its revert: serial replay classifies the first
        // change major; the batch compares first-touch against the
        // batch-final workload, sees no net change, and says minor.
        // This is the documented coalescing divergence.
        let original = tpch::query_workload(18, 2.0);
        let drifted = tpch::query_workload(21, 5.0);
        let mut serial = small_fleet();
        let first = serial.process_event(FleetEvent::WorkloadChanged {
            machine: 0,
            slot: 0,
            workload: drifted.clone(),
        });
        assert!(first.action.contains("major"), "{}", first.action);

        let mut batched = small_fleet();
        let outcome = batched.process_batch(&[
            FleetEvent::WorkloadChanged {
                machine: 0,
                slot: 0,
                workload: drifted,
            },
            FleetEvent::WorkloadChanged {
                machine: 0,
                slot: 0,
                workload: original,
            },
        ]);
        assert!(
            outcome.action.contains("0 major") && outcome.action.contains("1 coalesced"),
            "net-zero drift coalesces to minor: {}",
            outcome.action
        );
        assert!(outcome.migrations.is_empty());
        assert_eq!(batched.decision_log().len(), 1, "one decision per batch");
    }

    #[test]
    fn batch_rekeys_slots_and_machines_through_structural_events() {
        // Departure inside a batch shifts later slots; decommission
        // swap-removes. The batch must keep its pending records and
        // dirty set consistent through both.
        let mut plane = small_fleet();
        let outcome = plane.process_batch(&[
            // Touch slot 1 of machine 0 (record keyed (0, 1))...
            FleetEvent::WorkloadScaled {
                machine: 0,
                slot: 1,
                factor: 1.5,
            },
            // ...then remove slot 0: the record must re-key to (0, 0).
            FleetEvent::TenantDeparted {
                machine: 0,
                slot: 0,
            },
            // Empty machine 1 and decommission it: machine 2 (empty)
            // takes index 1.
            FleetEvent::TenantDeparted {
                machine: 1,
                slot: 0,
            },
            FleetEvent::MachineDecommissioned { machine: 1 },
        ]);
        assert_eq!(plane.machine_count(), 2);
        assert_eq!(plane.machine(0).tenant_count(), 1);
        assert_eq!(plane.machine(0).tenant(0).name, "a1");
        assert!(
            outcome.resolved.iter().all(|&m| m < 2),
            "no stale machine indices: {:?}",
            outcome.resolved
        );
        assert_eq!(plane.seq(), 4);
        assert!(
            outcome.action.contains("decommissioned 1"),
            "{}",
            outcome.action
        );
    }

    #[test]
    fn batch_reconciles_arrivals_after_the_single_wave() {
        let mut plane = small_fleet();
        let cat = tpch::catalog(0.1);
        let tenant = Tenant::new("hot", Engine::pg(), cat, tpch::query_workload(18, 3.0)).unwrap();
        let outcome = plane.process_batch(&[
            FleetEvent::WorkloadScaled {
                machine: 1,
                slot: 0,
                factor: 1.1,
            },
            FleetEvent::TenantArrived {
                machine: 0,
                tenant: Box::new(tenant),
                qos: QoS::default(),
            },
        ]);
        assert_eq!(outcome.migrations.len(), 1, "{outcome:?}");
        assert_eq!(outcome.migrations[0].tenant, "hot");
        assert_eq!(outcome.migrations[0].to, 2, "least-loaded destination wins");
        assert_eq!(plane.machine(2).tenant_count(), 1);
        assert_eq!(plane.stats().migrations, 1);
        let logged = plane.decision_log().latest().unwrap().clone();
        assert_eq!(logged.migrations, outcome.migrations);
    }

    #[test]
    fn ring_log_retains_horizon_and_counts_drops() {
        let machines = vec![
            machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
            machine_with(&[("b0", 1, 1.0)]),
            machine_with(&[]),
        ];
        let spaces = vec![SearchSpace::cpu_only(0.25); 3];
        let mut plane = ControlPlane::new(
            machines,
            spaces,
            ControlPlaneOptions {
                decision_log_capacity: 2,
                ..ControlPlaneOptions::default()
            },
        );
        for i in 0..5 {
            plane.process_event(FleetEvent::WorkloadScaled {
                machine: 0,
                slot: 0,
                factor: 1.0 + 0.1 * (i as f64),
            });
        }
        let log = plane.decision_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let seqs: Vec<u64> = log.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![4, 5], "oldest → newest across the ring head");
        assert_eq!(log.latest().unwrap().seq, 5);
    }

    #[test]
    fn capped_probe_cache_evicts_but_never_changes_decisions() {
        let build = || {
            vec![
                machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
                machine_with(&[("b0", 1, 1.0)]),
                machine_with(&[]),
            ]
        };
        let spaces = vec![SearchSpace::cpu_only(0.25); 3];
        let mut uncapped =
            ControlPlane::new(build(), spaces.clone(), ControlPlaneOptions::default());
        let mut capped = ControlPlane::new(
            build(),
            spaces,
            ControlPlaneOptions {
                probe_cache_capacity: 8,
                ..ControlPlaneOptions::default()
            },
        );
        for i in 0..4u32 {
            let e = |_: ()| FleetEvent::WorkloadScaled {
                machine: (i as usize) % 2,
                slot: 0,
                factor: 1.0 + 0.2 * (i as f64),
            };
            let u = uncapped.process_event(e(()));
            let c = capped.process_event(e(()));
            assert_eq!(u.action, c.action);
            assert_eq!(u.resolved, c.resolved);
            assert_eq!(
                u.objective.to_bits(),
                c.objective.to_bits(),
                "capped cache must not change any decision"
            );
        }
        assert!(capped.probe_cache().len() <= 8);
        assert!(capped.probe_cache().evictions() > 0, "cap must bind");
        assert_eq!(uncapped.probe_cache().evictions(), 0);
        assert!(
            capped.probe_cache().misses() >= uncapped.probe_cache().misses(),
            "a capped cache pays with misses, not answers"
        );
        assert!(capped.probe_cache().approx_bytes() <= uncapped.probe_cache().approx_bytes());
    }

    // ------------------------------------------------------------------
    // Adaptive tuning lifecycle
    // ------------------------------------------------------------------

    /// Adaptive knobs small fleets can exercise: refits fire from two
    /// distinct samples, gates settle after a couple of reports.
    fn eager_tuning() -> AdaptiveTuningOptions {
        AdaptiveTuningOptions {
            adaption: AdaptionOptions {
                min_samples: 2,
                ..AdaptionOptions::default()
            },
            guardrail: GuardrailOptions {
                min_shadow_samples: 3,
                canary_tenants: 1,
                min_canary_samples: 2,
                // Wide-open gates: promotion is decided by the shadow
                // comparison, not the canary thresholds.
                max_error_inflation: 10.0,
                max_objective_regression: 10.0,
            },
        }
    }

    fn adaptive_fleet(tuning: Option<AdaptiveTuningOptions>) -> ControlPlane {
        let machines = vec![
            machine_with(&[("a0", 18, 2.0), ("a1", 6, 2.0)]),
            machine_with(&[("b0", 1, 1.0)]),
        ];
        let spaces = vec![SearchSpace::cpu_only(0.25); 2];
        ControlPlane::new(
            machines,
            spaces,
            ControlPlaneOptions {
                adaptive: tuning,
                ..ControlPlaneOptions::default()
            },
        )
    }

    /// Every tenant reports actuals once, in (machine, slot) order.
    fn report_all(plane: &mut ControlPlane) -> Vec<String> {
        let mut actions = Vec::new();
        for m in 0..plane.machine_count() {
            for slot in 0..plane.machine(m).tenant_count() {
                let outcome = plane.process_event(FleetEvent::ActualsReported { machine: m, slot });
                actions.push(outcome.action);
            }
        }
        actions
    }

    #[test]
    fn actuals_are_a_recorded_noop_without_adaptive_tuning() {
        let mut plane = adaptive_fleet(None);
        let objective = plane.objective();
        let outcome = plane.process_event(FleetEvent::ActualsReported {
            machine: 0,
            slot: 0,
        });
        assert_eq!(outcome.action, "actuals-reported m0 t0 (off)");
        assert!(outcome.resolved.is_empty());
        assert_eq!(outcome.objective.to_bits(), objective.to_bits());
        assert!(plane.tuners().is_empty());
        assert!(plane.adaption_storages().is_empty());
    }

    #[test]
    fn adaptive_lifecycle_reaches_a_terminal_verdict() {
        let mut plane = adaptive_fleet(Some(eager_tuning()));
        let mut actions = Vec::new();
        for _ in 0..6 {
            actions.extend(report_all(&mut plane));
        }
        assert!(
            actions.iter().any(|a| a.ends_with("(shadow)")),
            "a refitted candidate must shadow first: {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| a.ends_with("(promoted)") || a.ends_with("(rolled-back)")),
            "the guardrail must reach a verdict: {actions:?}"
        );
        // Whatever the verdict, no machine is left running an
        // uninstalled candidate: every calibration matches the class
        // registry model for its (hardware, kind).
        for m in 0..plane.machine_count() {
            for (kind, model) in plane.machine(m).calibrations().to_vec() {
                let hw = plane.machine(m).hypervisor().machine().fingerprint();
                let class = plane.snapshot().registry;
                let registered = class
                    .iter()
                    .find(|(h, k, _)| *h == hw && *k == kind)
                    .map(|(_, _, m)| m.clone())
                    .expect("class model registered");
                assert_eq!(model.fingerprint(), registered.fingerprint());
            }
        }
    }

    #[test]
    fn failed_canary_rolls_back_to_the_exact_incumbent() {
        let mut tuning = eager_tuning();
        // An impossible objective gate: any canary verdict rolls back.
        tuning.guardrail.max_objective_regression = -1.0;
        let mut plane = adaptive_fleet(Some(tuning));
        let before: Vec<Vec<(EngineKind, CalibratedModel)>> = (0..plane.machine_count())
            .map(|m| plane.machine(m).calibrations().to_vec())
            .collect();
        let registry_before = plane.snapshot().registry;

        let mut actions = Vec::new();
        let mut rolled_back = false;
        'outer: for _ in 0..8 {
            for m in 0..plane.machine_count() {
                for slot in 0..plane.machine(m).tenant_count() {
                    let outcome =
                        plane.process_event(FleetEvent::ActualsReported { machine: m, slot });
                    let done = outcome.action.ends_with("(rolled-back)");
                    actions.push(outcome.action);
                    if done {
                        // Stop at the verdict: a cleared store will
                        // re-propose a fresh candidate from new
                        // residuals, so reporting further would start
                        // the next lifecycle.
                        rolled_back = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            rolled_back,
            "the impossible objective gate must roll the canary back: {actions:?}"
        );
        assert!(
            !actions.iter().any(|a| a.ends_with("(promoted)")),
            "nothing can promote past an impossible gate: {actions:?}"
        );
        // Rollback restores the pre-canary models *exactly*.
        for (m, expected) in before.iter().enumerate() {
            assert_eq!(
                plane.machine(m).calibrations().to_vec(),
                *expected,
                "machine {m} calibrations must be bit-identical after rollback"
            );
        }
        assert_eq!(plane.snapshot().registry, registry_before);
        assert!(plane.tuners().is_empty(), "tracker retires on rollback");
        // The rejected candidate's evidence is gone: the store was
        // cleared so the same samples cannot re-propose it.
        for storage in plane.adaption_storages().values() {
            assert!(storage.len() <= plane.stats().tenants);
        }
    }

    #[test]
    fn canary_tenant_departure_forces_rollback() {
        let mut tuning = eager_tuning();
        // Canary never settles on its own: it needs many samples.
        tuning.guardrail.min_canary_samples = 1_000;
        let mut plane = adaptive_fleet(Some(tuning));
        let mut entered_canary = false;
        for _ in 0..8 {
            for a in report_all(&mut plane) {
                entered_canary |= a.ends_with("(canary)");
            }
            if entered_canary {
                break;
            }
        }
        assert!(entered_canary, "fixture must enter canary");
        let canary_fp = plane
            .tuners()
            .values()
            .next()
            .expect("tracker live in canary")
            .canary_tenants()[0];
        // Find and depart the canary tenant.
        let (m, slot) = (0..plane.machine_count())
            .flat_map(|m| (0..plane.machine(m).tenant_count()).map(move |s| (m, s)))
            .find(|&(m, s)| plane.machine(m).tenant(s).fingerprint() == canary_fp)
            .expect("canary tenant is hosted");
        let registry_before = plane.snapshot().registry;
        plane.process_event(FleetEvent::TenantDeparted { machine: m, slot });
        assert!(
            plane.tuners().is_empty(),
            "departure of the canary tenant must retire the tracker"
        );
        assert_eq!(
            plane.snapshot().registry,
            registry_before,
            "registry incumbent unchanged by the forced rollback"
        );
    }

    #[test]
    fn adaptive_state_snapshot_round_trips() {
        let mut plane = adaptive_fleet(Some(eager_tuning()));
        // Stop mid-lifecycle so both a storage and (typically) a
        // tracker are live in the snapshot.
        for _ in 0..2 {
            report_all(&mut plane);
        }
        let snapshot = plane.snapshot();
        assert!(
            !snapshot.adaption.is_empty(),
            "residual stores must be captured"
        );
        let json = snapshot.to_json();
        let parsed = FleetSnapshot::from_json(&json).expect("snapshot parses");
        assert_eq!(parsed, snapshot);

        // Rebuild a fresh topology and restore.
        let mut fresh = Vec::new();
        let mut spaces = Vec::new();
        for m in 0..plane.machine_count() {
            let live = plane.machine(m);
            let mut adv =
                VirtualizationDesignAdvisor::new(Hypervisor::new(*live.hypervisor().machine()));
            for (i, &q) in live.qos().iter().enumerate() {
                adv.add_tenant(live.tenant(i).clone(), q);
            }
            fresh.push(adv);
            spaces.push(*plane.space(m));
        }
        let resumed = ControlPlane::restore(
            fresh,
            spaces,
            ControlPlaneOptions {
                adaptive: Some(eager_tuning()),
                ..ControlPlaneOptions::default()
            },
            &parsed,
        )
        .expect("snapshot restores");
        assert_eq!(
            resumed.snapshot().to_json(),
            json,
            "restored adaptive state must re-serialize byte-identically"
        );
        assert_eq!(resumed.tuners(), plane.tuners());
        assert_eq!(
            resumed.adaption_storages().keys().collect::<Vec<_>>(),
            plane.adaption_storages().keys().collect::<Vec<_>>()
        );
    }
}
