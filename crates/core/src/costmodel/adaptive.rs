//! Online cost-model adaptation from executor actuals.
//!
//! The paper calibrates each cost model once per (machine, engine)
//! pair and then trusts it forever (§4.3); in a long-running fleet one
//! bad calibration silently poisons every later migration decision for
//! its hardware class. This module closes the loop: executor actuals
//! reported at runtime are banked as *residual samples* (predicted vs
//! actual seconds, stamped with the logical epoch) in a bounded
//! [`RuntimeAdaptionStorage`], and [`refit`] periodically regresses a
//! small multiplicative [`AxisCorrection`] over the same per-axis
//! feature basis the calibrator uses (`1/cpu_share` for the CPU axis,
//! the memory share for the buffer axis). The correction never touches
//! plan choice — it scales predicted *seconds* only, downstream of the
//! optimizer — so an adapted model disagrees with its base about
//! magnitudes, never about plans.
//!
//! Two application paths exist:
//!
//! * [`CalibratedModel::adaption`](crate::costmodel::CalibratedModel)
//!   carries an optional [`Adaption`] overlay applied inside
//!   `to_seconds_at`, so every existing estimator, probe cache, and
//!   snapshot path prices adapted models with zero API changes; and
//! * [`AdaptiveCostModel`] wraps *any* [`CostModel`] with a correction
//!   for shadow pricing — the guardrail prices a candidate without
//!   installing it anywhere.
//!
//! **Fingerprint salting.** An [`Adaption`] carries a `version`
//! counter bumped on every refit; both the `CalibratedModel`
//! fingerprint (which hashes the full `Debug` rendering, overlay
//! included) and [`AdaptiveCostModel::fingerprint`] fold the version
//! in, so an adapted model can never alias its base — or a previous
//! adaption of the same base — in the
//! [`ProbeCache`](crate::costmodel::ProbeCache) /
//! [`SharedEstimateCache`](crate::costmodel::SharedEstimateCache).
//!
//! Everything here is deterministic: samples live in `BTreeMap`s keyed
//! by `(tenant fingerprint, allocation key)`, eviction follows the
//! smallest `(epoch, tenant, key)` triple, and the refit solves one
//! fixed 3×3 normal-equation system.

use crate::costmodel::model::CostModel;
use crate::costmodel::whatif::Estimate;
use crate::problem::{AllocKey, Allocation, Resource};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vda_stats::solve_dense;

/// Hard bounds on the multiplicative correction factor at any
/// allocation. However wild the residuals, an adapted model never
/// prices an allocation more than 4× away from its base — a runaway
/// fit degrades gracefully into a bounded bias instead of an
/// infinite one.
pub const MIN_FACTOR: f64 = 0.25;
/// Upper bound companion to [`MIN_FACTOR`].
pub const MAX_FACTOR: f64 = 4.0;

/// A per-axis multiplicative correction over the calibrator's own
/// feature basis. The factor at allocation `R` is
///
/// ```text
/// factor(R) = scale + cpu·(1/R_cpu − 1) + mem·(R_mem − 1)
/// ```
///
/// clamped to `[MIN_FACTOR, MAX_FACTOR]`. At the full allocation the
/// factor is exactly `scale`; the identity correction
/// (`scale = 1`, zero axis terms) prices every allocation exactly
/// like the base model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisCorrection {
    /// Constant term (the factor at the full allocation).
    pub scale: f64,
    /// Coefficient on `1/cpu_share − 1`.
    pub cpu: f64,
    /// Coefficient on `mem_share − 1`.
    pub mem: f64,
}

impl AxisCorrection {
    /// The do-nothing correction: factor `1.0` everywhere.
    pub const fn identity() -> Self {
        AxisCorrection {
            scale: 1.0,
            cpu: 0.0,
            mem: 0.0,
        }
    }

    /// A pure scale correction (no axis terms).
    pub const fn scale_only(scale: f64) -> Self {
        AxisCorrection {
            scale,
            cpu: 0.0,
            mem: 0.0,
        }
    }

    /// The multiplicative factor at an allocation, clamped to
    /// `[MIN_FACTOR, MAX_FACTOR]`.
    pub fn factor(&self, alloc: Allocation) -> f64 {
        let inv_cpu = 1.0 / alloc.cpu().max(1e-6);
        // detlint:allow(axis-compat, reason = "AxisCorrection's own coefficient field, not an Allocation axis")
        let raw = self.scale + self.cpu * (inv_cpu - 1.0) + self.mem * (alloc.memory() - 1.0);
        raw.clamp(MIN_FACTOR, MAX_FACTOR)
    }

    /// Whether this correction is exactly the identity.
    pub fn is_identity(&self) -> bool {
        *self == AxisCorrection::identity()
    }
}

/// A versioned correction overlay. The `version` is the value of the
/// feeding [`RuntimeAdaptionStorage`]'s mutation counter at refit
/// time; it salts the fingerprint of whatever model carries the
/// overlay, so two refits that happen to produce the same
/// coefficients from different evidence still read as distinct models
/// to every cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adaption {
    /// The fitted correction.
    pub correction: AxisCorrection,
    /// Storage version the correction was fitted at.
    pub version: u64,
}

impl Adaption {
    /// The identity overlay at version 0.
    pub const fn identity() -> Self {
        Adaption {
            correction: AxisCorrection::identity(),
            version: 0,
        }
    }

    /// The correction factor at an allocation.
    pub fn factor(&self, alloc: Allocation) -> f64 {
        self.correction.factor(alloc)
    }
}

/// Knobs of the adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptionOptions {
    /// Residual samples kept per storage (oldest evicted first).
    pub capacity: usize,
    /// Minimum distinct samples before [`refit`] produces a
    /// correction at all.
    pub min_samples: usize,
    /// Refit-time clamp on the constant term: `scale` is confined to
    /// `[1/max_gain, max_gain]`. Tighter than the application-time
    /// factor clamp so the axis terms retain headroom.
    pub max_gain: f64,
}

impl Default for AdaptionOptions {
    fn default() -> Self {
        AdaptionOptions {
            capacity: 256,
            min_samples: 6,
            max_gain: 4.0,
        }
    }
}

/// One banked residual: what the installed model predicted for a
/// (tenant, allocation) pair and what the executor actually measured,
/// stamped with the logical epoch of the report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidualSample {
    /// Logical epoch (control-plane sequence number) of the report.
    pub epoch: u64,
    /// Installed-model prediction, seconds.
    pub predicted: f64,
    /// Executor-measured actual, seconds.
    pub actual: f64,
}

/// Bounded, epoch-stamped per-tenant residual store. One storage
/// exists per adapted scope — the control plane keeps one per
/// (hardware class, engine) pair — and every mutation bumps a version
/// counter that ends up salting the fingerprint of any model refitted
/// from it.
///
/// The store keeps at most one sample per `(tenant, allocation)` key
/// (a re-report overwrites in place, so drift refreshes evidence
/// rather than duplicating it) and at most `capacity` samples overall,
/// evicting the smallest `(epoch, tenant, key)` triple first —
/// deterministic LRU by logical time with a total tie-break.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeAdaptionStorage {
    samples: BTreeMap<(u64, AllocKey), ResidualSample>,
    capacity: usize,
    epoch: u64,
    version: u64,
}

impl RuntimeAdaptionStorage {
    /// Empty storage holding at most `capacity` residuals.
    pub fn new(capacity: usize) -> Self {
        RuntimeAdaptionStorage {
            samples: BTreeMap::new(),
            capacity: capacity.max(1),
            epoch: 0,
            version: 0,
        }
    }

    /// Advance the logical epoch stamped on subsequent records.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Current logical epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutation counter: bumped by every [`record`](Self::record),
    /// [`import`](Self::import), and [`clear`](Self::clear).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of banked residuals.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Bank one residual for `(tenant, alloc)`, overwriting any
    /// previous sample at the same key and evicting the oldest
    /// samples if the store is over capacity. Non-finite or
    /// non-positive observations are ignored (the executor measured
    /// nothing usable).
    pub fn record(&mut self, tenant: u64, alloc: Allocation, predicted: f64, actual: f64) {
        if !(predicted.is_finite() && actual.is_finite() && predicted > 0.0 && actual > 0.0) {
            return;
        }
        self.samples.insert(
            (tenant, alloc.key()),
            ResidualSample {
                epoch: self.epoch,
                predicted,
                actual,
            },
        );
        self.version += 1;
        while self.samples.len() > self.capacity {
            let oldest = self
                .samples
                .iter()
                .map(|(k, s)| (s.epoch, *k))
                .min()
                .map(|(_, k)| k)
                .expect("non-empty: len > capacity >= 1");
            self.samples.remove(&oldest);
        }
    }

    /// Iterate residuals in key order.
    pub fn samples(&self) -> impl Iterator<Item = (&(u64, AllocKey), &ResidualSample)> {
        self.samples.iter()
    }

    /// Drop every residual (e.g. after a rollback discards the
    /// evidence a rejected candidate was fitted from). Bumps the
    /// version so the next refit can never alias the rejected one.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.version += 1;
    }

    /// Export rows in key order for snapshotting:
    /// `(tenant, alloc key, epoch, predicted, actual)`.
    pub fn export(&self) -> Vec<(u64, AllocKey, u64, f64, f64)> {
        self.samples
            .iter()
            .map(|((t, k), s)| (*t, *k, s.epoch, s.predicted, s.actual))
            .collect()
    }

    /// Rebuild from exported rows plus the scalar state. Used by
    /// snapshot restore; the `(epoch, version)` pair round-trips
    /// exactly so a restored fleet refits identically to one that
    /// never snapshotted.
    pub fn import(&mut self, rows: Vec<(u64, AllocKey, u64, f64, f64)>, epoch: u64, version: u64) {
        self.samples = rows
            .into_iter()
            .map(|(t, k, e, p, a)| {
                (
                    (t, k),
                    ResidualSample {
                        epoch: e,
                        predicted: p,
                        actual: a,
                    },
                )
            })
            .collect();
        self.epoch = epoch;
        self.version = version;
    }
}

/// Refit a correction from the banked residuals, or `None` when the
/// evidence is insufficient (fewer than
/// [`min_samples`](AdaptionOptions::min_samples) rows).
///
/// The target is the ratio `actual / predicted` per sample, regressed
/// by least squares over the features `[1, 1/cpu − 1, mem − 1]` via
/// the 3×3 normal equations. When the system is singular (every
/// sample at one allocation, say) or produces non-finite
/// coefficients, the fit falls back to the scale-only mean ratio —
/// always defined, always finite. The constant term is clamped to
/// `[1/max_gain, max_gain]`.
pub fn refit(
    storage: &RuntimeAdaptionStorage,
    options: &AdaptionOptions,
) -> Option<AxisCorrection> {
    let rows: Vec<([f64; 3], f64)> = storage
        .samples()
        .map(|((_, key), s)| {
            let cpu = f64::from(key[Resource::Cpu.index()]) / 1e4;
            let mem = f64::from(key[Resource::Memory.index()]) / 1e4;
            let x = [1.0, 1.0 / cpu.max(1e-6) - 1.0, mem - 1.0];
            (x, s.actual / s.predicted)
        })
        .collect();
    if rows.len() < options.min_samples.max(1) {
        return None;
    }
    let lo = 1.0 / options.max_gain;
    let mean_ratio = rows.iter().map(|(_, y)| *y).sum::<f64>() / rows.len() as f64;
    let fallback = AxisCorrection::scale_only(mean_ratio.clamp(lo, options.max_gain));

    // Normal equations XᵀX β = Xᵀy over the 3-feature basis.
    let mut a = vec![vec![0.0f64; 3]; 3];
    let mut b = vec![0.0f64; 3];
    for (x, y) in &rows {
        for i in 0..3 {
            for j in 0..3 {
                a[i][j] += x[i] * x[j];
            }
            b[i] += x[i] * y;
        }
    }
    let beta = match solve_dense(&a, &b) {
        Ok(beta) if beta.iter().all(|c| c.is_finite()) => beta,
        _ => return Some(fallback),
    };
    Some(AxisCorrection {
        scale: beta[0].clamp(lo, options.max_gain),
        cpu: beta[1],
        mem: beta[2],
    })
}

/// A cost model wrapped with a correction overlay — the generic form
/// of adaptation, used by the guardrail to *shadow-price* a candidate
/// against any incumbent [`CostModel`] without installing anything.
///
/// Seconds and per-statement averages scale by the correction factor
/// at the probed allocation; the plan-regime signature and the
/// optimizer-call/cache-hit counters pass through untouched (the
/// wrapper never re-plans).
#[derive(Debug, Clone)]
pub struct AdaptiveCostModel<M> {
    base: M,
    base_fingerprint: u64,
    adaption: Adaption,
}

impl<M: CostModel> AdaptiveCostModel<M> {
    /// Wrap `base` (whose own cache identity is `base_fingerprint`)
    /// with the identity overlay.
    pub fn new(base: M, base_fingerprint: u64) -> Self {
        AdaptiveCostModel {
            base,
            base_fingerprint,
            adaption: Adaption::identity(),
        }
    }

    /// Replace the overlay.
    #[must_use]
    pub fn with_adaption(mut self, adaption: Adaption) -> Self {
        self.adaption = adaption;
        self
    }

    /// The overlay currently applied.
    pub fn adaption(&self) -> Adaption {
        self.adaption
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Version-salted cache identity: folds the base fingerprint, the
    /// overlay version, and the exact correction coefficients, so an
    /// adapted model never aliases its base (or any other version of
    /// itself) in a fingerprint-keyed cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vda_simdb::hash::Fnv64::new();
        h.write_str("adaptive");
        h.write_u64(self.base_fingerprint);
        h.write_u64(self.adaption.version);
        // Debug renders every f64 at round-trip precision, exactly
        // like `CalibratedModel::fingerprint`.
        h.write_str(&format!("{:?}", self.adaption.correction));
        h.finish()
    }
}

impl<M: CostModel> CostModel for AdaptiveCostModel<M> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        let e = self.base.estimate(alloc);
        let f = self.adaption.factor(alloc);
        Estimate {
            seconds: e.seconds * f,
            plan_regime: e.plan_regime,
            avg_cost_per_statement: e.avg_cost_per_statement * f,
        }
    }

    fn optimizer_calls(&self) -> u64 {
        self.base.optimizer_calls()
    }

    fn cache_hits(&self) -> u64 {
        self.base.cache_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::FnCostModel;

    fn alloc(cpu: f64, mem: f64) -> Allocation {
        Allocation::new(cpu, mem)
    }

    #[test]
    fn identity_correction_is_exactly_neutral() {
        let c = AxisCorrection::identity();
        for &(cpu, mem) in &[(0.25, 0.25), (0.5, 0.75), (1.0, 1.0)] {
            assert_eq!(c.factor(alloc(cpu, mem)), 1.0);
        }
        assert!(c.is_identity());
    }

    #[test]
    fn factor_is_clamped_to_hard_bounds() {
        let c = AxisCorrection {
            scale: 10.0,
            cpu: 50.0,
            mem: 0.0,
        };
        assert_eq!(c.factor(alloc(0.25, 0.5)), MAX_FACTOR);
        let c = AxisCorrection {
            scale: -3.0,
            cpu: 0.0,
            mem: 0.0,
        };
        assert_eq!(c.factor(alloc(0.5, 0.5)), MIN_FACTOR);
    }

    #[test]
    fn storage_overwrites_in_place_and_evicts_oldest_first() {
        let mut s = RuntimeAdaptionStorage::new(2);
        s.set_epoch(1);
        s.record(7, alloc(0.5, 0.5), 1.0, 2.0);
        s.record(7, alloc(0.5, 0.5), 1.0, 3.0); // overwrite, not grow
        assert_eq!(s.len(), 1);
        s.set_epoch(2);
        s.record(9, alloc(0.25, 0.5), 1.0, 1.5);
        s.set_epoch(3);
        s.record(3, alloc(0.75, 0.5), 1.0, 1.1);
        assert_eq!(s.len(), 2);
        // The epoch-1 sample (tenant 7) was the oldest and is gone.
        let tenants: Vec<u64> = s.samples().map(|((t, _), _)| *t).collect();
        assert_eq!(tenants, vec![3, 9]);
    }

    #[test]
    fn storage_rejects_unusable_observations() {
        let mut s = RuntimeAdaptionStorage::new(8);
        let v0 = s.version();
        s.record(1, alloc(0.5, 0.5), 0.0, 1.0);
        s.record(1, alloc(0.5, 0.5), 1.0, f64::NAN);
        s.record(1, alloc(0.5, 0.5), -1.0, 1.0);
        assert!(s.is_empty());
        assert_eq!(s.version(), v0);
    }

    #[test]
    fn every_mutation_bumps_version() {
        let mut s = RuntimeAdaptionStorage::new(4);
        s.record(1, alloc(0.5, 0.5), 1.0, 2.0);
        assert_eq!(s.version(), 1);
        s.record(1, alloc(0.5, 0.5), 1.0, 2.5);
        assert_eq!(s.version(), 2);
        s.clear();
        assert_eq!(s.version(), 3);
    }

    #[test]
    fn export_import_round_trips_exactly() {
        let mut s = RuntimeAdaptionStorage::new(8);
        s.set_epoch(5);
        s.record(2, alloc(0.25, 0.75), 1.25, 2.5);
        s.record(11, alloc(0.5, 0.5), 3.0, 2.0);
        let rows = s.export();
        let mut t = RuntimeAdaptionStorage::new(8);
        t.import(rows, s.epoch(), s.version());
        assert_eq!(s, t);
    }

    #[test]
    fn refit_needs_min_samples() {
        let mut s = RuntimeAdaptionStorage::new(32);
        let opts = AdaptionOptions {
            min_samples: 3,
            ..AdaptionOptions::default()
        };
        s.record(1, alloc(0.5, 0.5), 1.0, 2.0);
        s.record(2, alloc(0.5, 0.5), 1.0, 2.0);
        assert!(refit(&s, &opts).is_none());
        s.record(3, alloc(0.25, 0.5), 1.0, 2.0);
        assert!(refit(&s, &opts).is_some());
    }

    #[test]
    fn refit_recovers_planted_axis_bias() {
        // Plant actual = predicted · (1.5 + 0.2·(1/cpu − 1)); the
        // refit should recover the coefficients.
        let truth = AxisCorrection {
            scale: 1.5,
            cpu: 0.2,
            mem: 0.0,
        };
        let mut s = RuntimeAdaptionStorage::new(64);
        let mut t = 0u64;
        for &cpu in &[0.25, 0.4, 0.5, 0.75, 1.0] {
            for &mem in &[0.25, 0.5, 0.75] {
                t += 1;
                let a = alloc(cpu, mem);
                let predicted = 10.0 / cpu;
                s.record(t, a, predicted, predicted * truth.factor(a));
            }
        }
        let c = refit(&s, &AdaptionOptions::default()).expect("enough samples");
        assert!((c.scale - truth.scale).abs() < 1e-9, "scale {}", c.scale);
        assert!((c.cpu - truth.cpu).abs() < 1e-9, "cpu {}", c.cpu);
        assert!(c.mem.abs() < 1e-9, "mem {}", c.mem);
    }

    #[test]
    fn refit_falls_back_to_mean_ratio_on_degenerate_evidence() {
        // Every sample at the same allocation: the 3×3 system is
        // singular, so the fit degrades to the scale-only mean ratio.
        let mut s = RuntimeAdaptionStorage::new(32);
        for t in 0..6u64 {
            s.record(t, alloc(0.5, 0.5), 2.0, 3.0);
        }
        let c = refit(&s, &AdaptionOptions::default()).expect("enough samples");
        assert_eq!(c.cpu, 0.0);
        assert_eq!(c.mem, 0.0);
        assert!((c.scale - 1.5).abs() < 1e-12);
    }

    #[test]
    fn adaptive_model_scales_estimates_only() {
        let base = FnCostModel::new(|a: Allocation| 2.0 / a.cpu());
        let m = AdaptiveCostModel::new(base, 0xBEEF).with_adaption(Adaption {
            correction: AxisCorrection::scale_only(1.5),
            version: 3,
        });
        let a = alloc(0.5, 0.5);
        assert_eq!(m.cost(a), 6.0);
        assert_eq!(m.estimate(a).plan_regime, 0);
        assert_eq!(m.optimizer_calls(), 0);
    }

    #[test]
    fn fingerprint_salts_on_version_and_coefficients() {
        let base = FnCostModel::new(|a: Allocation| 2.0 / a.cpu());
        let plain = AdaptiveCostModel::new(&base, 0xBEEF);
        let v1 = plain.clone().with_adaption(Adaption {
            correction: AxisCorrection::scale_only(1.5),
            version: 1,
        });
        let v2 = plain.clone().with_adaption(Adaption {
            correction: AxisCorrection::scale_only(1.5),
            version: 2,
        });
        assert_ne!(plain.fingerprint(), v1.fingerprint());
        assert_ne!(v1.fingerprint(), v2.fingerprint());
        // Different base, same overlay: still distinct.
        let other = AdaptiveCostModel::new(&base, 0xCAFE);
        assert_ne!(plain.fingerprint(), other.fingerprint());
    }
}
