//! Optimizer calibration (§4.3) with the §4.4 cost optimizations.
//!
//! Calibration answers: *given a candidate resource allocation `R`,
//! what optimizer parameter values `P` describe a VM configured with
//! `R`?* The procedure is measurement-driven, exactly as in the paper:
//!
//! 1. **I/O parameters** are measured once (at a 50 %/50 % allocation)
//!    by stand-alone read benchmarks — they are independent of both
//!    CPU share and memory grant because the I/O-contention VM, not
//!    the subject VM, dominates disk behaviour (validated by the
//!    Fig. 7/8 experiments).
//! 2. **CPU parameters** are measured at several CPU shares with
//!    memory pinned at 50 %, then fitted as linear functions of
//!    `1/cpu_share` (Fig. 5/6). PgSim's three CPU parameters come
//!    from solving a system of calibration-query equations (one
//!    equation per query, §4.3 step 3); Db2Sim's single `cpuspeed`
//!    comes straight from the CPU-speed measurement program.
//! 3. **Renormalization** (§4.2): PgSim's factor is the measured
//!    seconds per sequential page read; Db2Sim's timeron↔seconds
//!    relation is recovered by linear regression over calibration
//!    queries.
//! 4. **Prescriptive parameters** (buffer pool, work memory) are not
//!    measured at all: they replay the engine's tuning policy for the
//!    candidate memory grant.
//!
//! The naive alternative — realizing `N × M` VMs for `N` CPU and `M`
//! memory settings — is implemented too ([`Calibrator::calibrate_grid`])
//! so the independence claims can be *demonstrated*, as the paper does
//! in Figures 5–8.

use crate::costmodel::adaptive::Adaption;
use crate::costmodel::renormalize::Renormalizer;
use crate::problem::{Allocation, Resource};
use serde::{Deserialize, Serialize};
use vda_simdb::bind::{bind_statement, BoundQuery};
use vda_simdb::catalog::{table, Catalog, IndexDef};
use vda_simdb::engines::{Db2Params, Engine, EngineKind, EngineParams, PgParams, TupleParams};
use vda_simdb::exec::{ExecContext, Executor};
use vda_simdb::optimizer::Optimizer;
use vda_stats::{solve_dense, LinearFit};
use vda_vmm::{cpu_speed_bench, random_read_bench, sequential_read_bench, Hypervisor, VmConfig};

/// Settings of the calibration procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// CPU shares at which CPU parameters are measured.
    pub cpu_levels: Vec<f64>,
    /// Memory share pinned while measuring CPU parameters (§4.4:
    /// "we calibrate the CPU parameters at 50 % memory allocation").
    pub cpu_mem_level: f64,
    /// Allocation at which I/O parameters are measured. Its
    /// disk-bandwidth share is the *reference* against which the
    /// disk-axis multiplier is fitted.
    pub io_level: Allocation,
    /// Disk-bandwidth shares at which the I/O-time multiplier is
    /// measured (analogous to `cpu_levels` for the CPU parameters).
    /// Empty (the default, and the paper's M = 2 procedure) skips the
    /// disk calibration entirely: the model then prices every
    /// allocation as if it held the reference disk share, exactly the
    /// pre-disk-axis behaviour. Set at least two distinct levels to
    /// open the [`Resource::DiskBandwidth`] axis to what-if costing.
    ///
    /// [`Resource::DiskBandwidth`]: crate::problem::Resource::DiskBandwidth
    pub disk_levels: Vec<f64>,
    /// Blocks read by each I/O micro-benchmark.
    pub io_bench_blocks: u64,
    /// Instructions timed by the CPU-speed micro-benchmark.
    pub cpu_bench_instructions: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            cpu_levels: (1..=10).map(|i| i as f64 / 10.0).collect(),
            cpu_mem_level: 0.5,
            io_level: Allocation::full()
                .with(Resource::Cpu, 0.5)
                .with(Resource::Memory, 0.5),
            disk_levels: Vec::new(),
            io_bench_blocks: 10_000,
            cpu_bench_instructions: 100_000_000,
        }
    }
}

impl CalibrationConfig {
    /// The default procedure plus a disk-axis calibration over the
    /// given bandwidth shares.
    pub fn with_disk_levels(levels: Vec<f64>) -> Self {
        assert!(
            levels.len() >= 2,
            "disk calibration needs at least two levels"
        );
        CalibrationConfig {
            disk_levels: levels,
            ..CalibrationConfig::default()
        }
    }
}

/// Bookkeeping of what calibration cost (§7.2 reports these numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibrationCost {
    /// Simulated wall-clock seconds spent in benchmarks and
    /// calibration queries.
    pub simulated_seconds: f64,
    /// Distinct VM configurations realized.
    pub vm_configurations: usize,
    /// Calibration queries executed.
    pub queries_run: usize,
}

/// Raw CPU-parameter values solved at one (cpu, memory) point —
/// exposed so the Fig. 5/6 independence experiments can tabulate them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuPoint {
    /// The CPU share measured.
    pub cpu_share: f64,
    /// The memory share in effect.
    pub memory_share: f64,
    /// Parameter values in engine order: PgSim `(cpu_tuple_cost,
    /// cpu_operator_cost, cpu_index_tuple_cost)`, Db2Sim `(cpuspeed,)`,
    /// TupleSim `(scan, op, index)` unit charges in µs.
    pub values: Vec<f64>,
}

/// Raw I/O-parameter values measured at one point (Fig. 7/8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoPoint {
    /// The CPU share measured.
    pub cpu_share: f64,
    /// The memory share in effect.
    pub memory_share: f64,
    /// PgSim: `(random_page_cost,)`; Db2Sim: `(overhead_ms,
    /// transfer_rate_ms)`; TupleSim: `(page, seek)` unit charges in µs.
    pub values: Vec<f64>,
}

/// Fitted calibration functions `Cal_ik`: allocation → parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedModel {
    /// Which engine this model describes.
    pub kind: EngineKind,
    /// Physical-machine memory, MB (to turn memory shares into grants).
    pub machine_mem_mb: f64,
    /// Per-CPU-parameter fits over `1/cpu_share`.
    pub cpu_fits: CpuFits,
    /// Measured I/O constants.
    pub io: IoConstants,
    /// I/O-time multiplier over `1/disk_share`, relative to the
    /// reference disk share the I/O constants were measured at
    /// ([`CalibrationConfig::io_level`]). `None` when the disk axis
    /// was never calibrated — the model then prices every allocation
    /// at the reference disk share (the paper's M = 2 behaviour).
    pub disk_fit: Option<LinearFit>,
    /// Native-cost → seconds conversion.
    pub renorm: Renormalizer,
    /// What the calibration cost.
    pub cost: CalibrationCost,
    /// Optional online-adaptation overlay (§"Adaptive calibration" in
    /// `docs/ARCHITECTURE.md`): a multiplicative per-axis correction
    /// applied in [`Self::to_seconds_at`], downstream of the
    /// optimizer, so it rescales predicted seconds without ever
    /// changing plan choice. `None` prices bit-identically to the
    /// pre-adaptation code path. Because [`Self::fingerprint`] hashes
    /// the `Debug` rendering, any overlay (and any version bump of
    /// one) re-keys every fingerprint-keyed cache automatically.
    pub adaption: Option<Adaption>,
}

/// CPU calibration functions per engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CpuFits {
    /// PgSim's three CPU parameters.
    Pg {
        /// `cpu_tuple_cost` over `1/cpu_share`.
        tuple: LinearFit,
        /// `cpu_operator_cost` over `1/cpu_share`.
        operator: LinearFit,
        /// `cpu_index_tuple_cost` over `1/cpu_share`.
        index_tuple: LinearFit,
    },
    /// Db2Sim's `cpuspeed`.
    Db2 {
        /// `cpuspeed` (ms/instr) over `1/cpu_share`.
        cpuspeed: LinearFit,
    },
    /// TupleSim's three CPU unit charges. The calibrator denominates
    /// them in µs of reference time — the engine's own tuple unit is
    /// unpublished, and the common scale factor is absorbed by the
    /// regression renormalizer exactly like DB2's timeron.
    Tuple {
        /// Per-tuple scan charge (µs) over `1/cpu_share`.
        scan: LinearFit,
        /// Per-operator charge (µs) over `1/cpu_share`.
        op: LinearFit,
        /// Per-index-entry charge (µs) over `1/cpu_share`.
        index: LinearFit,
    },
}

/// Measured I/O constants per engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IoConstants {
    /// PgSim: the random/sequential cost ratio.
    Pg {
        /// Calibrated `random_page_cost`.
        random_page_cost: f64,
    },
    /// Db2Sim: random overhead and per-page transfer time.
    Db2 {
        /// Calibrated `overhead` (ms).
        overhead_ms: f64,
        /// Calibrated `transfer_rate` (ms/page).
        transfer_rate_ms: f64,
    },
    /// TupleSim: per-page and per-seek unit charges (µs of reference
    /// time — same calibrator-chosen scale as [`CpuFits::Tuple`]).
    Tuple {
        /// Charge per data page transferred (µs).
        page: f64,
        /// Extra charge per non-sequential page (µs).
        seek: f64,
    },
}

impl CalibratedModel {
    /// Stable 64-bit fingerprint over everything that determines this
    /// model's estimates: engine kind, machine memory, every fitted
    /// parameter, the I/O constants, the disk fit, and the
    /// renormalization. Two models compare [`PartialEq`]-equal iff
    /// their fingerprints agree, so caches keyed by it (the fleet
    /// [`ProbeCache`](crate::costmodel::whatif::ProbeCache), the
    /// warm-start state of
    /// [`coarse_to_fine_search_warm`](crate::enumerate::coarse_to_fine_search_warm))
    /// are invalidated exactly when a recalibration actually changed
    /// the model — an estimate priced under an old calibration is
    /// never served under a new one.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vda_simdb::hash::Fnv64::new();
        // Debug renders every f64 at round-trip precision, so any
        // numeric difference between two calibrations changes the
        // string (and equal models render identically).
        h.write_str(&format!("{self:?}"));
        h.finish()
    }

    /// The I/O-time multiplier at a disk-bandwidth share, relative to
    /// the reference share the I/O constants were measured at. `1.0`
    /// exactly when the disk axis was never calibrated (so the M = 2
    /// paths reproduce their historical results bit for bit).
    pub fn io_multiplier(&self, disk_share: f64) -> f64 {
        match &self.disk_fit {
            None => 1.0,
            Some(fit) => fit.predict(1.0 / disk_share.max(1e-6)).max(1e-9),
        }
    }

    /// The engine parameters describing a VM at `alloc` — the R → P
    /// mapping that powers the what-if mode.
    ///
    /// The disk axis enters differently per engine, mirroring each
    /// cost model's unit system. PgSim costs are denominated in
    /// *sequential page reads*: when the VM's disk slice shrinks, the
    /// unit itself slows down, so the CPU parameters shrink relative
    /// to it (and [`Self::to_seconds_at`] stretches the unit);
    /// `random_page_cost` is a ratio of two I/O times and is
    /// disk-share-invariant. Db2Sim costs are denominated in
    /// milliseconds: `overhead`/`transfer_rate` stretch directly and
    /// `cpuspeed` is untouched.
    pub fn params_at(&self, engine: &Engine, alloc: Allocation) -> EngineParams {
        let inv = 1.0 / alloc.cpu().max(1e-6);
        let mem = engine.tuning(alloc.memory() * self.machine_mem_mb);
        let mult = self.io_multiplier(alloc.disk());
        match (&self.cpu_fits, &self.io) {
            (
                CpuFits::Pg {
                    tuple,
                    operator,
                    index_tuple,
                },
                IoConstants::Pg { random_page_cost },
            ) => EngineParams::Pg(PgParams {
                random_page_cost: *random_page_cost,
                cpu_tuple_cost: (tuple.predict(inv) / mult).max(1e-9),
                cpu_operator_cost: (operator.predict(inv) / mult).max(1e-9),
                cpu_index_tuple_cost: (index_tuple.predict(inv) / mult).max(1e-9),
                shared_buffers_mb: mem.buffer_mb,
                work_mem_mb: mem.work_mb,
                effective_cache_size_mb: mem.os_cache_mb,
            }),
            (
                CpuFits::Db2 { cpuspeed },
                IoConstants::Db2 {
                    overhead_ms,
                    transfer_rate_ms,
                },
            ) => EngineParams::Db2(Db2Params {
                cpuspeed_ms_per_instr: cpuspeed.predict(inv).max(1e-15),
                overhead_ms: overhead_ms * mult,
                transfer_rate_ms: transfer_rate_ms * mult,
                sortheap_mb: mem.work_mb,
                bufferpool_mb: mem.buffer_mb,
            }),
            (CpuFits::Tuple { scan, op, index }, IoConstants::Tuple { page, seek }) => {
                // TupleSim charges are time-denominated like Db2's ms
                // parameters: the I/O charges stretch with the disk
                // share, the CPU charges do not.
                EngineParams::Tuple(TupleParams {
                    scan_tuple_units: scan.predict(inv).max(1e-9),
                    index_tuple_units: index.predict(inv).max(1e-9),
                    op_units: op.predict(inv).max(1e-9),
                    page_units: page * mult,
                    seek_units: seek * mult,
                    sort_mb: mem.work_mb,
                    cache_mb: mem.buffer_mb,
                })
            }
            _ => unreachable!("CpuFits and IoConstants always match the engine kind"),
        }
    }

    /// Renormalize a native cost estimate to seconds, at the reference
    /// disk share.
    pub fn to_seconds(&self, native: f64) -> f64 {
        self.renorm.to_seconds(native)
    }

    /// Renormalize a native cost estimated under
    /// [`Self::params_at`]`(engine, alloc)` to seconds. For PgSim the
    /// native unit is one sequential page read, whose duration scales
    /// with the allocation's disk share; Db2Sim timerons are
    /// milliseconds and already carry the disk share through the
    /// stretched I/O parameters.
    pub fn to_seconds_at(&self, native: f64, alloc: Allocation) -> f64 {
        let base = match self.kind {
            EngineKind::PgSim => self.to_seconds(native) * self.io_multiplier(alloc.disk()),
            // Db2Sim and TupleSim units are time-denominated: the disk
            // share already stretched their I/O parameters.
            EngineKind::Db2Sim | EngineKind::TupleSim => self.to_seconds(native),
        };
        match &self.adaption {
            None => base,
            Some(a) => base * a.factor(alloc),
        }
    }

    /// This model with an adaptation overlay installed (replacing any
    /// existing one).
    #[must_use]
    pub fn with_adaption(mut self, adaption: Adaption) -> Self {
        self.adaption = Some(adaption);
        self
    }

    /// This model with any adaptation overlay removed — the exact
    /// pre-adaptation base, bit-identical to what the calibrator
    /// produced (rollback reinstalls this).
    #[must_use]
    pub fn without_adaption(mut self) -> Self {
        self.adaption = None;
        self
    }
}

/// The calibration driver for one physical machine.
#[derive(Debug)]
pub struct Calibrator<'a> {
    hv: &'a Hypervisor,
    config: CalibrationConfig,
    catalog: Catalog,
    queries: Vec<BoundQuery>,
    /// A no-op statement whose runtime is the per-statement overhead
    /// floor (connection/parse/optimize). Its measured time is
    /// subtracted from every calibration query so fixed overheads do
    /// not contaminate the per-unit parameters — the practical
    /// equivalent of §4.3's "choose calibration queries with minimal
    /// non-modeled costs".
    noop: BoundQuery,
}

impl<'a> Calibrator<'a> {
    /// A calibrator with default settings.
    pub fn new(hv: &'a Hypervisor) -> Self {
        Self::with_config(hv, CalibrationConfig::default())
    }

    /// A calibrator with explicit settings.
    pub fn with_config(hv: &'a Hypervisor, config: CalibrationConfig) -> Self {
        let catalog = calibration_catalog();
        let queries = calibration_queries()
            .iter()
            .map(|sql| bind_statement(sql, &catalog).expect("calibration queries always bind"))
            .collect();
        let noop = bind_statement("SELECT 1", &catalog).expect("no-op query binds");
        Calibrator {
            hv,
            config,
            catalog,
            queries,
            noop,
        }
    }

    /// The calibration settings in use.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Full calibration of one engine: I/O constants once, CPU
    /// parameters across the configured CPU levels at 50 % memory,
    /// renormalization, and the fitted `Cal_ik` functions.
    pub fn calibrate(&self, engine: &Engine) -> CalibratedModel {
        let mut cost = CalibrationCost::default();

        let (io_point, io_t_seq) =
            self.calibrate_io_point_raw(engine, self.config.io_level, &mut cost);
        let io = match engine.kind() {
            EngineKind::PgSim => IoConstants::Pg {
                random_page_cost: io_point.values[0],
            },
            EngineKind::Db2Sim => IoConstants::Db2 {
                overhead_ms: io_point.values[0],
                transfer_rate_ms: io_point.values[1],
            },
            EngineKind::TupleSim => IoConstants::Tuple {
                page: io_point.values[0],
                seek: io_point.values[1],
            },
        };

        // Renormalization must exist before CPU-query calibration (the
        // measured runtimes are converted back to native units).
        let renorm = self.fit_renormalizer(engine, &io, &mut cost);

        let mut inv_levels = Vec::with_capacity(self.config.cpu_levels.len());
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for &level in &self.config.cpu_levels {
            let point = self.calibrate_cpu_point(
                engine,
                level,
                self.config.cpu_mem_level,
                &io,
                &renorm,
                &mut cost,
            );
            inv_levels.push(1.0 / level);
            if columns.is_empty() {
                columns = vec![Vec::new(); point.values.len()];
            }
            for (col, v) in columns.iter_mut().zip(&point.values) {
                col.push(*v);
            }
        }

        let fit =
            |ys: &[f64]| LinearFit::fit(&inv_levels, ys).expect("calibration levels are distinct");
        let cpu_fits = match engine.kind() {
            EngineKind::PgSim => CpuFits::Pg {
                tuple: fit(&columns[0]),
                operator: fit(&columns[1]),
                index_tuple: fit(&columns[2]),
            },
            EngineKind::Db2Sim => CpuFits::Db2 {
                cpuspeed: fit(&columns[0]),
            },
            EngineKind::TupleSim => CpuFits::Tuple {
                scan: fit(&columns[0]),
                op: fit(&columns[1]),
                index: fit(&columns[2]),
            },
        };

        let disk_fit = self.calibrate_disk_fit(io_t_seq, &mut cost);

        CalibratedModel {
            kind: engine.kind(),
            machine_mem_mb: self.hv.machine().memory_mb,
            cpu_fits,
            io,
            disk_fit,
            renorm,
            cost,
            adaption: None,
        }
    }

    /// Fit the I/O-time multiplier over `1/disk_share` (relative to
    /// the reference disk share of [`CalibrationConfig::io_level`]) by
    /// re-running the sequential read benchmark at each configured
    /// disk level. `t_ref` is the sequential page time the I/O
    /// calibration already measured at `io_level` — the reference
    /// point is reused, not re-measured (and a level equal to the
    /// reference share is likewise served from it). `None` — and zero
    /// extra measurement cost — when no levels are configured, keeping
    /// the default procedure identical to the paper's.
    fn calibrate_disk_fit(&self, t_ref: f64, cost: &mut CalibrationCost) -> Option<LinearFit> {
        if self.config.disk_levels.is_empty() {
            return None;
        }
        assert!(
            self.config.disk_levels.len() >= 2,
            "disk calibration needs at least two levels"
        );
        let blocks = self.config.io_bench_blocks;
        let ref_share = self.config.io_level.disk();
        let mut inv = Vec::with_capacity(self.config.disk_levels.len());
        let mut mult = Vec::with_capacity(self.config.disk_levels.len());
        for &d in &self.config.disk_levels {
            // A level equal to the reference share is the measurement
            // the I/O calibration already took — don't realize (and
            // bill) the same VM configuration twice.
            let t = if (d - ref_share).abs() < 1e-12 {
                t_ref
            } else {
                let perf = self.hv.perf_for(
                    self.config
                        .io_level
                        .with(crate::problem::Resource::DiskBandwidth, d)
                        .vm_config()
                        .expect("disk levels are valid shares"),
                );
                cost.vm_configurations += 1;
                let t = sequential_read_bench(&perf, blocks);
                cost.simulated_seconds += t * blocks as f64;
                t
            };
            inv.push(1.0 / d);
            mult.push(t / t_ref);
        }
        Some(LinearFit::fit(&inv, &mult).expect("disk levels are distinct"))
    }

    /// The naive N×M grid calibration (§4.4's strawman): solve the CPU
    /// parameters at *every* (cpu, memory) combination. Returns one
    /// [`CpuPoint`] per combination; used by the Fig. 5/6 experiments
    /// to demonstrate memory-independence.
    pub fn calibrate_grid(
        &self,
        engine: &Engine,
        cpu_levels: &[f64],
        mem_levels: &[f64],
    ) -> Vec<CpuPoint> {
        let mut cost = CalibrationCost::default();
        let io_point = self.calibrate_io_point(engine, self.config.io_level, &mut cost);
        let io = match engine.kind() {
            EngineKind::PgSim => IoConstants::Pg {
                random_page_cost: io_point.values[0],
            },
            EngineKind::Db2Sim => IoConstants::Db2 {
                overhead_ms: io_point.values[0],
                transfer_rate_ms: io_point.values[1],
            },
            EngineKind::TupleSim => IoConstants::Tuple {
                page: io_point.values[0],
                seek: io_point.values[1],
            },
        };
        let renorm = self.fit_renormalizer(engine, &io, &mut cost);
        let mut out = Vec::new();
        for &mem in mem_levels {
            for &cpu in cpu_levels {
                out.push(self.calibrate_cpu_point(engine, cpu, mem, &io, &renorm, &mut cost));
            }
        }
        out
    }

    /// Measure the I/O parameters at one allocation (Fig. 7/8 sweep).
    pub fn io_point(&self, engine: &Engine, alloc: Allocation) -> IoPoint {
        let mut cost = CalibrationCost::default();
        self.calibrate_io_point(engine, alloc, &mut cost)
    }

    fn calibrate_io_point(
        &self,
        engine: &Engine,
        alloc: Allocation,
        cost: &mut CalibrationCost,
    ) -> IoPoint {
        self.calibrate_io_point_raw(engine, alloc, cost).0
    }

    /// [`Self::calibrate_io_point`] plus the raw sequential page time
    /// it measured (the disk-axis fit reuses it as its reference
    /// instead of re-benchmarking the same VM configuration).
    fn calibrate_io_point_raw(
        &self,
        engine: &Engine,
        alloc: Allocation,
        cost: &mut CalibrationCost,
    ) -> (IoPoint, f64) {
        let perf = self
            .hv
            .perf_for(alloc.vm_config().expect("calibration levels are valid"));
        cost.vm_configurations += 1;
        let blocks = self.config.io_bench_blocks;
        let t_seq = sequential_read_bench(&perf, blocks);
        let t_rand = random_read_bench(&perf, blocks);
        cost.simulated_seconds += (t_seq + t_rand) * blocks as f64;
        let values = match engine.kind() {
            EngineKind::PgSim => vec![t_rand / t_seq],
            EngineKind::Db2Sim => vec![(t_rand - t_seq) * 1e3, t_seq * 1e3],
            EngineKind::TupleSim => vec![t_seq * 1e6, (t_rand - t_seq) * 1e6],
        };
        (
            IoPoint {
                cpu_share: alloc.cpu(),
                memory_share: alloc.memory(),
                values,
            },
            t_seq,
        )
    }

    /// Solve the CPU parameters at one (cpu, memory) point.
    fn calibrate_cpu_point(
        &self,
        engine: &Engine,
        cpu: f64,
        memory: f64,
        io: &IoConstants,
        renorm: &Renormalizer,
        cost: &mut CalibrationCost,
    ) -> CpuPoint {
        let perf = self
            .hv
            .perf_for(VmConfig::new(cpu, memory).expect("calibration levels are valid"));
        cost.vm_configurations += 1;

        match engine.kind() {
            EngineKind::Db2Sim => {
                // §4.3: "no queries are needed to calibrate the DB2
                // cpuspeed parameter" — a stand-alone program times an
                // instruction loop.
                let instr = self.config.cpu_bench_instructions;
                let ms_per_instr = cpu_speed_bench(&perf, instr, 1.0);
                cost.simulated_seconds += ms_per_instr * instr as f64 / 1e3;
                CpuPoint {
                    cpu_share: cpu,
                    memory_share: memory,
                    values: vec![ms_per_instr],
                }
            }
            EngineKind::PgSim => {
                // Three calibration queries in the three unknown CPU
                // parameters. For each query: measure its runtime,
                // convert to native units, subtract the (known) I/O
                // cost; the residual is a linear function of the
                // unknowns with plan-counter coefficients.
                let rand_cost = match io {
                    IoConstants::Pg { random_page_cost } => *random_page_cost,
                    _ => unreachable!("engine kinds match"),
                };
                let exec = Executor::new(engine, &self.catalog);
                // Plan with stock CPU parameters plus the measured I/O
                // constants: the calibration queries are chosen so their
                // plans do not depend on the CPU parameter values.
                let mut probe = PgParams::stock_defaults();
                probe.random_page_cost = rand_cost;
                let mem_cfg = engine.tuning(perf.memory_mb);
                probe.shared_buffers_mb = mem_cfg.buffer_mb;
                probe.work_mem_mb = mem_cfg.work_mb;
                probe.effective_cache_size_mb = mem_cfg.os_cache_mb;
                let factors = engine.factors(&EngineParams::Pg(probe));
                let optimizer = Optimizer::new(&self.catalog, factors);

                let floor = exec
                    .execute(&self.noop, &perf, &ExecContext::default())
                    .seconds;
                let mut a = Vec::with_capacity(self.queries.len());
                let mut b = Vec::with_capacity(self.queries.len());
                for q in &self.queries {
                    let plan = optimizer.plan(q);
                    let secs =
                        (exec.execute(q, &perf, &ExecContext::default()).seconds - floor).max(0.0);
                    cost.simulated_seconds += secs;
                    cost.queries_run += 1;
                    let native_measured = match renorm {
                        Renormalizer::SecondsPerUnit { secs_per_unit } => secs / secs_per_unit,
                        Renormalizer::Regression { slope, intercept } => (secs - intercept) / slope,
                    };
                    let io_native = plan.counters.seq_pages
                        + plan.counters.spill_pages
                        + plan.counters.rand_pages * rand_cost;
                    a.push(vec![
                        plan.counters.cpu_tuples,
                        plan.counters.cpu_operators,
                        plan.counters.cpu_index_tuples,
                    ]);
                    b.push(native_measured - io_native);
                }
                let solved = solve_dense(&a, &b)
                    .expect("calibration queries are chosen to give a well-conditioned system");
                CpuPoint {
                    cpu_share: cpu,
                    memory_share: memory,
                    values: solved.into_iter().map(|v| v.max(1e-9)).collect(),
                }
            }
            EngineKind::TupleSim => {
                // The tuple engine publishes no unit↔seconds relation,
                // so the system is solved directly in the seconds
                // domain (no renormalizer needed): measured runtime
                // minus the known I/O time is linear in the three
                // per-item times, which become µs unit charges.
                let (page, seek) = match io {
                    IoConstants::Tuple { page, seek } => (*page, *seek),
                    _ => unreachable!("engine kinds match"),
                };
                let values = self.solve_tuple_unit_charges(engine, &perf, page, seek, cost);
                CpuPoint {
                    cpu_share: cpu,
                    memory_share: memory,
                    values,
                }
            }
        }
    }

    /// Solve TupleSim's three CPU unit charges at one VM configuration:
    /// a PgSim-style three-query system, but in the *seconds* domain
    /// (the engine's native unit is unpublished, so the calibrator
    /// denominates charges in µs of reference time and lets the
    /// regression renormalizer absorb the scale). Returns
    /// `(scan, op, index)` charges in µs.
    fn solve_tuple_unit_charges(
        &self,
        engine: &Engine,
        perf: &vda_vmm::VmPerf,
        page_units: f64,
        seek_units: f64,
        cost: &mut CalibrationCost,
    ) -> Vec<f64> {
        let mem_cfg = engine.tuning(perf.memory_mb);
        // Plan with the measured I/O charges and ballpark CPU charges:
        // the calibration queries are chosen so their plans do not
        // depend on the CPU parameter values.
        let probe = TupleParams {
            scan_tuple_units: 1.0,
            index_tuple_units: 0.5,
            op_units: 1.0,
            page_units,
            seek_units,
            sort_mb: mem_cfg.work_mb,
            cache_mb: mem_cfg.buffer_mb,
        };
        let optimizer = Optimizer::new(&self.catalog, engine.factors(&EngineParams::Tuple(probe)));
        let exec = Executor::new(engine, &self.catalog);
        let floor = exec
            .execute(&self.noop, perf, &ExecContext::default())
            .seconds;
        let t_page = page_units / 1e6;
        let t_seek = seek_units / 1e6;
        let mut a = Vec::with_capacity(self.queries.len());
        let mut b = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            let plan = optimizer.plan(q);
            let secs = (exec.execute(q, perf, &ExecContext::default()).seconds - floor).max(0.0);
            cost.simulated_seconds += secs;
            cost.queries_run += 1;
            let io_secs = (plan.counters.seq_pages + plan.counters.spill_pages) * t_page
                + plan.counters.rand_pages * (t_page + t_seek);
            a.push(vec![
                plan.counters.cpu_tuples,
                plan.counters.cpu_operators,
                plan.counters.cpu_index_tuples,
            ]);
            b.push(secs - io_secs);
        }
        let solved = solve_dense(&a, &b)
            .expect("calibration queries are chosen to give a well-conditioned system");
        solved.into_iter().map(|v| (v * 1e6).max(1e-9)).collect()
    }

    /// Fit the renormalizer (§4.2).
    fn fit_renormalizer(
        &self,
        engine: &Engine,
        io: &IoConstants,
        cost: &mut CalibrationCost,
    ) -> Renormalizer {
        let alloc = self.config.io_level;
        let perf = self
            .hv
            .perf_for(alloc.vm_config().expect("calibration levels are valid"));
        match engine.kind() {
            EngineKind::PgSim => {
                let blocks = self.config.io_bench_blocks;
                let secs = sequential_read_bench(&perf, blocks);
                cost.simulated_seconds += secs * blocks as f64;
                Renormalizer::SecondsPerUnit {
                    secs_per_unit: secs,
                }
            }
            EngineKind::Db2Sim => {
                // Estimate timerons with measured descriptive params
                // and policy-derived prescriptive params, then regress
                // measured seconds on estimated timerons.
                let (overhead_ms, transfer_rate_ms) = match io {
                    IoConstants::Db2 {
                        overhead_ms,
                        transfer_rate_ms,
                    } => (*overhead_ms, *transfer_rate_ms),
                    _ => unreachable!("engine kinds match"),
                };
                let instr = self.config.cpu_bench_instructions;
                let cpuspeed = cpu_speed_bench(&perf, instr, 1.0);
                cost.simulated_seconds += cpuspeed * instr as f64 / 1e3;
                let mem_cfg = engine.tuning(perf.memory_mb);
                let params = EngineParams::Db2(Db2Params {
                    cpuspeed_ms_per_instr: cpuspeed,
                    overhead_ms,
                    transfer_rate_ms,
                    sortheap_mb: mem_cfg.work_mb,
                    bufferpool_mb: mem_cfg.buffer_mb,
                });
                let optimizer = Optimizer::new(&self.catalog, engine.factors(&params));
                let exec = Executor::new(engine, &self.catalog);
                let mut natives = Vec::new();
                let mut seconds = Vec::new();
                for q in &self.queries {
                    let plan = optimizer.plan(q);
                    let secs = exec.execute(q, &perf, &ExecContext::default()).seconds;
                    cost.simulated_seconds += secs;
                    cost.queries_run += 1;
                    natives.push(plan.native_cost);
                    seconds.push(secs);
                }
                let fit = LinearFit::fit(&natives, &seconds)
                    .expect("calibration queries have distinct costs");
                Renormalizer::from_fit(&fit)
            }
            EngineKind::TupleSim => {
                // Same shape as the DB2 path: price the calibration
                // queries with measured descriptive charges, then
                // regress measured seconds on native (unit-denominated)
                // costs to recover the unpublished unit↔seconds
                // relation.
                let (page, seek) = match io {
                    IoConstants::Tuple { page, seek } => (*page, *seek),
                    _ => unreachable!("engine kinds match"),
                };
                let charges = self.solve_tuple_unit_charges(engine, &perf, page, seek, cost);
                let mem_cfg = engine.tuning(perf.memory_mb);
                let params = EngineParams::Tuple(TupleParams {
                    scan_tuple_units: charges[0],
                    index_tuple_units: charges[2],
                    op_units: charges[1],
                    page_units: page,
                    seek_units: seek,
                    sort_mb: mem_cfg.work_mb,
                    cache_mb: mem_cfg.buffer_mb,
                });
                let optimizer = Optimizer::new(&self.catalog, engine.factors(&params));
                let exec = Executor::new(engine, &self.catalog);
                let mut natives = Vec::new();
                let mut seconds = Vec::new();
                for q in &self.queries {
                    let plan = optimizer.plan(q);
                    let secs = exec.execute(q, &perf, &ExecContext::default()).seconds;
                    cost.simulated_seconds += secs;
                    cost.queries_run += 1;
                    natives.push(plan.native_cost);
                    seconds.push(secs);
                }
                let fit = LinearFit::fit(&natives, &seconds)
                    .expect("calibration queries have distinct costs");
                Renormalizer::from_fit(&fit)
            }
        }
    }
}

/// The shared calibration database `D` (§4.3 step 1): one
/// medium-width fact table for the tuple/operator equations and one
/// very wide table whose index scans stay cheaper than sequential
/// scans, isolating `cpu_index_tuple_cost`.
pub fn calibration_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(table(
        "cal_fact",
        200_000.0,
        100.0,
        &[
            ("k", 200_000.0, 8.0),
            ("grp", 50.0, 8.0),
            ("val", 100_000.0, 8.0),
        ],
    ));
    c.add_table(table(
        "cal_wide",
        100_000.0,
        8000.0,
        &[("w_k", 100_000.0, 8.0), ("w_grp", 20.0, 8.0)],
    ));
    c.add_index(IndexDef {
        name: "cal_fact_k".into(),
        table: "cal_fact".into(),
        column: "k".into(),
    })
    .expect("static calibration index");
    c.add_index(IndexDef {
        name: "cal_wide_k".into(),
        table: "cal_wide".into(),
        column: "w_k".into(),
    })
    .expect("static calibration index");
    c
}

/// The calibration queries `Q` (§4.3 step 1). Each returns at most a
/// handful of rows ("minimal non-modeled costs"); together they span
/// the three CPU parameters with a well-conditioned system:
/// a pure count (tuples), an aggregate-heavy grouping (operators), and
/// a wide-table index range scan (index tuples).
pub fn calibration_queries() -> Vec<String> {
    vec![
        "SELECT count(*) FROM cal_fact".into(),
        "SELECT grp, count(*), sum(val), avg(val), min(val), max(val) \
         FROM cal_fact GROUP BY grp ORDER BY grp LIMIT 5"
            .into(),
        "SELECT count(*) FROM cal_wide WHERE w_k <= 123 /*+ sel 0.001 */".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_vmm::PhysicalMachine;

    fn hv() -> Hypervisor {
        Hypervisor::new(PhysicalMachine::paper_testbed())
    }

    #[test]
    fn calibration_queries_bind_against_calibration_catalog() {
        let cat = calibration_catalog();
        for sql in calibration_queries() {
            bind_statement(&sql, &cat).unwrap();
        }
    }

    #[test]
    fn pg_calibration_recovers_true_parameters() {
        let hv = hv();
        let engine = Engine::pg();
        let cal = Calibrator::new(&hv);
        let model = cal.calibrate(&engine);
        // Compare with the ideal parameters at an allocation the
        // calibration never measured directly.
        for &(cpu, mem) in &[(0.35, 0.5), (0.65, 0.25), (0.15, 0.75)] {
            let alloc = Allocation::new(cpu, mem);
            let perf = hv.perf_for(VmConfig::new(cpu, mem).unwrap());
            let EngineParams::Pg(truth) = engine.true_params(&perf) else {
                panic!("pg params")
            };
            let EngineParams::Pg(got) = model.params_at(&engine, alloc) else {
                panic!("pg params")
            };
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(rel(got.random_page_cost, truth.random_page_cost) < 0.02);
            assert!(
                rel(got.cpu_tuple_cost, truth.cpu_tuple_cost) < 0.15,
                "tuple {} vs {}",
                got.cpu_tuple_cost,
                truth.cpu_tuple_cost
            );
            assert!(
                rel(got.cpu_operator_cost, truth.cpu_operator_cost) < 0.15,
                "operator {} vs {}",
                got.cpu_operator_cost,
                truth.cpu_operator_cost
            );
            assert!(
                rel(got.cpu_index_tuple_cost, truth.cpu_index_tuple_cost) < 0.25,
                "index {} vs {}",
                got.cpu_index_tuple_cost,
                truth.cpu_index_tuple_cost
            );
            // Prescriptive parameters replay the tuning policy exactly.
            assert!((got.shared_buffers_mb - truth.shared_buffers_mb).abs() < 1e-6);
            assert!((got.work_mem_mb - truth.work_mem_mb).abs() < 1e-6);
        }
    }

    #[test]
    fn db2_calibration_recovers_cpuspeed_and_io() {
        let hv = hv();
        let engine = Engine::db2();
        let model = Calibrator::new(&hv).calibrate(&engine);
        let alloc = Allocation::new(0.4, 0.6);
        let perf = hv.perf_for(VmConfig::new(0.4, 0.6).unwrap());
        let EngineParams::Db2(truth) = engine.true_params(&perf) else {
            panic!("db2 params")
        };
        let EngineParams::Db2(got) = model.params_at(&engine, alloc) else {
            panic!("db2 params")
        };
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(got.cpuspeed_ms_per_instr, truth.cpuspeed_ms_per_instr) < 0.02);
        assert!(rel(got.overhead_ms, truth.overhead_ms) < 0.02);
        assert!(rel(got.transfer_rate_ms, truth.transfer_rate_ms) < 0.02);
        assert!((got.sortheap_mb - truth.sortheap_mb).abs() < 1e-6);
    }

    #[test]
    fn tuple_calibration_recovers_relative_charges() {
        let hv = hv();
        let engine = Engine::tuple();
        let model = Calibrator::new(&hv).calibrate(&engine);
        let alloc = Allocation::new(0.4, 0.6);
        let perf = hv.perf_for(VmConfig::new(0.4, 0.6).unwrap());
        let EngineParams::Tuple(truth) = engine.true_params(&perf) else {
            panic!("tuple params")
        };
        let EngineParams::Tuple(got) = model.params_at(&engine, alloc) else {
            panic!("tuple params")
        };
        // The calibrator's µs scale differs from the engine's hidden
        // tuple unit by a common factor, so only *ratios* of unit
        // charges are comparable — and those must agree.
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(
                got.op_units / got.scan_tuple_units,
                truth.op_units / truth.scan_tuple_units
            ) < 0.15,
            "op/scan ratio {} vs {}",
            got.op_units / got.scan_tuple_units,
            truth.op_units / truth.scan_tuple_units
        );
        assert!(
            rel(
                got.page_units / got.seek_units,
                truth.page_units / truth.seek_units
            ) < 0.02
        );
        // Prescriptive parameters replay the tuning policy exactly.
        assert!((got.sort_mb - truth.sort_mb).abs() < 1e-6);
        assert!((got.cache_mb - truth.cache_mb).abs() < 1e-6);
    }

    #[test]
    fn tuple_renormalizer_recovers_hidden_unit_scale() {
        let hv = hv();
        let engine = Engine::tuple();
        let model = Calibrator::new(&hv).calibrate(&engine);
        // The calibrator denominates charges in µs, so the regressed
        // native→seconds slope must sit near 1e-6 — the µs↔seconds
        // relation it chose, recovered without ever seeing the
        // engine's internal constant.
        match model.renorm {
            Renormalizer::Regression { slope, .. } => {
                assert!((slope - 1e-6).abs() / 1e-6 < 0.1, "slope {slope} vs 1e-6");
            }
            other => panic!("tuplesim should regress, got {other:?}"),
        }
    }

    #[test]
    fn tuple_estimates_track_actuals_for_dss() {
        // End-to-end: the calibrated tuple model's seconds prediction
        // lands near the executor's actual runtime for a well-modeled
        // query at an allocation never measured directly.
        let hv = hv();
        let engine = Engine::tuple();
        let model = Calibrator::new(&hv).calibrate(&engine);
        let alloc = Allocation::new(0.35, 0.5);
        let perf = hv.perf_for(VmConfig::new(0.35, 0.5).unwrap());
        let cat = calibration_catalog();
        let q = bind_statement("SELECT count(*) FROM cal_fact", &cat).unwrap();
        let factors = engine.factors(&model.params_at(&engine, alloc));
        let plan = Optimizer::new(&cat, factors).plan(&q);
        let est = model.to_seconds_at(plan.native_cost, alloc);
        let act = Executor::new(&engine, &cat)
            .execute(&q, &perf, &ExecContext::default())
            .seconds;
        let err = (est - act).abs() / act;
        assert!(err < 0.1, "relative error {err} (est {est}, act {act})");
    }

    #[test]
    fn db2_renormalizer_is_close_to_hidden_constant() {
        let hv = hv();
        let engine = Engine::db2();
        let model = Calibrator::new(&hv).calibrate(&engine);
        // native_unit_seconds exposes the hidden ms/timeron for
        // verification only.
        let truth = engine.native_unit_seconds(0.0);
        match model.renorm {
            Renormalizer::Regression { slope, .. } => {
                assert!(
                    (slope - truth).abs() / truth < 0.1,
                    "slope {slope} vs {truth}"
                );
            }
            other => panic!("db2 should regress, got {other:?}"),
        }
    }

    #[test]
    fn cpu_fits_are_linear_in_inverse_share() {
        let hv = hv();
        let model = Calibrator::new(&hv).calibrate(&Engine::pg());
        let CpuFits::Pg { tuple, .. } = &model.cpu_fits else {
            panic!("pg fits")
        };
        assert!(tuple.r_squared > 0.999, "r² = {}", tuple.r_squared);
        assert!(tuple.slope > 0.0);
    }

    #[test]
    fn grid_calibration_shows_memory_independence() {
        let hv = hv();
        let cal = Calibrator::new(&hv);
        let points = cal.calibrate_grid(&Engine::db2(), &[0.25, 0.5, 1.0], &[0.2, 0.5, 0.8]);
        assert_eq!(points.len(), 9);
        // cpuspeed at a fixed CPU share varies by < 1 % across memory
        // levels.
        for cpu in [0.25, 0.5, 1.0] {
            let vals: Vec<f64> = points
                .iter()
                .filter(|p| p.cpu_share == cpu)
                .map(|p| p.values[0])
                .collect();
            let spread = (vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min))
                / vals[0];
            assert!(spread.abs() < 0.01, "cpu {cpu}: spread {spread}");
        }
    }

    #[test]
    fn io_constants_independent_of_allocation() {
        let hv = hv();
        let cal = Calibrator::new(&hv);
        let engine = Engine::pg();
        let a = cal.io_point(&engine, Allocation::new(0.2, 0.2));
        let b = cal.io_point(&engine, Allocation::new(0.9, 0.9));
        assert!((a.values[0] - b.values[0]).abs() < 1e-9);
    }

    #[test]
    fn disk_calibration_recovers_inverse_share_multiplier() {
        let hv = hv();
        let cal = Calibrator::with_config(
            &hv,
            CalibrationConfig::with_disk_levels(vec![0.25, 0.5, 1.0]),
        );
        let model = cal.calibrate(&Engine::pg());
        let fit = model.disk_fit.expect("disk calibrated");
        // The simulated device is exactly share-proportional, so the
        // fitted multiplier is 1/d to numerical precision.
        assert!(fit.r_squared > 0.999, "r² = {}", fit.r_squared);
        for d in [0.2, 0.4, 0.8, 1.0] {
            let expect = 1.0 / d; // reference disk share is 1.0
            let got = model.io_multiplier(d);
            assert!(
                (got - expect).abs() / expect < 1e-6,
                "multiplier at {d}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn default_calibration_leaves_disk_axis_untouched() {
        let hv = hv();
        let plain = Calibrator::new(&hv).calibrate(&Engine::pg());
        assert!(plain.disk_fit.is_none());
        // Exactly 1.0 — the M = 2 bit-compat contract.
        assert_eq!(plain.io_multiplier(0.25), 1.0);
        assert_eq!(
            plain.to_seconds_at(10.0, Allocation::new(0.5, 0.5)),
            plain.to_seconds(10.0)
        );
    }

    #[test]
    fn calibration_cost_is_tracked() {
        let hv = hv();
        let model = Calibrator::new(&hv).calibrate(&Engine::pg());
        assert!(model.cost.vm_configurations >= 10);
        assert!(model.cost.queries_run >= 30);
        assert!(model.cost.simulated_seconds > 0.0);
        // §7.2: the whole calibration takes minutes, not hours.
        assert!(
            model.cost.simulated_seconds < 3600.0,
            "calibration too expensive: {}s",
            model.cost.simulated_seconds
        );
    }
}
