//! Cost estimation for the virtualization design advisor (§4.1–4.4).
//!
//! The advisor never invents its own cost model: it drives each
//! DBMS's query-optimizer cost model in a *what-if* mode. Three pieces
//! make that possible:
//!
//! * [`renormalize`] — converting engine-native cost units
//!   (sequential-page units for PgSim, timerons for Db2Sim) into
//!   seconds so costs are comparable *across* engines (§4.2);
//! * [`calibration`] — measuring, once per engine per physical
//!   machine, how the descriptive optimizer parameters depend on the
//!   candidate resource allocation (§4.3), exploiting the
//!   independence structure of §4.4 (CPU parameters are linear in
//!   1/cpu-share and independent of memory; I/O parameters are
//!   constants);
//! * [`whatif`] — mapping a candidate allocation `R` to parameters
//!   `P`, invoking the optimizer, and renormalizing, with a
//!   per-allocation cache so the greedy search's repeated probes cost
//!   one optimizer call each (§4.5).
//!
//! [`model`] unifies every cost source — what-if estimators, refined
//! models (§5), and the executor's ground truth — behind the
//! [`CostModel`] trait that the enumeration, refinement, and dynamic
//! management layers consume. [`adaptive`] closes the loop the paper
//! leaves open: executor actuals reported at runtime refit bounded
//! per-axis corrections onto a calibrated model, guarded by the
//! [`guardrail`](crate::guardrail) state machine before any adapted
//! model is allowed to steer fleet decisions.

pub mod adaptive;
pub mod calibration;
pub mod model;
pub mod renormalize;
pub mod whatif;

pub use adaptive::{
    refit, Adaption, AdaptionOptions, AdaptiveCostModel, AxisCorrection, ResidualSample,
    RuntimeAdaptionStorage,
};
pub use calibration::{CalibratedModel, CalibrationConfig, CalibrationCost, Calibrator};
pub use model::{ActualCostModel, CostModel, FnCostModel, RegimeFnCostModel};
pub use renormalize::Renormalizer;
pub use whatif::{Estimate, ProbeCache, SharedEstimateCache, WhatIfEstimator};
