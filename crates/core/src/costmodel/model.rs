//! The unified cost-model interface of the advisor.
//!
//! Every consumer of workload costs — the greedy enumerator (§4.5),
//! the exhaustive grid optimum, online refinement (§5), dynamic
//! management (§6), and the experiment harness — asks the same
//! question: *what does workload `i` cost under candidate allocation
//! `R_i`?* [`CostModel`] is that question as a trait. Three families
//! answer it:
//!
//! * [`WhatIfEstimator`](crate::costmodel::WhatIfEstimator) — the
//!   optimizer-backed what-if estimate of §4 (counts optimizer calls
//!   and cache hits);
//! * [`RefinedModel`](crate::refine::RefinedModel) — the §5 refined
//!   analytic model (no optimizer calls at all);
//! * [`ActualCostModel`] — the simulated executor's ground truth,
//!   which the paper obtains by actually running workloads (§7.6).
//!
//! [`FnCostModel`] and [`RegimeFnCostModel`] adapt synthetic closures
//! for tests and controlled experiments; since the enumeration API
//! accepts only `CostModel` values, every cost source is forced
//! through one explicit, accountable interface.
//!
//! Models must be `Sync`: enumeration evaluates candidate sets in
//! parallel (see [`SearchOptions`](crate::enumerate::SearchOptions)).

use crate::costmodel::whatif::Estimate;
use crate::problem::Allocation;
use crate::tenant::Tenant;
use vda_vmm::Hypervisor;

/// A per-workload cost oracle: seconds (plus plan-regime metadata) as
/// a function of the workload's resource allocation.
pub trait CostModel: Sync {
    /// Full estimate at `alloc`: seconds, plan-regime signature, and
    /// average cost per statement. Models without plan or statement
    /// information report `0` for those fields.
    fn estimate(&self, alloc: Allocation) -> Estimate;

    /// Estimated cost in seconds (shorthand for `estimate().seconds`).
    fn cost(&self, alloc: Allocation) -> f64 {
        self.estimate(alloc).seconds
    }

    /// Query-optimizer invocations this model has performed so far.
    /// Zero for models that never consult an optimizer.
    fn optimizer_calls(&self) -> u64 {
        0
    }

    /// Estimate-cache hits this model has recorded so far.
    fn cache_hits(&self) -> u64 {
        0
    }
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        (**self).estimate(alloc)
    }
    fn cost(&self, alloc: Allocation) -> f64 {
        (**self).cost(alloc)
    }
    fn optimizer_calls(&self) -> u64 {
        (**self).optimizer_calls()
    }
    fn cache_hits(&self) -> u64 {
        (**self).cache_hits()
    }
}

/// A synthetic cost model wrapping a `share → seconds` closure.
///
/// The explicit wrapper (rather than a blanket closure impl) keeps the
/// enumeration API honest: call sites must say they are passing a
/// synthetic model, and real callers route through the estimator /
/// refined-model / oracle implementations.
#[derive(Debug, Clone)]
pub struct FnCostModel<F> {
    f: F,
}

impl<F: Fn(Allocation) -> f64 + Sync> FnCostModel<F> {
    /// Wrap a closure as a cost model.
    pub fn new(f: F) -> Self {
        FnCostModel { f }
    }
}

impl<F: Fn(Allocation) -> f64 + Sync> CostModel for FnCostModel<F> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        Estimate {
            seconds: (self.f)(alloc),
            plan_regime: 0,
            avg_cost_per_statement: 0.0,
        }
    }
}

/// A synthetic cost model that also reports a plan-regime signature —
/// the shape [`RefinedModel::fit_initial`](crate::refine::RefinedModel)
/// needs when tests plant piecewise regimes.
#[derive(Debug, Clone)]
pub struct RegimeFnCostModel<F> {
    f: F,
}

impl<F: Fn(Allocation) -> (f64, u64) + Sync> RegimeFnCostModel<F> {
    /// Wrap a `share → (seconds, plan_regime)` closure.
    pub fn new(f: F) -> Self {
        RegimeFnCostModel { f }
    }
}

impl<F: Fn(Allocation) -> (f64, u64) + Sync> CostModel for RegimeFnCostModel<F> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        let (seconds, plan_regime) = (self.f)(alloc);
        Estimate {
            seconds,
            plan_regime,
            avg_cost_per_statement: 0.0,
        }
    }
}

/// The ground-truth oracle: the simulated executor's *actual* workload
/// cost under an allocation. This is what the paper measures when it
/// exhaustively enumerates allocations "and measuring performance in
/// each one" (§7.6), and what online refinement observes after
/// deploying a recommendation.
#[derive(Debug, Clone, Copy)]
pub struct ActualCostModel<'a> {
    tenant: &'a Tenant,
    hv: &'a Hypervisor,
}

impl<'a> ActualCostModel<'a> {
    /// Oracle for one tenant on one hypervisor.
    pub fn new(tenant: &'a Tenant, hv: &'a Hypervisor) -> Self {
        ActualCostModel { tenant, hv }
    }

    /// The tenant being measured.
    pub fn tenant(&self) -> &Tenant {
        self.tenant
    }
}

impl CostModel for ActualCostModel<'_> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        let seconds = self.tenant.actual_cost(self.hv, alloc);
        let statements = self.tenant.total_count();
        Estimate {
            seconds,
            plan_regime: 0,
            avg_cost_per_statement: if statements > 0.0 {
                seconds / statements
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_model_reports_plain_estimates() {
        let m = FnCostModel::new(|a: Allocation| 2.0 / a.cpu());
        assert_eq!(m.cost(Allocation::new(0.5, 0.5)), 4.0);
        let e = m.estimate(Allocation::new(0.25, 0.5));
        assert_eq!(e.seconds, 8.0);
        assert_eq!(e.plan_regime, 0);
        assert_eq!(m.optimizer_calls(), 0);
        assert_eq!(m.cache_hits(), 0);
    }

    #[test]
    fn regime_model_threads_signature() {
        let m = RegimeFnCostModel::new(|a: Allocation| {
            if a.memory() < 0.5 {
                (10.0, 1)
            } else {
                (5.0, 2)
            }
        });
        assert_eq!(m.estimate(Allocation::new(0.5, 0.2)).plan_regime, 1);
        assert_eq!(m.estimate(Allocation::new(0.5, 0.8)).plan_regime, 2);
    }

    #[test]
    fn references_delegate() {
        let m = FnCostModel::new(|a: Allocation| a.cpu());
        let r: &dyn CostModel = &m;
        assert_eq!((&r).cost(Allocation::new(0.75, 0.5)), 0.75);
    }
}
