//! Renormalization of engine-native cost estimates into seconds (§4.2).
//!
//! Both simulated engines define cost as total resource consumption,
//! but in different units. PostgreSQL normalizes costs to sequential
//! page fetches, so renormalization multiplies by the measured seconds
//! per sequential page read. DB2 reports *timerons*, a synthetic unit;
//! the advisor recovers the timeron↔seconds relation by running
//! calibration queries and regressing measured runtimes on estimated
//! timerons.

use serde::{Deserialize, Serialize};
use vda_stats::LinearFit;

/// A fitted native-cost → seconds conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Renormalizer {
    /// `seconds = secs_per_unit × native` — the PostgreSQL path, where
    /// the unit is one sequential page fetch and `secs_per_unit` comes
    /// from the sequential-read micro-benchmark.
    SecondsPerUnit {
        /// Measured seconds per native cost unit.
        secs_per_unit: f64,
    },
    /// `seconds = slope × native + intercept` — the DB2 path, fitted by
    /// linear regression over calibration-query (timerons, seconds)
    /// pairs.
    Regression {
        /// Fitted slope (seconds per timeron).
        slope: f64,
        /// Fitted intercept (seconds).
        intercept: f64,
    },
}

impl Renormalizer {
    /// Build the regression variant from a fit of seconds on native
    /// cost.
    pub fn from_fit(fit: &LinearFit) -> Self {
        Renormalizer::Regression {
            slope: fit.slope,
            intercept: fit.intercept,
        }
    }

    /// Convert a native cost estimate to seconds.
    pub fn to_seconds(&self, native: f64) -> f64 {
        match *self {
            Renormalizer::SecondsPerUnit { secs_per_unit } => native * secs_per_unit,
            Renormalizer::Regression { slope, intercept } => (slope * native + intercept).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_per_unit_scales_linearly() {
        let r = Renormalizer::SecondsPerUnit {
            secs_per_unit: 2e-4,
        };
        assert!((r.to_seconds(1e4) - 2.0).abs() < 1e-12);
        assert_eq!(r.to_seconds(0.0), 0.0);
    }

    #[test]
    fn regression_applies_affine_map() {
        let r = Renormalizer::Regression {
            slope: 7.5e-5,
            intercept: 0.01,
        };
        assert!((r.to_seconds(1e5) - 7.51).abs() < 1e-9);
    }

    #[test]
    fn regression_clamps_negative_results() {
        let r = Renormalizer::Regression {
            slope: 1e-5,
            intercept: -1.0,
        };
        assert_eq!(r.to_seconds(10.0), 0.0);
    }

    #[test]
    fn from_fit_copies_coefficients() {
        let fit = LinearFit {
            slope: 3.0,
            intercept: 0.5,
            r_squared: 1.0,
        };
        match Renormalizer::from_fit(&fit) {
            Renormalizer::Regression { slope, intercept } => {
                assert_eq!(slope, 3.0);
                assert_eq!(intercept, 0.5);
            }
            other => panic!("{other:?}"),
        }
    }
}
