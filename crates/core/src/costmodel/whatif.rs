//! What-if cost estimation (§4.1) with allocation-keyed caching (§4.5).
//!
//! "Instead of generating cost estimates under a fixed setting of `P`
//! as a query optimizer typically would, we map a given `R_i` to the
//! corresponding `P_i`, and we optimize the query with this `P_i`."
//!
//! The estimator also records, per allocation, the *plan-regime
//! signature* of the workload (a hash over the per-statement plan
//! signatures): plan changes along the memory axis define the
//! piecewise-interval boundaries `A_ij` that online refinement needs
//! (§5.1), and the paper harvests them "during configuration
//! enumeration ... to minimize the number of optimizer calls".
//!
//! Estimates can be cached four ways:
//!
//! * **local** ([`WhatIfEstimator::new`]) — a private per-instance
//!   cache, the seed behaviour;
//! * **shared** ([`WhatIfEstimator::with_shared_cache`]) — a
//!   thread-safe [`SharedEstimateCache`] that outlives the estimator,
//!   so the advisor's repeated searches (greedy, exhaustive,
//!   refinement sampling, dynamic monitoring periods) pay for each
//!   optimizer probe once. Entries are keyed by the tenant's
//!   [`fingerprint`](crate::tenant::Tenant::fingerprint), which makes
//!   stale entries unreachable when the workload changes;
//! * **fleet-wide** ([`WhatIfEstimator::with_probe_cache`]) — a
//!   [`ProbeCache`] keyed by *(calibrated-model fingerprint, tenant
//!   fingerprint, allocation)*, shared by every estimator in a fleet.
//!   Unlike a [`SharedEstimateCache`] it holds many generations at
//!   once, so cross-period re-optimization and cross-machine candidate
//!   pricing never re-probe a (tenant, model, allocation) point that
//!   any machine probed before; entries priced under a replaced
//!   calibration become unreachable because the model fingerprint
//!   changes;
//! * **disabled** ([`WhatIfEstimator::without_cache`]) — the §4.5
//!   caching ablation.

use crate::costmodel::calibration::CalibratedModel;
use crate::costmodel::model::CostModel;
use crate::problem::{AllocKey, Allocation};
use crate::tenant::Tenant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vda_simdb::hash::Fnv64;
use vda_simdb::optimizer::Optimizer;

/// One cached what-if estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated workload cost in seconds.
    pub seconds: f64,
    /// Hash over the per-statement plan signatures: identifies the
    /// plan regime the workload occupies at this allocation.
    pub plan_regime: u64,
    /// Estimated cost per statement execution (the §6.1 change
    /// metric's "average cost estimates of workload queries").
    pub avg_cost_per_statement: f64,
}

/// One generation of cached estimates: the fingerprint of the tenant
/// state that produced them, plus the allocation-keyed estimates.
#[derive(Debug, Default)]
struct CacheGeneration {
    fingerprint: u64,
    // BTreeMap, not HashMap: `samples_for` feeds refinement's model
    // fits, whose float sums are order-sensitive — the traversal
    // order must not depend on a per-process RandomState.
    map: BTreeMap<AllocKey, Estimate>,
}

/// A thread-safe estimate cache shared across estimator instances (and
/// across searches). Cloning is cheap and shares the underlying map.
///
/// The cache serves one tenant slot, so exactly one workload
/// fingerprint is live at a time: inserting under a new fingerprint
/// evicts the previous generation, keeping long-running dynamic
/// management (a workload change per monitoring period) from
/// accumulating dead entries.
#[derive(Debug, Clone, Default)]
pub struct SharedEstimateCache {
    inner: Arc<Mutex<CacheGeneration>>,
}

impl SharedEstimateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached estimate for a (fingerprint, allocation) pair.
    pub fn get(&self, fingerprint: u64, key: AllocKey) -> Option<Estimate> {
        let inner = self.inner.lock();
        if inner.fingerprint != fingerprint {
            return None;
        }
        inner.map.get(&key).copied()
    }

    /// Store an estimate, evicting any previous generation cached
    /// under a different fingerprint.
    pub fn insert(&self, fingerprint: u64, key: AllocKey, estimate: Estimate) {
        let mut inner = self.inner.lock();
        if inner.fingerprint != fingerprint {
            inner.map.clear();
            inner.fingerprint = fingerprint;
        }
        inner.map.insert(key, estimate);
    }

    /// Number of cached entries (current generation).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// All cached (allocation, estimate) pairs for one fingerprint.
    fn samples_for(&self, fingerprint: u64) -> Vec<(Allocation, Estimate)> {
        let inner = self.inner.lock();
        if inner.fingerprint != fingerprint {
            return Vec::new();
        }
        inner
            .map
            .iter()
            .map(|(&key, &est)| (Allocation::from_key(key), est))
            .collect()
    }
}

/// The fleet-wide probe cache: what-if estimates keyed by
/// *(calibrated-model fingerprint, tenant fingerprint)* generation,
/// then by allocation. Cloning is cheap and shares the underlying map.
///
/// This is the cross-period, cross-machine generalization of
/// [`SharedEstimateCache`]: where the shared cache serves one tenant
/// slot and keeps a single live generation, the probe cache holds many
/// `(model, tenant)` generations simultaneously, so
///
/// * re-optimizing a fleet after one tenant's workload drifted pays
///   optimizer calls only for that tenant — every other tenant's
///   probes, at whatever allocation any search requests, are hits;
/// * candidate-migration pricing that evaluates the same tenant under
///   the same class calibration on several machines probes each
///   (allocation) point once fleet-wide;
/// * a recalibration never serves stale estimates: the model
///   fingerprint ([`CalibratedModel::fingerprint`]) changes, so old
///   entries become unreachable (and reclaimable via
///   [`Self::retain_tenants`]).
///
/// Hit/miss counters live in the cache itself, so cross-period cache
/// effectiveness is observable even though estimator instances (and
/// their per-instance counters) are rebuilt every search.
///
/// # Bounded-memory mode and the eviction policy
///
/// By default the cache is unbounded (capacity `0`). Setting a row
/// capacity with [`Self::set_capacity`] arms a **deterministic
/// per-generation LRU**:
///
/// * Recency is the *logical epoch* installed by [`Self::set_epoch`]
///   (the control plane's event sequence number), never wall-clock
///   time — the recency a generation gets depends only on *which*
///   epoch touched it, not on when or on which thread.
/// * Lookups and inserts stamp the whole `(model, tenant)` generation
///   with the current epoch. Within one parallel solve wave every
///   stamp writes the same epoch, so the resulting recency map is
///   independent of thread interleaving.
/// * Eviction happens only at serial sync points, when the owner calls
///   [`Self::enforce_capacity`]: whole generations are dropped in
///   ascending `(last_used_epoch, model, tenant)` order until the row
///   count fits. The key order tie-break makes the victim sequence
///   reproducible bit-for-bit across runs and thread counts.
///
/// Because the cache is strictly read-through (a miss recomputes the
/// identical deterministic estimate), a capped cache returns the same
/// answers as an unbounded one — only the hit/miss/eviction counters
/// and the optimizer-call bill differ. That equivalence is pinned by
/// `tests/bounded_probe_cache.rs`.
///
/// ```
/// use vda_core::costmodel::{Estimate, ProbeCache};
///
/// let cache = ProbeCache::new();
/// let est = Estimate {
///     seconds: 1.0,
///     plan_regime: 7,
///     avg_cost_per_statement: 0.5,
/// };
/// // Three single-row generations, touched at epochs 1, 2, 3.
/// for (epoch, tenant) in [(1, 10), (2, 11), (3, 12)] {
///     cache.set_epoch(epoch);
///     cache.import(&[(42, tenant, [0; 4], est)]);
/// }
/// cache.set_capacity(2);
/// assert_eq!(cache.enforce_capacity(), 1); // evicts the oldest …
/// assert_eq!(cache.evictions(), 1); // … which is (42, tenant 10)
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProbeCache {
    inner: Arc<Mutex<ProbeCacheInner>>,
}

/// Deterministic size model for [`ProbeCache::approx_bytes`]: one
/// cached row is an `AllocKey` + [`Estimate`] plus ordered-map
/// overhead. A fixed per-row figure (not a platform `size_of`) so the
/// byte counter is part of the bit-identical surface and can be gated.
const PROBE_ROW_BYTES: u64 = 64;
/// Per-generation overhead in the same size model: the outer map node
/// and the recency stamp.
const PROBE_GENERATION_BYTES: u64 = 96;

#[derive(Debug, Default)]
struct ProbeCacheInner {
    // Ordered for the same reason as `CacheGeneration::map`, and so
    // `export` is deterministic by construction.
    map: BTreeMap<(u64, u64), BTreeMap<AllocKey, Estimate>>,
    // Last logical epoch that read or wrote each generation. BTreeMap
    // so the eviction scan's tie-break is key order, not hash order.
    last_used: BTreeMap<(u64, u64), u64>,
    epoch: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ProbeCacheInner {
    fn rows(&self) -> usize {
        self.map.values().map(BTreeMap::len).sum()
    }

    fn touch(&mut self, model: u64, tenant: u64) {
        let epoch = self.epoch;
        self.last_used.insert((model, tenant), epoch);
    }
}

impl ProbeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached estimate for a (model, tenant, allocation) triple,
    /// counting the lookup as a hit or a miss. A hit refreshes the
    /// generation's recency stamp (see the eviction policy above).
    fn get(&self, model: u64, tenant: u64, key: AllocKey) -> Option<Estimate> {
        let mut inner = self.inner.lock();
        let hit = inner
            .map
            .get(&(model, tenant))
            .and_then(|g| g.get(&key))
            .copied();
        match hit {
            Some(_) => {
                inner.hits += 1;
                inner.touch(model, tenant);
            }
            None => inner.misses += 1,
        }
        hit
    }

    /// Store an estimate under its (model, tenant) generation,
    /// stamping the generation with the current epoch.
    fn insert(&self, model: u64, tenant: u64, key: AllocKey, estimate: Estimate) {
        let mut inner = self.inner.lock();
        inner
            .map
            .entry((model, tenant))
            .or_default()
            .insert(key, estimate);
        inner.touch(model, tenant);
    }

    /// All cached (allocation, estimate) pairs of one generation.
    fn samples_for(&self, model: u64, tenant: u64) -> Vec<(Allocation, Estimate)> {
        self.inner
            .lock()
            .map
            .get(&(model, tenant))
            .map(|g| {
                g.iter()
                    .map(|(&key, &est)| (Allocation::from_key(key), est))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drop every generation whose *tenant* fingerprint is not in
    /// `live` — the periodic pruning hook: workload drift mints new
    /// tenant fingerprints each period, and without pruning the dead
    /// generations would accumulate forever. (Stale *model*
    /// generations of a live tenant are bounded by the number of
    /// recalibrations and are dropped here too once the tenant's
    /// workload moves on.)
    pub fn retain_tenants(&self, live: &std::collections::HashSet<u64>) {
        let mut inner = self.inner.lock();
        inner.map.retain(|&(_, tenant), _| live.contains(&tenant));
        inner
            .last_used
            .retain(|&(_, tenant), _| live.contains(&tenant));
    }

    /// Drop every generation whose *model* fingerprint is not in
    /// `live`. [`Self::retain_tenants`] reclaims drifted-workload
    /// generations, but a machine *removed from the fleet* leaves its
    /// calibration's generations behind with perfectly live tenant
    /// fingerprints — nothing ever made them unreachable. Call this
    /// with the fingerprints of the calibrations still installed
    /// somewhere in the fleet whenever machines are decommissioned.
    pub fn retain_models(&self, live: &std::collections::HashSet<u64>) {
        let mut inner = self.inner.lock();
        inner.map.retain(|&(model, _), _| live.contains(&model));
        inner
            .last_used
            .retain(|&(model, _), _| live.contains(&model));
    }

    /// Every cached entry, flattened to `(model fingerprint, tenant
    /// fingerprint, allocation key, estimate)` rows in a deterministic
    /// order (sorted by generation, then allocation key) — the
    /// snapshot export. Pair with [`Self::import`] to rebuild the
    /// cache in a restarted process.
    pub fn export(&self) -> Vec<(u64, u64, AllocKey, Estimate)> {
        let inner = self.inner.lock();
        let mut rows: Vec<(u64, u64, AllocKey, Estimate)> = inner
            .map
            .iter()
            .flat_map(|(&(model, tenant), g)| {
                g.iter().map(move |(&key, &est)| (model, tenant, key, est))
            })
            .collect();
        rows.sort_by_key(|r| (r.0, r.1, r.2));
        rows
    }

    /// Insert previously [`export`](Self::export)ed rows. Existing
    /// entries under the same keys are overwritten; hit/miss counters
    /// are untouched (they describe this process's lookups, not the
    /// imported history). Imported generations are stamped with the
    /// *current* epoch: recency is runtime state, not durable state,
    /// so a restored cache treats everything it was handed as
    /// just-used (see `docs/FORMATS.md`).
    pub fn import(&self, rows: &[(u64, u64, AllocKey, Estimate)]) {
        let mut inner = self.inner.lock();
        for &(model, tenant, key, est) in rows {
            inner
                .map
                .entry((model, tenant))
                .or_default()
                .insert(key, est);
            inner.touch(model, tenant);
        }
    }

    /// Set the row capacity of the bounded-memory mode; `0` (the
    /// default) means unbounded. The cap is *not* enforced here — it
    /// takes effect at the next [`Self::enforce_capacity`] call, so
    /// arming a cap mid-wave cannot race a parallel solve.
    pub fn set_capacity(&self, rows: usize) {
        self.inner.lock().capacity = rows;
    }

    /// The configured row capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Install the logical epoch used to stamp generation recency.
    /// The control plane calls this serially with its event sequence
    /// number before dispatching each event or batch; it is never
    /// derived from wall-clock time.
    pub fn set_epoch(&self, epoch: u64) {
        self.inner.lock().epoch = epoch;
    }

    /// Evict least-recently-used generations until the total row count
    /// fits the configured capacity, returning the number of rows
    /// evicted by this call. Victims are whole `(model, tenant)`
    /// generations in ascending `(last_used_epoch, model, tenant)`
    /// order — a total, deterministic order, so the victim sequence is
    /// identical across runs and thread counts. Must only be called at
    /// serial sync points (the control plane calls it after each event
    /// or batch, never from inside a solve wave).
    pub fn enforce_capacity(&self) -> u64 {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return 0;
        }
        let mut evicted = 0u64;
        while inner.rows() > inner.capacity {
            let victim = inner
                .map
                .keys()
                .map(|&gen| (inner.last_used.get(&gen).copied().unwrap_or(0), gen))
                .min()
                .map(|(_, gen)| gen);
            match victim {
                Some(gen) => {
                    let rows = inner.map.remove(&gen).map(|g| g.len()).unwrap_or(0) as u64;
                    inner.last_used.remove(&gen);
                    evicted += rows;
                }
                None => break,
            }
        }
        inner.evictions += evicted;
        evicted
    }

    /// Rows evicted by [`Self::enforce_capacity`] over the cache's
    /// lifetime.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Approximate resident size under a *fixed, deterministic* size
    /// model (64 bytes per row plus 96 per generation) — an accounting
    /// figure that is bit-identical across platforms and thread
    /// counts, not a heap measurement.
    pub fn approx_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.rows() as u64 * PROBE_ROW_BYTES + inner.map.len() as u64 * PROBE_GENERATION_BYTES
    }

    /// Cache hits recorded over the cache's lifetime.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Cache misses recorded over the cache's lifetime.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// Total cached estimates across all generations.
    pub fn len(&self) -> usize {
        self.inner.lock().rows()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }
}

/// Where an estimator keeps (or doesn't keep) its estimates.
#[derive(Debug)]
enum CacheBackend {
    /// Private per-instance cache (seed behaviour).
    Local(Mutex<BTreeMap<AllocKey, Estimate>>),
    /// Advisor-owned cache surviving across searches.
    Shared {
        cache: SharedEstimateCache,
        fingerprint: u64,
    },
    /// Fleet-owned cache surviving across periods and machines.
    Probe {
        cache: ProbeCache,
        model: u64,
        tenant: u64,
    },
    /// §4.5 ablation: recompute every probe.
    Disabled,
}

/// The cached what-if estimator for one tenant.
#[derive(Debug)]
pub struct WhatIfEstimator<'a> {
    tenant: &'a Tenant,
    model: &'a CalibratedModel,
    cache: CacheBackend,
    optimizer_calls: AtomicU64,
    cache_hits: AtomicU64,
}

impl<'a> WhatIfEstimator<'a> {
    /// Create an estimator with a private cache.
    pub fn new(tenant: &'a Tenant, model: &'a CalibratedModel) -> Self {
        Self::with_backend(
            tenant,
            model,
            CacheBackend::Local(Mutex::new(BTreeMap::new())),
        )
    }

    /// Create an estimator backed by a shared, thread-safe cache.
    /// Entries are keyed by the tenant's current
    /// [`fingerprint`](Tenant::fingerprint), so they survive estimator
    /// churn but never serve a changed workload.
    pub fn with_shared_cache(
        tenant: &'a Tenant,
        model: &'a CalibratedModel,
        cache: SharedEstimateCache,
    ) -> Self {
        let fingerprint = tenant.fingerprint();
        Self::with_backend(tenant, model, CacheBackend::Shared { cache, fingerprint })
    }

    /// Create an estimator backed by a fleet-wide [`ProbeCache`].
    /// Entries are keyed by the calibrated model's
    /// [`fingerprint`](CalibratedModel::fingerprint) *and* the
    /// tenant's [`fingerprint`](Tenant::fingerprint), so they survive
    /// estimator churn, monitoring periods, and machine boundaries —
    /// but never serve a changed workload or a replaced calibration.
    pub fn with_probe_cache(
        tenant: &'a Tenant,
        model: &'a CalibratedModel,
        cache: ProbeCache,
    ) -> Self {
        let backend = CacheBackend::Probe {
            cache,
            model: model.fingerprint(),
            tenant: tenant.fingerprint(),
        };
        Self::with_backend(tenant, model, backend)
    }

    /// Create an estimator with the cache disabled (the §4.5 caching
    /// ablation).
    pub fn without_cache(tenant: &'a Tenant, model: &'a CalibratedModel) -> Self {
        Self::with_backend(tenant, model, CacheBackend::Disabled)
    }

    fn with_backend(tenant: &'a Tenant, model: &'a CalibratedModel, cache: CacheBackend) -> Self {
        WhatIfEstimator {
            tenant,
            model,
            cache,
            optimizer_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The tenant being estimated.
    pub fn tenant(&self) -> &Tenant {
        self.tenant
    }

    /// Estimated cost (seconds) of the tenant's workload under `alloc`.
    pub fn estimate(&self, alloc: Allocation) -> Estimate {
        let key = alloc.key();
        let hit = match &self.cache {
            CacheBackend::Local(map) => map.lock().get(&key).copied(),
            CacheBackend::Shared { cache, fingerprint } => cache.get(*fingerprint, key),
            CacheBackend::Probe {
                cache,
                model,
                tenant,
            } => cache.get(*model, *tenant, key),
            CacheBackend::Disabled => None,
        };
        if let Some(est) = hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return est;
        }
        let est = self.compute(alloc);
        match &self.cache {
            CacheBackend::Local(map) => {
                map.lock().insert(key, est);
            }
            CacheBackend::Shared { cache, fingerprint } => cache.insert(*fingerprint, key, est),
            CacheBackend::Probe {
                cache,
                model,
                tenant,
            } => cache.insert(*model, *tenant, key, est),
            CacheBackend::Disabled => {}
        }
        est
    }

    /// Estimated cost in seconds (convenience).
    pub fn cost(&self, alloc: Allocation) -> f64 {
        self.estimate(alloc).seconds
    }

    fn compute(&self, alloc: Allocation) -> Estimate {
        let params = self.model.params_at(&self.tenant.engine, alloc);
        let factors = self.tenant.engine.factors(&params);
        let optimizer = Optimizer::new(&self.tenant.catalog, factors);
        let mut total = 0.0;
        let mut regime = Fnv64::new();
        let mut statements = 0.0;
        for s in self.tenant.statements() {
            self.optimizer_calls.fetch_add(1, Ordering::Relaxed);
            let plan = optimizer.plan(&s.query);
            total += self.model.to_seconds_at(plan.native_cost, alloc) * s.count;
            statements += s.count;
            regime.write_u64(plan.signature);
        }
        Estimate {
            seconds: total,
            plan_regime: regime.finish(),
            avg_cost_per_statement: if statements > 0.0 {
                total / statements
            } else {
                0.0
            },
        }
    }

    /// Total optimizer invocations by this estimator instance.
    pub fn optimizer_calls(&self) -> u64 {
        self.optimizer_calls.load(Ordering::Relaxed)
    }

    /// Cache hits recorded by this estimator instance.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Snapshot of every allocation estimated so far (refinement fits
    /// its initial models from these enumeration-time samples, §5.1).
    /// With a shared cache this includes samples contributed by other
    /// estimator instances for the same tenant fingerprint.
    pub fn samples(&self) -> Vec<(Allocation, Estimate)> {
        match &self.cache {
            CacheBackend::Local(map) => map
                .lock()
                .iter()
                .map(|(&key, &est)| (Allocation::from_key(key), est))
                .collect(),
            CacheBackend::Shared { cache, fingerprint } => cache.samples_for(*fingerprint),
            CacheBackend::Probe {
                cache,
                model,
                tenant,
            } => cache.samples_for(*model, *tenant),
            CacheBackend::Disabled => Vec::new(),
        }
    }
}

impl CostModel for WhatIfEstimator<'_> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        WhatIfEstimator::estimate(self, alloc)
    }

    fn optimizer_calls(&self) -> u64 {
        WhatIfEstimator::optimizer_calls(self)
    }

    fn cache_hits(&self) -> u64 {
        WhatIfEstimator::cache_hits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::calibration::Calibrator;
    use vda_simdb::engines::Engine;
    use vda_vmm::{Hypervisor, PhysicalMachine};
    use vda_workloads::tpch;

    fn setup() -> (Hypervisor, Tenant) {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let tenant = Tenant::new(
            "t",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 3.0),
        )
        .unwrap();
        (hv, tenant)
    }

    #[test]
    fn estimates_scale_with_statement_count() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let single = Tenant::new(
            "s",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 1.0),
        )
        .unwrap();
        let e3 = WhatIfEstimator::new(&tenant, &model).cost(Allocation::new(0.5, 0.5));
        let e1 = WhatIfEstimator::new(&single, &model).cost(Allocation::new(0.5, 0.5));
        assert!((e3 / e1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cache_avoids_repeat_optimizer_calls() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        let a = Allocation::new(0.5, 0.5);
        let first = est.estimate(a);
        let calls_after_first = est.optimizer_calls();
        let second = est.estimate(a);
        assert_eq!(first, second);
        assert_eq!(est.optimizer_calls(), calls_after_first);
        assert_eq!(est.cache_hits(), 1);
    }

    #[test]
    fn disabled_cache_repeats_work() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::without_cache(&tenant, &model);
        let a = Allocation::new(0.5, 0.5);
        est.estimate(a);
        let calls = est.optimizer_calls();
        est.estimate(a);
        assert_eq!(est.optimizer_calls(), 2 * calls);
    }

    #[test]
    fn shared_cache_survives_estimator_churn() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let cache = SharedEstimateCache::new();
        let a = Allocation::new(0.5, 0.5);

        let first = WhatIfEstimator::with_shared_cache(&tenant, &model, cache.clone());
        let e1 = first.estimate(a);
        assert!(first.optimizer_calls() > 0);

        // A brand-new estimator instance reuses the cached estimate.
        let second = WhatIfEstimator::with_shared_cache(&tenant, &model, cache.clone());
        let e2 = second.estimate(a);
        assert_eq!(e1, e2);
        assert_eq!(second.optimizer_calls(), 0);
        assert_eq!(second.cache_hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_cache_keys_by_workload_fingerprint() {
        let (hv, mut tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let cache = SharedEstimateCache::new();
        let a = Allocation::new(0.5, 0.5);

        let before = WhatIfEstimator::with_shared_cache(&tenant, &model, cache.clone());
        let e_before = before.estimate(a);
        drop(before);

        // Change the workload: the old entry must not be served, and
        // the new generation evicts the old one (no unbounded growth
        // across monitoring periods).
        tenant.set_workload(tpch::query_workload(18, 1.0)).unwrap();
        let after = WhatIfEstimator::with_shared_cache(&tenant, &model, cache.clone());
        let e_after = after.estimate(a);
        assert!(after.optimizer_calls() > 0, "stale entry served");
        assert_ne!(e_before.seconds, e_after.seconds);
        assert_eq!(cache.len(), 1, "old generation must be evicted");
    }

    #[test]
    fn adapted_models_never_alias_their_base_in_the_probe_cache() {
        use crate::costmodel::adaptive::{Adaption, AxisCorrection};

        let (hv, tenant) = setup();
        let base = Calibrator::new(&hv).calibrate(&tenant.engine);
        let adaption = Adaption {
            correction: AxisCorrection::scale_only(1.5),
            version: 7,
        };
        let adapted = base.clone().with_adaption(adaption);
        // The fingerprint hashes the model's full debug form, so the
        // overlay (and its version) salts it automatically.
        assert_ne!(base.fingerprint(), adapted.fingerprint());
        let rev = Adaption {
            version: 8,
            ..adaption
        };
        assert_ne!(
            adapted.fingerprint(),
            base.clone().with_adaption(rev).fingerprint(),
            "same coefficients at a different storage version are a \
             different model to every cache"
        );
        // Stripping the overlay restores the base fingerprint exactly
        // (rollback relies on this).
        assert_eq!(
            adapted.clone().without_adaption().fingerprint(),
            base.fingerprint()
        );

        // Regression: a probe-cache row primed by the base model must
        // never be served to the adapted model, and vice versa. A
        // stale hit would show up as identical seconds and zero
        // optimizer calls on the second estimator.
        let cache = ProbeCache::new();
        let a = Allocation::new(0.5, 0.5);
        let base_est = WhatIfEstimator::with_probe_cache(&tenant, &base, cache.clone());
        let e_base = base_est.estimate(a);
        assert!(base_est.optimizer_calls() > 0);

        let adapted_est = WhatIfEstimator::with_probe_cache(&tenant, &adapted, cache.clone());
        let e_adapted = adapted_est.estimate(a);
        assert!(
            adapted_est.optimizer_calls() > 0,
            "stale base-model row served to the adapted model"
        );
        assert_eq!(adapted_est.cache_hits(), 0);
        assert!(
            (e_adapted.seconds / e_base.seconds - 1.5).abs() < 1e-9,
            "the adapted estimate must carry the correction factor"
        );
        assert_eq!(cache.len(), 2, "one generation per model fingerprint");

        // And the rows stay separate: re-querying each model hits its
        // own generation.
        let again = WhatIfEstimator::with_probe_cache(&tenant, &base, cache.clone());
        assert_eq!(again.estimate(a), e_base);
        assert_eq!(again.optimizer_calls(), 0);
    }

    #[test]
    fn probe_cache_survives_estimator_churn_and_counts() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let cache = ProbeCache::new();
        let a = Allocation::new(0.5, 0.5);

        let first = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        let e1 = first.estimate(a);
        assert!(first.optimizer_calls() > 0);
        assert_eq!(cache.misses(), 1);

        let second = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        let e2 = second.estimate(a);
        assert_eq!(e1, e2);
        assert_eq!(second.optimizer_calls(), 0);
        assert_eq!(second.cache_hits(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn probe_cache_keeps_generations_side_by_side() {
        // Unlike SharedEstimateCache, a workload change must NOT evict
        // the previous generation: cross-period re-optimization wants
        // the unchanged tenants' probes to stay warm while the drifted
        // tenant re-probes under its new fingerprint.
        let (hv, mut tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let cache = ProbeCache::new();
        let a = Allocation::new(0.5, 0.5);
        let old_fp = tenant.fingerprint();

        let before = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        let e_before = before.estimate(a);
        drop(before);

        tenant.set_workload(tpch::query_workload(18, 1.0)).unwrap();
        let after = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        let e_after = after.estimate(a);
        assert!(after.optimizer_calls() > 0, "stale entry served");
        assert_ne!(e_before.seconds, e_after.seconds);
        assert_eq!(cache.len(), 2, "both generations must coexist");

        // Pruning against the live fingerprint set reclaims the old
        // generation.
        let live = std::collections::HashSet::from([tenant.fingerprint()]);
        cache.retain_tenants(&live);
        assert_eq!(cache.len(), 1);
        assert!(!live.contains(&old_fp));
    }

    #[test]
    fn probe_cache_keys_by_calibration() {
        // A replaced calibration changes the model fingerprint, so old
        // entries are unreachable: a stale estimate priced under the
        // old calibration is never served under the new one.
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let mut spec = vda_vmm::PhysicalMachine::paper_testbed();
        spec.core_ghz *= 2.0;
        let other = Calibrator::new(&Hypervisor::new(spec)).calibrate(&tenant.engine);
        assert_ne!(model.fingerprint(), other.fingerprint());

        let cache = ProbeCache::new();
        let a = Allocation::new(0.5, 0.5);
        let _ = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone()).estimate(a);
        let recal = WhatIfEstimator::with_probe_cache(&tenant, &other, cache.clone());
        let _ = recal.estimate(a);
        assert!(recal.optimizer_calls() > 0, "stale calibration served");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn probe_cache_retain_models_evicts_removed_machines() {
        // Regression: retain_tenants only keys on the tenant
        // fingerprint, so decommissioning a machine left its
        // calibration's generations alive forever — the tenants still
        // exist, their fingerprints stay live, and the dead model's
        // entries were never reclaimed.
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let mut spec = vda_vmm::PhysicalMachine::paper_testbed();
        spec.core_ghz *= 2.0;
        let removed = Calibrator::new(&Hypervisor::new(spec)).calibrate(&tenant.engine);

        let cache = ProbeCache::new();
        let a = Allocation::new(0.5, 0.5);
        let _ = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone()).estimate(a);
        let _ = WhatIfEstimator::with_probe_cache(&tenant, &removed, cache.clone()).estimate(a);
        assert_eq!(cache.len(), 2);

        // Pruning by live tenants alone reclaims nothing — the tenant
        // is still live under both models. This was the leak.
        let live_tenants = std::collections::HashSet::from([tenant.fingerprint()]);
        cache.retain_tenants(&live_tenants);
        assert_eq!(cache.len(), 2, "tenant pruning cannot see dead machines");

        // Pruning by the calibrations still installed in the fleet
        // reclaims the removed machine's generation — and keeps the
        // live one's entries warm.
        let live_models = std::collections::HashSet::from([model.fingerprint()]);
        cache.retain_models(&live_models);
        assert_eq!(cache.len(), 1);
        let warm = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        warm.estimate(a);
        assert_eq!(warm.optimizer_calls(), 0, "survivor entry must stay warm");
    }

    #[test]
    fn probe_cache_export_import_round_trips() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let cache = ProbeCache::new();
        let est = WhatIfEstimator::with_probe_cache(&tenant, &model, cache.clone());
        est.estimate(Allocation::new(0.25, 0.5));
        est.estimate(Allocation::new(0.75, 0.5));

        let rows = cache.export();
        assert_eq!(rows.len(), 2);
        // Deterministic order: sorted by (model, tenant, key).
        assert!(rows
            .windows(2)
            .all(|w| (w[0].0, w[0].1, w[0].2) < (w[1].0, w[1].1, w[1].2)));

        // A restored cache serves the imported entries without
        // re-probing.
        let restored = ProbeCache::new();
        restored.import(&rows);
        assert_eq!(restored.len(), 2);
        let warm = WhatIfEstimator::with_probe_cache(&tenant, &model, restored.clone());
        let e = warm.estimate(Allocation::new(0.25, 0.5));
        assert_eq!(warm.optimizer_calls(), 0);
        assert_eq!(e, est.estimate(Allocation::new(0.25, 0.5)));
        assert_eq!(restored.export(), rows);
    }

    #[test]
    fn more_cpu_never_costs_more() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        let mut prev = f64::INFINITY;
        for i in 1..=10 {
            let c = est.cost(Allocation::new(i as f64 / 10.0, 0.5));
            assert!(c <= prev + 1e-9, "cost rose with CPU at level {i}");
            prev = c;
        }
    }

    #[test]
    fn estimate_tracks_actual_for_dss() {
        // End-to-end §4 validation: calibrated what-if estimates land
        // near executor actuals for a well-modeled read-only workload.
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        for &(c, m) in &[(0.3, 0.5), (0.6, 0.4), (0.9, 0.8)] {
            let alloc = Allocation::new(c, m);
            let predicted = est.cost(alloc);
            let actual = tenant.actual_cost(&hv, alloc);
            let err = (predicted - actual).abs() / actual;
            assert!(
                err < 0.1,
                "estimate {predicted} vs actual {actual} (err {err}) at {alloc:?}"
            );
        }
    }

    #[test]
    fn estimate_tracks_actual_across_disk_shares() {
        // The third axis is *priced*, not just representable: with a
        // disk-calibrated model, what-if estimates track the
        // executor's actuals across disk-bandwidth shares.
        use crate::costmodel::calibration::CalibrationConfig;
        use crate::problem::Resource;
        let (hv, tenant) = setup();
        let cal = Calibrator::with_config(
            &hv,
            CalibrationConfig::with_disk_levels(vec![0.25, 0.5, 1.0]),
        );
        let model = cal.calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        for &d in &[0.2, 0.4, 0.75, 1.0] {
            let alloc = Allocation::new(0.5, 0.5).with(Resource::DiskBandwidth, d);
            let predicted = est.cost(alloc);
            let actual = tenant.actual_cost(&hv, alloc);
            let err = (predicted - actual).abs() / actual;
            assert!(
                err < 0.1,
                "estimate {predicted} vs actual {actual} (err {err}) at disk {d}"
            );
        }
        // The axis genuinely moves the estimate: at a quarter of the
        // disk, the scan workload's I/O time quadruples.
        let full = est.cost(Allocation::new(0.5, 0.5));
        let quarter = est.cost(Allocation::new(0.5, 0.5).with(Resource::DiskBandwidth, 0.25));
        assert!(
            quarter > full * 1.05,
            "quartering disk must hurt: {quarter} vs {full}"
        );
    }

    #[test]
    fn uncalibrated_disk_axis_prices_at_reference_share() {
        // Without disk calibration the estimator must NOT silently
        // invent a disk price: the estimate is the reference-share
        // estimate regardless of the allocation's disk component.
        use crate::problem::Resource;
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        let a = est.cost(Allocation::new(0.5, 0.5));
        let b = est.cost(Allocation::new(0.5, 0.5).with(Resource::DiskBandwidth, 0.5));
        assert_eq!(a, b);
    }

    #[test]
    fn samples_reflect_probed_allocations() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        est.cost(Allocation::new(0.25, 0.5));
        est.cost(Allocation::new(0.75, 0.5));
        let samples = est.samples();
        assert_eq!(samples.len(), 2);
    }
}
