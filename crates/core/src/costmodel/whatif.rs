//! What-if cost estimation (§4.1) with allocation-keyed caching (§4.5).
//!
//! "Instead of generating cost estimates under a fixed setting of `P`
//! as a query optimizer typically would, we map a given `R_i` to the
//! corresponding `P_i`, and we optimize the query with this `P_i`."
//!
//! The estimator also records, per allocation, the *plan-regime
//! signature* of the workload (a hash over the per-statement plan
//! signatures): plan changes along the memory axis define the
//! piecewise-interval boundaries `A_ij` that online refinement needs
//! (§5.1), and the paper harvests them "during configuration
//! enumeration ... to minimize the number of optimizer calls".

use crate::costmodel::calibration::CalibratedModel;
use crate::problem::Allocation;
use crate::tenant::Tenant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vda_simdb::hash::Fnv64;
use vda_simdb::optimizer::Optimizer;

/// One cached what-if estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated workload cost in seconds.
    pub seconds: f64,
    /// Hash over the per-statement plan signatures: identifies the
    /// plan regime the workload occupies at this allocation.
    pub plan_regime: u64,
    /// Estimated cost per statement execution (the §6.1 change
    /// metric's "average cost estimates of workload queries").
    pub avg_cost_per_statement: f64,
}

/// The cached what-if estimator for one tenant.
#[derive(Debug)]
pub struct WhatIfEstimator<'a> {
    tenant: &'a Tenant,
    model: &'a CalibratedModel,
    cache: Mutex<HashMap<(u32, u32), Estimate>>,
    cache_enabled: bool,
    optimizer_calls: AtomicU64,
    cache_hits: AtomicU64,
}

impl<'a> WhatIfEstimator<'a> {
    /// Create an estimator (caching on).
    pub fn new(tenant: &'a Tenant, model: &'a CalibratedModel) -> Self {
        WhatIfEstimator {
            tenant,
            model,
            cache: Mutex::new(HashMap::new()),
            cache_enabled: true,
            optimizer_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Create an estimator with the cache disabled (the §4.5 caching
    /// ablation).
    pub fn without_cache(tenant: &'a Tenant, model: &'a CalibratedModel) -> Self {
        let mut e = Self::new(tenant, model);
        e.cache_enabled = false;
        e
    }

    /// The tenant being estimated.
    pub fn tenant(&self) -> &Tenant {
        self.tenant
    }

    /// Estimated cost (seconds) of the tenant's workload under `alloc`.
    pub fn estimate(&self, alloc: Allocation) -> Estimate {
        if self.cache_enabled {
            if let Some(hit) = self.cache.lock().get(&alloc.key()) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return *hit;
            }
        }
        let est = self.compute(alloc);
        if self.cache_enabled {
            self.cache.lock().insert(alloc.key(), est);
        }
        est
    }

    /// Estimated cost in seconds (convenience).
    pub fn cost(&self, alloc: Allocation) -> f64 {
        self.estimate(alloc).seconds
    }

    fn compute(&self, alloc: Allocation) -> Estimate {
        let params = self.model.params_at(&self.tenant.engine, alloc);
        let factors = self.tenant.engine.factors(&params);
        let optimizer = Optimizer::new(&self.tenant.catalog, factors);
        let mut total = 0.0;
        let mut regime = Fnv64::new();
        let mut statements = 0.0;
        for s in self.tenant.statements() {
            self.optimizer_calls.fetch_add(1, Ordering::Relaxed);
            let plan = optimizer.plan(&s.query);
            total += self.model.to_seconds(plan.native_cost) * s.count;
            statements += s.count;
            regime.write_u64(plan.signature);
        }
        Estimate {
            seconds: total,
            plan_regime: regime.finish(),
            avg_cost_per_statement: if statements > 0.0 {
                total / statements
            } else {
                0.0
            },
        }
    }

    /// Total optimizer invocations so far.
    pub fn optimizer_calls(&self) -> u64 {
        self.optimizer_calls.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Snapshot of every allocation estimated so far (refinement fits
    /// its initial models from these enumeration-time samples, §5.1).
    pub fn samples(&self) -> Vec<(Allocation, Estimate)> {
        self.cache
            .lock()
            .iter()
            .map(|(&(c, m), &est)| {
                (
                    Allocation::new(c as f64 / 1e4, m as f64 / 1e4),
                    est,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::calibration::Calibrator;
    use vda_simdb::engines::Engine;
    use vda_vmm::{Hypervisor, PhysicalMachine};
    use vda_workloads::tpch;

    fn setup() -> (Hypervisor, Tenant) {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let tenant = Tenant::new(
            "t",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 3.0),
        )
        .unwrap();
        (hv, tenant)
    }

    #[test]
    fn estimates_scale_with_statement_count() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let single = Tenant::new(
            "s",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 1.0),
        )
        .unwrap();
        let e3 = WhatIfEstimator::new(&tenant, &model).cost(Allocation::new(0.5, 0.5));
        let e1 = WhatIfEstimator::new(&single, &model).cost(Allocation::new(0.5, 0.5));
        assert!((e3 / e1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cache_avoids_repeat_optimizer_calls() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        let a = Allocation::new(0.5, 0.5);
        let first = est.estimate(a);
        let calls_after_first = est.optimizer_calls();
        let second = est.estimate(a);
        assert_eq!(first, second);
        assert_eq!(est.optimizer_calls(), calls_after_first);
        assert_eq!(est.cache_hits(), 1);
    }

    #[test]
    fn disabled_cache_repeats_work() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::without_cache(&tenant, &model);
        let a = Allocation::new(0.5, 0.5);
        est.estimate(a);
        let calls = est.optimizer_calls();
        est.estimate(a);
        assert_eq!(est.optimizer_calls(), 2 * calls);
    }

    #[test]
    fn more_cpu_never_costs_more() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        let mut prev = f64::INFINITY;
        for i in 1..=10 {
            let c = est.cost(Allocation::new(i as f64 / 10.0, 0.5));
            assert!(c <= prev + 1e-9, "cost rose with CPU at level {i}");
            prev = c;
        }
    }

    #[test]
    fn estimate_tracks_actual_for_dss() {
        // End-to-end §4 validation: calibrated what-if estimates land
        // near executor actuals for a well-modeled read-only workload.
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        for &(c, m) in &[(0.3, 0.5), (0.6, 0.4), (0.9, 0.8)] {
            let alloc = Allocation::new(c, m);
            let predicted = est.cost(alloc);
            let actual = tenant.actual_cost(&hv, alloc);
            let err = (predicted - actual).abs() / actual;
            assert!(
                err < 0.1,
                "estimate {predicted} vs actual {actual} (err {err}) at {alloc:?}"
            );
        }
    }

    #[test]
    fn samples_reflect_probed_allocations() {
        let (hv, tenant) = setup();
        let model = Calibrator::new(&hv).calibrate(&tenant.engine);
        let est = WhatIfEstimator::new(&tenant, &model);
        est.cost(Allocation::new(0.25, 0.5));
        est.cost(Allocation::new(0.75, 0.5));
        let samples = est.samples();
        assert_eq!(samples.len(), 2);
    }
}
