//! Dynamic configuration management (§6).
//!
//! Online refinement assumes a static workload; real workloads change.
//! The manager watches two signals per monitoring period:
//!
//! * the **workload-change metric** (§6.1): the relative change in the
//!   optimizer-estimated *cost per query* between periods. Above the
//!   threshold λ (10 %) the change is **major**; the refined cost model
//!   describes a workload that no longer exists, so it is discarded
//!   and rebuilt from fresh optimizer estimates. Below λ the change is
//!   **minor** and refinement continues.
//! * the **relative modeling error** `E_ip = |Est − Act| / Act`: for a
//!   minor change that lands *before* refinement has converged, the
//!   manager continues refining only if errors are small (< 5 %) or
//!   shrinking; otherwise it conservatively rebuilds (§6.2).
//!
//! Changes in workload *intensity* (same queries, higher arrival rate)
//! do not move the per-query metric — by design — and are absorbed by
//! the refinement scaling instead.

use crate::advisor::VirtualizationDesignAdvisor;
use crate::costmodel::calibration::{CalibratedModel, Calibrator};
use crate::costmodel::whatif::{ProbeCache, WhatIfEstimator};
use crate::enumerate::MachineClass;
use crate::placement::{machine_capacity, AssignmentPricer, FleetOptions};
use crate::problem::{Allocation, QoS, SearchSpace};
use crate::refine::{refine, RefineOptions, RefinedModel};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use vda_simdb::engines::EngineKind;

/// How the manager reacts to each period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeriodDecision {
    /// Minor (or no) change: keep refining the existing model.
    ContinueRefinement,
    /// Minor change mid-refinement with growing errors: rebuild
    /// conservatively.
    RebuildOnError,
    /// Major change: discard the model, restart from optimizer
    /// estimates.
    RebuildOnChange,
}

/// Management policy, for the §7.10 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ManagementMode {
    /// Full §6 logic: change classification + error tracking.
    Dynamic,
    /// Baseline: treat every change as minor and keep refining
    /// ("continuous online refinement" in Fig. 35/36).
    ContinuousRefinement,
}

/// Settings of the dynamic configuration manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicOptions {
    /// λ — the major/minor threshold on the per-query cost-estimate
    /// change (the paper uses 10 %).
    pub change_threshold: f64,
    /// Modeling-error threshold (the paper uses 5 %).
    pub error_threshold: f64,
    /// Policy mode.
    pub mode: ManagementMode,
    /// Refinement settings for the per-period refinement steps.
    pub refine: RefineOptions,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions {
            change_threshold: 0.10,
            error_threshold: 0.05,
            mode: ManagementMode::Dynamic,
            refine: RefineOptions {
                max_iterations: 1,
                ..RefineOptions::default()
            },
        }
    }
}

/// What happened in one monitoring period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodReport {
    /// Monitoring period number (1-based).
    pub period: usize,
    /// Allocations in force for the *next* period.
    pub allocations: Vec<Allocation>,
    /// Decision taken per workload.
    pub decisions: Vec<PeriodDecision>,
    /// Per-workload change metric observed this period.
    pub change_metrics: Vec<f64>,
    /// Per-workload relative modeling error `E_ip`.
    pub errors: Vec<f64>,
    /// Per-workload actual cost at the period's allocation.
    pub actual_costs: Vec<f64>,
}

struct WorkloadState {
    model: RefinedModel,
    prev_per_query_estimate: f64,
    prev_error: Option<f64>,
}

/// The §6 dynamic configuration manager. Owns the per-workload
/// refinement state; the advisor (and its tenants) stay outside so the
/// caller can mutate workloads between periods.
pub struct DynamicConfigManager {
    options: DynamicOptions,
    space: SearchSpace,
    states: Vec<WorkloadState>,
    current: Vec<Allocation>,
    converged: bool,
    period: usize,
    /// Optional adaptive residual sink: when attached
    /// ([`Self::attach_adaption_storage`]), every monitoring period
    /// records each tenant's (base predicted, actual) pair at the
    /// period's allocation, stamped with the period as the logical
    /// epoch. Detached (the default), periods run bit-identically to a
    /// build without the adaptive subsystem.
    adaption: Option<crate::costmodel::RuntimeAdaptionStorage>,
}

impl DynamicConfigManager {
    /// Start managing: fit initial models and adopt the advisor's
    /// static recommendation.
    pub fn new(
        advisor: &VirtualizationDesignAdvisor,
        space: SearchSpace,
        options: DynamicOptions,
    ) -> Self {
        let rec = advisor.recommend(&space);
        // The change metric compares per-query estimates across
        // periods; evaluating at a fixed reference allocation keeps it
        // "sensitive to changes in the nature of the workload queries
        // and not to variability in the run-time environment" (§6.1) —
        // including the advisor's own reallocation between periods.
        let reference = space.default_allocation(advisor.tenant_count());
        let states = (0..advisor.tenant_count())
            .map(|i| {
                let model = advisor.fit_refinement_model(i, &space, options.refine.sample_grid);
                let est = advisor.estimator(i);
                let per_query = est.estimate(reference).avg_cost_per_statement;
                WorkloadState {
                    model,
                    prev_per_query_estimate: per_query,
                    prev_error: None,
                }
            })
            .collect();
        DynamicConfigManager {
            options,
            space,
            states,
            current: rec.result.allocations,
            converged: false,
            period: 0,
            adaption: None,
        }
    }

    /// Attach a residual store: from the next period on, every
    /// tenant's (base predicted, actual) observation feeds it — the
    /// evidence an adaptive refit ([`crate::costmodel::refit`])
    /// consumes. Replaces any previously attached store.
    pub fn attach_adaption_storage(&mut self, storage: crate::costmodel::RuntimeAdaptionStorage) {
        self.adaption = Some(storage);
    }

    /// The attached residual store, if any.
    pub fn adaption_storage(&self) -> Option<&crate::costmodel::RuntimeAdaptionStorage> {
        self.adaption.as_ref()
    }

    /// Detach and return the residual store.
    pub fn take_adaption_storage(&mut self) -> Option<crate::costmodel::RuntimeAdaptionStorage> {
        self.adaption.take()
    }

    /// Allocations currently in force.
    pub fn allocations(&self) -> &[Allocation] {
        &self.current
    }

    /// Whether the refinement process has stabilized.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Process one monitoring period: classify workload changes,
    /// update or rebuild models, re-run the search, and adopt the new
    /// allocations. Call after applying any workload changes to the
    /// advisor's tenants.
    pub fn process_period(&mut self, advisor: &VirtualizationDesignAdvisor) -> PeriodReport {
        self.period += 1;
        let n = self.states.len();
        assert_eq!(n, advisor.tenant_count(), "tenant set must be stable");

        let mut decisions = Vec::with_capacity(n);
        let mut change_metrics = Vec::with_capacity(n);
        let mut errors = Vec::with_capacity(n);
        let mut actual_costs = Vec::with_capacity(n);

        let reference = self.space.default_allocation(n);
        for i in 0..n {
            let alloc = self.current[i];
            // §6.1 change metric: per-query optimizer estimates for the
            // *current* (possibly changed) workload vs the previous
            // period, at a fixed reference allocation.
            let est = advisor.estimator(i);
            let per_query = est.estimate(reference).avg_cost_per_statement;
            let prev = self.states[i].prev_per_query_estimate;
            let change = if prev > 0.0 {
                (per_query - prev).abs() / prev
            } else {
                0.0
            };
            change_metrics.push(change);

            // Monitoring observation.
            let actual = advisor.actual_cost(i, alloc);
            actual_costs.push(actual);
            if let Some(storage) = &mut self.adaption {
                storage.set_epoch(self.period as u64);
                advisor.record_actual(i, alloc, storage);
            }
            let model_est = self.states[i].model.predict(alloc);
            let error = (model_est - actual).abs() / actual.max(1e-12);
            errors.push(error);

            let is_major = change > self.options.change_threshold
                && self.options.mode == ManagementMode::Dynamic;
            let decision = if is_major {
                PeriodDecision::RebuildOnChange
            } else if !self.converged
                && self.options.mode == ManagementMode::Dynamic
                && !self.error_acceptable(i, error)
            {
                PeriodDecision::RebuildOnError
            } else {
                PeriodDecision::ContinueRefinement
            };

            match decision {
                PeriodDecision::RebuildOnChange | PeriodDecision::RebuildOnError => {
                    // Discard the refined model; restart from fresh
                    // optimizer estimates, then apply one refinement
                    // step with the actual cost observed after the
                    // change (§6.2: "the actual execution cost that was
                    // observed after the major workload change is saved
                    // and used to perform an additional refinement
                    // step").
                    let mut model = advisor.fit_refinement_model(
                        i,
                        &self.space,
                        self.options.refine.sample_grid,
                    );
                    model.observe(alloc, actual);
                    self.states[i].model = model;
                    self.states[i].prev_error = None;
                }
                PeriodDecision::ContinueRefinement => {
                    self.states[i].model.observe(alloc, actual);
                    self.states[i].prev_error = Some(error);
                }
            }
            self.states[i].prev_per_query_estimate = per_query;
            decisions.push(decision);
        }

        // Re-run the search over the (refined or rebuilt) models,
        // observing the executor oracles for ground truth.
        let mut models: Vec<RefinedModel> = self.states.iter().map(|s| s.model.clone()).collect();
        let outcome = refine(
            &mut models,
            &self.space,
            advisor.qos(),
            &self.current,
            &advisor.actual_models(),
            &self.options.refine,
        );
        for (s, m) in self.states.iter_mut().zip(models) {
            s.model = m;
        }
        self.converged = outcome.converged;
        self.current = outcome.final_allocations.clone();

        PeriodReport {
            period: self.period,
            allocations: self.current.clone(),
            decisions,
            change_metrics,
            errors,
            actual_costs,
        }
    }

    /// §6.2: mid-refinement minor changes continue only when errors are
    /// small or shrinking.
    fn error_acceptable(&self, i: usize, error: f64) -> bool {
        match self.states[i].prev_error {
            None => true,
            Some(prev) => {
                (prev < self.options.error_threshold && error < self.options.error_threshold)
                    || error < prev
            }
        }
    }
}

/// Settings of the fleet-level dynamic manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDynamicOptions {
    /// Per-machine §6 management settings.
    pub dynamic: DynamicOptions,
    /// Minimum relative fleet-objective improvement an estimated
    /// migration must promise before it is executed (migrations are
    /// disruptive; small gains are not worth moving a database).
    pub migration_threshold: f64,
    /// Extra relative gain (on top of [`Self::migration_threshold`])
    /// a migration that crosses **hardware classes** must promise.
    /// Such a move is strictly more expensive than a same-class one:
    /// the tenant's calibrated model is demoted (a destination-class
    /// calibration must be fit or installed), its estimate cache is
    /// dropped, and refinement restarts from a what-if prior — so
    /// same-class and cross-class moves must not be priced
    /// identically. Set to `0.0` to restore the old single-threshold
    /// gate.
    pub recalibration_surcharge: f64,
    /// Pricing options for candidate placements (the `machines` field
    /// is overwritten with the fleet's machine count).
    pub fleet: FleetOptions,
}

impl Default for FleetDynamicOptions {
    fn default() -> Self {
        FleetDynamicOptions {
            dynamic: DynamicOptions::default(),
            migration_threshold: 0.05,
            recalibration_surcharge: 0.02,
            fleet: FleetOptions::default(),
        }
    }
}

/// One executed cross-machine migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// Name of the migrated tenant.
    pub tenant: String,
    /// Source machine.
    pub from: usize,
    /// Destination machine.
    pub to: usize,
    /// Relative fleet-objective improvement the estimators promised.
    pub estimated_gain: f64,
    /// Whether the move crossed hardware classes, demoting the
    /// tenant's calibrated model to a what-if prior and installing the
    /// destination class's calibration (`false` when the model
    /// traveled or the destination was already calibrated — see
    /// [`crate::advisor::TransferCalibration`]).
    pub recalibrated: bool,
}

/// What happened across the fleet in one monitoring period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPeriodReport {
    /// Monitoring period number (1-based).
    pub period: usize,
    /// Per-machine §6 reports (`None` for machines without tenants).
    pub reports: Vec<Option<PeriodReport>>,
    /// Migrations executed this period (after the per-machine reports
    /// were taken).
    pub migrations: Vec<Migration>,
}

/// The fleet-level dynamic configuration manager: one §6
/// [`DynamicConfigManager`] per machine, plus cross-machine tenant
/// migration. A workload change the per-machine manager classifies as
/// **major** ([`PeriodDecision::RebuildOnChange`]) no longer just
/// rebuilds the local model — it also re-prices the changed tenant on
/// every other machine, and when moving it promises more than
/// [`FleetDynamicOptions::migration_threshold`] relative improvement,
/// the tenant is migrated (its calibrated model and estimate cache
/// travel along, see
/// [`VirtualizationDesignAdvisor::transfer_tenant`]) and the affected
/// machines' managers restart from fresh optimizer estimates.
///
/// Machines may be **heterogeneous** ([`Self::new_heterogeneous`]):
/// different hardware and/or different per-machine search spaces. The
/// manager then keys all pricing and memoization by hardware class and
/// tracks one calibrated model per (hardware class, engine kind) —
/// candidate migrations are priced with the *destination* class's
/// calibration (fit on demand, then reused fleet-wide), and an
/// executed cross-class migration installs that calibration on the
/// destination before its manager restarts, so a model fit on one
/// hardware class is never silently reused on another.
pub struct FleetManager {
    machines: Vec<VirtualizationDesignAdvisor>,
    managers: Vec<Option<DynamicConfigManager>>,
    spaces: Vec<SearchSpace>,
    options: FleetDynamicOptions,
    period: usize,
    /// One calibration per (hardware class, engine kind), shared by
    /// every machine of that class. Interior mutability: pricing a
    /// candidate migration may have to fit a missing class model.
    class_models: RefCell<HashMap<(u64, EngineKind), CalibratedModel>>,
    /// The fleet-wide probe cache, shared by **every** estimator the
    /// fleet builds: home-machine period solves (it is attached to
    /// each machine's advisor, see
    /// [`VirtualizationDesignAdvisor::attach_probe_cache`]) and
    /// cross-machine candidate pricing alike. Entries are keyed by
    /// (calibrated-model fingerprint, tenant fingerprint, allocation),
    /// so two machines of one hardware class pricing the same tenant
    /// probe each point once fleet-wide, entries survive monitoring
    /// periods, and a recalibration or workload drift can never serve
    /// a stale estimate.
    probe: ProbeCache,
}

impl FleetManager {
    /// Start managing a fleet of identical machines (one search space
    /// serves all of them). Machines with tenants must already be
    /// calibrated.
    pub fn new(
        machines: Vec<VirtualizationDesignAdvisor>,
        space: SearchSpace,
        options: FleetDynamicOptions,
    ) -> Self {
        let spaces = vec![space; machines.len()];
        Self::new_heterogeneous(machines, spaces, options)
    }

    /// Start managing a heterogeneous fleet: `spaces[m]` is machine
    /// `m`'s search space, and the machines' hypervisors may describe
    /// different hardware. Machines with tenants must already be
    /// calibrated (their calibrations seed the per-class registry).
    pub fn new_heterogeneous(
        mut machines: Vec<VirtualizationDesignAdvisor>,
        spaces: Vec<SearchSpace>,
        options: FleetDynamicOptions,
    ) -> Self {
        assert!(!machines.is_empty(), "at least one machine");
        assert_eq!(machines.len(), spaces.len(), "one search space per machine");
        // One probe cache for the whole fleet, attached *before* the
        // managers' initial solves so even those populate it.
        let probe = ProbeCache::new();
        for adv in &mut machines {
            adv.attach_probe_cache(probe.clone());
        }
        let managers = machines
            .iter()
            .zip(&spaces)
            .map(|(adv, space)| {
                (adv.tenant_count() > 0)
                    .then(|| DynamicConfigManager::new(adv, *space, options.dynamic.clone()))
            })
            .collect();
        // Seed the per-(hardware class, engine kind) registry from
        // the machines' existing calibrations.
        let mut class_models = HashMap::new();
        for adv in &machines {
            let hw = adv.hypervisor().machine().fingerprint();
            for (kind, model) in adv.calibrations() {
                class_models
                    .entry((hw, *kind))
                    .or_insert_with(|| model.clone());
            }
        }
        FleetManager {
            machines,
            managers,
            spaces,
            options,
            period: 0,
            class_models: RefCell::new(class_models),
            probe,
        }
    }

    /// The fleet-wide probe cache (cross-period, cross-machine
    /// hit/miss counters live here — see
    /// [`CostAccounting::with_probe_cache`](crate::metrics::CostAccounting::with_probe_cache)).
    pub fn probe_cache(&self) -> &ProbeCache {
        &self.probe
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// One machine's advisor.
    pub fn machine(&self, m: usize) -> &VirtualizationDesignAdvisor {
        &self.machines[m]
    }

    /// Mutable access to one machine's advisor (apply workload changes
    /// between monitoring periods).
    pub fn machine_mut(&mut self, m: usize) -> &mut VirtualizationDesignAdvisor {
        &mut self.machines[m]
    }

    /// Machine `m`'s search space.
    pub fn space(&self, m: usize) -> &SearchSpace {
        &self.spaces[m]
    }

    /// Allocations currently in force on machine `m` (`None` when the
    /// machine hosts no tenants).
    pub fn allocations(&self, m: usize) -> Option<&[Allocation]> {
        self.managers[m].as_ref().map(|mgr| mgr.allocations())
    }

    /// Machine `m`'s hardware fingerprint (see
    /// [`vda_vmm::PhysicalMachine::fingerprint`]).
    fn hardware_class(&self, m: usize) -> u64 {
        self.machines[m].hypervisor().machine().fingerprint()
    }

    /// Machine `m`'s pricing class: search space + hardware. Keys the
    /// placement layer's subset memoization, so two machines share
    /// inner solves iff both their grids and their hardware match.
    fn pricing_class(&self, m: usize) -> MachineClass {
        MachineClass::of(&self.spaces[m]).salted(self.hardware_class(m))
    }

    /// Whether every machine shares one hardware class and one search
    /// space (the homogeneous fast path: tenants are priced everywhere
    /// with their home estimators and warm caches).
    fn is_uniform(&self) -> bool {
        (1..self.machines.len()).all(|m| self.pricing_class(m) == self.pricing_class(0))
    }

    /// Estimated fleet objective of the current placement, priced like
    /// [`place_tenants`](crate::placement::place_tenants) — on a
    /// heterogeneous fleet every tenant is priced with its *host*
    /// machine's class calibration.
    pub fn estimated_objective(&self) -> f64 {
        let (_, assignment) = self.flatten();
        self.price_assignments(std::slice::from_ref(&assignment))[0]
    }

    /// The calibrated model for (hardware class of machine `m`,
    /// `kind`), fitting and registering it on demand with machine
    /// `m`'s hypervisor. `engine_of` locates a tenant running that
    /// engine (calibration needs the engine definition).
    fn ensure_class_model(&self, m: usize, kind: EngineKind, source: (usize, usize)) {
        let hw = self.hardware_class(m);
        if self.class_models.borrow().contains_key(&(hw, kind)) {
            return;
        }
        let (sm, slot) = source;
        let adv = &self.machines[m];
        let engine = self.machines[sm].tenant(slot).engine.clone();
        let model = Calibrator::with_config(adv.hypervisor(), adv.calibration_config().clone())
            .calibrate(&engine);
        self.class_models.borrow_mut().insert((hw, kind), model);
    }

    /// Price a batch of candidate assignments with one shared
    /// class-keyed memo cache. On a uniform fleet tenants keep their
    /// home estimators (warm caches, old behavior); on a heterogeneous
    /// fleet tenant `i` on machine `m` is priced by a what-if
    /// estimator backed by machine `m`'s class calibration for `i`'s
    /// engine kind, so cross-class candidates are never priced with a
    /// model fit on different hardware.
    fn price_assignments(&self, assignments: &[Vec<usize>]) -> Vec<f64> {
        let (qos, _) = self.flatten();
        let pricing = self.pricing();
        let k = self.machines.len();
        if self.is_uniform() {
            let estimators: Vec<_> = self
                .machines
                .iter()
                .flat_map(|adv| (0..adv.tenant_count()).map(move |i| adv.estimator(i)))
                .collect();
            let pricer = AssignmentPricer::new(&self.spaces[0], &qos, &estimators, &pricing);
            return assignments.iter().map(|a| pricer.objective(a)).collect();
        }
        // Global tenant list as (machine, slot) pairs.
        let tenants: Vec<(usize, usize)> = self
            .machines
            .iter()
            .enumerate()
            .flat_map(|(m, adv)| (0..adv.tenant_count()).map(move |s| (m, s)))
            .collect();
        // Fit missing class calibrations only for the (machine,
        // tenant) pairings the batch actually prices off-home —
        // calibration is the most expensive operation in the system,
        // so pricing the base assignment (everyone at home) must fit
        // nothing. Then hold one immutable borrow of the registry for
        // the whole pricing.
        let mut off_home: Vec<Vec<bool>> = vec![vec![false; tenants.len()]; k];
        for assignment in assignments {
            for (g, &m) in assignment.iter().enumerate() {
                if tenants[g].0 != m {
                    off_home[m][g] = true;
                }
            }
        }
        for (m, row) in off_home.iter().enumerate() {
            for (g, &needed) in row.iter().enumerate() {
                if needed {
                    let (tm, ts) = tenants[g];
                    let kind = self.machines[tm].tenant(ts).engine.kind();
                    self.ensure_class_model(m, kind, (tm, ts));
                }
            }
        }
        // Drop probe-cache generations whose tenant fingerprint is no
        // longer live (a workload change mints a new fingerprint and
        // would otherwise orphan the old generation forever) — bounds
        // the cache at #calibrations × #tenants.
        {
            let live: std::collections::HashSet<u64> = tenants
                .iter()
                .map(|&(tm, ts)| self.machines[tm].tenant(ts).fingerprint())
                .collect();
            self.probe.retain_tenants(&live);
        }
        let registry = self.class_models.borrow();
        let rows: Vec<Vec<WhatIfEstimator<'_>>> = (0..k)
            .map(|m| {
                let hw = self.hardware_class(m);
                tenants
                    .iter()
                    .enumerate()
                    .map(|(g, &(tm, ts))| {
                        let tenant = self.machines[tm].tenant(ts);
                        let kind = tenant.engine.kind();
                        if tm == m {
                            // Home machine: the advisor's estimator
                            // (probe-cache-backed since the fleet
                            // attached its cache at construction).
                            return self.machines[tm].estimator(ts);
                        }
                        match registry.get(&(hw, kind)) {
                            Some(model) => {
                                WhatIfEstimator::with_probe_cache(tenant, model, self.probe.clone())
                            }
                            // No assignment in the batch prices this
                            // tenant on this machine; the solver never
                            // consults the cell, so a placeholder
                            // (home) estimator avoids a pointless
                            // calibrator fit.
                            None => {
                                debug_assert!(!off_home[m][g], "needed cell must have a model");
                                self.machines[tm].estimator(ts)
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        let classes: Vec<MachineClass> = (0..k).map(|m| self.pricing_class(m)).collect();
        let pricer =
            AssignmentPricer::per_machine(self.spaces.clone(), classes, &qos, rows, &pricing);
        assignments.iter().map(|a| pricer.objective(a)).collect()
    }

    fn pricing(&self) -> FleetOptions {
        FleetOptions {
            machines: self.machines.len(),
            ..self.options.fleet.clone()
        }
    }

    /// Global (QoS, assignment) vectors over all machines, in
    /// (machine, slot) order.
    fn flatten(&self) -> (Vec<QoS>, Vec<usize>) {
        let mut qos = Vec::new();
        let mut assignment = Vec::new();
        for (m, adv) in self.machines.iter().enumerate() {
            qos.extend_from_slice(adv.qos());
            assignment.extend(std::iter::repeat_n(m, adv.tenant_count()));
        }
        (qos, assignment)
    }

    /// Process one monitoring period across the fleet: run every
    /// machine's §6 manager, then consider migrating tenants whose
    /// workload change was classified major.
    pub fn process_period(&mut self) -> FleetPeriodReport {
        self.period += 1;
        let k = self.machines.len();
        let mut reports: Vec<Option<PeriodReport>> = Vec::with_capacity(k);
        for m in 0..k {
            let report = self.managers[m]
                .as_mut()
                .map(|mgr| mgr.process_period(&self.machines[m]));
            reports.push(report);
        }

        // Major workload changes are migration candidates: the refined
        // model was discarded anyway, so moving the tenant costs no
        // accumulated refinement state.
        let mut candidates: Vec<(usize, usize)> = Vec::new(); // (machine, slot)
        for (m, report) in reports.iter().enumerate() {
            if let Some(r) = report {
                for (slot, d) in r.decisions.iter().enumerate() {
                    if *d == PeriodDecision::RebuildOnChange {
                        candidates.push((m, slot));
                    }
                }
            }
        }

        let mut migrations = Vec::new();
        if let Some((mut migration, slot)) = self.best_migration(&candidates) {
            let Migration { from, to, .. } = migration;
            let (src, dst) = two_mut(&mut self.machines, from, to);
            let transfer = src.transfer_tenant(slot, dst);
            if !transfer.calibration.destination_ready() {
                // The destination cannot serve estimates for the
                // tenant yet (cross-hardware demotion, or a source
                // that was never calibrated): install the destination
                // class's calibration (fit during pricing, or now) so
                // the rebuilt manager starts from valid optimizer
                // estimates; refinement rounds rebuild the refined
                // model from there.
                let kind = self.machines[to].tenant(transfer.index).engine.kind();
                self.ensure_class_model(to, kind, (to, transfer.index));
                let model = self.class_models.borrow()[&(self.hardware_class(to), kind)].clone();
                self.machines[to].install_calibration(kind, model);
            }
            // The flag records exactly a cross-hardware-class
            // demotion — a never-calibrated source getting its first
            // calibration on an identical machine is not one.
            migration.recalibrated =
                transfer.calibration == crate::advisor::TransferCalibration::Demoted;
            // The affected machines' tenant sets changed: restart
            // their managers from fresh optimizer estimates (the same
            // conservative rebuild §6 prescribes after major changes).
            for m in [from, to] {
                self.managers[m] = (self.machines[m].tenant_count() > 0).then(|| {
                    DynamicConfigManager::new(
                        &self.machines[m],
                        self.spaces[m],
                        self.options.dynamic.clone(),
                    )
                });
            }
            migrations.push(migration);
        }

        FleetPeriodReport {
            period: self.period,
            reports,
            migrations,
        }
    }

    /// Best single migration among the candidate tenants, if any
    /// clears the improvement threshold. Returns the migration plus
    /// the tenant's *slot* on the source machine (tenant names are
    /// display labels, not identities — slots are what
    /// [`VirtualizationDesignAdvisor::transfer_tenant`] consumes).
    ///
    /// The base assignment and every candidate are priced in one
    /// batch sharing a class-keyed memo cache: candidates differ from
    /// the base on two machines only, so only the changed subsets are
    /// re-solved — and each candidate is priced with its *destination*
    /// machine's space and class calibration.
    fn best_migration(&self, candidates: &[(usize, usize)]) -> Option<(Migration, usize)> {
        if candidates.is_empty() {
            return None;
        }
        let (_, assignment) = self.flatten();
        // Global index of (machine, slot).
        let offset: Vec<usize> = self
            .machines
            .iter()
            .scan(0, |acc, adv| {
                let o = *acc;
                *acc += adv.tenant_count();
                Some(o)
            })
            .collect();
        // Enumerate capacity-respecting candidate assignments.
        let mut moves: Vec<(usize, usize, usize)> = Vec::new(); // (machine, slot, to)
        for &(m, slot) in candidates {
            for to in 0..self.machines.len() {
                if to == m || self.machines[to].tenant_count() >= machine_capacity(&self.spaces[to])
                {
                    continue;
                }
                moves.push((m, slot, to));
            }
        }
        let mut batch: Vec<Vec<usize>> = Vec::with_capacity(moves.len() + 1);
        batch.push(assignment.clone());
        for &(m, slot, to) in &moves {
            let mut cand = assignment.clone();
            cand[offset[m] + slot] = to;
            batch.push(cand);
        }
        let objectives = self.price_assignments(&batch);
        let base = objectives[0];
        if !base.is_finite() {
            return None;
        }
        let mut best: Option<(Migration, usize, f64)> = None;
        for (&(m, slot, to), &obj) in moves.iter().zip(&objectives[1..]) {
            let Some(gain) = migration_gain(base, obj) else {
                continue;
            };
            // The migration cost model: a cross-hardware-class move
            // additionally pays a recalibration (destination-class
            // model fit/installation, cache drop, refinement restart
            // from a what-if prior), so it must promise the surcharge
            // on top of the base threshold — and candidates are
            // *ranked* net of that surcharge too, so a same-class move
            // with a slightly lower raw gain still beats a cross-class
            // one whose extra gain doesn't cover its recalibration.
            let surcharge = if self.hardware_class(m) != self.hardware_class(to) {
                self.options.recalibration_surcharge
            } else {
                0.0
            };
            let net = gain - surcharge;
            if gain > self.options.migration_threshold + surcharge
                && best.as_ref().is_none_or(|(_, _, b)| net > *b)
            {
                best = Some((
                    Migration {
                        tenant: self.machines[m].tenant(slot).name.clone(),
                        from: m,
                        to,
                        estimated_gain: gain,
                        recalibrated: false,
                    },
                    slot,
                    net,
                ));
            }
        }
        best.map(|(mig, slot, _)| (mig, slot))
    }
}

/// Smallest fleet objective the relative migration gain may be
/// divided by. A fleet objective near zero (all tenants idle) would
/// otherwise turn float dust in the subtraction into an arbitrarily
/// large relative "gain" and trigger a pointless migration.
const MIGRATION_BASE_FLOOR: f64 = 1e-6;

/// Smallest absolute objective improvement that counts as a migration
/// gain at all — the absolute half of the absolute-plus-relative gate.
const MIGRATION_MIN_IMPROVEMENT: f64 = 1e-9;

/// Relative improvement of moving the fleet objective from `base` to
/// `obj`, gated absolute-plus-relative: `None` unless the improvement
/// clears [`MIGRATION_MIN_IMPROVEMENT`], and the denominator is
/// bounded below by [`MIGRATION_BASE_FLOOR`] so a near-zero `base`
/// cannot manufacture a spurious gain.
pub(crate) fn migration_gain(base: f64, obj: f64) -> Option<f64> {
    let improvement = base - obj;
    if !improvement.is_finite() || improvement <= MIGRATION_MIN_IMPROVEMENT {
        return None;
    }
    Some(improvement / base.abs().max(MIGRATION_BASE_FLOOR))
}

/// Distinct mutable borrows of two vector slots.
pub(crate) fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QoS;
    use crate::tenant::Tenant;
    use vda_simdb::engines::Engine;
    use vda_vmm::{Hypervisor, PhysicalMachine};
    use vda_workloads::tpch;

    fn advisor() -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        adv.add_tenant(
            Tenant::new(
                "a",
                Engine::pg(),
                cat.clone(),
                tpch::query_workload(18, 1.0),
            )
            .unwrap(),
            QoS::default(),
        );
        adv.add_tenant(
            Tenant::new("b", Engine::pg(), cat, tpch::query_workload(6, 2.0)).unwrap(),
            QoS::default(),
        );
        adv.calibrate();
        adv
    }

    #[test]
    fn stable_workload_is_minor_and_continues() {
        let adv = advisor();
        let mut mgr =
            DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.5), DynamicOptions::default());
        let report = mgr.process_period(&adv);
        assert!(report
            .decisions
            .iter()
            .all(|d| *d == PeriodDecision::ContinueRefinement));
        assert!(report.change_metrics.iter().all(|&c| c < 0.10));
    }

    #[test]
    fn workload_swap_is_detected_as_major() {
        let mut adv = advisor();
        let space = SearchSpace::cpu_only(0.5);
        let mut mgr = DynamicConfigManager::new(&adv, space, DynamicOptions::default());
        mgr.process_period(&adv);
        // Swap the two tenants' workloads (the §7.10 scenario).
        let w0 = adv.tenant(0).workload.clone();
        let w1 = adv.tenant(1).workload.clone();
        adv.tenant_mut(0).set_workload(w1).unwrap();
        adv.tenant_mut(1).set_workload(w0).unwrap();
        let report = mgr.process_period(&adv);
        assert!(
            report.decisions.contains(&PeriodDecision::RebuildOnChange),
            "swap must be classified major: {:?}",
            report.decisions
        );
    }

    #[test]
    fn intensity_change_stays_minor() {
        let mut adv = advisor();
        let mut mgr =
            DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.5), DynamicOptions::default());
        mgr.process_period(&adv);
        // Double the arrival rate: per-query estimates are unchanged.
        adv.tenant_mut(0).scale_workload(2.0);
        let report = mgr.process_period(&adv);
        assert_eq!(report.decisions[0], PeriodDecision::ContinueRefinement);
        assert!(report.change_metrics[0] < 0.01);
    }

    #[test]
    fn continuous_mode_never_rebuilds() {
        let mut adv = advisor();
        let opts = DynamicOptions {
            mode: ManagementMode::ContinuousRefinement,
            ..DynamicOptions::default()
        };
        let mut mgr = DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.5), opts);
        mgr.process_period(&adv);
        let w0 = adv.tenant(0).workload.clone();
        let w1 = adv.tenant(1).workload.clone();
        adv.tenant_mut(0).set_workload(w1).unwrap();
        adv.tenant_mut(1).set_workload(w0).unwrap();
        let report = mgr.process_period(&adv);
        assert!(report
            .decisions
            .iter()
            .all(|d| *d == PeriodDecision::ContinueRefinement));
    }

    /// A machine hosting the given `(name, tpch query, multiplicity)`
    /// tenants, calibrated.
    fn machine(specs: &[(&str, usize, f64)]) -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        for &(name, q, mult) in specs {
            adv.add_tenant(
                Tenant::new(
                    name,
                    Engine::pg(),
                    cat.clone(),
                    tpch::query_workload(q, mult),
                )
                .unwrap(),
                QoS::default(),
            );
        }
        adv.calibrate();
        adv
    }

    #[test]
    fn stable_fleet_never_migrates() {
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 3.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new(
            machines,
            SearchSpace::cpu_only(0.5),
            FleetDynamicOptions::default(),
        );
        for _ in 0..3 {
            let report = fleet.process_period();
            assert!(report.migrations.is_empty(), "{:?}", report.migrations);
        }
    }

    #[test]
    fn major_workload_change_triggers_migration() {
        // Machine 0 hosts a light and a heavy tenant; machine 1 a
        // light one. Tenant "a" turning heavy leaves machine 0 with
        // two heavy tenants — the fleet manager should move one off.
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new(
            machines,
            SearchSpace::cpu_only(0.5),
            FleetDynamicOptions::default(),
        );
        fleet.process_period(); // settle
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let report = fleet.process_period();
        assert_eq!(report.migrations.len(), 1, "{:?}", report.migrations);
        let mig = &report.migrations[0];
        assert_eq!(mig.tenant, "a");
        assert_eq!((mig.from, mig.to), (0, 1));
        assert!(mig.estimated_gain > 0.05);
        assert_eq!(fleet.machine(0).tenant_count(), 1);
        assert_eq!(fleet.machine(1).tenant_count(), 2);
        // The destination kept its calibration (the model traveled).
        assert!(fleet.machine(1).is_calibrated());
        // Managers were rebuilt: the next period still works and
        // allocations stay feasible per machine.
        let next = fleet.process_period();
        for report in next.reports.iter().flatten() {
            let total: f64 = report.allocations.iter().map(|a| a.cpu()).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn migration_threshold_gates_disruptive_moves() {
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new(
            machines,
            SearchSpace::cpu_only(0.5),
            FleetDynamicOptions {
                migration_threshold: 1e9, // nothing clears this bar
                ..FleetDynamicOptions::default()
            },
        );
        fleet.process_period();
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let report = fleet.process_period();
        assert!(report.migrations.is_empty());
        assert_eq!(fleet.machine(0).tenant_count(), 2);
    }

    #[test]
    fn migration_reduces_estimated_fleet_objective() {
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new(
            machines,
            SearchSpace::cpu_only(0.5),
            FleetDynamicOptions::default(),
        );
        fleet.process_period();
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let before = fleet.estimated_objective();
        let report = fleet.process_period();
        assert!(!report.migrations.is_empty());
        let after = fleet.estimated_objective();
        assert!(
            after < before,
            "migration must cut the estimated objective: {after} vs {before}"
        );
    }

    #[test]
    fn fleet_probe_cache_backs_repeated_pricing_at_zero_new_probes() {
        // Heterogeneous spaces force the class-keyed pricing path, so
        // a major change makes process_period price off-home
        // candidates through the fleet probe cache rather than the
        // advisors' home estimators.
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let spaces = vec![
            SearchSpace::cpu_only(0.5),
            SearchSpace::cpu_only(0.5).with_delta(0.1),
        ];
        let mut fleet =
            FleetManager::new_heterogeneous(machines, spaces, FleetDynamicOptions::default());
        fleet.process_period();
        assert!(
            fleet.probe_cache().hits() > 0,
            "period solves must share probes with the construction-time solves"
        );
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        fleet.process_period();
        // Re-pricing the settled fleet is pure cache hits: every probe
        // point was cached by the pricing above.
        let _ = fleet.estimated_objective();
        let misses = fleet.probe_cache().misses();
        let hits = fleet.probe_cache().hits();
        let _ = fleet.estimated_objective();
        assert_eq!(
            fleet.probe_cache().misses(),
            misses,
            "identical re-pricing must not pay new optimizer probes"
        );
        assert!(fleet.probe_cache().hits() > hits);
    }

    #[test]
    fn fleet_repricing_with_c2f_inner_matches_exhaustive_under_limits() {
        // Fleet re-pricing (estimated_objective / best_migration) goes
        // through AssignmentPricer with the configured inner solver.
        // With a finite degradation limit in play, the limit-aware
        // coarse-to-fine inner must price the fleet exactly like the
        // full-grid inner — it used to silently *be* the full grid.
        use crate::enumerate::CoarseToFineOptions;
        use crate::placement::InnerSolve;
        let fleet_with = |inner: InnerSolve| {
            let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
            let mut adv = VirtualizationDesignAdvisor::new(hv);
            let cat = tpch::catalog(1.0);
            adv.add_tenant(
                Tenant::new(
                    "a",
                    Engine::pg(),
                    cat.clone(),
                    tpch::query_workload(18, 2.0),
                )
                .unwrap(),
                QoS::with_limit(2.0),
            );
            adv.add_tenant(
                Tenant::new("b", Engine::pg(), cat, tpch::query_workload(6, 1.0)).unwrap(),
                QoS::default(),
            );
            adv.calibrate();
            FleetManager::new(
                vec![adv],
                SearchSpace::cpu_only(0.5),
                FleetDynamicOptions {
                    fleet: FleetOptions {
                        inner,
                        ..FleetOptions::default()
                    },
                    ..FleetDynamicOptions::default()
                },
            )
        };
        let exact = fleet_with(InnerSolve::Exhaustive).estimated_objective();
        let c2f = fleet_with(InnerSolve::CoarseToFine(CoarseToFineOptions::default()))
            .estimated_objective();
        assert!(
            (exact - c2f).abs() <= 1e-6 * exact.abs().max(1.0),
            "c2f {c2f} vs exhaustive {exact}"
        );
    }

    /// A machine on explicit hardware hosting `(name, engine, tpch
    /// query, multiplicity)` tenants, calibrated.
    fn machine_on(
        spec: PhysicalMachine,
        specs: &[(&str, Engine, usize, f64)],
    ) -> VirtualizationDesignAdvisor {
        let hv = Hypervisor::new(spec);
        let mut adv = VirtualizationDesignAdvisor::new(hv);
        let cat = tpch::catalog(1.0);
        for (name, engine, q, mult) in specs {
            adv.add_tenant(
                Tenant::new(
                    *name,
                    engine.clone(),
                    cat.clone(),
                    tpch::query_workload(*q, *mult),
                )
                .unwrap(),
                QoS::default(),
            );
        }
        adv.calibrate();
        adv
    }

    #[test]
    fn heterogeneous_migration_recalibrates_on_the_destination() {
        // Machine 0 (paper testbed) hosts two pg tenants; machine 1 is
        // different hardware hosting only a db2 tenant — so when a pg
        // tenant migrates there, the destination has NO pg calibration
        // and the hardware differs: the model must be demoted, the
        // fleet manager must install the destination class's
        // calibration, and the migration must be flagged
        // `recalibrated`.
        let mut fast = PhysicalMachine::paper_testbed();
        fast.core_ghz *= 2.0;
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine_on(fast, &[("c", Engine::db2(), 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new_heterogeneous(
            machines,
            vec![SearchSpace::cpu_only(0.5); 2],
            FleetDynamicOptions {
                migration_threshold: 0.01,
                ..FleetDynamicOptions::default()
            },
        );
        fleet.process_period(); // settle
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let report = fleet.process_period();
        assert_eq!(report.migrations.len(), 1, "{:?}", report.migrations);
        let mig = &report.migrations[0];
        assert_eq!((mig.from, mig.to), (0, 1));
        assert!(
            mig.recalibrated,
            "cross-hardware migration must recalibrate: {mig:?}"
        );
        // The destination now serves pg estimates from its OWN
        // hardware class's calibration — not the source's.
        assert!(fleet.machine(1).is_calibrated());
        let pg_kind = fleet.machine(0).tenant(0).engine.kind();
        assert_ne!(
            fleet.machine(1).calibration(pg_kind),
            fleet.machine(0).calibration(pg_kind),
            "destination must not reuse a model fit on different hardware"
        );
        // Both managers restarted and keep producing feasible
        // allocations.
        let next = fleet.process_period();
        for report in next.reports.iter().flatten() {
            let total: f64 = report.allocations.iter().map(|a| a.cpu()).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn recalibration_surcharge_rejects_cross_class_moves() {
        // The migration cost model: the same workload change, the same
        // candidate move, the same relative gain — but across hardware
        // classes the move also pays a recalibration, so a gain that
        // clears the relative threshold alone must be rejected once the
        // surcharge is stacked on top.
        let mut fast = PhysicalMachine::paper_testbed();
        fast.core_ghz *= 2.0;
        let fleet_with = |surcharge: f64| {
            let machines = vec![
                machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
                machine_on(fast, &[("c", Engine::db2(), 6, 1.0)]),
            ];
            let mut fleet = FleetManager::new_heterogeneous(
                machines,
                vec![SearchSpace::cpu_only(0.5); 2],
                FleetDynamicOptions {
                    migration_threshold: 0.01,
                    recalibration_surcharge: surcharge,
                    ..FleetDynamicOptions::default()
                },
            );
            fleet.process_period(); // settle
            fleet
                .machine_mut(0)
                .tenant_mut(0)
                .set_workload(tpch::query_workload(18, 4.0))
                .unwrap();
            fleet
        };
        // Without the surcharge the move clears the 1 % relative gate.
        let mut cheap = fleet_with(0.0);
        let report = cheap.process_period();
        assert_eq!(report.migrations.len(), 1, "{:?}", report.migrations);
        let gain = report.migrations[0].estimated_gain;
        assert!(gain > 0.01, "scenario must clear the relative gate: {gain}");
        // With a surcharge above the observed gain, the identical move
        // is rejected — cross-class moves are no longer priced like
        // same-class ones.
        let mut priced = fleet_with(gain + 0.01);
        let report = priced.process_period();
        assert!(
            report.migrations.is_empty(),
            "surcharge must reject the cross-class move: {:?}",
            report.migrations
        );
        assert_eq!(priced.machine(0).tenant_count(), 2);
    }

    #[test]
    fn same_class_moves_pay_no_recalibration_surcharge() {
        // Identical hardware: even an enormous surcharge must not gate
        // the move — only cross-class migrations pay it.
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new(
            machines,
            SearchSpace::cpu_only(0.5),
            FleetDynamicOptions {
                recalibration_surcharge: 1e9,
                ..FleetDynamicOptions::default()
            },
        );
        fleet.process_period();
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let report = fleet.process_period();
        assert_eq!(report.migrations.len(), 1, "{:?}", report.migrations);
        assert!(!report.migrations[0].recalibrated);
    }

    #[test]
    fn same_hardware_migration_still_travels() {
        // Heterogeneous constructor, but both machines are physically
        // identical: the calibrated model must keep traveling with the
        // tenant (no recalibration — §4.3 says identical hardware
        // needs none).
        let machines = vec![
            machine(&[("a", 6, 1.0), ("b", 18, 4.0)]),
            machine(&[("c", 6, 1.0)]),
        ];
        let mut fleet = FleetManager::new_heterogeneous(
            machines,
            vec![SearchSpace::cpu_only(0.5); 2],
            FleetDynamicOptions::default(),
        );
        fleet.process_period();
        fleet
            .machine_mut(0)
            .tenant_mut(0)
            .set_workload(tpch::query_workload(18, 4.0))
            .unwrap();
        let report = fleet.process_period();
        assert_eq!(report.migrations.len(), 1);
        assert!(
            !report.migrations[0].recalibrated,
            "identical hardware must not recalibrate: {:?}",
            report.migrations[0]
        );
        assert!(fleet.machine(1).is_calibrated());
    }

    #[test]
    fn migration_gain_is_robust_near_zero_objectives() {
        // A near-zero base objective used to manufacture huge relative
        // gains out of float dust (the old gate divided by `base`
        // unguarded). The absolute-plus-relative gate must reject
        // noise-sized improvements outright...
        assert_eq!(migration_gain(1e-12, 0.0), None);
        assert_eq!(migration_gain(0.0, -1e-12), None);
        // ...and scale dust-sized improvements by the floor, not the
        // tiny base: 1e-8 improvement on a 1e-10 base is a 1e8×
        // relative gain by the old math, but far below any plausible
        // migration threshold with the floored denominator.
        let g = migration_gain(1e-10, -1e-8 + 1e-10).unwrap();
        assert!(g < 0.05, "spurious gain {g}");
        // Regressions and no-ops are never gains.
        assert_eq!(migration_gain(10.0, 10.0), None);
        assert_eq!(migration_gain(10.0, 12.0), None);
        // Real improvements keep their usual relative value.
        let g = migration_gain(10.0, 9.0).unwrap();
        assert!((g - 0.1).abs() < 1e-12);
    }

    #[test]
    fn allocations_remain_feasible_across_periods() {
        let mut adv = advisor();
        let mut mgr =
            DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.5), DynamicOptions::default());
        for p in 0..4 {
            if p == 2 {
                adv.tenant_mut(0).scale_workload(1.5);
            }
            let report = mgr.process_period(&adv);
            let total: f64 = report.allocations.iter().map(|a| a.cpu()).sum();
            assert!(total <= 1.0 + 1e-9, "period {p}: {total}");
        }
    }
}
