//! Configuration enumeration (§4.5), over an arbitrary axis set.
//!
//! [`greedy_search`] is the paper's Figure 11 algorithm verbatim:
//! start from equal shares, and in each iteration consider shifting a
//! share δ of some resource from the workload that suffers least to
//! the workload that benefits most, honoring degradation limits `L_i`
//! and weighting costs by gain factors `G_i`. The search terminates
//! when no beneficial reallocation exists.
//!
//! [`exhaustive_search`] finds the *true* optimum over the same
//! δ-quantized allocation grid. Because the objective `Σ G_i·Cost_i`
//! is separable (each workload's cost depends only on its own
//! allocation), the grid optimum is computable exactly by dynamic
//! programming over remaining resource budgets instead of enumerating
//! every composition — same answer as brute force, polynomial cost.
//! The paper uses exhaustive search to show greedy is "very often
//! optimal and always within 5 % of the optimal" (§4.5, §7.6–7.7).
//!
//! [`coarse_to_fine_search`] reaches the same grid optimum through a
//! coarse-δ solve plus windowed fine refinement, at a fraction of the
//! optimizer calls — including under finite degradation limits, where
//! the refinement windows track the limit boundary (see the function
//! docs). All three searches report jointly infeasible limits the
//! same way: a best-effort allocation with the violations flagged in
//! [`SearchResult::limits_met`], never a panic.
//!
//! Every algorithm here is **M-dimensional**: the varied axes come
//! from the search space's [`AxisSet`](crate::problem::AxisSet), the DP budget lattice has one
//! dimension per varied axis (each with its own δ), and windows /
//! boundary bands are per-axis boxes. Restricted to the paper's
//! `{Cpu, Memory}` the code paths reduce exactly to the historical
//! two-axis implementation — probe sequences, tie-breaking, and
//! results are bit-identical (`tests/m_axes.rs` pins this against a
//! frozen copy of the legacy 2-axis DP).
//!
//! Both algorithms consume one [`CostModel`] per workload — what-if
//! estimators, refined models, the executor oracle, or synthetic
//! models — and evaluate each iteration's candidate set as a batch.
//! With [`SearchOptions::parallel`] the batch fans out across threads;
//! candidates are deduplicated per (workload, allocation) before
//! evaluation, so the parallel and serial paths issue *identical*
//! optimizer-call sequences and return bit-identical results (the
//! selection logic, and therefore tie-breaking, is always serial).

use crate::costmodel::model::CostModel;
use crate::problem::{AllocKey, Allocation, QoS, Resource, SearchSpace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use vda_simdb::hash::Fnv64;

/// One greedy reallocation step, for tracing/benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Resource shifted.
    pub resource: Resource,
    /// Workload that received δ.
    pub winner: usize,
    /// Workload that gave up δ.
    pub loser: usize,
    /// Net gain-weighted cost reduction.
    pub improvement: f64,
}

/// Result of a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Recommended allocation per workload.
    pub allocations: Vec<Allocation>,
    /// Gain-weighted total cost at the recommendation.
    pub weighted_cost: f64,
    /// Unweighted per-workload costs at the recommendation.
    pub costs: Vec<f64>,
    /// Greedy iterations executed (0 for exhaustive search).
    pub iterations: usize,
    /// Greedy trace (empty for exhaustive search).
    pub trace: Vec<TraceStep>,
    /// Per-workload: whether the degradation limit is satisfied at the
    /// recommendation. All `true` unless the limits are jointly
    /// infeasible (the paper's Fig. 19 shows exactly such a case at
    /// `L9 = 1.5`).
    pub limits_met: Vec<bool>,
}

/// How the enumerators evaluate candidate sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Evaluate each iteration's candidate batch on multiple threads.
    /// Results are identical to the serial path either way.
    pub parallel: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { parallel: true }
    }
}

impl SearchOptions {
    /// Strictly serial evaluation.
    pub fn serial() -> Self {
        SearchOptions { parallel: false }
    }

    /// Parallel batch evaluation.
    pub fn parallel() -> Self {
        SearchOptions { parallel: true }
    }
}

/// Identifies a machine's search space (and, via [`Self::salted`], any
/// extra machine state such as hardware or resource scale) for cache
/// keying. Two machines of the same class produce identical inner
/// solves for the same tenant subset, so the fleet layer's subset
/// memoization is keyed by `(MachineClass, subset)` — never by subset
/// alone, which would silently reuse one machine's solve on different
/// hardware.
///
/// The fingerprint covers the full axis set: the varied
/// [`AxisSet`](crate::problem::AxisSet) bitmask plus every axis's
/// fixed share and δ, quantized at 1e-9
/// share resolution (far finer than any δ grid in use), so spaces that
/// differ only by floating-point dust share a class while genuinely
/// different grids — including grids differing on a *new* axis —
/// never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineClass(u64);

impl MachineClass {
    /// The class of a search space.
    pub fn of(space: &SearchSpace) -> Self {
        let mut h = Fnv64::new();
        h.write_u64(space.varied.bits() as u64);
        for r in Resource::ALL {
            h.write_u64(quantize_share(space.fixed.get(r)));
            h.write_u64(quantize_share(space.delta_for(r)));
        }
        h.write_u64(quantize_share(space.min_share));
        MachineClass(h.finish())
    }

    /// A derived class mixing in extra machine-distinguishing state
    /// (e.g. a hardware fingerprint, or a resource-scale quantization):
    /// same space + same salt ⇒ same class, any differing salt ⇒ a
    /// distinct class.
    #[must_use]
    pub fn salted(self, salt: u64) -> Self {
        MachineClass(Fnv64::resume(self.0).write_u64(salt).finish())
    }

    /// A derived class mixing in a share-like float (e.g. a resource
    /// scale), quantized at the same 1e-9 resolution as the space
    /// fields — the single place the class-resolution contract lives.
    #[must_use]
    pub fn salted_share(self, share: f64) -> Self {
        self.salted(quantize_share(share))
    }

    /// The raw 64-bit fingerprint.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Shares and deltas live in [0, 1]; 1e-9 resolution distinguishes
/// every grid anyone can realistically configure.
fn quantize_share(x: f64) -> u64 {
    (x * 1e9).round() as u64
}

/// Minimum weighted-cost improvement for a step to count as progress.
const PROGRESS_EPS: f64 = 1e-9;

/// Slack used everywhere a cost is compared against a degradation
/// limit: candidate acceptance in the greedy search, option
/// feasibility in the grid DP, and the final `limits_met` report. One
/// constant keeps the verdicts consistent — an allocation accepted
/// during search can never be reported limit-violating afterwards, and
/// vice versa. (The search paths used to accept at `1e-12` slack while
/// the report checked at `1e-9`, so the two could disagree in the
/// `(1e-12, 1e-9]` band.)
pub const LIMIT_EPS: f64 = 1e-9;

/// Whether `cost` satisfies the degradation limit `limit` relative to
/// the workload's solo baseline cost `full`.
fn within_limit(cost: f64, limit: f64, full: f64) -> bool {
    cost <= limit * full + LIMIT_EPS
}

/// Batch evaluator over the per-workload cost models.
///
/// Jobs are deduplicated by (workload, quantized allocation) before
/// evaluation so each unique probe is computed exactly once per batch
/// regardless of threading — keeping optimizer-call counts identical
/// between the serial and parallel paths even for uncached models.
struct Evaluator<'m, M> {
    models: &'m [M],
    parallel: bool,
}

impl<'m, M: CostModel> Evaluator<'m, M> {
    fn new(models: &'m [M], options: &SearchOptions) -> Self {
        Evaluator {
            models,
            parallel: options.parallel,
        }
    }

    /// Costs for a batch of (workload, allocation) jobs, in job order.
    fn costs(&self, jobs: &[(usize, Allocation)]) -> Vec<f64> {
        let mut unique: Vec<(usize, Allocation)> = Vec::with_capacity(jobs.len());
        let mut slot: HashMap<(usize, AllocKey), usize> = HashMap::with_capacity(jobs.len());
        let mut job_slots: Vec<usize> = Vec::with_capacity(jobs.len());
        for &(i, a) in jobs {
            let key = (i, a.key());
            let idx = *slot.entry(key).or_insert_with(|| {
                unique.push((i, a));
                unique.len() - 1
            });
            job_slots.push(idx);
        }
        let values: Vec<f64> = if self.parallel && unique.len() > 1 {
            unique.par_map(|&(i, a)| self.models[i].cost(a))
        } else {
            unique
                .iter()
                .map(|&(i, a)| self.models[i].cost(a))
                .collect()
        };
        job_slots.into_iter().map(|s| values[s]).collect()
    }
}

/// The Figure 11 greedy configuration enumerator with default
/// (parallel) candidate evaluation.
///
/// One cost model per workload; `qos[i]` carries `L_i`/`G_i`. Returns
/// the recommended allocations plus the iteration trace.
pub fn greedy_search<M: CostModel>(space: &SearchSpace, qos: &[QoS], models: &[M]) -> SearchResult {
    greedy_search_with(space, qos, models, &SearchOptions::default())
}

/// [`greedy_search`] with explicit evaluation options.
pub fn greedy_search_with<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
) -> SearchResult {
    let n = models.len();
    assert!(n >= 1, "at least one workload");
    assert_eq!(qos.len(), n, "one QoS entry per workload");
    let varied = space.varied();
    assert!(!varied.is_empty(), "at least one resource must be varied");
    let eval = Evaluator::new(models, options);

    // Degradation baselines: Cost(W_i, [1,…,1]) over the varied
    // resources.
    let solo = space.solo_allocation();
    let full_cost = eval.costs(&(0..n).map(|i| (i, solo)).collect::<Vec<_>>());

    // Start with equal shares of every varied resource.
    let mut alloc: Vec<Allocation> = vec![space.default_allocation(n); n];

    // Feasibility pre-phase. Figure 11 only *preserves* degradation
    // limits when taking resources away; when the equal-share start
    // itself violates a limit (five identical workloads with
    // L_i = 2.5, §7.5), the advisor must first shift resources toward
    // the violating workload. We move δ at a time from the workload
    // with the most slack until every satisfiable limit holds.
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > 10_000 {
            break;
        }
        let current = eval.costs(&(0..n).map(|i| (i, alloc[i])).collect::<Vec<_>>());
        let violator = (0..n)
            .filter(|&i| qos[i].degradation_limit.is_finite())
            .filter(|&i| !within_limit(current[i], qos[i].degradation_limit, full_cost[i]))
            .map(|i| (i, current[i] / full_cost[i] - qos[i].degradation_limit))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let Some((v, _)) = violator else { break };

        // Best (resource, donor) pair: maximal reduction of the
        // violator's cost among donors that stay within their own
        // limits and minimum shares. Candidate probes for every
        // (resource, donor) pair are evaluated as one batch.
        let mut jobs: Vec<(usize, Allocation)> = Vec::new();
        for &res in &varied {
            let delta = space.delta_for(res);
            if alloc[v].get(res) + delta > 1.0 + 1e-9 {
                continue;
            }
            jobs.push((v, alloc[v].shifted(res, delta)));
            for (k, a) in alloc.iter().enumerate() {
                if k == v || a.get(res) - delta < space.min_share - 1e-9 {
                    continue;
                }
                jobs.push((k, a.shifted(res, -delta)));
            }
        }
        let costs = eval.costs(&jobs);
        let mut cursor = 0;
        let mut best: Option<(Resource, usize, f64)> = None;
        for &res in &varied {
            let delta = space.delta_for(res);
            if alloc[v].get(res) + delta > 1.0 + 1e-9 {
                continue;
            }
            let relief = current[v] - costs[cursor];
            cursor += 1;
            let donors: Vec<usize> = (0..n)
                .filter(|&k| k != v && alloc[k].get(res) - delta >= space.min_share - 1e-9)
                .collect();
            for k in donors {
                let donor_cost = costs[cursor];
                cursor += 1;
                if relief <= 0.0 {
                    continue;
                }
                if !within_limit(donor_cost, qos[k].degradation_limit, full_cost[k]) {
                    continue;
                }
                let score = relief - (donor_cost - current[k]);
                let better = best.as_ref().is_none_or(|b| score > b.2);
                if better {
                    best = Some((res, k, score));
                }
            }
        }
        let Some((res, donor, _)) = best else {
            break; // jointly infeasible: report via limits_met
        };
        let delta = space.delta_for(res);
        alloc[v] = alloc[v].shifted(res, delta);
        alloc[donor] = alloc[donor].shifted(res, -delta);
    }

    let start_costs = eval.costs(&(0..n).map(|i| (i, alloc[i])).collect::<Vec<_>>());
    let mut weighted: Vec<f64> = (0..n).map(|i| qos[i].gain * start_costs[i]).collect();

    let mut trace = Vec::new();
    let mut iterations = 0;
    // The search moves δ-sized shares on a finite grid and each step
    // strictly decreases total weighted cost, so it terminates; the
    // cap is a safety net, not a tuning knob.
    let max_iterations = 10_000;

    while iterations < max_iterations {
        // Candidate batch: ±δ probes for every (resource, workload).
        let mut jobs: Vec<(usize, Allocation)> = Vec::new();
        for &res in &varied {
            let delta = space.delta_for(res);
            for (i, a) in alloc.iter().enumerate() {
                let share = a.get(res);
                if share + delta <= 1.0 + 1e-9 {
                    jobs.push((i, a.shifted(res, delta)));
                }
                if share - delta >= space.min_share - 1e-9 {
                    jobs.push((i, a.shifted(res, -delta)));
                }
            }
        }
        let costs = eval.costs(&jobs);

        let mut cursor = 0;
        let mut best: Option<TraceStep> = None;
        let mut best_up_cost = 0.0;
        let mut best_down_cost = 0.0;

        for &res in &varied {
            let delta = space.delta_for(res);
            // Who benefits most from +δ?
            let mut max_gain = 0.0;
            let mut i_gain = None;
            let mut gain_cost = 0.0;
            // Who suffers least from −δ?
            let mut min_loss = f64::INFINITY;
            let mut i_lose = None;
            let mut lose_cost = 0.0;

            for (i, a) in alloc.iter().enumerate() {
                let share = a.get(res);
                if share + delta <= 1.0 + 1e-9 {
                    let up_cost = costs[cursor];
                    cursor += 1;
                    let c_up = qos[i].gain * up_cost;
                    let gain = weighted[i] - c_up;
                    if gain > max_gain {
                        max_gain = gain;
                        i_gain = Some(i);
                        gain_cost = up_cost;
                    }
                }
                if share - delta >= space.min_share - 1e-9 {
                    let c_down = costs[cursor];
                    cursor += 1;
                    // Degradation limit: only take resources away if the
                    // reduced allocation still satisfies L_i.
                    if within_limit(c_down, qos[i].degradation_limit, full_cost[i]) {
                        let loss = qos[i].gain * c_down - weighted[i];
                        if loss < min_loss {
                            min_loss = loss;
                            i_lose = Some(i);
                            lose_cost = c_down;
                        }
                    }
                }
            }

            if let (Some(w), Some(l)) = (i_gain, i_lose) {
                if w != l {
                    let improvement = max_gain - min_loss;
                    let better = best.as_ref().is_none_or(|b| improvement > b.improvement);
                    if improvement > PROGRESS_EPS && better {
                        best = Some(TraceStep {
                            resource: res,
                            winner: w,
                            loser: l,
                            improvement,
                        });
                        best_up_cost = gain_cost;
                        best_down_cost = lose_cost;
                    }
                }
            }
        }

        let Some(step) = best else { break };
        let delta = space.delta_for(step.resource);
        alloc[step.winner] = alloc[step.winner].shifted(step.resource, delta);
        alloc[step.loser] = alloc[step.loser].shifted(step.resource, -delta);
        weighted[step.winner] = qos[step.winner].gain * best_up_cost;
        weighted[step.loser] = qos[step.loser].gain * best_down_cost;
        trace.push(step);
        iterations += 1;
    }

    let costs = eval.costs(&(0..n).map(|i| (i, alloc[i])).collect::<Vec<_>>());
    let limits_met = costs
        .iter()
        .zip(qos)
        .zip(&full_cost)
        .map(|((c, q), f)| within_limit(*c, q.degradation_limit, *f))
        .collect();
    SearchResult {
        weighted_cost: costs.iter().zip(qos).map(|(c, q)| q.gain * c).sum(),
        allocations: alloc,
        costs,
        iterations,
        trace,
        limits_met,
    }
}

/// Exact optimum over the δ-quantized grid with default (parallel)
/// candidate evaluation. See [`exhaustive_search_with`].
pub fn exhaustive_search<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
) -> SearchResult {
    exhaustive_search_with(space, qos, models, &SearchOptions::default())
}

/// Exact optimum over the δ-quantized grid, via DP on remaining budget
/// units (one budget dimension per varied axis). Equivalent to
/// brute-force enumeration of all grid allocations because the
/// objective is separable per workload. The DP minimizes (unmet
/// degradation limits, weighted cost) lexicographically, so whenever
/// the limits are jointly satisfiable it returns the cheapest
/// limit-respecting allocation, and when they are not it returns the
/// best-effort optimum — fewest violations first, cheapest second —
/// flagged via [`SearchResult::limits_met`], consistent with
/// [`greedy_search`]. The per-workload cost tables over the grid are
/// evaluated as one batch (in parallel when `options.parallel` is
/// set).
pub fn exhaustive_search_with<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
) -> SearchResult {
    let n = models.len();
    for r in space.varied.iter() {
        let delta = space.delta_for(r);
        let units_total = (1.0 / delta).round() as usize;
        let min_units = (space.min_share / delta).round().max(1.0) as usize;
        assert!(
            units_total >= n * min_units,
            "min_share too large for {n} workloads on the {} axis",
            r.name()
        );
    }
    try_exhaustive_search_with(space, qos, models, options)
        .expect("the asserted unit budget hosts every workload")
}

/// Non-panicking [`exhaustive_search_with`]: `None` only when the grid
/// is too coarse to host every workload (fewer δ units than workloads
/// times their minimum share on some axis). Jointly infeasible
/// degradation limits are *not* a `None`: the DP returns the
/// best-effort allocation with the violations flagged in
/// [`SearchResult::limits_met`], exactly like [`greedy_search`]
/// reports them. The fleet placement layer uses this to price
/// overloaded machine subsets by their unmet-limit count instead of
/// aborting.
pub fn try_exhaustive_search_with<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
) -> Option<SearchResult> {
    grid_search(space, qos, models, options, None).map(|s| s.result)
}

/// One grid point's per-axis unit coordinates, in [`Resource::ALL`]
/// order; `0` stands for a non-varied axis. The derived lexicographic
/// `Ord` matches the historical `(cpu units, memory units)` tuple
/// order on 2-axis spaces.
pub(crate) type Units = [usize; Resource::COUNT];

/// One evaluated cell of a workload's grid option table.
#[derive(Debug, Clone, Copy)]
struct GridCell {
    /// Per-axis units of the cell.
    units: Units,
    /// Unweighted cost at the cell.
    cost: f64,
    /// Gain-weighted cost at the cell.
    weighted: f64,
    /// Whether the cell satisfies the workload's degradation limit.
    within_limit: bool,
}

/// A grid DP solve plus the per-workload option tables it evaluated.
/// The limit-aware coarse-to-fine refinement reads a coarse level's
/// tables to locate the degradation-limit boundary.
struct GridSolve {
    result: SearchResult,
    /// Per workload: every evaluated cell with its limit verdict.
    tables: Vec<Vec<GridCell>>,
}

/// Per-axis `[min_units, max_units]` of one workload's share on the
/// δ grid of `space` with `n` workloads; non-varied axes carry the
/// placeholder `(0, 0)`. `None` when some varied axis has too few
/// units to host them all.
fn axis_ranges(space: &SearchSpace, n: usize) -> Option<[(usize, usize); Resource::COUNT]> {
    let mut ranges = [(0usize, 0usize); Resource::COUNT];
    for r in space.varied.iter() {
        ranges[r.index()] = unit_range_axis(space, r, n)?;
    }
    Some(ranges)
}

/// `[min_units, max_units]` of one workload's share on one varied
/// axis; `None` when the axis's grid has too few units to host `n`
/// workloads.
fn unit_range_axis(space: &SearchSpace, r: Resource, n: usize) -> Option<(usize, usize)> {
    let delta = space.delta_for(r);
    let units_total = (1.0 / delta).round() as usize;
    let min_units = (space.min_share / delta).round().max(1.0) as usize;
    (units_total >= n * min_units).then(|| (min_units, units_total - (n - 1) * min_units))
}

/// The per-axis budget lattice: total units per axis (0 for non-varied
/// axes), the dimension strides of the flattened state array, and the
/// decoded per-axis remainder of every state index.
#[derive(Debug)]
struct BudgetLattice {
    budgets: Units,
    strides: Units,
    /// `lefts[s]` = per-axis units left at state index `s`.
    lefts: Vec<Units>,
    /// Varied axis indices (into [`Resource::ALL`]), for the inner
    /// feasibility checks.
    varied_idx: Vec<usize>,
    /// Whether the DP must use the 64-bit-lane feasibility path: some
    /// axis budget does not fit a 15-bit SWAR lane (δ < ~3e-5). The
    /// two paths are bit-identical (pinned by proptest); the narrow
    /// one just checks all axes in a single guarded subtraction.
    wide: bool,
}

/// One 16-bit lane per axis in the packed unit representation; bit 15
/// of every lane is the [`GUARD`] bit the SWAR feasibility check
/// borrows against.
const LANE_BITS: usize = 16;

/// The guard bits of the packed representation (bit 15 of each lane).
const GUARD: u64 = 0x8000_8000_8000_8000;

/// The guard bit of one 64-bit lane in the wide representation.
const WIDE_GUARD: u64 = 1 << 63;

/// Packed per-axis units: one 15-bit value per lane. Lane `j` holds
/// axis `j`'s units, so a single guarded subtraction compares all
/// axes at once. Only valid when every budget fits a lane
/// (`!BudgetLattice::wide`).
fn pack_units(units: &Units) -> u64 {
    let mut p = 0u64;
    for (j, &u) in units.iter().enumerate() {
        p |= (u as u64) << (LANE_BITS * j);
    }
    p
}

/// Wide packing: one full 64-bit lane per axis (bit 63 is the guard
/// the feasibility subtraction borrows against). Handles any axis grid
/// a `usize` unit count can express, at one guarded subtraction per
/// axis instead of one for all axes.
fn pack_units_wide(units: &Units) -> [u64; Resource::COUNT] {
    let mut p = [0u64; Resource::COUNT];
    for (j, &u) in units.iter().enumerate() {
        p[j] = u as u64;
    }
    p
}

impl BudgetLattice {
    fn new(space: &SearchSpace) -> Self {
        let mut budgets = [0usize; Resource::COUNT];
        for r in space.varied.iter() {
            budgets[r.index()] = (1.0 / space.delta_for(r)).round() as usize;
        }
        // The SWAR feasibility check packs each axis into a 15-bit
        // lane; a grid finer than 2^15 units per axis (δ < ~3e-5, far
        // below the 1e-4 cache-key resolution) falls back to the
        // bit-identical 64-bit-lane path instead of being rejected.
        let wide = budgets.iter().any(|&b| b >= 1 << (LANE_BITS - 1));
        // Later axes vary fastest, mirroring the historical
        // `cpu_left * height + mem_left` indexing.
        let mut strides = [0usize; Resource::COUNT];
        let mut stride = 1usize;
        for j in (0..Resource::COUNT).rev() {
            strides[j] = stride;
            stride *= budgets[j] + 1;
        }
        let state_count = stride;
        let mut lefts = Vec::with_capacity(state_count);
        let mut cur = [0usize; Resource::COUNT];
        for _ in 0..state_count {
            // `cur` counts up with the last axis fastest — the inverse
            // of the stride layout above, so index(cur) enumerates
            // 0..state_count in order.
            lefts.push(cur);
            for j in (0..Resource::COUNT).rev() {
                if cur[j] < budgets[j] {
                    cur[j] += 1;
                    break;
                }
                cur[j] = 0;
            }
        }
        let varied_idx = space.varied.iter().map(Resource::index).collect();
        BudgetLattice {
            budgets,
            strides,
            lefts,
            varied_idx,
            wide,
        }
    }

    fn state_count(&self) -> usize {
        self.lefts.len()
    }

    /// Flattened index of a per-axis remainder.
    fn index(&self, left: &Units) -> usize {
        left.iter()
            .zip(&self.strides)
            .map(|(l, s)| l * s)
            .sum::<usize>()
    }

    /// Whether a cell fits into the per-axis remainder.
    fn fits(&self, cell: &Units, left: &Units) -> bool {
        self.varied_idx.iter().all(|&j| cell[j] <= left[j])
    }
}

/// The allocation realizing per-axis `units` on `space`'s grid.
fn alloc_for(space: &SearchSpace, units: &Units) -> Allocation {
    Allocation::from_fn(|r| {
        if space.is_varied(r) {
            units[r.index()] as f64 * space.delta_for(r)
        } else {
            space.fixed.get(r)
        }
    })
}

/// The DP grid optimum, optionally restricted to explicit per-workload
/// cell sets (refinement windows). The DP value is the lexicographic
/// pair (unmet degradation limits, weighted cost): limit-satisfying
/// configurations always win when one exists, and jointly infeasible
/// limits yield the cheapest least-violating allocation — reported via
/// `limits_met` — instead of no answer. Returns `None` only when the
/// grid cannot host every workload or a window excludes every option
/// (or every within-budget combination) for some workload.
fn grid_search<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
    allowed: Option<&[Vec<Units>]>,
) -> Option<GridSolve> {
    let n = models.len();
    assert!(n >= 1);
    assert_eq!(qos.len(), n);
    assert!(!space.varied.is_empty());
    let ranges = axis_ranges(space, n)?;
    let eval = Evaluator::new(models, options);

    let solo = space.solo_allocation();
    let full_cost = eval.costs(&(0..n).map(|i| (i, solo)).collect::<Vec<_>>());

    let lattice = BudgetLattice::new(space);

    // Option cells per workload: the full product range, or the
    // caller's explicit (refinement-window) cells.
    let cells_for = |i: usize| -> Vec<Units> {
        match allowed {
            Some(sets) => sets[i].clone(),
            None => full_cells(space, &ranges),
        }
    };

    // Per-workload cost tables over the option cells, evaluated as one
    // batch: this is the bulk of the optimizer work, and the
    // embarrassingly parallel part. Limit-violating cells are kept in
    // the tables, flagged, so the DP can fall back on them when the
    // limits are jointly infeasible.
    let mut jobs: Vec<(usize, Allocation)> = Vec::new();
    let mut coords: Vec<(usize, Units)> = Vec::new();
    for i in 0..n {
        for units in cells_for(i) {
            jobs.push((i, alloc_for(space, &units)));
            coords.push((i, units));
        }
    }
    let grid_costs = eval.costs(&jobs);
    let mut tables: Vec<Vec<GridCell>> = vec![Vec::new(); n];
    for ((i, units), c) in coords.into_iter().zip(grid_costs) {
        tables[i].push(GridCell {
            units,
            cost: c,
            weighted: qos[i].gain * c,
            within_limit: within_limit(c, qos[i].degradation_limit, full_cost[i]),
        });
    }
    if tables.iter().any(Vec::is_empty) {
        return None; // a window excluded every option for some workload
    }

    let result = solve_dp(space, &lattice, &tables)?;
    Some(GridSolve { result, tables })
}

/// Unreachable DP state: no within-budget completion exists.
const UNREACHABLE: (u32, f64) = (u32::MAX, f64::INFINITY);

/// Lexicographic DP order: fewer unmet limits first, then weighted
/// cost.
fn lex_less(a: (u32, f64), b: (u32, f64)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// The DP core over pre-evaluated option tables, factored out of
/// [`grid_search`] so delta-solves can re-run it over *retained*
/// tables (rebuilding only a drifted workload's cells) without paying
/// a single optimizer call. DP over (workload index, per-axis units
/// left): lexicographically minimal (unmet limits, weighted cost)
/// completing workloads `i..n`. Dispatches to the 16-bit-lane SWAR
/// inner loop or the bit-identical 64-bit-lane fallback depending on
/// `lattice.wide`.
fn solve_dp(
    space: &SearchSpace,
    lattice: &BudgetLattice,
    tables: &[Vec<GridCell>],
) -> Option<SearchResult> {
    let n = tables.len();
    let state_count = lattice.state_count();
    // Base case: all workloads placed; leftover units are fine (the
    // constraint is Σ ≤ 1). Backward DP with parent reconstruction by
    // re-derivation; layers are built last-workload-first and reversed.
    let mut layers: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n + 1);
    layers.push(vec![(0, 0.0); state_count]);
    if lattice.wide {
        dp_layers_wide(lattice, tables, &mut layers);
    } else {
        dp_layers_narrow(lattice, tables, &mut layers);
    }
    layers.reverse(); // layers[i] = cost-to-go starting at workload i

    let start = lattice.index(&lattice.budgets);
    if layers[0][start].0 == u32::MAX {
        return None; // windows exclude every within-budget combination
    }

    // Reconstruct choices greedily from the DP tables.
    let mut left = lattice.budgets;
    let mut chosen: Vec<GridCell> = Vec::with_capacity(n);
    for i in 0..n {
        let s = lattice.index(&left);
        let target = layers[i][s];
        let mut found = false;
        for cell in &tables[i] {
            if lattice.fits(&cell.units, &left) {
                let rest = layers[i + 1][s - lattice.index(&cell.units)];
                if rest.0 == u32::MAX {
                    continue;
                }
                let v = (
                    rest.0 + u32::from(!cell.within_limit),
                    cell.weighted + rest.1,
                );
                if v.0 == target.0 && (v.1 - target.1).abs() <= 1e-9 * target.1.abs().max(1.0) {
                    chosen.push(*cell);
                    for &j in &lattice.varied_idx {
                        left[j] -= cell.units[j];
                    }
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "DP reconstruction must find the chosen option");
    }

    let allocations: Vec<Allocation> = chosen
        .iter()
        .map(|cell| alloc_for(space, &cell.units))
        .collect();
    let costs: Vec<f64> = chosen.iter().map(|cell| cell.cost).collect();
    let limits_met = chosen.iter().map(|cell| cell.within_limit).collect();
    Some(SearchResult {
        weighted_cost: chosen.iter().map(|cell| cell.weighted).sum(),
        allocations,
        costs,
        iterations: 0,
        trace: Vec::new(),
        limits_met,
    })
}

/// The 16-bit-lane DP inner loop: every axis packed into one `u64`, a
/// single guarded subtraction compares all axes at once (the M-axis
/// generalization must not tax the 2-axis hot path).
fn dp_layers_narrow(
    lattice: &BudgetLattice,
    tables: &[Vec<GridCell>],
    layers: &mut Vec<Vec<(u32, f64)>>,
) {
    let state_count = lattice.state_count();
    // Hot per-cell data for the inner loop, contiguous per table: the
    // flattened state offset, the SWAR-packed units, the unmet-limit
    // increment, and the weighted cost.
    struct HotCell {
        offset: usize,
        packed: u64,
        unmet: u32,
        weighted: f64,
    }
    let hot: Vec<Vec<HotCell>> = tables
        .iter()
        .map(|table| {
            table
                .iter()
                .map(|c| HotCell {
                    offset: lattice.index(&c.units),
                    packed: pack_units(&c.units),
                    unmet: u32::from(!c.within_limit),
                    weighted: c.weighted,
                })
                .collect()
        })
        .collect();
    // Guard-carrying packed remainders per state: lane `j` of
    // `pleft - cell.packed` keeps its guard bit iff `left_j >=
    // cell_j` (a lane that would go negative borrows exactly its own
    // guard bit, never its neighbour's).
    let packed_lefts: Vec<u64> = lattice
        .lefts
        .iter()
        .map(|l| pack_units(l) | GUARD)
        .collect();
    let mut next: Vec<(u32, f64)> = layers[0].clone();
    for i in (0..tables.len()).rev() {
        let mut cur = vec![UNREACHABLE; state_count];
        for (s, &pleft) in packed_lefts.iter().enumerate() {
            let mut best = UNREACHABLE;
            for cell in &hot[i] {
                if (pleft - cell.packed) & GUARD == GUARD {
                    let rest = next[s - cell.offset];
                    if rest.0 == u32::MAX {
                        continue;
                    }
                    let v = (rest.0 + cell.unmet, cell.weighted + rest.1);
                    if lex_less(v, best) {
                        best = v;
                    }
                }
            }
            cur[s] = best;
        }
        layers.push(cur.clone());
        next = cur;
    }
}

/// The 64-bit-lane DP inner loop for grids too fine for 15-bit SWAR
/// lanes: one guarded `u64` per axis. Same accumulation order and
/// tie-breaking as the narrow loop, so the two are bit-identical on
/// any table set both can represent (pinned by a proptest).
fn dp_layers_wide(
    lattice: &BudgetLattice,
    tables: &[Vec<GridCell>],
    layers: &mut Vec<Vec<(u32, f64)>>,
) {
    let state_count = lattice.state_count();
    struct WideCell {
        offset: usize,
        packed: [u64; Resource::COUNT],
        unmet: u32,
        weighted: f64,
    }
    let hot: Vec<Vec<WideCell>> = tables
        .iter()
        .map(|table| {
            table
                .iter()
                .map(|c| WideCell {
                    offset: lattice.index(&c.units),
                    packed: pack_units_wide(&c.units),
                    unmet: u32::from(!c.within_limit),
                    weighted: c.weighted,
                })
                .collect()
        })
        .collect();
    let packed_lefts: Vec<[u64; Resource::COUNT]> = lattice
        .lefts
        .iter()
        .map(|l| {
            let mut p = pack_units_wide(l);
            for w in &mut p {
                *w |= WIDE_GUARD;
            }
            p
        })
        .collect();
    let fits = |pleft: &[u64; Resource::COUNT], packed: &[u64; Resource::COUNT]| {
        pleft
            .iter()
            .zip(packed)
            .all(|(&l, &c)| (l - c) & WIDE_GUARD == WIDE_GUARD)
    };
    let mut next: Vec<(u32, f64)> = layers[0].clone();
    for i in (0..tables.len()).rev() {
        let mut cur = vec![UNREACHABLE; state_count];
        for (s, pleft) in packed_lefts.iter().enumerate() {
            let mut best = UNREACHABLE;
            for cell in &hot[i] {
                if fits(pleft, &cell.packed) {
                    let rest = next[s - cell.offset];
                    if rest.0 == u32::MAX {
                        continue;
                    }
                    let v = (rest.0 + cell.unmet, cell.weighted + rest.1);
                    if lex_less(v, best) {
                        best = v;
                    }
                }
            }
            cur[s] = best;
        }
        layers.push(cur.clone());
        next = cur;
    }
}

/// Settings for [`coarse_to_fine_search_with`].
///
/// The search solves the full DP on each coarse δ of the ladder in
/// turn, then restricts the next (finer) level to a window of
/// `window_steps` previous-level steps around each workload's share at
/// the previous optimum. The final level is always the search space's
/// own (per-axis) δ. Degenerate coarse levels (a grid too coarse to
/// host all workloads) and levels made infeasible by the degradation
/// limits are skipped — the following level then runs unwindowed, so
/// the result is always feasible whenever the full-grid DP is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseToFineOptions {
    /// Refinement ladder of coarse δ values, coarsest first. Each
    /// coarse level applies its δ uniformly to every varied axis;
    /// values not strictly coarser than every varied axis's fine δ are
    /// ignored.
    pub coarse_deltas: Vec<f64>,
    /// Refinement-window half-width around the previous level's
    /// optimum, in multiples of the previous level's δ. For separable
    /// convex costs any value ≥ 1 is exact (re-centering follows unit
    /// exchanges); the default of 2 also clears the ~2-coarse-step
    /// plan-regime basins real what-if estimators exhibit along the
    /// memory axis (see `BENCH_enumeration.json`).
    pub window_steps: f64,
}

impl Default for CoarseToFineOptions {
    fn default() -> Self {
        CoarseToFineOptions {
            coarse_deltas: vec![0.1],
            window_steps: 2.0,
        }
    }
}

impl CoarseToFineOptions {
    /// A single coarse level of the given δ.
    pub fn with_coarse(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "coarse delta must be in (0,1)");
        CoarseToFineOptions {
            coarse_deltas: vec![delta],
            ..CoarseToFineOptions::default()
        }
    }

    /// Pick a coarse δ automatically for `n` workloads: the coarsest
    /// standard step that still gives every workload a few options at
    /// the coarse level. Returns an empty ladder (plain full-grid
    /// search) when no candidate is useful.
    pub fn auto(space: &SearchSpace, n: usize) -> Self {
        const CANDIDATES: [f64; 5] = [0.2, 0.1, 0.05, 0.04, 0.025];
        for &c in &CANDIDATES {
            if c <= space.max_varied_delta() * 1.5 {
                continue;
            }
            let units = (1.0 / c).round() as usize;
            let min_units = (space.min_share / c).round().max(1.0) as usize;
            if units < n * min_units {
                continue; // grid cannot host n workloads
            }
            let max_units = units - (n - 1) * min_units;
            if max_units - min_units + 1 >= 4 {
                return CoarseToFineOptions::with_coarse(c);
            }
        }
        CoarseToFineOptions {
            coarse_deltas: Vec::new(),
            ..CoarseToFineOptions::default()
        }
    }
}

/// Coarse-to-fine grid optimum with automatically chosen coarse δ and
/// default (parallel) candidate evaluation. See
/// [`coarse_to_fine_search_with`].
pub fn coarse_to_fine_search<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
) -> SearchResult {
    let c2f = CoarseToFineOptions::auto(space, models.len());
    coarse_to_fine_search_with(space, qos, models, &c2f, &SearchOptions::default())
}

/// Coarse-to-fine enumeration: solve the DP on a coarse δ first, then
/// refine only inside a window around the coarse optimum down to the
/// search space's fine δ, re-centering the window whenever refinement
/// keeps improving. On separable workload costs this finds the
/// full-grid optimum while probing far fewer allocations (the
/// optimizer-call counts of the cost models record exactly how many);
/// `tests/coarse_to_fine.rs` property-checks the equivalence against
/// [`exhaustive_search`].
///
/// Finite degradation limits make the grid problem non-convex (the
/// fine-grid optimum can hide against the limit boundary, behind
/// coarse samples that are limit-infeasible), so the refinement
/// becomes *feasibility-aware* instead of falling back to the full
/// grid: the coarse solve classifies every coarse cell against the
/// limits, the fine window is expanded with a **boundary band** — the
/// fine cells within one coarse step of the limit boundary — and a
/// workload whose refined optimum lands on the *edge* of its own
/// window gets that window widened (doubling, then full range)
/// per-window rather than escalating the whole search. Like greedy
/// and exhaustive search, jointly infeasible limits yield a
/// best-effort result flagged via [`SearchResult::limits_met`]; that
/// verdict is always taken from the full grid, never from a window.
pub fn coarse_to_fine_search_with<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    c2f: &CoarseToFineOptions,
    options: &SearchOptions,
) -> SearchResult {
    try_coarse_to_fine_search_with(space, qos, models, c2f, options)
        .expect("no grid can host the workloads (min_share too large)")
}

/// Non-panicking [`coarse_to_fine_search_with`]: `None` exactly when
/// [`try_exhaustive_search_with`] would return `None` too (the fine
/// grid cannot host every workload).
pub fn try_coarse_to_fine_search_with<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    c2f: &CoarseToFineOptions,
    options: &SearchOptions,
) -> Option<SearchResult> {
    let n = models.len();
    assert!(n >= 1);
    assert!(c2f.window_steps > 0.0, "window must be positive");
    let mut ladder: Vec<f64> = c2f
        .coarse_deltas
        .iter()
        .copied()
        .filter(|&d| d > space.max_varied_delta() + 1e-12)
        .collect();
    ladder.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));

    if qos.iter().any(|q| q.degradation_limit.is_finite()) {
        return limit_aware_refinement(space, qos, models, c2f, options, &ladder, None);
    }

    // Unconstrained path: each level's optimum becomes the next
    // level's window center.
    let mut seed: Option<(Vec<Allocation>, f64)> = None;
    for delta in ladder {
        let coarse_space = space.with_delta(delta);
        let allowed = seed.as_ref().and_then(|(centers, prev_delta)| {
            let ranges = axis_ranges(&coarse_space, n)?;
            Some(
                (0..n)
                    .map(|i| {
                        window_cells(
                            &coarse_space,
                            centers[i],
                            c2f.window_steps * prev_delta,
                            &ranges,
                        )
                    })
                    .collect::<Vec<_>>(),
            )
        });
        seed = grid_search(&coarse_space, qos, models, options, allowed.as_deref())
            .map(|s| (s.result.allocations, delta));
        // On an infeasible/degenerate level the next one runs unwindowed.
    }

    // Final level: the fine grid, windowed around the coarse seed and
    // iteratively *re-centered* on each improved solution. A solution
    // on the window boundary means the window clipped the descent
    // direction; re-centering keeps following it. The loop stops at a
    // window-stable point — one no δ-sized exchange between workloads
    // improves (every single-unit exchange lies inside the window),
    // which for separable convex costs is exactly the grid optimum.
    if let Some((centers, prev_delta)) = seed {
        if let Some(ranges) = axis_ranges(space, n) {
            let half_width = c2f.window_steps * prev_delta;
            let mut centers = centers;
            let mut best: Option<SearchResult> = None;
            for _ in 0..RECENTER_CAP {
                let allowed: Vec<Vec<Units>> = (0..n)
                    .map(|i| window_cells(space, centers[i], half_width, &ranges))
                    .collect();
                let Some(s) = grid_search(space, qos, models, options, Some(&allowed)) else {
                    break;
                };
                let r = s.result;
                let improved = best
                    .as_ref()
                    .is_none_or(|b| r.weighted_cost < b.weighted_cost - 1e-12);
                centers.clone_from(&r.allocations);
                if improved {
                    best = Some(r);
                } else {
                    break;
                }
            }
            if best.is_some() {
                return best;
            }
        }
    }
    // No usable coarse seed, or the window excluded every feasible
    // fine-grid point: fall back to the full fine grid.
    try_exhaustive_search_with(space, qos, models, options)
}

/// Re-centering round cap for the fine level of coarse-to-fine search;
/// each round strictly improves the objective (or strictly widens some
/// window) on a finite grid, so this is a safety net, not a tuning
/// knob.
const RECENTER_CAP: usize = 100;

/// An evaluated coarse level handed out of [`limit_aware_refinement`]
/// for warm-start caching: the coarse δ plus the per-workload
/// option-cell tables evaluated at that δ.
type CoarseCapture = Option<(f64, Vec<Vec<GridCell>>)>;

/// The limit-aware coarse-to-fine path (some `L_i` is finite).
///
/// 1. Solve one ladder level **unwindowed** — the finest level that
///    solves (finest-first; coarser levels add nothing once a finer
///    one succeeds). Coarse grids are cheap relative to the fine grid,
///    and an unwindowed level classifies *every* coarse cell against
///    the limits, which is exactly the feasibility map the boundary
///    band needs.
/// 2. Refine on the fine grid inside per-workload windows around the
///    coarse optimum, expanded with the boundary band (fine cells
///    within one coarse step of the limit boundary, where the optimum
///    can hide behind limit-infeasible coarse samples).
/// 3. Re-center on each solution; when a workload's chosen cell sits
///    on the *edge* of its own window, widen that window (doubling,
///    then full range) — per-window escalation instead of the old
///    global full-grid fallback.
/// 4. If the best refined result still violates a limit, run the full
///    grid: only it can certify joint infeasibility.
///
/// A caller that wants the evaluated coarse level for a warm-start
/// cache passes a [`CoarseCapture`] slot.
fn limit_aware_refinement<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    c2f: &CoarseToFineOptions,
    options: &SearchOptions,
    ladder: &[f64],
    capture: Option<&mut CoarseCapture>,
) -> Option<SearchResult> {
    let n = models.len();
    let full_grid = || grid_search(space, qos, models, options, None).map(|s| s.result);

    // Coarse phase: every level is solved unwindowed, so coarser
    // levels add nothing once a finer one solves — try the finest
    // first (the ladder is sorted coarsest-first) and keep the first
    // success.
    let mut seed: Option<(GridSolve, f64)> = None;
    for &delta in ladder.iter().rev() {
        let coarse_space = space.with_delta(delta);
        if let Some(s) = grid_search(&coarse_space, qos, models, options, None) {
            seed = Some((s, delta));
            break;
        }
    }
    let Some((coarse, coarse_delta)) = seed else {
        return full_grid();
    };
    // Hand the evaluated coarse level to a warm-start cache, so the
    // next period can delta-solve it instead of re-evaluating it.
    if let Some(slot) = capture {
        *slot = Some((coarse_delta, coarse.tables.clone()));
    }
    let ranges = axis_ranges(space, n)?;

    let band = band_for(space, qos, &coarse.tables, coarse_delta, &ranges);
    let best = windowed_fine_loop(
        space,
        qos,
        models,
        options,
        coarse.result.allocations.clone(),
        c2f.window_steps * coarse_delta,
        &band,
        &ranges,
    );
    match best {
        Some(r) if r.limits_met.iter().all(|&m| m) => Some(r),
        // The windowed search found no limit-satisfying configuration;
        // only the full grid can certify joint infeasibility (and its
        // best-effort optimum is the reference answer).
        _ => full_grid(),
    }
}

/// Boundary-band cells per workload from a coarse level's evaluated
/// tables (empty for unconstrained workloads).
fn band_for(
    space: &SearchSpace,
    qos: &[QoS],
    tables: &[Vec<GridCell>],
    coarse_delta: f64,
    ranges: &[(usize, usize); Resource::COUNT],
) -> Vec<Vec<Units>> {
    (0..qos.len())
        .map(|i| {
            if qos[i].degradation_limit.is_finite() {
                boundary_band_cells(space, &tables[i], coarse_delta, ranges)
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// The fine phase shared by the cold limit-aware path and the
/// warm-started search: windowed refinement around `centers` with
/// re-centering and per-window widening. A chosen cell on its window's
/// edge means the window clipped the descent direction there; that
/// workload's window is widened (doubling, then full range) rather
/// than escalating the whole search. Returns the lexicographically
/// best result seen; the *caller* certifies limit verdicts (via the
/// full grid) before trusting a limit-violating best.
// Mirrors the grid-search parameter list plus the three window knobs
// shared by both callers; bundling them into a struct would only move
// the argument count into a builder.
#[allow(clippy::too_many_arguments)]
fn windowed_fine_loop<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
    mut centers: Vec<Allocation>,
    initial_half: f64,
    band: &[Vec<Units>],
    ranges: &[(usize, usize); Resource::COUNT],
) -> Option<SearchResult> {
    let n = models.len();
    let mut half = vec![initial_half; n];
    let mut full_range = vec![false; n];
    let mut best: Option<SearchResult> = None;
    for _ in 0..RECENTER_CAP {
        let allowed: Vec<Vec<Units>> = (0..n)
            .map(|i| {
                if full_range[i] {
                    full_cells(space, ranges)
                } else {
                    let mut cells = window_cells(space, centers[i], half[i], ranges);
                    cells.extend_from_slice(&band[i]);
                    cells.sort_unstable();
                    cells.dedup();
                    cells
                }
            })
            .collect();
        let Some(s) = grid_search(space, qos, models, options, Some(&allowed)) else {
            break;
        };
        let r = s.result;
        let improved = best.as_ref().is_none_or(|b| lex_better(&r, b));
        // Per-window escalation.
        let mut grew = false;
        for i in 0..n {
            if full_range[i] {
                continue;
            }
            if on_window_edge(&r.allocations[i], &allowed[i], space, ranges) {
                half[i] *= 2.0;
                grew = true;
                if half[i] >= 1.0 {
                    // Shares live in (0, 1]; this window is the full
                    // range no matter where its center sits.
                    full_range[i] = true;
                }
            }
        }
        centers.clone_from(&r.allocations);
        if improved {
            best = Some(r);
        } else if !grew {
            break;
        }
    }
    best
}

/// Persistent warm-start state for one machine's period-over-period
/// coarse-to-fine solves ([`coarse_to_fine_search_warm`]).
///
/// Holds the previous period's optimum (the fine windows' seed), the
/// evaluated coarse level (δ, DP lattice, per-workload option tables —
/// the substrate of delta-solves), and the per-workload fingerprints
/// the cached state was computed under. All of it is guarded by a
/// validity key covering the machine class, the calibration salt, the
/// QoS vector, and the coarse-to-fine settings: *any* change — a
/// different δ grid, a recalibrated model, a new degradation limit —
/// misses the key and triggers a full cold re-solve. The warm path is
/// an optimizer-call optimization only: it returns the same objective,
/// allocations, and `limits_met` the cold solve would (pinned by
/// `tests/warm_start.rs`).
#[derive(Debug, Default)]
pub struct WarmStart {
    /// Validity key; `None` until the first successful cold solve.
    key: Option<u64>,
    /// Per-workload fingerprints behind the cached state.
    fingerprints: Vec<u64>,
    /// Previous optimum — the fine windows' seed.
    centers: Vec<Allocation>,
    /// Retained coarse level for delta-solves (limit-aware path only;
    /// the unconstrained path needs no coarse feasibility map).
    coarse: Option<CoarseCache>,
    /// Previous result, returned verbatim on a no-drift period.
    last: Option<SearchResult>,
    /// Cumulative per-workload coarse tables retained (not re-evaluated)
    /// across delta-solves.
    lattice_reuses: u64,
    /// Cumulative full cold solves (first call, or after invalidation).
    cold_solves: u64,
    /// Cumulative delta-solves (some but not all workloads drifted).
    delta_solves: u64,
}

/// A retained coarse level: its δ, the DP budget lattice over it, and
/// the per-workload evaluated option tables.
#[derive(Debug)]
struct CoarseCache {
    delta: f64,
    lattice: BudgetLattice,
    tables: Vec<Vec<GridCell>>,
}

impl WarmStart {
    /// Empty (cold) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a cached solve is present (the next matching call can
    /// warm-start).
    pub fn is_warm(&self) -> bool {
        self.key.is_some()
    }

    /// Cumulative count of per-workload coarse option tables retained
    /// across delta-solves instead of re-evaluated.
    pub fn lattice_reuses(&self) -> u64 {
        self.lattice_reuses
    }

    /// Cumulative count of full cold solves (including the first).
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Cumulative count of delta-solves.
    pub fn delta_solves(&self) -> u64 {
        self.delta_solves
    }

    /// Drop all cached state (counters survive). The next call cold
    /// re-solves unconditionally. Callers must invalidate whenever
    /// machine state *outside* the warm key changes — the key already
    /// covers the search space, QoS, ladder, and calibration salt.
    pub fn invalidate(&mut self) {
        *self = WarmStart {
            lattice_reuses: self.lattice_reuses,
            cold_solves: self.cold_solves,
            delta_solves: self.delta_solves,
            ..WarmStart::default()
        };
    }

    /// The durable part of the warm state: `(validity key,
    /// per-workload fingerprints, window centers, last result)`, or
    /// `None` when cold. The retained coarse DP lattice is *not*
    /// exported — snapshots carry only what [`Self::restore`] needs,
    /// and a restored drift-solve under finite limits falls back to a
    /// cold re-solve whose probes the restored
    /// [`ProbeCache`](crate::costmodel::ProbeCache) serves (see
    /// `crate::snapshot`).
    pub fn export(&self) -> Option<(u64, Vec<u64>, Vec<Allocation>, SearchResult)> {
        let key = self.key?;
        let last = self.last.clone()?;
        Some((key, self.fingerprints.clone(), self.centers.clone(), last))
    }

    /// Cumulative counters as `(cold_solves, delta_solves,
    /// lattice_reuses)` — exported alongside [`Self::export`] so the
    /// solve-regime history survives a restart.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.cold_solves, self.delta_solves, self.lattice_reuses)
    }

    /// Rebuild a warm state from an [`export`](Self::export) and
    /// [`counters`](Self::counters). The restored state serves a
    /// no-drift period verbatim (zero optimizer calls) and seeds
    /// drift-solves from the snapshot's optimum; it carries no coarse
    /// lattice, so a drift under finite degradation limits cold
    /// re-solves (the limit-boundary band cannot be reconstructed
    /// without it — see [`coarse_to_fine_search_warm`]).
    pub fn restore(
        key: u64,
        fingerprints: Vec<u64>,
        centers: Vec<Allocation>,
        last: SearchResult,
        counters: (u64, u64, u64),
    ) -> Self {
        WarmStart {
            key: Some(key),
            fingerprints,
            centers,
            coarse: None,
            last: Some(last),
            cold_solves: counters.0,
            delta_solves: counters.1,
            lattice_reuses: counters.2,
        }
    }
}

/// The warm-start validity key: machine class (axis set, δs, fixed
/// shares, min share) ⊕ caller salt (calibration identity) ⊕ the full
/// QoS vector ⊕ the coarse-to-fine settings.
fn warm_key(space: &SearchSpace, qos: &[QoS], c2f: &CoarseToFineOptions, salt: u64) -> u64 {
    let mut h = Fnv64::resume(MachineClass::of(space).id());
    h.write_u64(salt);
    h.write_u64(qos.len() as u64);
    for q in qos {
        h.write_u64(q.fingerprint());
    }
    h.write_u64(c2f.coarse_deltas.len() as u64);
    for &d in &c2f.coarse_deltas {
        h.write_u64(d.to_bits());
    }
    h.write_u64(c2f.window_steps.to_bits());
    h.finish()
}

/// Drop option cells that cannot matter to the DP: cell `a` is
/// dominated when some `b` in the same table needs no more units on
/// *every* varied axis, violates no more limits, and is strictly
/// cheaper by a safety margin (1e-6 relative — three orders above the
/// DP reconstruction tolerance, so pruning can never flip a
/// near-tie). `b` fits every budget `a` fits, so reachability is
/// preserved exactly and the DP optimum is unchanged. Used only on
/// the warm delta-solve's coarse DP; cold paths keep their full
/// tables bit-for-bit.
fn prune_dominated(lattice: &BudgetLattice, tables: &[Vec<GridCell>]) -> Vec<Vec<GridCell>> {
    tables
        .iter()
        .map(|table| {
            table
                .iter()
                .filter(|a| {
                    !table.iter().any(|b| {
                        lattice.varied_idx.iter().all(|&j| b.units[j] <= a.units[j])
                            && u32::from(!b.within_limit) <= u32::from(!a.within_limit)
                            && b.weighted < a.weighted - 1e-6 * a.weighted.abs().max(1.0)
                    })
                })
                .copied()
                .collect()
        })
        .collect()
}

/// Re-evaluate only the `changed` workloads' cells of a retained
/// coarse level, in place. The cell *coordinates* are kept (the
/// lattice and the other workloads' tables are untouched); costs,
/// weights, and limit verdicts are recomputed against the current
/// models, including a fresh solo baseline for each changed workload.
fn rebuild_tables<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &SearchOptions,
    changed: &[usize],
    tables: &mut [Vec<GridCell>],
) {
    let eval = Evaluator::new(models, options);
    let solo = space.solo_allocation();
    let solo_costs = eval.costs(&changed.iter().map(|&i| (i, solo)).collect::<Vec<_>>());
    let mut jobs: Vec<(usize, Allocation)> = Vec::new();
    for &i in changed {
        for cell in &tables[i] {
            jobs.push((i, alloc_for(space, &cell.units)));
        }
    }
    let costs = eval.costs(&jobs);
    let mut cursor = 0;
    for (k, &i) in changed.iter().enumerate() {
        let full = solo_costs[k];
        for cell in &mut tables[i] {
            let c = costs[cursor];
            cursor += 1;
            *cell = GridCell {
                units: cell.units,
                cost: c,
                weighted: qos[i].gain * c,
                within_limit: within_limit(c, qos[i].degradation_limit, full),
            };
        }
    }
}

/// Warm-started [`coarse_to_fine_search_with`]: bit-identical results,
/// fewer optimizer calls when little changed since the previous call.
///
/// `fingerprints[i]` identifies workload `i`'s content (e.g.
/// [`Tenant::fingerprint`](crate::tenant::Tenant::fingerprint)); `salt`
/// identifies everything else the models depend on (e.g. a fold of the
/// calibrated-model fingerprints). Three regimes:
///
/// * **Cold** — the validity key misses (first call, or the space /
///   QoS / ladder / salt changed): full cold solve, caching the
///   evaluated coarse level for later delta-solves.
/// * **Hit** — key matches and no fingerprint changed: the cached
///   result is returned with *zero* optimizer calls (the cold solve is
///   deterministic, so re-running it would reproduce the cached answer
///   bit-for-bit).
/// * **Delta** — key matches, some fingerprints changed: only the
///   drifted workloads' coarse option cells are re-evaluated (retained
///   tables count into [`WarmStart::lattice_reuses`]), dominated cells
///   are pruned, the DP re-runs over the retained lattice, and the
///   fine windows are seeded at the *previous optimum* (falling back
///   to the fresh coarse optimum for any workload whose optimum left
///   the seed window). The usual edge-detection / window-doubling /
///   full-grid re-certification machinery then guarantees the cold
///   answer.
///
/// Returns `None` exactly when [`try_coarse_to_fine_search_with`]
/// would (the fine grid cannot host every workload).
#[allow(clippy::too_many_arguments)]
pub fn coarse_to_fine_search_warm<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    c2f: &CoarseToFineOptions,
    options: &SearchOptions,
    salt: u64,
    fingerprints: &[u64],
    warm: &mut WarmStart,
) -> Option<SearchResult> {
    let n = models.len();
    assert!(n >= 1);
    assert_eq!(qos.len(), n);
    assert_eq!(fingerprints.len(), n, "one fingerprint per workload");
    assert!(c2f.window_steps > 0.0, "window must be positive");
    let key = warm_key(space, qos, c2f, salt);
    if warm.key != Some(key) || warm.fingerprints.len() != n {
        return cold_resolve(space, qos, models, c2f, options, key, fingerprints, warm);
    }
    if warm.fingerprints == fingerprints {
        // No drift: the cold solve is deterministic, so its answer is
        // the cached one — at zero optimizer calls.
        return warm.last.clone();
    }

    let Some(ranges) = axis_ranges(space, n) else {
        warm.key = None;
        return try_exhaustive_search_with(space, qos, models, options);
    };
    if warm.coarse.is_none() && qos.iter().any(|q| q.degradation_limit.is_finite()) {
        // Finite limits but no retained coarse level — a snapshot-
        // restored state (restore() drops the lattice), or a ladder
        // that never produced one. The limit-boundary band cannot be
        // rebuilt from what we have, and a band-less fine window may
        // miss an optimum pressed against the limit boundary, so the
        // bit-identical-to-cold contract forces a cold re-solve. The
        // probes it issues are exactly the ones a restored ProbeCache
        // holds, so a post-restart cold re-solve stays cheap in
        // optimizer calls.
        return cold_resolve(space, qos, models, c2f, options, key, fingerprints, warm);
    }
    let changed: Vec<usize> = (0..n)
        .filter(|&i| warm.fingerprints[i] != fingerprints[i])
        .collect();
    warm.delta_solves += 1;

    // Delta-solve the retained coarse level: re-evaluate only the
    // drifted workloads' cells, prune dominated cells, re-run the DP
    // over the retained lattice.
    let mut coarse_opt: Option<SearchResult> = None;
    let (band, initial_half) = match warm.coarse.as_mut() {
        Some(cache) => {
            let coarse_space = space.with_delta(cache.delta);
            rebuild_tables(
                &coarse_space,
                qos,
                models,
                options,
                &changed,
                &mut cache.tables,
            );
            warm.lattice_reuses += (n - changed.len()) as u64;
            let pruned = prune_dominated(&cache.lattice, &cache.tables);
            coarse_opt = solve_dp(&coarse_space, &cache.lattice, &pruned);
            let band = band_for(space, qos, &cache.tables, cache.delta, &ranges);
            (band, c2f.window_steps * cache.delta)
        }
        None => {
            // Unconstrained path: no coarse feasibility map to keep.
            // Window size mirrors what the cold ladder would use.
            let finest = c2f
                .coarse_deltas
                .iter()
                .copied()
                .filter(|&d| d > space.max_varied_delta() + 1e-12)
                .fold(f64::INFINITY, f64::min);
            let step = if finest.is_finite() {
                finest
            } else {
                space.max_varied_delta()
            };
            (vec![Vec::new(); n], c2f.window_steps * step)
        }
    };

    // Seed the fine windows at the previous optimum; any workload
    // whose delta-solved coarse optimum left that window is re-seeded
    // from the coarse solve (its old optimum is stale).
    let mut centers = warm.centers.clone();
    if let Some(coarse) = &coarse_opt {
        for (center, fresh) in centers.iter_mut().zip(&coarse.allocations) {
            let stale = space
                .varied
                .iter()
                .any(|r| (fresh.get(r) - center.get(r)).abs() > initial_half + 1e-9);
            if stale {
                *center = *fresh;
            }
        }
    }

    let best = windowed_fine_loop(
        space,
        qos,
        models,
        options,
        centers,
        initial_half,
        &band,
        &ranges,
    );
    let result = match best {
        Some(r) if r.limits_met.iter().all(|&m| m) => Some(r),
        // Same certification rule as the cold path: only the full grid
        // may certify joint infeasibility (or a window that excluded
        // everything).
        _ => grid_search(space, qos, models, options, None).map(|s| s.result),
    };
    let Some(result) = result else {
        warm.key = None;
        return None;
    };
    warm.fingerprints = fingerprints.to_vec();
    warm.centers.clone_from(&result.allocations);
    warm.last = Some(result.clone());
    Some(result)
}

/// The cold leg of [`coarse_to_fine_search_warm`]: run the ordinary
/// cold solve, capture the evaluated coarse level (limit-aware path),
/// and prime the warm state.
#[allow(clippy::too_many_arguments)]
fn cold_resolve<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    c2f: &CoarseToFineOptions,
    options: &SearchOptions,
    key: u64,
    fingerprints: &[u64],
    warm: &mut WarmStart,
) -> Option<SearchResult> {
    warm.cold_solves += 1;
    warm.key = None;
    warm.coarse = None;
    let result = if qos.iter().any(|q| q.degradation_limit.is_finite()) {
        let mut ladder: Vec<f64> = c2f
            .coarse_deltas
            .iter()
            .copied()
            .filter(|&d| d > space.max_varied_delta() + 1e-12)
            .collect();
        ladder.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let mut captured: CoarseCapture = None;
        let r = limit_aware_refinement(
            space,
            qos,
            models,
            c2f,
            options,
            &ladder,
            Some(&mut captured),
        );
        if let Some((delta, tables)) = captured {
            warm.coarse = Some(CoarseCache {
                delta,
                lattice: BudgetLattice::new(&space.with_delta(delta)),
                tables,
            });
        }
        r
    } else {
        try_coarse_to_fine_search_with(space, qos, models, c2f, options)
    };
    let result = result?;
    warm.key = Some(key);
    warm.fingerprints = fingerprints.to_vec();
    warm.centers.clone_from(&result.allocations);
    warm.last = Some(result.clone());
    Some(result)
}

/// Lexicographically better search result: fewer unmet degradation
/// limits first, lower weighted cost second.
fn lex_better(a: &SearchResult, b: &SearchResult) -> bool {
    let unmet = |r: &SearchResult| r.limits_met.iter().filter(|&&m| !m).count();
    let (ua, ub) = (unmet(a), unmet(b));
    ua < ub || (ua == ub && a.weighted_cost < b.weighted_cost - 1e-12)
}

/// Cartesian product of per-axis unit options, ascending in canonical
/// axis order (earlier axes outermost) — the sorted order
/// [`on_window_edge`]'s binary search and the deterministic probe
/// sequence both rely on. A non-varied axis contributes the single
/// placeholder unit 0.
fn product_cells(axes: &[Vec<usize>; Resource::COUNT]) -> Vec<Units> {
    let mut cells = Vec::with_capacity(axes.iter().map(Vec::len).product());
    let mut cur = [0usize; Resource::COUNT];
    fn rec(axes: &[Vec<usize>; Resource::COUNT], j: usize, cur: &mut Units, out: &mut Vec<Units>) {
        if j == Resource::COUNT {
            out.push(*cur);
            return;
        }
        for &u in &axes[j] {
            cur[j] = u;
            rec(axes, j + 1, cur, out);
        }
    }
    rec(axes, 0, &mut cur, &mut cells);
    cells
}

/// Per-axis option lists for a window/full-range construction: the
/// closure supplies a varied axis's units, non-varied axes contribute
/// the placeholder `[0]`.
fn axis_options(
    space: &SearchSpace,
    mut f: impl FnMut(Resource) -> Vec<usize>,
) -> [Vec<usize>; Resource::COUNT] {
    let mut axes: [Vec<usize>; Resource::COUNT] = std::array::from_fn(|_| vec![0]);
    for r in space.varied.iter() {
        axes[r.index()] = f(r);
    }
    axes
}

/// Grid cells of `space` inside a per-axis window of `half_width`
/// (in shares) around `center`, clamped to the per-axis unit ranges.
fn window_cells(
    space: &SearchSpace,
    center: Allocation,
    half_width: f64,
    ranges: &[(usize, usize); Resource::COUNT],
) -> Vec<Units> {
    let axes = axis_options(space, |r| {
        let (lo, hi) = ranges[r.index()];
        let delta = space.delta_for(r);
        let c = center.get(r);
        (lo..=hi)
            .filter(|&u| (u as f64 * delta - c).abs() <= half_width + 1e-9)
            .collect()
    });
    product_cells(&axes)
}

/// Every grid cell of `space` over the per-axis unit ranges.
fn full_cells(space: &SearchSpace, ranges: &[(usize, usize); Resource::COUNT]) -> Vec<Units> {
    let axes = axis_options(space, |r| {
        let (lo, hi) = ranges[r.index()];
        (lo..=hi).collect()
    });
    product_cells(&axes)
}

/// The fine cells within one coarse step of the workload's
/// degradation-limit boundary. Every limit-satisfying coarse cell with
/// a limit-violating axis neighbor contributes the fine cells inside a
/// ±`coarse_delta` box around it: the true boundary crosses somewhere
/// between such neighbor pairs, and the box covers the crossing
/// wherever in the gap it falls — so fine-grid optima pressed against
/// the limit (behind coarse-infeasible samples) stay reachable without
/// paying full-grid cost.
fn boundary_band_cells(
    space: &SearchSpace,
    coarse_table: &[GridCell],
    coarse_delta: f64,
    ranges: &[(usize, usize); Resource::COUNT],
) -> Vec<Units> {
    let verdict: HashMap<Units, bool> = coarse_table
        .iter()
        .map(|c| (c.units, c.within_limit))
        .collect();
    let varied_idx: Vec<usize> = space.varied.iter().map(Resource::index).collect();
    let mut centers: Vec<Units> = Vec::new();
    for cell in coarse_table {
        if !cell.within_limit {
            continue;
        }
        let is_boundary = varied_idx.iter().any(|&j| {
            let mut lo = cell.units;
            lo[j] = lo[j].wrapping_sub(1);
            let mut hi = cell.units;
            hi[j] += 1;
            verdict.get(&lo) == Some(&false) || verdict.get(&hi) == Some(&false)
        });
        if is_boundary {
            centers.push(cell.units);
        }
    }
    // Fine units within ±coarse_delta of a coarse unit, clamped.
    let axis_box = |r: Resource, units: usize| -> (usize, usize) {
        let (lo, hi) = ranges[r.index()];
        let fine = space.delta_for(r);
        let share = units as f64 * coarse_delta;
        let a = (((share - coarse_delta) / fine) - 1e-9).ceil().max(0.0) as usize;
        let b = (((share + coarse_delta) / fine) + 1e-9).floor().max(0.0) as usize;
        (a.clamp(lo, hi), b.clamp(lo, hi))
    };
    // BTreeSet: dedup and ordering in one structure — ascending
    // traversal yields exactly what the old collect-then-sort did,
    // without ever holding the cells in RandomState order.
    let mut cells: BTreeSet<Units> = BTreeSet::new();
    for units in centers {
        let axes = axis_options(space, |r| {
            let (blo, bhi) = axis_box(r, units[r.index()]);
            (blo..=bhi).collect()
        });
        for cell in product_cells(&axes) {
            cells.insert(cell);
        }
    }
    cells.into_iter().collect()
}

/// Whether workload's chosen allocation sits on the edge of its
/// allowed cell set: some in-range axis neighbor is missing from the
/// set. (`cells` must be sorted ascending. A neighbor that was in the
/// set but limit-infeasible is *not* an edge — the window clipped
/// nothing there, the limit did.)
fn on_window_edge(
    alloc: &Allocation,
    cells: &[Units],
    space: &SearchSpace,
    ranges: &[(usize, usize); Resource::COUNT],
) -> bool {
    let mut units = [0usize; Resource::COUNT];
    for r in space.varied.iter() {
        units[r.index()] = (alloc.get(r) / space.delta_for(r)).round() as usize;
    }
    let missing = |u: &Units| cells.binary_search(u).is_err();
    space.varied.iter().any(|r| {
        let j = r.index();
        let (lo, hi) = ranges[j];
        let u = units[j];
        (u > lo && {
            let mut v = units;
            v[j] = u - 1;
            missing(&v)
        }) || (u < hi && {
            let mut v = units;
            v[j] = u + 1;
            missing(&v)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::FnCostModel;

    /// Synthetic reciprocal cost models: cost_i = α_i/cpu + 1.
    fn synth(alphas: Vec<f64>) -> Vec<impl CostModel> {
        alphas
            .into_iter()
            .map(|alpha| FnCostModel::new(move |a: Allocation| alpha / a.cpu() + 1.0))
            .collect()
    }

    fn qos_n(n: usize) -> Vec<QoS> {
        vec![QoS::default(); n]
    }

    #[test]
    fn greedy_gives_cpu_to_the_hungrier_workload() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![10.0, 1.0]);
        let r = greedy_search(&space, &qos_n(2), &models);
        assert!(r.allocations[0].cpu() > 0.6, "{:?}", r.allocations);
        assert!((r.allocations[0].cpu() + r.allocations[1].cpu() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_keeps_symmetric_workloads_even() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![5.0, 5.0]);
        let r = greedy_search(&space, &qos_n(2), &models);
        assert_eq!(r.iterations, 0);
        assert!((r.allocations[0].cpu() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_total_cost_never_increases() {
        let space = SearchSpace::cpu_only(0.5);
        let alphas = [8.0, 3.0, 1.0, 0.5];
        let models = synth(alphas.to_vec());
        let r = greedy_search(&space, &qos_n(4), &models);
        // Replay the trace and verify monotone improvement.
        let mut alloc = vec![space.default_allocation(4); 4];
        let total = |alloc: &[Allocation]| -> f64 {
            alloc
                .iter()
                .enumerate()
                .map(|(i, a)| alphas[i] / a.cpu() + 1.0)
                .sum()
        };
        let mut prev = total(&alloc);
        for step in &r.trace {
            let delta = space.delta_for(step.resource);
            alloc[step.winner] = alloc[step.winner].shifted(step.resource, delta);
            alloc[step.loser] = alloc[step.loser].shifted(step.resource, -delta);
            let now = total(&alloc);
            assert!(now < prev + 1e-12, "step worsened cost");
            prev = now;
        }
        assert_eq!(alloc, r.allocations);
    }

    #[test]
    fn greedy_respects_degradation_limit() {
        let space = SearchSpace::cpu_only(0.5);
        // Workload 0 is hungry; workload 1 has a limit of 2× its
        // solo cost (cost_1(r) = 2/r + 1, solo cost 3 → cap 6 →
        // r_1 ≥ 0.4).
        let models = synth(vec![10.0, 2.0]);
        let free = greedy_search(&space, &qos_n(2), &models);
        let qos = vec![QoS::default(), QoS::with_limit(2.0)];
        let r = greedy_search(&space, &qos, &models);
        let full = 2.0 / 1.0 + 1.0;
        assert!(
            r.costs[1] <= 2.0 * full + 1e-9,
            "degradation violated: {} > {}",
            r.costs[1],
            2.0 * full
        );
        assert!(r.allocations[1].cpu() >= 0.4 - 1e-9, "{:?}", r.allocations);
        // The limit must actually bind: without it workload 1 gives up
        // more CPU.
        assert!(free.allocations[1].cpu() < r.allocations[1].cpu());
    }

    #[test]
    fn greedy_gain_factor_biases_allocation() {
        let space = SearchSpace::cpu_only(0.5);
        // Identical workloads; gain pulls resources to workload 0.
        let models = synth(vec![5.0, 5.0]);
        let r_plain = greedy_search(&space, &qos_n(2), &models);
        let qos = vec![QoS::with_gain(5.0), QoS::default()];
        let r_gain = greedy_search(&space, &qos, &models);
        assert!(r_gain.allocations[0].cpu() > r_plain.allocations[0].cpu());
    }

    #[test]
    fn greedy_matches_exhaustive_on_reciprocal_models() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![9.0, 4.0, 1.0]);
        let greedy = greedy_search(&space, &qos_n(3), &models);
        let exact = exhaustive_search(&space, &qos_n(3), &models);
        // Paper: greedy is very often optimal, always within 5 %.
        assert!(
            greedy.weighted_cost <= exact.weighted_cost * 1.05 + 1e-9,
            "greedy {} vs optimal {}",
            greedy.weighted_cost,
            exact.weighted_cost
        );
    }

    #[test]
    fn exhaustive_finds_known_optimum() {
        let space = SearchSpace::cpu_only(0.5);
        // cost_0 dominated by CPU, cost_1 flat: optimum pushes
        // workload 0 to the max share.
        let m0 = FnCostModel::new(|a: Allocation| 100.0 / a.cpu());
        let m1 = FnCostModel::new(|a: Allocation| 10.0 + 0.001 / a.cpu());
        let models: Vec<&dyn CostModel> = vec![&m0, &m1];
        let r = exhaustive_search(&space, &qos_n(2), &models);
        assert!(
            (r.allocations[0].cpu() - 0.95).abs() < 1e-9,
            "{:?}",
            r.allocations
        );
        assert!((r.allocations[1].cpu() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_respects_budget_on_both_resources() {
        let space = SearchSpace::cpu_and_memory();
        let models: Vec<_> = (0..3)
            .map(|i| {
                FnCostModel::new(move |a: Allocation| (i as f64 + 1.0) / a.cpu() + 2.0 / a.memory())
            })
            .collect();
        let r = exhaustive_search(&space, &qos_n(3), &models);
        let cpu_sum: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
        let mem_sum: f64 = r.allocations.iter().map(|a| a.memory()).sum();
        assert!(cpu_sum <= 1.0 + 1e-9);
        assert!(mem_sum <= 1.0 + 1e-9);
    }

    #[test]
    fn exhaustive_three_axes_respects_every_budget() {
        // The M > 2 contract: the DP budget lattice enforces Σ ≤ 1 on
        // every varied axis, disk included.
        let mut space = SearchSpace::cpu_memory_disk();
        space.set_delta(0.25);
        space.min_share = 0.25;
        let models: Vec<_> = (0..2)
            .map(|i| {
                FnCostModel::new(move |a: Allocation| {
                    (i as f64 + 1.0) / a.cpu() + 2.0 / a.memory() + 3.0 / a.disk()
                })
            })
            .collect();
        let r = exhaustive_search(&space, &qos_n(2), &models);
        for res in [Resource::Cpu, Resource::Memory, Resource::DiskBandwidth] {
            let sum: f64 = r.allocations.iter().map(|a| a.get(res)).sum();
            assert!(sum <= 1.0 + 1e-9, "{res:?} oversubscribed: {sum}");
            for a in &r.allocations {
                assert!(a.get(res) >= space.min_share - 1e-9);
            }
        }
        // The disk-hungriest coefficient (3.0) dominates: both get
        // valid, positive shares and costs are finite.
        assert!(r.weighted_cost.is_finite());
    }

    #[test]
    fn exhaustive_three_axes_matches_brute_force() {
        // Pin the M-axis DP against literal composition enumeration at
        // a size where brute force is tractable.
        let mut space = SearchSpace::cpu_memory_disk();
        space.set_delta(0.25);
        space.min_share = 0.25;
        let alphas = [(4.0, 1.0, 0.5), (1.0, 3.0, 2.0)];
        let models: Vec<_> = alphas
            .iter()
            .map(|&(c, m, d)| {
                FnCostModel::new(move |a: Allocation| c / a.cpu() + m / a.memory() + d / a.disk())
            })
            .collect();
        let r = exhaustive_search(&space, &qos_n(2), &models);
        // Brute force: all (u0, u1) per axis with u0 + u1 <= 4,
        // 1 <= u <= 3 per workload.
        let mut best = f64::INFINITY;
        let cost = |i: usize, u: (usize, usize, usize)| -> f64 {
            let (c, m, d) = alphas[i];
            c / (u.0 as f64 * 0.25) + m / (u.1 as f64 * 0.25) + d / (u.2 as f64 * 0.25)
        };
        for c0 in 1..=3 {
            for m0 in 1..=3 {
                for d0 in 1..=3 {
                    for c1 in 1..=(4 - c0).min(3) {
                        for m1 in 1..=(4 - m0).min(3) {
                            for d1 in 1..=(4 - d0).min(3) {
                                let total = cost(0, (c0, m0, d0)) + cost(1, (c1, m1, d1));
                                if total < best {
                                    best = total;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(
            (r.weighted_cost - best).abs() <= 1e-9 * best,
            "DP {} vs brute force {}",
            r.weighted_cost,
            best
        );
    }

    #[test]
    fn per_axis_deltas_give_each_axis_its_own_grid() {
        // CPU on a 0.25 grid, memory on a 0.5 grid: the optimum's
        // shares must be multiples of their own axis's δ.
        let mut space = SearchSpace::cpu_and_memory();
        space.deltas = space
            .deltas
            .with(Resource::Cpu, 0.25)
            .with(Resource::Memory, 0.5);
        space.min_share = 0.25;
        let models: Vec<_> = [(8.0, 1.0), (1.0, 4.0)]
            .into_iter()
            .map(|(c, m)| FnCostModel::new(move |a: Allocation| c / a.cpu() + m / a.memory()))
            .collect();
        let r = exhaustive_search(&space, &qos_n(2), &models);
        for a in &r.allocations {
            let cpu_units = a.cpu() / 0.25;
            let mem_units = a.memory() / 0.5;
            assert!((cpu_units - cpu_units.round()).abs() < 1e-9, "{a:?}");
            assert!((mem_units - mem_units.round()).abs() < 1e-9, "{a:?}");
        }
        // CPU-hungry workload 0 wins CPU; memory-hungry workload 1
        // wins memory (the only grid choice is 0.5 each there).
        assert!(r.allocations[0].cpu() > r.allocations[1].cpu());
    }

    #[test]
    fn exhaustive_reports_infeasible_limits_best_effort() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![10.0, 10.0]);
        let qos = vec![QoS::with_limit(1.05), QoS::with_limit(1.05)];
        // Both want nearly everything to meet their limit — jointly
        // impossible. The DP must report that via `limits_met` (like
        // greedy does) instead of panicking, and still hand back the
        // least-violating, cheapest allocation.
        let r = exhaustive_search(&space, &qos, &models);
        assert!(
            r.limits_met.iter().any(|m| !m),
            "jointly infeasible limits must be reported: {:?}",
            r.limits_met
        );
        let total: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(r.weighted_cost.is_finite());
        // Symmetric workloads, one violation unavoidable: exactly one
        // flag is false, not both.
        assert_eq!(r.limits_met.iter().filter(|&&m| !m).count(), 1, "{r:?}");
    }

    #[test]
    fn exhaustive_best_effort_minimizes_violations_before_cost() {
        let space = SearchSpace::cpu_only(0.5);
        // Workload 1 can meet its limit only by hogging CPU; workload 0
        // is unconstrained but expensive when starved. The cheapest
        // *unconstrained* split would violate workload 1's limit; the
        // best-effort DP must prefer the zero-violation allocation.
        let models = synth(vec![10.0, 2.0]);
        let qos = vec![QoS::default(), QoS::with_limit(1.5)];
        let r = exhaustive_search(&space, &qos, &models);
        assert!(r.limits_met.iter().all(|&m| m), "{r:?}");
        let full = 2.0 / 1.0 + 1.0;
        assert!(r.costs[1] <= 1.5 * full + 1e-9);
    }

    #[test]
    fn greedy_two_resources_splits_by_affinity() {
        let space = SearchSpace::cpu_and_memory();
        // Workload 0 is CPU-bound, workload 1 memory-bound.
        let m0 = FnCostModel::new(|a: Allocation| 20.0 / a.cpu() + 1.0 / a.memory());
        let m1 = FnCostModel::new(|a: Allocation| 1.0 / a.cpu() + 20.0 / a.memory());
        let models: Vec<&dyn CostModel> = vec![&m0, &m1];
        let r = greedy_search(&space, &qos_n(2), &models);
        assert!(r.allocations[0].cpu() > 0.6, "{:?}", r.allocations);
        assert!(r.allocations[1].memory() > 0.6, "{:?}", r.allocations);
    }

    #[test]
    fn greedy_three_resources_splits_by_affinity() {
        let space = SearchSpace::cpu_memory_disk();
        // Three workloads, each bound to a different axis.
        let m0 =
            FnCostModel::new(|a: Allocation| 20.0 / a.cpu() + 1.0 / a.memory() + 1.0 / a.disk());
        let m1 =
            FnCostModel::new(|a: Allocation| 1.0 / a.cpu() + 20.0 / a.memory() + 1.0 / a.disk());
        let m2 =
            FnCostModel::new(|a: Allocation| 1.0 / a.cpu() + 1.0 / a.memory() + 20.0 / a.disk());
        let models: Vec<&dyn CostModel> = vec![&m0, &m1, &m2];
        let r = greedy_search(&space, &qos_n(3), &models);
        assert!(r.allocations[0].cpu() > 0.5, "{:?}", r.allocations);
        assert!(r.allocations[1].memory() > 0.5, "{:?}", r.allocations);
        assert!(r.allocations[2].disk() > 0.5, "{:?}", r.allocations);
        let disk_sum: f64 = r.allocations.iter().map(|a| a.disk()).sum();
        assert!(disk_sum <= 1.0 + 1e-9);
    }

    #[test]
    fn feasibility_phase_meets_limits_violated_at_start() {
        // Five identical workloads; the equal-share start (r = 0.2)
        // degrades each to cost(0.2)/cost(1.0) = (25+1)/(5+1) ≈ 4.33.
        // A limit of 2.5 forces the pre-phase to push the constrained
        // workload above the symmetric share before Fig. 11 runs.
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![5.0; 5]);
        let mut qos = qos_n(5);
        qos[0] = QoS::with_limit(2.5);
        let r = greedy_search(&space, &qos, &models);
        assert!(r.limits_met[0], "{:?}", r);
        let full = 5.0 + 1.0;
        assert!(r.costs[0] <= 2.5 * full + 1e-9);
        assert!(r.allocations[0].cpu() > 0.2, "{:?}", r.allocations);
        // Feasibility must not oversubscribe.
        let total: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn infeasible_limits_are_reported_not_panicked() {
        // Both workloads demand more than half the machine to stay
        // within their limits: jointly infeasible.
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![10.0, 10.0]);
        let qos = vec![QoS::with_limit(1.05), QoS::with_limit(1.05)];
        let r = greedy_search(&space, &qos, &models);
        assert!(
            r.limits_met.iter().any(|m| !m),
            "jointly infeasible limits must be reported: {:?}",
            r.limits_met
        );
    }

    #[test]
    fn single_workload_keeps_everything() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![5.0]);
        let r = greedy_search(&space, &qos_n(1), &models);
        assert_eq!(r.iterations, 0);
        assert!((r.allocations[0].cpu() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_serial_paths_are_bit_identical() {
        let space = SearchSpace::cpu_and_memory();
        let models: Vec<_> = [3.0, 8.0, 1.5, 5.0]
            .into_iter()
            .enumerate()
            .map(|(i, alpha)| {
                FnCostModel::new(move |a: Allocation| {
                    alpha / a.cpu() + (i as f64 + 1.0) / a.memory()
                })
            })
            .collect();
        let qos = vec![
            QoS::default(),
            QoS::with_limit(3.0),
            QoS::with_gain(2.0),
            QoS::default(),
        ];
        let serial = greedy_search_with(&space, &qos, &models, &SearchOptions::serial());
        let parallel = greedy_search_with(&space, &qos, &models, &SearchOptions::parallel());
        assert_eq!(serial, parallel);
        let e_serial = exhaustive_search_with(&space, &qos, &models, &SearchOptions::serial());
        let e_parallel = exhaustive_search_with(&space, &qos, &models, &SearchOptions::parallel());
        assert_eq!(e_serial, e_parallel);
    }

    #[test]
    fn coarse_to_fine_matches_full_grid_on_fine_delta() {
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let models = synth(vec![9.0, 4.0, 1.0]);
        let qos = qos_n(3);
        let full = exhaustive_search(&space, &qos, &models);
        let c2f = coarse_to_fine_search(&space, &qos, &models);
        assert!(
            (c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9,
            "c2f {} vs full {}",
            c2f.weighted_cost,
            full.weighted_cost
        );
        assert_eq!(c2f.allocations, full.allocations);
    }

    #[test]
    fn coarse_to_fine_respects_degradation_limits() {
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let models = synth(vec![10.0, 2.0]);
        let qos = vec![QoS::default(), QoS::with_limit(2.0)];
        let full = exhaustive_search(&space, &qos, &models);
        let c2f = coarse_to_fine_search(&space, &qos, &models);
        assert!((c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9);
        assert!(c2f.limits_met.iter().all(|&m| m));
    }

    #[test]
    fn coarse_to_fine_probes_fewer_points_than_full_grid() {
        // Count *unique* probed allocations per workload — what
        // optimizer calls cost through a cached estimator (repeat
        // probes of the same point are cache hits).
        use parking_lot::Mutex;
        use std::collections::HashSet;
        // Two varied resources: the per-workload option table is the
        // square of the per-axis range, which is where windowing pays.
        let mut space = SearchSpace::cpu_and_memory();
        space.set_delta(0.02);
        type ProbeSet = Mutex<HashSet<(usize, AllocKey)>>;
        let count = |alphas: &[f64]| -> (Vec<_>, &'static ProbeSet) {
            // Leak one shared probe set per call; tests only.
            let probes: &'static ProbeSet = Box::leak(Box::new(Mutex::new(HashSet::new())));
            let models: Vec<_> = alphas
                .iter()
                .enumerate()
                .map(|(i, &alpha)| {
                    FnCostModel::new(move |a: Allocation| {
                        probes.lock().insert((i, a.key()));
                        alpha / a.cpu() + (i + 1) as f64 / a.memory() + 1.0
                    })
                })
                .collect();
            (models, probes)
        };
        let qos = qos_n(4);
        let alphas = [8.0, 3.0, 1.0, 0.5];
        let (full_models, full_probes) = count(&alphas);
        let full = exhaustive_search_with(&space, &qos, &full_models, &SearchOptions::serial());
        let (c2f_models, c2f_probes) = count(&alphas);
        let c2f = coarse_to_fine_search_with(
            &space,
            &qos,
            &c2f_models,
            &CoarseToFineOptions::auto(&space, 4),
            &SearchOptions::serial(),
        );
        assert!((c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9);
        let full_n = full_probes.lock().len();
        let c2f_n = c2f_probes.lock().len();
        assert!(
            c2f_n * 2 < full_n,
            "coarse-to-fine should probe far fewer points: {c2f_n} vs {full_n}"
        );
    }

    #[test]
    fn coarse_to_fine_three_axes_matches_full_grid() {
        // The new axis end to end at enumeration level: c2f over
        // cpu+memory+disk equals the full-grid DP with fewer probes.
        use parking_lot::Mutex;
        use std::collections::HashSet;
        let mut space = SearchSpace::cpu_memory_disk();
        space.set_delta(0.05);
        type ProbeSet = Mutex<HashSet<(usize, AllocKey)>>;
        let count = |alphas: &[(f64, f64, f64)]| -> (Vec<_>, &'static ProbeSet) {
            let probes: &'static ProbeSet = Box::leak(Box::new(Mutex::new(HashSet::new())));
            let models: Vec<_> = alphas
                .iter()
                .enumerate()
                .map(|(i, &(c, m, d))| {
                    FnCostModel::new(move |a: Allocation| {
                        probes.lock().insert((i, a.key()));
                        c / a.cpu() + m / a.memory() + d / a.disk() + 1.0
                    })
                })
                .collect();
            (models, probes)
        };
        let alphas = [(8.0, 1.0, 2.0), (1.0, 6.0, 1.0), (2.0, 2.0, 7.0)];
        let qos = qos_n(3);
        let (full_models, full_probes) = count(&alphas);
        let full = exhaustive_search_with(&space, &qos, &full_models, &SearchOptions::serial());
        let (c2f_models, c2f_probes) = count(&alphas);
        let c2f = coarse_to_fine_search_with(
            &space,
            &qos,
            &c2f_models,
            &CoarseToFineOptions::auto(&space, 3),
            &SearchOptions::serial(),
        );
        assert!(
            (c2f.weighted_cost - full.weighted_cost).abs()
                <= 1e-9 * full.weighted_cost.abs().max(1.0),
            "c2f {} vs full {}",
            c2f.weighted_cost,
            full.weighted_cost
        );
        let full_n = full_probes.lock().len();
        let c2f_n = c2f_probes.lock().len();
        assert!(
            c2f_n * 2 < full_n,
            "3-axis c2f should probe far fewer points: {c2f_n} vs {full_n}"
        );
    }

    #[test]
    fn coarse_to_fine_falls_back_when_ladder_is_empty() {
        let space = SearchSpace::cpu_only(0.5); // δ = 0.05
        let models = synth(vec![9.0, 4.0]);
        let qos = qos_n(2);
        let opts = CoarseToFineOptions {
            coarse_deltas: Vec::new(),
            window_steps: 1.0,
        };
        let c2f =
            coarse_to_fine_search_with(&space, &qos, &models, &opts, &SearchOptions::serial());
        let full = exhaustive_search(&space, &qos, &models);
        assert_eq!(c2f, full);
    }

    #[test]
    fn coarse_to_fine_infeasible_matches_exhaustive_best_effort() {
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let models = synth(vec![10.0, 10.0]);
        let qos = vec![QoS::with_limit(1.05), QoS::with_limit(1.05)];
        // Jointly infeasible: both must return the same best-effort
        // allocation with the violation flagged, not panic.
        let full = exhaustive_search(&space, &qos, &models);
        let c2f = coarse_to_fine_search(&space, &qos, &models);
        assert!(full.limits_met.iter().any(|m| !m), "{full:?}");
        assert_eq!(c2f.limits_met, full.limits_met);
        assert!((c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9);
    }

    #[test]
    fn limit_aware_c2f_matches_exhaustive_and_probes_fewer() {
        // The tentpole contract: with *finite* degradation limits the
        // coarse-to-fine search must no longer degrade to the full
        // grid — same objective and limit verdicts as exhaustive, far
        // fewer unique probes.
        use parking_lot::Mutex;
        use std::collections::HashSet;
        let mut space = SearchSpace::cpu_and_memory();
        space.set_delta(0.02);
        type ProbeSet = Mutex<HashSet<(usize, AllocKey)>>;
        let count = |alphas: &[f64]| -> (Vec<_>, &'static ProbeSet) {
            let probes: &'static ProbeSet = Box::leak(Box::new(Mutex::new(HashSet::new())));
            let models: Vec<_> = alphas
                .iter()
                .enumerate()
                .map(|(i, &alpha)| {
                    FnCostModel::new(move |a: Allocation| {
                        probes.lock().insert((i, a.key()));
                        alpha / a.cpu() + (i + 1) as f64 / a.memory() + 1.0
                    })
                })
                .collect();
            (models, probes)
        };
        let qos = vec![
            QoS::with_limit(2.0),
            QoS::default(),
            QoS::with_limit(3.0),
            QoS::default(),
        ];
        let alphas = [8.0, 3.0, 1.0, 0.5];
        let (full_models, full_probes) = count(&alphas);
        let full = exhaustive_search_with(&space, &qos, &full_models, &SearchOptions::serial());
        let (c2f_models, c2f_probes) = count(&alphas);
        let c2f = coarse_to_fine_search_with(
            &space,
            &qos,
            &c2f_models,
            &CoarseToFineOptions::auto(&space, 4),
            &SearchOptions::serial(),
        );
        assert!(
            (c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9,
            "c2f {} vs full {}",
            c2f.weighted_cost,
            full.weighted_cost
        );
        assert_eq!(c2f.limits_met, full.limits_met);
        assert!(c2f.limits_met.iter().all(|&m| m), "limits must be met");
        let full_n = full_probes.lock().len();
        let c2f_n = c2f_probes.lock().len();
        assert!(
            c2f_n * 2 < full_n,
            "limit-aware c2f should probe far fewer points: {c2f_n} vs {full_n}"
        );
    }

    #[test]
    fn auto_options_degenerate_ladder_for_coarse_space() {
        // δ = 0.2 leaves no useful coarser level.
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.2);
        let opts = CoarseToFineOptions::auto(&space, 2);
        assert!(opts.coarse_deltas.is_empty());
        // δ = 0.01 with 10 workloads: 0.1 is degenerate (one option
        // per workload), so auto must pick 0.05.
        space.set_delta(0.01);
        let opts = CoarseToFineOptions::auto(&space, 10);
        assert_eq!(opts.coarse_deltas, vec![0.05]);
    }

    #[test]
    fn batch_evaluator_dedups_repeated_probes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let model = FnCostModel::new(|a: Allocation| {
            calls.fetch_add(1, Ordering::Relaxed);
            1.0 / a.cpu()
        });
        let models = [&model, &model];
        let eval = Evaluator::new(&models, &SearchOptions::serial());
        let a = Allocation::new(0.5, 0.5);
        let out = eval.costs(&[(0, a), (1, a), (0, a), (0, Allocation::new(0.25, 0.5))]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], out[2]);
        // (0,a) twice dedups; (1,a) is a distinct workload slot.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    /// Per-workload tables over the full cell set with pseudo-random
    /// costs drawn from `costs` (cyclically), limits flagged from the
    /// cost value — enough variety to exercise every DP branch.
    fn synth_tables(space: &SearchSpace, n: usize, costs: &[f64]) -> Vec<Vec<GridCell>> {
        let ranges = axis_ranges(space, n).unwrap();
        let cells = full_cells(space, &ranges);
        (0..n)
            .map(|i| {
                cells
                    .iter()
                    .enumerate()
                    .map(|(k, &units)| {
                        let c = costs[(i * cells.len() + k) % costs.len()];
                        GridCell {
                            units,
                            cost: c,
                            weighted: c,
                            within_limit: c < 5.0,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_bit_identical(a: &SearchResult, b: &SearchResult) {
        assert_eq!(a.weighted_cost.to_bits(), b.weighted_cost.to_bits());
        assert_eq!(a.allocations, b.allocations);
        assert_eq!(a.limits_met, b.limits_met);
        assert_eq!(a.costs.len(), b.costs.len());
        for (x, y) in a.costs.iter().zip(&b.costs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    mod dp_paths {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// The 64-bit-lane DP and the dominated-cell pruning are
            /// both bit-identical to the 16-bit-lane DP on any table
            /// set all of them can represent.
            #[test]
            fn wide_lanes_and_pruning_preserve_the_dp_bitwise(
                costs in proptest::collection::vec(0.01f64..10.0, 96)
            ) {
                let space = SearchSpace::cpu_and_memory().with_delta(0.1);
                let n = 3;
                let tables = synth_tables(&space, n, &costs);
                let lattice = BudgetLattice::new(&space);
                assert!(!lattice.wide);
                let narrow = solve_dp(&space, &lattice, &tables).unwrap();
                let mut forced = BudgetLattice::new(&space);
                forced.wide = true;
                let wide = solve_dp(&space, &forced, &tables).unwrap();
                assert_bit_identical(&narrow, &wide);
                let pruned = prune_dominated(&lattice, &tables);
                assert!(pruned.iter().zip(&tables).all(|(p, t)| p.len() <= t.len()));
                let from_pruned = solve_dp(&space, &lattice, &pruned).unwrap();
                assert_bit_identical(&narrow, &from_pruned);
            }
        }
    }

    #[test]
    fn wide_lattice_engages_beyond_15_bit_lanes() {
        // δ = 1/40000 puts 40000 units on the CPU axis — beyond the
        // 15-bit SWAR lanes, which used to be a hard assert. The wide
        // path now solves it (windowed, to keep the test fast).
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(1.0 / 40_000.0);
        assert!(BudgetLattice::new(&space).wide);
        let models = synth(vec![3.0, 1.0]);
        let mk = |u: usize| {
            let mut c = [0usize; Resource::COUNT];
            c[Resource::Cpu.index()] = u;
            c
        };
        // Cells spaced 8 units (2e-4 share) apart so each maps to a
        // distinct evaluator probe key (keys quantize at 1e-4).
        let allowed = vec![
            (12_000..=12_032).step_by(8).map(mk).collect::<Vec<_>>(),
            (24_000..=24_032).step_by(8).map(mk).collect::<Vec<_>>(),
        ];
        let s = grid_search(
            &space,
            &qos_n(2),
            &models,
            &SearchOptions::serial(),
            Some(&allowed),
        )
        .unwrap();
        // α/cpu is decreasing, so both take the top of their window.
        assert!(
            (s.result.allocations[0].cpu() - 12_032.0 / 40_000.0).abs() < 1e-9,
            "allocations: {:?}",
            s.result.allocations
        );
        assert!((s.result.allocations[1].cpu() - 24_032.0 / 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_returns_cached_result_at_zero_probes_without_drift() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicU64::new(0));
        let mk = |alpha: f64| {
            let calls = Arc::clone(&calls);
            FnCostModel::new(move |a: Allocation| {
                calls.fetch_add(1, Ordering::Relaxed);
                alpha / a.cpu() + 1.0
            })
        };
        let models = vec![mk(4.0), mk(1.5)];
        let space = SearchSpace::cpu_only(0.5);
        let qos = qos_n(2);
        let c2f = CoarseToFineOptions::default();
        let opts = SearchOptions::serial();
        let mut warm = WarmStart::new();
        let cold =
            coarse_to_fine_search_warm(&space, &qos, &models, &c2f, &opts, 7, &[10, 20], &mut warm)
                .unwrap();
        assert_eq!(warm.cold_solves(), 1);
        assert!(warm.is_warm());
        let probes_after_cold = calls.load(Ordering::Relaxed);
        assert!(probes_after_cold > 0);
        let hit =
            coarse_to_fine_search_warm(&space, &qos, &models, &c2f, &opts, 7, &[10, 20], &mut warm)
                .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), probes_after_cold);
        assert_eq!(cold, hit);
    }

    #[test]
    fn warm_delta_solve_matches_cold_after_single_workload_drift() {
        // Workload 1 drifts each period; 0 and 2 stay (finite limits
        // keep the limit-aware path and the boundary band engaged).
        let space = SearchSpace::cpu_only(0.4);
        let qos = vec![QoS::with_limit(2.0), QoS::default(), QoS::with_limit(3.0)];
        let c2f = CoarseToFineOptions::default();
        let opts = SearchOptions::serial();
        let mk =
            |alpha: f64, beta: f64| FnCostModel::new(move |a: Allocation| alpha / a.cpu() + beta);
        let models_at = |phase: f64| vec![mk(3.0, 1.0), mk(1.0 + phase, 0.5), mk(2.0, 2.0)];
        let mut warm = WarmStart::new();
        let m0 = models_at(0.0);
        let first =
            coarse_to_fine_search_warm(&space, &qos, &m0, &c2f, &opts, 1, &[1, 100, 3], &mut warm)
                .unwrap();
        let first_cold = coarse_to_fine_search_with(&space, &qos, &m0, &c2f, &opts);
        assert_eq!(first, first_cold);
        for (p, fp) in [(2.0, 200u64), (0.5, 201), (6.0, 202)] {
            let m = models_at(p);
            let w = coarse_to_fine_search_warm(
                &space,
                &qos,
                &m,
                &c2f,
                &opts,
                1,
                &[1, fp, 3],
                &mut warm,
            )
            .unwrap();
            let c = coarse_to_fine_search_with(&space, &qos, &m, &c2f, &opts);
            assert_eq!(w, c, "warm delta-solve must match the cold solve");
        }
        assert_eq!(warm.cold_solves(), 1);
        assert_eq!(warm.delta_solves(), 3);
        // Two untouched workloads' coarse tables retained per delta-solve.
        assert_eq!(warm.lattice_reuses(), 6);
    }

    #[test]
    fn warm_key_misses_on_salt_qos_or_invalidation() {
        let space = SearchSpace::cpu_only(0.5);
        let qos = qos_n(2);
        let c2f = CoarseToFineOptions::default();
        let opts = SearchOptions::serial();
        let models = synth(vec![2.0, 1.0]);
        let mut warm = WarmStart::new();
        let fps = [5u64, 6];
        let _ = coarse_to_fine_search_warm(&space, &qos, &models, &c2f, &opts, 1, &fps, &mut warm);
        assert_eq!(warm.cold_solves(), 1);
        // Different calibration salt → cold re-solve.
        let _ = coarse_to_fine_search_warm(&space, &qos, &models, &c2f, &opts, 2, &fps, &mut warm);
        assert_eq!(warm.cold_solves(), 2);
        // Different QoS → cold re-solve.
        let strict = vec![QoS::with_limit(1.5), QoS::default()];
        let _ =
            coarse_to_fine_search_warm(&space, &strict, &models, &c2f, &opts, 2, &fps, &mut warm);
        assert_eq!(warm.cold_solves(), 3);
        // Same everything → cached, no new cold solve.
        let _ =
            coarse_to_fine_search_warm(&space, &strict, &models, &c2f, &opts, 2, &fps, &mut warm);
        assert_eq!(warm.cold_solves(), 3);
        // Explicit invalidation → cold re-solve.
        warm.invalidate();
        assert!(!warm.is_warm());
        let _ =
            coarse_to_fine_search_warm(&space, &strict, &models, &c2f, &opts, 2, &fps, &mut warm);
        assert_eq!(warm.cold_solves(), 4);
    }
}
