//! Safe online tuning: the Shadow → Canary → Promoted / RolledBack
//! state machine.
//!
//! An adapted cost model ([`crate::costmodel::adaptive`]) is a
//! *hypothesis* about the fleet's pricing error. Installing a wrong
//! hypothesis is exactly the failure the adaptation loop exists to
//! prevent, so no candidate ever steers a decision until it has
//! survived two gates, in the spirit of the canary-and-rollback
//! discipline of safe cloud-database configuration tuning:
//!
//! 1. **Shadow.** The candidate prices every reported actual *in
//!    parallel with* the incumbent, changing nothing. Only if its mean
//!    relative error is strictly lower than the incumbent's after
//!    [`GuardrailOptions::min_shadow_samples`] reports does it
//!    advance; otherwise it is rejected (`RolledBack`) without ever
//!    acting.
//! 2. **Canary.** The candidate is deployed on a *bounded tenant
//!    subset* — the lowest-fingerprint tenants observed during shadow,
//!    capped by [`GuardrailOptions::canary_tenants`] — while the rest
//!    of the fleet stays on the incumbent. After
//!    [`GuardrailOptions::min_canary_samples`] canary reports the
//!    verdict is evaluated: the candidate's canary error must not
//!    exceed the incumbent's by more than
//!    [`GuardrailOptions::max_error_inflation`], and the fleet
//!    objective must not have regressed past
//!    [`GuardrailOptions::max_objective_regression`] relative to the
//!    objective recorded at canary entry. Pass → `Promoted`
//!    (installed fleet-wide); fail → `RolledBack` (the pre-canary
//!    incumbent is reinstalled bit-identically).
//!
//! Every transition is a pure function of the observed sample stream
//! and the options — no clocks, no randomness — so a replayed event
//! log reproduces the same verdicts, and the tracker state snapshots
//! and restores exactly ([`GuardrailTracker::export`]).

use crate::costmodel::adaptive::Adaption;
use std::collections::BTreeSet;

/// Lifecycle of one tuning candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardrailState {
    /// Pricing in parallel with the incumbent; no effect on decisions.
    Shadow,
    /// Deployed on the bounded canary tenant subset only.
    Canary,
    /// Survived both gates; installed fleet-wide. Terminal.
    Promoted,
    /// Rejected in shadow, failed the canary gate, or force-rolled
    /// back; the incumbent is (re)installed. Terminal.
    RolledBack,
}

impl GuardrailState {
    /// Whether the candidate's lifecycle is over.
    pub fn is_terminal(self) -> bool {
        matches!(self, GuardrailState::Promoted | GuardrailState::RolledBack)
    }

    /// Stable lower-case name (snapshots, decision-log labels).
    pub fn name(self) -> &'static str {
        match self {
            GuardrailState::Shadow => "shadow",
            GuardrailState::Canary => "canary",
            GuardrailState::Promoted => "promoted",
            GuardrailState::RolledBack => "rolled-back",
        }
    }

    /// Parse [`Self::name`] back (snapshot restore).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "shadow" => Some(GuardrailState::Shadow),
            "canary" => Some(GuardrailState::Canary),
            "promoted" => Some(GuardrailState::Promoted),
            "rolled-back" => Some(GuardrailState::RolledBack),
            _ => None,
        }
    }
}

/// Degradation-guardrail thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardrailOptions {
    /// Reports the candidate must shadow-price before the shadow gate
    /// is evaluated.
    pub min_shadow_samples: u64,
    /// Size cap of the canary tenant subset (the lowest-fingerprint
    /// tenants seen during shadow).
    pub canary_tenants: usize,
    /// Canary-tenant reports required before the verdict.
    pub min_canary_samples: u64,
    /// Allowed canary error inflation: the candidate's mean relative
    /// error may exceed the incumbent's by at most this fraction.
    pub max_error_inflation: f64,
    /// Allowed relative fleet-objective regression versus the
    /// objective recorded at canary entry.
    pub max_objective_regression: f64,
}

impl Default for GuardrailOptions {
    fn default() -> Self {
        GuardrailOptions {
            min_shadow_samples: 4,
            canary_tenants: 1,
            min_canary_samples: 4,
            max_error_inflation: 0.25,
            max_objective_regression: 0.05,
        }
    }
}

/// Running mean-relative-error comparison of candidate vs incumbent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorAccumulator {
    /// Summed `|candidate − actual| / actual`.
    pub candidate_abs: f64,
    /// Summed `|incumbent − actual| / actual`.
    pub incumbent_abs: f64,
    /// Reports accumulated.
    pub samples: u64,
}

impl ErrorAccumulator {
    fn record(&mut self, candidate: f64, incumbent: f64, actual: f64) {
        if !(actual.is_finite() && actual > 0.0) {
            return;
        }
        self.candidate_abs += (candidate - actual).abs() / actual;
        self.incumbent_abs += (incumbent - actual).abs() / actual;
        self.samples += 1;
    }

    /// Mean relative error of the candidate.
    pub fn candidate_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.candidate_abs / self.samples as f64
        }
    }

    /// Mean relative error of the incumbent.
    pub fn incumbent_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.incumbent_abs / self.samples as f64
        }
    }
}

/// Snapshot form of a [`GuardrailTracker`] — every field public so
/// `crate::snapshot` can serialize it without this module knowing the
/// wire format. Round-trips bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardrailExport {
    /// Current lifecycle state.
    pub state: GuardrailState,
    /// The candidate overlay under evaluation.
    pub candidate: Adaption,
    /// Fingerprint of the un-adapted base model the candidate
    /// corrects.
    pub base_fingerprint: u64,
    /// Shadow-phase error accumulator.
    pub shadow: ErrorAccumulator,
    /// Canary-phase error accumulator.
    pub canary: ErrorAccumulator,
    /// Distinct tenants observed during shadow (sorted).
    pub seen_tenants: Vec<u64>,
    /// The chosen canary subset (sorted; empty before canary entry).
    pub canary_tenants: Vec<u64>,
    /// Fleet objective recorded at canary entry.
    pub baseline_objective: Option<f64>,
}

/// The per-candidate state machine. One tracker exists per adapted
/// scope (the control plane keys them by (hardware class, engine));
/// it consumes `(tenant, candidate predicted, incumbent predicted,
/// actual, fleet objective)` observations and walks
/// `Shadow → Canary → {Promoted, RolledBack}` deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardrailTracker {
    options: GuardrailOptions,
    state: GuardrailState,
    candidate: Adaption,
    base_fingerprint: u64,
    shadow: ErrorAccumulator,
    canary: ErrorAccumulator,
    seen_tenants: BTreeSet<u64>,
    canary_tenants: Vec<u64>,
    baseline_objective: Option<f64>,
}

impl GuardrailTracker {
    /// Start shadowing `candidate` (a correction of the base model
    /// with fingerprint `base_fingerprint`).
    pub fn new(candidate: Adaption, base_fingerprint: u64, options: GuardrailOptions) -> Self {
        GuardrailTracker {
            options,
            state: GuardrailState::Shadow,
            candidate,
            base_fingerprint,
            shadow: ErrorAccumulator::default(),
            canary: ErrorAccumulator::default(),
            seen_tenants: BTreeSet::new(),
            canary_tenants: Vec::new(),
            baseline_objective: None,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> GuardrailState {
        self.state
    }

    /// The candidate overlay under evaluation.
    pub fn candidate(&self) -> Adaption {
        self.candidate
    }

    /// Fingerprint of the base model the candidate corrects.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fingerprint
    }

    /// The chosen canary subset (empty before canary entry).
    pub fn canary_tenants(&self) -> &[u64] {
        &self.canary_tenants
    }

    /// Whether `tenant` is in the canary subset.
    pub fn is_canary_tenant(&self, tenant: u64) -> bool {
        self.canary_tenants.binary_search(&tenant).is_ok()
    }

    /// Shadow/canary error accumulators (for reporting).
    pub fn accumulators(&self) -> (&ErrorAccumulator, &ErrorAccumulator) {
        (&self.shadow, &self.canary)
    }

    /// Feed one report: the candidate's and the incumbent's predicted
    /// seconds for a `(tenant, allocation)` pair, the executor's
    /// actual, and the current fleet objective. Returns the state
    /// *after* the observation — the caller acts on `Canary` (deploy
    /// on the canary subset), `Promoted` (install fleet-wide), and
    /// `RolledBack` (reinstall the incumbent) transitions.
    pub fn observe(
        &mut self,
        tenant: u64,
        candidate_predicted: f64,
        incumbent_predicted: f64,
        actual: f64,
        objective: f64,
    ) -> GuardrailState {
        match self.state {
            GuardrailState::Shadow => {
                self.seen_tenants.insert(tenant);
                self.shadow
                    .record(candidate_predicted, incumbent_predicted, actual);
                if self.shadow.samples >= self.options.min_shadow_samples.max(1) {
                    if self.shadow.candidate_mean() < self.shadow.incumbent_mean() {
                        self.state = GuardrailState::Canary;
                        self.canary_tenants = self
                            .seen_tenants
                            .iter()
                            .copied()
                            .take(self.options.canary_tenants.max(1))
                            .collect();
                        self.baseline_objective = Some(objective);
                    } else {
                        // Worse than the incumbent while changing
                        // nothing: rejected without ever acting.
                        self.state = GuardrailState::RolledBack;
                    }
                }
            }
            GuardrailState::Canary => {
                if self.is_canary_tenant(tenant) {
                    self.canary
                        .record(candidate_predicted, incumbent_predicted, actual);
                    if self.canary.samples >= self.options.min_canary_samples.max(1) {
                        let error_ok = self.canary.candidate_mean()
                            <= self.canary.incumbent_mean()
                                * (1.0 + self.options.max_error_inflation);
                        let objective_ok = match self.baseline_objective {
                            None => true,
                            Some(base) => {
                                objective <= base * (1.0 + self.options.max_objective_regression)
                            }
                        };
                        self.state = if error_ok && objective_ok {
                            GuardrailState::Promoted
                        } else {
                            GuardrailState::RolledBack
                        };
                    }
                }
            }
            GuardrailState::Promoted | GuardrailState::RolledBack => {}
        }
        self.state
    }

    /// Deterministic forced rollback — e.g. a canary machine was
    /// decommissioned mid-canary, so the verdict can never arrive.
    /// No-op once promoted.
    pub fn force_rollback(&mut self) {
        if self.state != GuardrailState::Promoted {
            self.state = GuardrailState::RolledBack;
        }
    }

    /// Export every field for snapshotting.
    pub fn export(&self) -> GuardrailExport {
        GuardrailExport {
            state: self.state,
            candidate: self.candidate,
            base_fingerprint: self.base_fingerprint,
            shadow: self.shadow,
            canary: self.canary,
            seen_tenants: self.seen_tenants.iter().copied().collect(),
            canary_tenants: self.canary_tenants.clone(),
            baseline_objective: self.baseline_objective,
        }
    }

    /// Rebuild from an export plus the (caller-owned) options. The
    /// round trip `import(export(), options)` is exact.
    pub fn import(e: GuardrailExport, options: GuardrailOptions) -> Self {
        GuardrailTracker {
            options,
            state: e.state,
            candidate: e.candidate,
            base_fingerprint: e.base_fingerprint,
            shadow: e.shadow,
            canary: e.canary,
            seen_tenants: e.seen_tenants.into_iter().collect(),
            canary_tenants: e.canary_tenants,
            baseline_objective: e.baseline_objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::adaptive::AxisCorrection;

    fn candidate() -> Adaption {
        Adaption {
            correction: AxisCorrection::scale_only(1.5),
            version: 7,
        }
    }

    fn opts() -> GuardrailOptions {
        GuardrailOptions {
            min_shadow_samples: 2,
            canary_tenants: 1,
            min_canary_samples: 2,
            max_error_inflation: 0.25,
            max_objective_regression: 0.05,
        }
    }

    #[test]
    fn better_candidate_walks_shadow_canary_promoted() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        // Actual is 3.0; incumbent predicts 2.0, candidate 3.0.
        assert_eq!(t.observe(10, 3.0, 2.0, 3.0, 100.0), GuardrailState::Shadow);
        assert_eq!(t.observe(20, 3.0, 2.0, 3.0, 100.0), GuardrailState::Canary);
        // Canary subset: lowest fingerprint seen in shadow.
        assert_eq!(t.canary_tenants(), &[10]);
        // Non-canary reports do not advance the canary gate.
        assert_eq!(t.observe(20, 3.0, 2.0, 3.0, 100.0), GuardrailState::Canary);
        assert_eq!(t.observe(10, 3.0, 2.0, 3.0, 100.0), GuardrailState::Canary);
        assert_eq!(
            t.observe(10, 3.0, 2.0, 3.0, 100.0),
            GuardrailState::Promoted
        );
        assert!(t.state().is_terminal());
    }

    #[test]
    fn worse_candidate_is_rejected_in_shadow() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        assert_eq!(t.observe(1, 5.0, 3.0, 3.0, 100.0), GuardrailState::Shadow);
        assert_eq!(
            t.observe(2, 5.0, 3.0, 3.0, 100.0),
            GuardrailState::RolledBack
        );
        assert!(t.canary_tenants().is_empty());
    }

    #[test]
    fn mispredicting_canary_is_rolled_back() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        // Shadow: candidate looks better.
        t.observe(1, 3.0, 2.0, 3.0, 100.0);
        t.observe(2, 3.0, 2.0, 3.0, 100.0);
        assert_eq!(t.state(), GuardrailState::Canary);
        // Canary: the world shifted — the candidate now mispredicts
        // badly while the incumbent is close.
        t.observe(1, 6.0, 2.1, 2.0, 100.0);
        assert_eq!(
            t.observe(1, 6.0, 2.1, 2.0, 100.0),
            GuardrailState::RolledBack
        );
    }

    #[test]
    fn objective_regression_fails_the_canary_gate() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        t.observe(1, 3.0, 2.0, 3.0, 100.0);
        t.observe(2, 3.0, 2.0, 3.0, 100.0);
        assert_eq!(t.state(), GuardrailState::Canary);
        // Accurate canary predictions, but the fleet objective
        // regressed 10 % past the recorded baseline.
        t.observe(1, 3.0, 2.0, 3.0, 110.0);
        assert_eq!(
            t.observe(1, 3.0, 2.0, 3.0, 110.0),
            GuardrailState::RolledBack
        );
    }

    #[test]
    fn force_rollback_is_deterministic_and_spares_promoted() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        t.force_rollback();
        assert_eq!(t.state(), GuardrailState::RolledBack);

        let mut p = GuardrailTracker::new(candidate(), 0xB, opts());
        p.observe(1, 3.0, 2.0, 3.0, 100.0);
        p.observe(2, 3.0, 2.0, 3.0, 100.0);
        p.observe(1, 3.0, 2.0, 3.0, 100.0);
        p.observe(1, 3.0, 2.0, 3.0, 100.0);
        assert_eq!(p.state(), GuardrailState::Promoted);
        p.force_rollback();
        assert_eq!(p.state(), GuardrailState::Promoted);
    }

    #[test]
    fn export_import_round_trips_exactly() {
        let mut t = GuardrailTracker::new(candidate(), 0xB, opts());
        t.observe(5, 3.0, 2.0, 3.0, 100.0);
        t.observe(9, 3.0, 2.0, 3.0, 100.0);
        t.observe(5, 3.0, 2.1, 2.9, 101.0);
        let back = GuardrailTracker::import(t.export(), opts());
        assert_eq!(t, back);
        assert_eq!(t.export(), back.export());
    }

    #[test]
    fn state_names_round_trip() {
        for s in [
            GuardrailState::Shadow,
            GuardrailState::Canary,
            GuardrailState::Promoted,
            GuardrailState::RolledBack,
        ] {
            assert_eq!(GuardrailState::from_name(s.name()), Some(s));
        }
        assert_eq!(GuardrailState::from_name("nope"), None);
    }
}
