//! A minimal JSON value type, reader, and writer for durable state.
//!
//! The vendored `serde` is a marker-only stub (ROADMAP: "nothing
//! serializes yet"), so everything that persists — the `BENCH_*.json`
//! artifacts and the control plane's [`crate::snapshot`] files — is
//! written by hand-rolled formatters and read back by this hand-rolled
//! recursive-descent parser. It supports exactly the JSON those
//! writers emit: objects, arrays, strings (no escapes beyond `\"`,
//! `\\`, `\n`, `\t`), numbers, booleans, and `null`.
//!
//! This module started life as `vda_bench::jsonval` (the CI
//! bench-regression gate's reader); the control plane's snapshot
//! format promoted it into `vda-core` and added the writer. The bench
//! crate re-exports it unchanged.
//!
//! ## Exactness
//!
//! [`write()`] emits finite `f64`s with Rust's shortest-round-trip
//! `Display`, and [`parse`] recovers them with `str::parse::<f64>()`
//! — so a finite float survives a write → parse cycle **bit for
//! bit**. Two deliberate gaps, handled by the schema layer rather
//! than here:
//!
//! * Non-finite floats have no JSON literal. [`write()`] renders them
//!   as `null`; callers that must round-trip `INFINITY` (e.g. an
//!   unset QoS degradation limit) encode a string sentinel instead.
//! * `u64` values above 2^53 (fingerprints are full 64-bit hashes) do
//!   not fit in [`Json::Num`]'s `f64` losslessly. Snapshots store
//!   them as fixed-width hex strings ([`Json::hex_u64`] /
//!   [`Json::as_hex_u64`]).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (f64 precision suffices for the bench artifacts).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode a full-width `u64` (fingerprints, warm keys) as a
    /// fixed-width hex string — `Json::Num` is an `f64` and would
    /// silently round anything above 2^53.
    pub fn hex_u64(value: u64) -> Json {
        Json::Str(format!("{value:016x}"))
    }

    /// Decode a [`Json::hex_u64`]-encoded value.
    pub fn as_hex_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => u64::from_str_radix(s, 16).ok(),
            _ => None,
        }
    }

    /// Every scalar leaf under this value, keyed by its path
    /// (`algorithms[0].serial_ms`-style). Arrays index, objects dot.
    pub fn leaves(&self) -> BTreeMap<String, Json> {
        let mut out = BTreeMap::new();
        self.collect_leaves(String::new(), &mut out);
        out
    }

    fn collect_leaves(&self, path: String, out: &mut BTreeMap<String, Json>) {
        match self {
            Json::Obj(members) => {
                for (k, v) in members {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    v.collect_leaves(sub, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    v.collect_leaves(format!("{path}[{i}]"), out);
                }
            }
            leaf => {
                out.insert(path, leaf.clone());
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => write!(f, "{x}"),
            Json::Str(s) => write!(f, "{s:?}"),
            Json::Arr(items) => write!(f, "[{} items]", items.len()),
            Json::Obj(members) => write!(f, "{{{} members}}", members.len()),
        }
    }
}

/// Serialize a [`Json`] value to a compact document the [`parse`]r
/// round-trips exactly: finite floats via shortest-round-trip
/// `Display` (integers without a trailing `.0`), strings with only
/// the four escapes the parser understands, non-finite floats as
/// `null` (see the module docs for the sentinel story).
pub fn write(value: &Json) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

/// Format one `f64` exactly as [`write()`] would inside a document:
/// shortest-round-trip digits for finite values, `null` for NaN and
/// the infinities. This is the blessed spelling for code that emits
/// floats into hand-assembled JSON (e.g. the bench artifact writers)
/// instead of a bare `{}` placeholder.
pub fn fmt_f64(x: f64) -> String {
    let mut out = String::new();
    write_num(x, &mut out);
    out
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => write_num(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_num(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // `{}` on a whole f64 prints without a decimal point ("3"),
        // which the parser reads back as the same f64 — keep it.
        let _ = write!(out, "{x}");
    } else {
        // Shortest round-trip: `{}` for f64 guarantees
        // `out.parse::<f64>() == x` bit for bit.
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting ceiling for the recursive-descent parser. Snapshot and
/// bench documents nest a handful of levels; anything deeper is a
/// malformed or adversarial input, and rejecting it with an error
/// beats overflowing the stack.
const MAX_DEPTH: usize = 512;

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    // Accumulate raw bytes and validate once at the closing quote:
    // pushing each byte as a `char` would re-encode bytes >= 0x80 and
    // mangle multi-byte UTF-8 sequences.
    let mut out: Vec<u8> = Vec::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out)
                    .map_err(|e| format!("string is not valid UTF-8: {e}"));
            }
            b'\\' => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    other => {
                        return Err(format!("unsupported escape {other:?} at byte {pos}"));
                    }
                };
                out.push(escaped);
                *pos += 1;
            }
            b => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_shape() {
        let doc = r#"{
  "experiment": "enumeration",
  "threads": 1,
  "algorithms": [
    { "name": "greedy", "serial_ms": 12.5, "identical": true },
    { "name": "exhaustive", "serial_ms": 80.25, "identical": true }
  ],
  "coarse_to_fine": { "meets_5x": true, "calls": 4040 }
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("experiment"),
            Some(&Json::Str("enumeration".to_string()))
        );
        assert_eq!(v.get("threads").and_then(Json::as_f64), Some(1.0));
        let leaves = v.leaves();
        assert_eq!(
            leaves.get("algorithms[1].serial_ms"),
            Some(&Json::Num(80.25))
        );
        assert_eq!(
            leaves.get("coarse_to_fine.meets_5x"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} junk").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_empty_containers_and_null() {
        let v = parse("{\"a\": [], \"b\": {}, \"c\": null}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![])));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("c"), Some(&Json::Null));
        // Null is a leaf.
        assert_eq!(v.leaves().get("c"), Some(&Json::Null));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let v = parse("[-1.5, 2e3, 0.000001]").unwrap();
        let leaves = v.leaves();
        assert_eq!(leaves.get("[0]"), Some(&Json::Num(-1.5)));
        assert_eq!(leaves.get("[1]"), Some(&Json::Num(2000.0)));
    }

    #[test]
    fn write_parse_round_trips_structures() {
        let doc = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("n".into(), Json::Num(-12.75)),
            (
                "s".into(),
                Json::Str("line\nbreak\ttab \"quoted\" back\\slash".into()),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        assert_eq!(parse(&write(&doc)).unwrap(), doc);
    }

    #[test]
    fn write_parse_round_trips_awkward_floats_bit_for_bit() {
        let values = [
            0.1_f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            -0.0,
            1e-300,
            123_456_789.123_456_78,
            2f64.powi(60),
            // Subnormals: the smallest positive f64 and the largest
            // subnormal (all-ones mantissa, zero exponent).
            f64::from_bits(1),
            f64::from_bits(0x000F_FFFF_FFFF_FFFF),
            -f64::from_bits(1),
        ];
        for &x in &values {
            let doc = Json::Arr(vec![Json::Num(x)]);
            let back = parse(&write(&doc)).unwrap();
            let y = back.as_arr().unwrap()[0].as_f64().unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x:?} did not round-trip");
            // fmt_f64 must agree with the in-document spelling.
            assert_eq!(write(&Json::Num(x)), fmt_f64(x));
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn negative_zero_keeps_its_sign_bit() {
        let back = parse(&write(&Json::Num(-0.0))).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), (-0.0_f64).to_bits());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let depth = 100_000;
        let mut doc = String::new();
        doc.push_str(&"[".repeat(depth));
        doc.push('1');
        doc.push_str(&"]".repeat(depth));
        let err = parse(&doc).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A fat but legal document still parses.
        let legal = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&legal).is_ok());
    }

    #[test]
    fn multi_byte_utf8_strings_round_trip() {
        for s in [
            "héllo",
            "δ=0.05",
            "日本語",
            "emoji 🦀 crab",
            "mixed π≈3.14159",
        ] {
            let doc = Json::Obj(vec![(s.to_string(), Json::Str(s.to_string()))]);
            let back = parse(&write(&doc)).unwrap();
            assert_eq!(back.get(s).and_then(Json::as_str), Some(s), "{s}");
        }
        // Raw multi-byte bytes inside an incoming document (not
        // produced by `write`) must decode, not be mangled byte-wise.
        let incoming = "{\"label\": \"δ grid\"}";
        let v = parse(incoming).unwrap();
        assert_eq!(v.get("label").and_then(Json::as_str), Some("δ grid"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let doc = Json::Arr(vec![Json::Num(f64::INFINITY), Json::Num(f64::NAN)]);
        assert_eq!(write(&doc), "[null,null]");
    }

    #[test]
    fn hex_u64_round_trips_full_width_values() {
        for v in [
            0u64,
            1,
            u64::MAX,
            0xdead_beef_cafe_f00d,
            1 << 53,
            (1 << 53) + 1,
        ] {
            let j = Json::hex_u64(v);
            assert_eq!(j.as_hex_u64(), Some(v));
            let back = parse(&write(&j)).unwrap();
            assert_eq!(back.as_hex_u64(), Some(v));
        }
    }
}
