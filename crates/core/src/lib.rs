#![warn(missing_docs)]

//! # vda-core
//!
//! The **virtualization design advisor** of Soror et al., *Automatic
//! Virtual Machine Configuration for Database Workloads* (SIGMOD 2008 /
//! TODS). Given `N` database workloads destined for `N` VMs on one
//! physical machine, the advisor recommends how much CPU and memory
//! each VM should get:
//!
//! 1. **Calibration** ([`costmodel::calibration`], §4.3–4.4): measure,
//!    once per DBMS per machine, how the query optimizer's descriptive
//!    configuration parameters depend on the VM's resource allocation.
//! 2. **What-if costing** ([`costmodel::whatif`], §4.1–4.2): map a
//!    candidate allocation to optimizer parameters, ask the optimizer
//!    for workload cost, renormalize to seconds.
//! 3. **Greedy enumeration** ([`enumerate`], §4.5, Fig. 11): shift δ-
//!    sized resource shares from the workload that suffers least to the
//!    workload that gains most, under degradation limits `L_i` and gain
//!    factors `G_i` (§4.6).
//! 4. **Online refinement** ([`refine`], §5): correct optimizer
//!    misestimates from observed runtimes with linear (CPU) and
//!    piecewise-linear (memory) models.
//! 5. **Dynamic configuration management** ([`dynamic`], §6): detect
//!    workload changes via the per-query cost-estimate metric and
//!    rebuild or keep refining accordingly.
//!
//! [`advisor::VirtualizationDesignAdvisor`] is the façade tying it all
//! together over the simulated substrate ([`vda_simdb`], [`vda_vmm`]).

pub mod advisor;
pub mod costmodel;
pub mod dynamic;
pub mod enumerate;
pub mod metrics;
pub mod problem;
pub mod refine;
pub mod tenant;

pub use advisor::{Recommendation, VirtualizationDesignAdvisor};
pub use costmodel::{
    ActualCostModel, CalibratedModel, Calibrator, CostModel, Estimate, FnCostModel,
    RegimeFnCostModel, Renormalizer, SharedEstimateCache, WhatIfEstimator,
};
pub use dynamic::{DynamicConfigManager, DynamicOptions, ManagementMode, PeriodReport};
pub use enumerate::{
    exhaustive_search, exhaustive_search_with, greedy_search, greedy_search_with, SearchOptions,
    SearchResult, TraceStep,
};
pub use metrics::CostAccounting;
pub use problem::{Allocation, QoS, Resource, SearchSpace};
pub use refine::{RefineOptions, RefinedModel, RefinementOutcome};
pub use tenant::{BoundStatement, Tenant};
