#![warn(missing_docs)]

//! # vda-core
//!
//! The **virtualization design advisor** of Soror et al., *Automatic
//! Virtual Machine Configuration for Database Workloads* (SIGMOD 2008 /
//! TODS). Given `N` database workloads destined for `N` VMs on one
//! physical machine, the advisor recommends how much CPU and memory
//! each VM should get:
//!
//! 1. **Calibration** ([`costmodel::calibration`], §4.3–4.4): measure,
//!    once per DBMS per machine, how the query optimizer's descriptive
//!    configuration parameters depend on the VM's resource allocation.
//! 2. **What-if costing** ([`costmodel::whatif`], §4.1–4.2): map a
//!    candidate allocation to optimizer parameters, ask the optimizer
//!    for workload cost, renormalize to seconds.
//! 3. **Greedy enumeration** ([`enumerate`], §4.5, Fig. 11): shift δ-
//!    sized resource shares from the workload that suffers least to the
//!    workload that gains most, under degradation limits `L_i` and gain
//!    factors `G_i` (§4.6).
//! 4. **Online refinement** ([`refine`], §5): correct optimizer
//!    misestimates from observed runtimes with linear (CPU) and
//!    piecewise-linear (memory) models.
//! 5. **Dynamic configuration management** ([`dynamic`], §6): detect
//!    workload changes via the per-query cost-estimate metric and
//!    rebuild or keep refining accordingly.
//!
//! Beyond the paper, the **fleet layer** scales the advisor out:
//!
//! 6. **Coarse-to-fine enumeration**
//!    ([`enumerate::coarse_to_fine_search`]): solve the DP grid at a
//!    coarse δ, then refine only inside a window around the coarse
//!    optimum — the full-grid answer at a fraction of the optimizer
//!    calls.
//! 7. **Cross-machine placement** ([`placement`]): assign `N` tenants
//!    to `K` machines — identical or heterogeneous
//!    ([`placement::MachineSpec`]: per-machine search spaces and
//!    resource scales, subset solves memoized per
//!    [`enumerate::MachineClass`]) — via marginal-benefit bin-packing
//!    plus swap/migrate local search over per-machine inner solves.
//!    [`dynamic::FleetManager`] lets major workload changes trigger
//!    live migrations with explicit calibration management
//!    ([`advisor::VirtualizationDesignAdvisor::transfer_tenant`]
//!    returns a [`advisor::TransferCalibration`] verdict): calibrated
//!    models travel only between physically identical machines, and a
//!    cross-class move recalibrates on the destination.
//!
//! [`advisor::VirtualizationDesignAdvisor`] is the façade tying it all
//! together over the simulated substrate ([`vda_simdb`], [`vda_vmm`]).

pub mod advisor;
pub mod controlplane;
pub mod costmodel;
pub mod dynamic;
pub mod enumerate;
pub mod guardrail;
pub mod jsonio;
pub mod metrics;
pub mod placement;
pub mod problem;
pub mod refine;
pub mod snapshot;
pub mod tenant;

pub use advisor::{
    Recommendation, TenantTransfer, TransferCalibration, VirtualizationDesignAdvisor,
};
pub use controlplane::{
    AdaptiveTuningOptions, BatchOutcome, ControlPlane, ControlPlaneOptions, ControlPlaneStats,
    Decision, DecisionLog, EventOutcome, FleetEvent,
};
pub use costmodel::{
    ActualCostModel, Adaption, AdaptionOptions, AdaptiveCostModel, AxisCorrection, CalibratedModel,
    Calibrator, CostModel, Estimate, FnCostModel, ProbeCache, RegimeFnCostModel, Renormalizer,
    RuntimeAdaptionStorage, SharedEstimateCache, WhatIfEstimator,
};
pub use dynamic::{
    DynamicConfigManager, DynamicOptions, FleetDynamicOptions, FleetManager, FleetPeriodReport,
    ManagementMode, Migration, PeriodReport,
};
pub use enumerate::{
    coarse_to_fine_search, coarse_to_fine_search_warm, coarse_to_fine_search_with,
    exhaustive_search, exhaustive_search_with, greedy_search, greedy_search_with,
    try_coarse_to_fine_search_with, try_exhaustive_search_with, CoarseToFineOptions, MachineClass,
    SearchOptions, SearchResult, TraceStep, WarmStart,
};
pub use guardrail::{GuardrailOptions, GuardrailState, GuardrailTracker};
pub use metrics::CostAccounting;
pub use placement::{
    assignment_objective, assignment_objective_heterogeneous, machine_capacity, place_tenants,
    place_tenants_heterogeneous, AssignmentPricer, FleetOptions, InnerSolve, MachineSpec,
    PlacementMove, PlacementResult, ScaledCostModel,
};
pub use problem::{Allocation, QoS, Resource, SearchSpace};
pub use refine::{RefineOptions, RefinedModel, RefinementOutcome};
pub use snapshot::{FleetSnapshot, MachineSnapshot, WarmSnapshot};
pub use tenant::{BoundStatement, Tenant};
