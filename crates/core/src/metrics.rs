//! Performance metrics shared by the experiments (§7.1), plus
//! optimizer-call accounting over [`CostModel`] sets (§7.2 reports the
//! advisor's search cost in optimizer invocations) and the injectable
//! [`Clock`] every latency measurement outside the bench harness must
//! route through.
//!
//! This module is the workspace's *designated wall-clock scope* (see
//! the determinism rules in `docs/ARCHITECTURE.md`): it is the only
//! core module allowed to touch `std::time` directly, so that every
//! other module can be driven by a [`Clock::manual`] in tests and
//! replays.

use crate::costmodel::model::CostModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A millisecond clock that is either the process wall clock or a
/// manually advanced counter.
///
/// Components that report latencies (e.g.
/// [`ControlPlane`](crate::controlplane::ControlPlane)) hold a `Clock`
/// instead of calling `Instant::now` themselves. Production uses
/// [`Clock::wall`]; tests and deterministic replays use
/// [`Clock::manual`], advancing it explicitly so reported latencies
/// are bit-identical run to run.
///
/// Cloning shares the underlying source: advancing one clone of a
/// manual clock advances them all.
#[derive(Debug, Clone)]
pub struct Clock {
    source: ClockSource,
}

#[derive(Debug, Clone)]
enum ClockSource {
    /// Milliseconds since the clock was created.
    Wall(Instant),
    /// Milliseconds advanced by hand.
    Manual(Arc<parking_lot::Mutex<f64>>),
}

impl Clock {
    /// The process wall clock, measuring from now.
    pub fn wall() -> Self {
        Clock {
            source: ClockSource::Wall(Instant::now()),
        }
    }

    /// A deterministic clock starting at zero; advance it with
    /// [`advance_ms`](Self::advance_ms).
    pub fn manual() -> Self {
        Clock {
            source: ClockSource::Manual(Arc::new(parking_lot::Mutex::new(0.0))),
        }
    }

    /// Milliseconds elapsed since the clock's epoch.
    pub fn now_ms(&self) -> f64 {
        match &self.source {
            ClockSource::Wall(epoch) => epoch.elapsed().as_secs_f64() * 1e3,
            ClockSource::Manual(ms) => *ms.lock(),
        }
    }

    /// Advance a manual clock by `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on a wall clock — real time cannot be steered, and a
    /// caller that thinks it can has wired the wrong clock.
    pub fn advance_ms(&self, ms: f64) {
        match &self.source {
            ClockSource::Wall(_) => panic!("advance_ms on a wall clock"),
            ClockSource::Manual(total) => *total.lock() += ms,
        }
    }

    /// Whether this is a manual (deterministic) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.source, ClockSource::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

/// Aggregated optimizer-call/cache-hit accounting over a set of cost
/// models (one search's worth of estimators, typically), plus the
/// cross-period counters of incremental re-optimization: fleet-wide
/// probe-cache hits/misses and warm-start lattice reuses. The
/// per-search counters come from [`Self::tally`]; the cross-period
/// counters are zero there (estimator instances die with the search)
/// and are filled in from the persistent carriers via
/// [`Self::with_probe_cache`] and [`Self::with_lattice_reuses`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostAccounting {
    /// Total query-optimizer invocations.
    pub optimizer_calls: u64,
    /// Total estimate-cache hits.
    pub cache_hits: u64,
    /// Fleet-wide [`ProbeCache`](crate::costmodel::whatif::ProbeCache)
    /// hits (cross-period and cross-machine, unlike `cache_hits` which
    /// an estimator instance only accumulates within one search).
    pub probe_hits: u64,
    /// Fleet-wide probe-cache misses.
    pub probe_misses: u64,
    /// Probe rows evicted by the bounded-memory LRU
    /// ([`ProbeCache::enforce_capacity`](crate::costmodel::whatif::ProbeCache::enforce_capacity));
    /// `0` while the cache runs unbounded.
    pub probe_evictions: u64,
    /// Approximate probe-cache resident size under the cache's fixed
    /// size model
    /// ([`ProbeCache::approx_bytes`](crate::costmodel::whatif::ProbeCache::approx_bytes)) —
    /// deterministic accounting, not a heap measurement.
    pub probe_bytes: u64,
    /// Warm-start delta-solves that reused a retained DP lattice /
    /// option-table instead of rebuilding it (see
    /// [`WarmStart`](crate::enumerate::WarmStart)).
    pub lattice_reuses: u64,
}

impl CostAccounting {
    /// Sum the counters of every model in the set.
    pub fn tally<M: CostModel>(models: &[M]) -> Self {
        CostAccounting {
            optimizer_calls: models.iter().map(|m| m.optimizer_calls()).sum(),
            cache_hits: models.iter().map(|m| m.cache_hits()).sum(),
            ..CostAccounting::default()
        }
    }

    /// Copy with the cross-period probe-cache counters taken from a
    /// fleet [`ProbeCache`](crate::costmodel::whatif::ProbeCache).
    #[must_use]
    pub fn with_probe_cache(mut self, cache: &crate::costmodel::whatif::ProbeCache) -> Self {
        self.probe_hits = cache.hits();
        self.probe_misses = cache.misses();
        self.probe_evictions = cache.evictions();
        self.probe_bytes = cache.approx_bytes();
        self
    }

    /// Copy with the lattice-reuse counter set.
    #[must_use]
    pub fn with_lattice_reuses(mut self, reuses: u64) -> Self {
        self.lattice_reuses = reuses;
        self
    }
}

/// Relative improvement of `t_candidate` over `t_default`:
/// `(T_default − T_candidate) / T_default`. Positive is better;
/// negative means the candidate allocation *hurt* (as the
/// pre-refinement recommendations of §7.8 do).
pub fn relative_improvement(t_default: f64, t_candidate: f64) -> f64 {
    assert!(t_default > 0.0, "default cost must be positive");
    (t_default - t_candidate) / t_default
}

/// Degradation of a workload relative to owning the whole machine:
/// `Cost(W, R) / Cost(W, [1,…,1])` (§3).
pub fn degradation(cost_at_alloc: f64, cost_at_full: f64) -> f64 {
    assert!(cost_at_full > 0.0, "full-allocation cost must be positive");
    cost_at_alloc / cost_at_full
}

/// Nearest-rank percentile of a sample set (`p` in `[0, 100]`), the
/// convention operators expect from latency dashboards: the smallest
/// sample ≥ `p`% of the distribution. The control plane reports its
/// per-event decision latency through this (`p = 99.0` for the bench's
/// p99). Non-finite samples are ignored; returns `0.0` for an empty
/// (or all-non-finite) set.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::FnCostModel;
    use crate::problem::Allocation;

    #[test]
    fn accounting_tallies_zero_for_synthetic_models() {
        let models: Vec<_> = (0..3)
            .map(|_| FnCostModel::new(|a: Allocation| 1.0 / a.cpu()))
            .collect();
        models.iter().for_each(|m| {
            use crate::costmodel::model::CostModel;
            let _ = m.cost(Allocation::new(0.5, 0.5));
        });
        assert_eq!(CostAccounting::tally(&models), CostAccounting::default());
    }

    #[test]
    fn improvement_signs() {
        assert!((relative_improvement(100.0, 76.0) - 0.24).abs() < 1e-12);
        assert!(relative_improvement(100.0, 120.0) < 0.0);
        assert_eq!(relative_improvement(50.0, 50.0), 0.0);
    }

    #[test]
    fn degradation_is_ratio() {
        assert!((degradation(15.0, 10.0) - 1.5).abs() < 1e-12);
        assert_eq!(degradation(10.0, 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "default cost")]
    fn improvement_rejects_zero_baseline() {
        let _ = relative_improvement(0.0, 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 50.0), 3.0);
        assert_eq!(percentile(&samples, 90.0), 5.0);
        assert_eq!(percentile(&samples, 100.0), 5.0);
        // Single sample: every percentile is that sample.
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Empty and non-finite inputs degrade to zero.
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 99.0), 0.0);
        // Non-finite samples are skipped, not counted.
        assert_eq!(percentile(&[f64::NAN, 2.0, 1.0], 50.0), 1.0);
    }

    #[test]
    fn manual_clock_is_deterministic_and_shared() {
        let clock = Clock::manual();
        assert!(clock.is_manual());
        assert_eq!(clock.now_ms(), 0.0);
        let clone = clock.clone();
        clock.advance_ms(12.5);
        clone.advance_ms(0.5);
        assert_eq!(clock.now_ms(), 13.0);
        assert_eq!(clone.now_ms(), 13.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = Clock::wall();
        assert!(!clock.is_manual());
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    #[should_panic(expected = "advance_ms on a wall clock")]
    fn wall_clock_rejects_manual_advance() {
        Clock::wall().advance_ms(1.0);
    }
}
