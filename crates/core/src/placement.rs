//! Cross-machine tenant placement (the fleet layer).
//!
//! The paper configures `N` workloads on **one** physical machine; a
//! production fleet first has to decide *which* tenant lands on
//! *which* machine. This module assigns `N` tenants to `K` identical
//! machines:
//!
//! 1. **Greedy bin-pack seeding**: tenants are ordered by their
//!    gain-weighted *marginal benefit* — how much a tenant's cost
//!    model says it gains between starving (minimum share) and owning
//!    a whole machine — and placed, most resource-sensitive first, on
//!    the machine where they raise the fleet objective least.
//! 2. **Local search**: single-tenant migrations and pairwise swaps
//!    across machines, steepest-descent, until no move improves the
//!    total gain-weighted cost.
//!
//! Every machine-subset evaluation is a full per-machine inner solve —
//! [`greedy_search_with`], [`try_exhaustive_search_with`], or
//! [`try_coarse_to_fine_search_with`] — over the tenants currently on
//! that machine, so the placer optimizes exactly the objective the
//! per-machine advisor will realize. Subset solves are memoized for
//! the lifetime of one placement (machines are identical, so a
//! subset's solve is machine-independent).
//!
//! Degradation limits make some subsets jointly infeasible; every
//! inner solver (greedy and the grid DPs alike) reports those
//! best-effort via `limits_met`, and each unmet limit costs an
//! [`FleetOptions::infeasibility_penalty`], steering the local search
//! toward spreading constrained tenants out rather than aborting.

use crate::costmodel::model::CostModel;
use crate::enumerate::{
    greedy_search_with, try_coarse_to_fine_search_with, try_exhaustive_search_with,
    CoarseToFineOptions, SearchOptions, SearchResult,
};
use crate::problem::{Allocation, QoS, SearchSpace};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Which per-machine solver prices (and finally configures) each
/// machine's tenant subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InnerSolve {
    /// The Figure 11 greedy enumerator (cheap, near-optimal).
    Greedy,
    /// The full-grid DP optimum.
    Exhaustive,
    /// Coarse-to-fine DP refinement (grid-optimal on separable costs,
    /// far fewer probes).
    CoarseToFine(CoarseToFineOptions),
}

/// Fleet-placement settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOptions {
    /// Number of identical machines `K`.
    pub machines: usize,
    /// Per-machine solver.
    pub inner: InnerSolve,
    /// Candidate-evaluation options for the inner solves.
    pub search: SearchOptions,
    /// Local-search round cap (each round applies at most one move;
    /// the search stops earlier when no move improves).
    pub max_rounds: usize,
    /// Objective penalty per unmet degradation limit, pricing
    /// infeasible-but-rankable subsets.
    pub infeasibility_penalty: f64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            machines: 2,
            inner: InnerSolve::Greedy,
            search: SearchOptions::default(),
            max_rounds: 32,
            infeasibility_penalty: 1e9,
        }
    }
}

impl FleetOptions {
    /// Options for `machines` identical machines, greedy inner solve.
    pub fn for_machines(machines: usize) -> Self {
        FleetOptions {
            machines,
            ..FleetOptions::default()
        }
    }
}

/// One accepted local-search move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementMove {
    /// Tenant moved from one machine to another.
    Migrate {
        /// Tenant index.
        tenant: usize,
        /// Source machine.
        from: usize,
        /// Destination machine.
        to: usize,
        /// Fleet-objective reduction from the move.
        improvement: f64,
    },
    /// Two tenants on different machines exchanged places.
    Swap {
        /// First tenant index.
        a: usize,
        /// Second tenant index.
        b: usize,
        /// Fleet-objective reduction from the move.
        improvement: f64,
    },
}

/// The fleet layer's answer: who goes where, and each machine's
/// per-machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementResult {
    /// `assignment[i]` is tenant `i`'s machine.
    pub assignment: Vec<usize>,
    /// Inner-solve result per machine (`None` for empty machines).
    /// `per_machine[m].allocations[j]` configures the `j`-th tenant of
    /// machine `m` in tenant-index order.
    pub per_machine: Vec<Option<SearchResult>>,
    /// Total gain-weighted cost over the fleet (without penalties).
    pub total_weighted_cost: f64,
    /// Fleet objective (weighted cost plus infeasibility penalties) —
    /// what seeding and local search actually minimize.
    pub objective: f64,
    /// Accepted local-search moves, in order.
    pub moves: Vec<PlacementMove>,
    /// Distinct machine subsets solved (memoized inner solves).
    pub inner_solves: usize,
    /// The seeding order's gain-weighted marginal benefit per tenant.
    pub marginal_benefits: Vec<f64>,
}

impl PlacementResult {
    /// Tenant indices on machine `m`, ascending (the order of
    /// `per_machine[m].allocations`).
    pub fn tenants_on(&self, m: usize) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&i| self.assignment[i] == m)
            .collect()
    }

    /// The recommended allocation of tenant `i`, if its machine's
    /// subset was feasible enough to solve.
    pub fn allocation_of(&self, i: usize) -> Option<Allocation> {
        let m = self.assignment[i];
        let slot = self.tenants_on(m).iter().position(|&t| t == i)?;
        self.per_machine[m].as_ref().map(|r| r.allocations[slot])
    }
}

/// How many tenants one machine can host at all: every tenant needs at
/// least `min_share` of each varied resource.
pub fn machine_capacity(space: &SearchSpace) -> usize {
    assert!(space.min_share > 0.0, "min_share must be positive");
    ((1.0 + 1e-9) / space.min_share).floor() as usize
}

/// Memoized pricing of one machine subset: fleet objective plus the
/// inner solve that produced it (`None` when grid-infeasible).
type SubsetCache = RefCell<HashMap<Vec<usize>, (f64, Option<SearchResult>)>>;

/// Memoizing fleet evaluator: subset → (objective, inner solve).
struct FleetSolver<'a, M> {
    space: &'a SearchSpace,
    qos: &'a [QoS],
    models: &'a [M],
    options: &'a FleetOptions,
    cache: SubsetCache,
    solves: Cell<usize>,
}

impl<'a, M: CostModel> FleetSolver<'a, M> {
    fn new(
        space: &'a SearchSpace,
        qos: &'a [QoS],
        models: &'a [M],
        options: &'a FleetOptions,
    ) -> Self {
        FleetSolver {
            space,
            qos,
            models,
            options,
            cache: RefCell::new(HashMap::new()),
            solves: Cell::new(0),
        }
    }

    /// Objective of hosting `subset` (ascending tenant indices) on one
    /// machine: gain-weighted cost plus one infeasibility penalty per
    /// unmet degradation limit — uniform across greedy and grid inner
    /// solves, since all of them now report joint infeasibility
    /// best-effort via `limits_met`. Penalties are *finite*, so
    /// seeding deltas and local-search improvements stay comparable
    /// (∞ − ∞ would be NaN and silently freeze both), and every
    /// constrained tenant moved off an overloaded machine shrinks the
    /// objective. The `None` arm survives only for structural
    /// infeasibility (a subset the δ grid cannot host at all).
    fn objective(&self, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        if let Some((obj, _)) = self.cache.borrow().get(subset) {
            return *obj;
        }
        let qos_sub: Vec<QoS> = subset.iter().map(|&i| self.qos[i]).collect();
        let models_sub: Vec<&M> = subset.iter().map(|&i| &self.models[i]).collect();
        let result = match &self.options.inner {
            InnerSolve::Greedy => Some(greedy_search_with(
                self.space,
                &qos_sub,
                &models_sub,
                &self.options.search,
            )),
            InnerSolve::Exhaustive => {
                try_exhaustive_search_with(self.space, &qos_sub, &models_sub, &self.options.search)
            }
            InnerSolve::CoarseToFine(c2f) => try_coarse_to_fine_search_with(
                self.space,
                &qos_sub,
                &models_sub,
                c2f,
                &self.options.search,
            ),
        };
        self.solves.set(self.solves.get() + 1);
        let obj = match &result {
            None => self.options.infeasibility_penalty * subset.len() as f64,
            Some(r) => {
                let unmet = r.limits_met.iter().filter(|&&m| !m).count();
                r.weighted_cost + self.options.infeasibility_penalty * unmet as f64
            }
        };
        self.cache
            .borrow_mut()
            .insert(subset.to_vec(), (obj, result));
        obj
    }

    /// Cached inner solve for `subset` (must have been priced already).
    fn solution(&self, subset: &[usize]) -> Option<SearchResult> {
        self.cache.borrow().get(subset).and_then(|(_, r)| r.clone())
    }
}

fn subset_of(assignment: &[usize], m: usize) -> Vec<usize> {
    (0..assignment.len())
        .filter(|&i| assignment[i] == m)
        .collect()
}

/// Assign `N` tenants (their cost models and QoS) to
/// `options.machines` identical machines described by `space`.
///
/// Machines are identical by construction — one `SearchSpace` serves
/// all of them — which is what lets subset solves be memoized
/// machine-independently. Heterogeneous fleets are an open ROADMAP
/// item.
pub fn place_tenants<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &FleetOptions,
) -> PlacementResult {
    let n = models.len();
    assert!(n >= 1, "at least one tenant");
    assert_eq!(qos.len(), n, "one QoS entry per tenant");
    let k = options.machines;
    assert!(k >= 1, "at least one machine");
    let capacity = machine_capacity(space);
    assert!(
        capacity * k >= n,
        "fleet too small: {k} machines of capacity {capacity} for {n} tenants"
    );

    let solver = FleetSolver::new(space, qos, models, options);

    // Gain-weighted marginal benefit: the cost spread the tenant's
    // model reports between its minimum share and owning the machine.
    // Large spread ⇒ resource-sensitive ⇒ placed first, while machines
    // are still empty.
    let starved = Allocation {
        cpu: if space.vary_cpu {
            space.min_share
        } else {
            space.fixed.cpu
        },
        memory: if space.vary_memory {
            space.min_share
        } else {
            space.fixed.memory
        },
    };
    let solo = space.solo_allocation();
    let marginal_benefits: Vec<f64> = (0..n)
        .map(|i| qos[i].gain * (models[i].cost(starved) - models[i].cost(solo)))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        marginal_benefits[b]
            .partial_cmp(&marginal_benefits[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Greedy bin-pack: put each tenant on the machine where it raises
    // the fleet objective least (first such machine on ties, so the
    // construction is deterministic).
    let mut assignment = vec![usize::MAX; n];
    for &t in &order {
        let mut best: Option<(usize, f64)> = None;
        for m in 0..k {
            let mut subset = subset_of(&assignment, m);
            if subset.len() >= capacity {
                continue;
            }
            let before = solver.objective(&subset);
            subset.push(t);
            subset.sort_unstable();
            let delta = solver.objective(&subset) - before;
            if best.is_none_or(|(_, d)| delta < d - 1e-12) {
                best = Some((m, delta));
            }
        }
        let (m, _) = best.expect("capacity check guarantees a machine");
        assignment[t] = m;
    }

    // Local search: steepest-descent migrations and swaps.
    let mut moves = Vec::new();
    let total = |assignment: &[usize]| -> f64 {
        (0..k)
            .map(|m| solver.objective(&subset_of(assignment, m)))
            .sum()
    };
    let mut current = total(&assignment);
    for _ in 0..options.max_rounds {
        let mut best: Option<(PlacementMove, Vec<usize>, f64)> = None;
        // Single-tenant migrations.
        for t in 0..n {
            let from = assignment[t];
            for to in 0..k {
                if to == from || subset_of(&assignment, to).len() >= capacity {
                    continue;
                }
                let mut cand = assignment.clone();
                cand[t] = to;
                let obj = total(&cand);
                let improvement = current - obj;
                if improvement > 1e-9 && best.as_ref().is_none_or(|(_, _, b)| improvement > *b) {
                    best = Some((
                        PlacementMove::Migrate {
                            tenant: t,
                            from,
                            to,
                            improvement,
                        },
                        cand,
                        improvement,
                    ));
                }
            }
        }
        // Pairwise swaps across machines.
        for a in 0..n {
            for b in (a + 1)..n {
                if assignment[a] == assignment[b] {
                    continue;
                }
                let mut cand = assignment.clone();
                cand.swap(a, b);
                let obj = total(&cand);
                let improvement = current - obj;
                if improvement > 1e-9 && best.as_ref().is_none_or(|(_, _, i)| improvement > *i) {
                    best = Some((PlacementMove::Swap { a, b, improvement }, cand, improvement));
                }
            }
        }
        let Some((mv, cand, improvement)) = best else {
            break;
        };
        assignment = cand;
        current -= improvement;
        moves.push(mv);
    }

    // Materialize per-machine configurations from the memoized solves.
    let per_machine: Vec<Option<SearchResult>> = (0..k)
        .map(|m| {
            let subset = subset_of(&assignment, m);
            if subset.is_empty() {
                None
            } else {
                solver.objective(&subset); // ensure cached
                solver.solution(&subset)
            }
        })
        .collect();
    let total_weighted_cost = per_machine.iter().flatten().map(|r| r.weighted_cost).sum();

    PlacementResult {
        assignment,
        per_machine,
        total_weighted_cost,
        objective: current,
        moves,
        inner_solves: solver.solves.get(),
        marginal_benefits,
    }
}

/// Fleet objective of an explicit assignment (same pricing as
/// [`place_tenants`]: per-machine inner solves, penalties for unmet
/// limits). The dynamic fleet manager uses this to price candidate
/// migrations after a workload change.
pub fn assignment_objective<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    assignment: &[usize],
    options: &FleetOptions,
) -> f64 {
    AssignmentPricer::new(space, qos, models, options).objective(assignment)
}

/// Prices many related assignments with *shared* subset memoization.
///
/// The dynamic fleet manager evaluates one base assignment plus every
/// candidate migration; consecutive candidates differ on only two
/// machines, so a shared cache turns O(candidates · K) inner solves
/// into solves of just the subsets that actually changed. One-shot
/// callers can use [`assignment_objective`] instead.
pub struct AssignmentPricer<'a, M> {
    solver: FleetSolver<'a, M>,
    machines: usize,
}

impl<'a, M: CostModel> AssignmentPricer<'a, M> {
    /// A pricer over a fixed (space, QoS, models, options) problem.
    pub fn new(
        space: &'a SearchSpace,
        qos: &'a [QoS],
        models: &'a [M],
        options: &'a FleetOptions,
    ) -> Self {
        AssignmentPricer {
            solver: FleetSolver::new(space, qos, models, options),
            machines: options.machines,
        }
    }

    /// Fleet objective of `assignment` (same pricing as
    /// [`place_tenants`]).
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.solver.models.len());
        (0..self.machines)
            .map(|m| self.solver.objective(&subset_of(assignment, m)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::FnCostModel;

    fn synth(alphas: Vec<f64>) -> Vec<impl CostModel> {
        alphas
            .into_iter()
            .map(|alpha| FnCostModel::new(move |a: Allocation| alpha / a.cpu + 1.0))
            .collect()
    }

    fn qos_n(n: usize) -> Vec<QoS> {
        vec![QoS::default(); n]
    }

    #[test]
    fn placement_spreads_hungry_tenants_across_machines() {
        let space = SearchSpace::cpu_only(0.5);
        // Two very hungry tenants and two light ones: each machine
        // should get one hungry tenant.
        let models = synth(vec![50.0, 50.0, 1.0, 1.0]);
        let r = place_tenants(&space, &qos_n(4), &models, &FleetOptions::for_machines(2));
        assert_ne!(
            r.assignment[0], r.assignment[1],
            "hungry tenants must not share: {:?}",
            r.assignment
        );
        assert!(r.total_weighted_cost.is_finite());
    }

    #[test]
    fn placement_beats_round_robin_on_skewed_fleet() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![40.0, 35.0, 30.0, 1.0, 1.0, 1.0]);
        let qos = qos_n(6);
        let opts = FleetOptions::for_machines(3);
        let placed = place_tenants(&space, &qos, &models, &opts);
        let round_robin: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let rr = assignment_objective(&space, &qos, &models, &round_robin, &opts);
        assert!(
            placed.objective <= rr + 1e-9,
            "placement {} must not lose to round-robin {}",
            placed.objective,
            rr
        );
    }

    #[test]
    fn single_machine_matches_plain_search() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![9.0, 4.0, 1.0]);
        let qos = qos_n(3);
        let r = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(1));
        let direct = greedy_search_with(&space, &qos, &models, &SearchOptions::default());
        assert!(r.assignment.iter().all(|&m| m == 0));
        assert_eq!(r.per_machine[0].as_ref().unwrap(), &direct);
        assert!((r.total_weighted_cost - direct.weighted_cost).abs() < 1e-12);
    }

    #[test]
    fn moves_strictly_improve_the_objective() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![20.0, 18.0, 2.0, 1.5, 1.0]);
        let r = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
        for mv in &r.moves {
            let improvement = match mv {
                PlacementMove::Migrate { improvement, .. } => *improvement,
                PlacementMove::Swap { improvement, .. } => *improvement,
            };
            assert!(improvement > 0.0, "{mv:?}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        // min_share 0.25 → at most 4 tenants per machine; 6 tenants
        // need both machines even if one machine would price lower.
        let mut space = SearchSpace::cpu_only(0.5);
        space.min_share = 0.25;
        space.delta = 0.25;
        let models = synth(vec![1.0; 6]);
        let r = place_tenants(&space, &qos_n(6), &models, &FleetOptions::for_machines(2));
        for m in 0..2 {
            assert!(r.tenants_on(m).len() <= 4, "{:?}", r.assignment);
        }
    }

    #[test]
    #[should_panic(expected = "fleet too small")]
    fn too_small_fleet_panics() {
        let mut space = SearchSpace::cpu_only(0.5);
        space.min_share = 0.5;
        space.delta = 0.5;
        let models = synth(vec![1.0; 5]);
        let _ = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
    }

    #[test]
    fn infeasible_limits_push_tenants_apart() {
        let space = SearchSpace::cpu_only(0.5);
        // Both tenants need nearly the whole machine to meet their
        // limit: any shared machine pays the infeasibility penalty, so
        // the placer must separate them.
        let models = synth(vec![10.0, 10.0, 0.1, 0.1]);
        let qos = vec![
            QoS::with_limit(1.05),
            QoS::with_limit(1.05),
            QoS::default(),
            QoS::default(),
        ];
        let r = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(2));
        assert_ne!(r.assignment[0], r.assignment[1], "{:?}", r.assignment);
        assert!(
            r.objective < 1e6,
            "penalty must be avoided: {}",
            r.objective
        );
    }

    #[test]
    fn grid_inner_solve_separates_infeasible_pairs_without_nans() {
        // Regression: grid inner solves used to price infeasible
        // subsets at +∞, making seeding deltas and local-search
        // improvements NaN (∞ − ∞), which froze tenants on infeasible
        // machines. With finite per-tenant penalties the exhaustive
        // inner solve must separate the constrained pair too.
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![10.0, 10.0, 0.1, 0.1]);
        let qos = vec![
            QoS::with_limit(1.05),
            QoS::with_limit(1.05),
            QoS::default(),
            QoS::default(),
        ];
        let r = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        assert_ne!(r.assignment[0], r.assignment[1], "{:?}", r.assignment);
        assert!(r.objective.is_finite());
        assert!(
            r.objective < 1e6,
            "penalty must be avoided: {}",
            r.objective
        );
        // Both machines solved (no machine stuck infeasible).
        for m in 0..2 {
            assert!(r.per_machine[m].is_some(), "machine {m} unsolved");
        }
    }

    #[test]
    fn allocation_lookup_is_consistent() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![12.0, 6.0, 3.0, 1.0]);
        let r = place_tenants(&space, &qos_n(4), &models, &FleetOptions::for_machines(2));
        for i in 0..4 {
            let a = r.allocation_of(i).expect("feasible fleet");
            assert!(a.cpu >= space.min_share - 1e-9);
        }
        // Per machine, shares sum to at most one.
        for m in 0..2 {
            let total: f64 = r
                .tenants_on(m)
                .iter()
                .map(|&i| r.allocation_of(i).unwrap().cpu)
                .sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn coarse_to_fine_inner_solve_matches_exhaustive_under_limits() {
        // The limit-aware coarse-to-fine path must price
        // limit-constrained tenants exactly like the full grid, so the
        // two inner solvers produce the same fleet decisions — without
        // the c2f solver paying full-grid cost per subset.
        let mut space = SearchSpace::cpu_only(0.5);
        space.delta = 0.01;
        let models = synth(vec![12.0, 9.0, 2.0, 1.0]);
        let qos = vec![
            QoS::with_limit(2.0),
            QoS::default(),
            QoS::with_limit(3.0),
            QoS::default(),
        ];
        let exact = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        let c2f = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::CoarseToFine(CoarseToFineOptions::default()),
                ..FleetOptions::for_machines(2)
            },
        );
        assert!(
            (c2f.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "c2f {} vs exhaustive {}",
            c2f.objective,
            exact.objective
        );
        assert_eq!(c2f.assignment, exact.assignment);
        for m in 0..2 {
            let (a, b) = (c2f.per_machine[m].as_ref(), exact.per_machine[m].as_ref());
            assert_eq!(
                a.map(|r| &r.limits_met),
                b.map(|r| &r.limits_met),
                "machine {m} limit verdicts differ"
            );
        }
    }

    #[test]
    fn exhaustive_inner_solve_matches_or_beats_greedy_inner() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![9.0, 7.0, 2.0, 1.0]);
        let qos = qos_n(4);
        let greedy = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(2));
        let exact = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        assert!(exact.objective <= greedy.objective + 1e-9);
    }

    #[test]
    fn subset_memoization_bounds_inner_solves() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        let r = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
        // 5 tenants over 2 machines: far fewer distinct subsets than
        // the local search's move evaluations.
        assert!(r.inner_solves <= 62, "{}", r.inner_solves);
    }
}
