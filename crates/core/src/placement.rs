//! Cross-machine tenant placement (the fleet layer).
//!
//! The paper configures `N` workloads on **one** physical machine; a
//! production fleet first has to decide *which* tenant lands on
//! *which* machine. This module assigns `N` tenants to `K` machines —
//! identical or **heterogeneous** (capacities, grid resolutions, and
//! resource ceilings may all differ per machine):
//!
//! 1. **Greedy bin-pack seeding**: tenants are ordered by their
//!    gain-weighted *marginal benefit* — how much a tenant's cost
//!    model says it gains between starving (minimum share) and owning
//!    a whole machine, maximized over the fleet's machine classes —
//!    and placed, most resource-sensitive first, on the machine where
//!    they raise the fleet objective least.
//! 2. **Local search**: single-tenant migrations and pairwise swaps
//!    across machines, steepest-descent, until no move improves the
//!    total gain-weighted cost. Every candidate move is priced against
//!    the *destination* machine's search space and scale.
//!
//! Every machine-subset evaluation is a full per-machine inner solve —
//! [`greedy_search_with`], [`try_exhaustive_search_with`], or
//! [`try_coarse_to_fine_search_with`] — over the tenants currently on
//! that machine, so the placer optimizes exactly the objective the
//! per-machine advisor will realize. Subset solves are memoized for
//! the lifetime of one placement, keyed by `(`[`MachineClass`]`,
//! subset)`: machines of the same class share solves (the homogeneous
//! fast path), while different classes never cross-contaminate.
//!
//! Heterogeneous fleets enter through [`MachineSpec`]: each machine
//! carries its own [`SearchSpace`] plus a resource **scale** relative
//! to the fleet's reference machine. A tenant's cost model is written
//! in reference-machine units; on a machine of scale `s`, a share `a`
//! of that machine is priced as `model(a ⊙ s)` (see
//! [`ScaledCostModel`]). Degradation limits stay machine-relative:
//! `L_i` bounds the tenant's cost against its solo cost *on the
//! machine it is placed on*, exactly what the per-machine advisor will
//! later enforce.
//!
//! Degradation limits make some subsets jointly infeasible; every
//! inner solver (greedy and the grid DPs alike) reports those
//! best-effort via `limits_met`, and each unmet limit costs an
//! [`FleetOptions::infeasibility_penalty`], steering the local search
//! toward spreading constrained tenants out rather than aborting.

use crate::costmodel::model::CostModel;
use crate::costmodel::whatif::Estimate;
use crate::enumerate::{
    greedy_search_with, try_coarse_to_fine_search_with, try_exhaustive_search_with,
    CoarseToFineOptions, MachineClass, SearchOptions, SearchResult,
};
use crate::problem::{Allocation, QoS, Resource, ResourceVector, SearchSpace};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Which per-machine solver prices (and finally configures) each
/// machine's tenant subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InnerSolve {
    /// The Figure 11 greedy enumerator (cheap, near-optimal).
    Greedy,
    /// The full-grid DP optimum.
    Exhaustive,
    /// Coarse-to-fine DP refinement (grid-optimal on separable costs,
    /// far fewer probes).
    CoarseToFine(CoarseToFineOptions),
}

/// Fleet-placement settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOptions {
    /// Number of identical machines `K` (homogeneous entry points
    /// only; the heterogeneous entry points take one [`MachineSpec`]
    /// per machine and ignore this field).
    pub machines: usize,
    /// Per-machine solver.
    pub inner: InnerSolve,
    /// Candidate-evaluation options for the inner solves.
    pub search: SearchOptions,
    /// Local-search round cap (each round applies at most one move;
    /// the search stops earlier when no move improves).
    pub max_rounds: usize,
    /// Objective penalty per unmet degradation limit, pricing
    /// infeasible-but-rankable subsets.
    pub infeasibility_penalty: f64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            machines: 2,
            inner: InnerSolve::Greedy,
            search: SearchOptions::default(),
            max_rounds: 32,
            infeasibility_penalty: 1e9,
        }
    }
}

impl FleetOptions {
    /// Options for `machines` identical machines, greedy inner solve.
    pub fn for_machines(machines: usize) -> Self {
        FleetOptions {
            machines,
            ..FleetOptions::default()
        }
    }
}

/// One machine of a (possibly heterogeneous) fleet: its search space
/// plus its resource capacity relative to the fleet's reference
/// machine.
///
/// `scale` maps a share of *this* machine into reference-machine
/// units: a machine with half the reference CPU and memory has `scale
/// = (0.5, 0.5)`, so giving a tenant the whole small machine prices
/// like half the reference machine. Cost models passed to the
/// heterogeneous entry points are written in reference units and
/// wrapped per machine by [`ScaledCostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// This machine's search space (its own δ, `min_share`, fixed
    /// shares — capacities and grid resolutions may differ per
    /// machine).
    pub space: SearchSpace,
    /// Per-axis capacity as a fraction of the reference machine.
    pub scale: Allocation,
}

impl MachineSpec {
    /// A reference-sized machine (scale 1 in both resources).
    pub fn reference(space: SearchSpace) -> Self {
        MachineSpec {
            space,
            scale: Allocation::full(),
        }
    }

    /// A machine with `cpu_scale`/`memory_scale` times the reference
    /// machine's resources (disk and network stay at the reference
    /// scale; see [`Self::scaled_vector`] for the full axis set).
    /// Scales must be positive and finite (they may exceed 1 if some
    /// machine outgrows the reference).
    pub fn scaled(space: SearchSpace, cpu_scale: f64, memory_scale: f64) -> Self {
        Self::scaled_vector(
            space,
            Allocation::full()
                .with(Resource::Cpu, cpu_scale)
                .with(Resource::Memory, memory_scale),
        )
    }

    /// A machine whose capacity differs from the reference on an
    /// arbitrary axis set: `scale.get(r)` is this machine's capacity
    /// of resource `r` as a fraction (or multiple) of the reference
    /// machine's.
    pub fn scaled_vector(space: SearchSpace, scale: ResourceVector) -> Self {
        for r in Resource::ALL {
            let v = scale.get(r);
            assert!(
                v > 0.0 && v.is_finite(),
                "{} scale must be positive and finite",
                r.name()
            );
        }
        MachineSpec { space, scale }
    }

    /// The machine's class for cache keying: same space **and** same
    /// scale (on every axis) ⇒ same class; anything differing ⇒
    /// distinct classes, so subset solves can never leak across
    /// machine kinds. The scale is quantized at the same 1e-9
    /// resolution as the space fields (the [`MachineClass`] contract:
    /// dust-level differences share a class, genuinely different
    /// machines never do).
    pub fn class(&self) -> MachineClass {
        Resource::ALL
            .into_iter()
            .fold(MachineClass::of(&self.space), |class, r| {
                class.salted_share(self.scale.get(r))
            })
    }

    /// How many tenants this machine can host (every tenant needs at
    /// least `min_share` of each varied resource).
    pub fn capacity(&self) -> usize {
        machine_capacity(&self.space)
    }
}

/// A cost model re-based onto one machine of a heterogeneous fleet: a
/// share `a` of the machine is priced as the wrapped model's cost at
/// `a ⊙ scale` (reference-machine units). Optimizer-call and
/// cache-hit accounting delegate to the wrapped model.
#[derive(Debug, Clone, Copy)]
pub struct ScaledCostModel<M> {
    inner: M,
    scale: Allocation,
}

impl<M: CostModel> ScaledCostModel<M> {
    /// Wrap `inner` (reference units) for a machine of `scale`.
    pub fn new(inner: M, scale: Allocation) -> Self {
        ScaledCostModel { inner, scale }
    }
}

impl<M: CostModel> CostModel for ScaledCostModel<M> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        self.inner.estimate(alloc.scaled_by(&self.scale))
    }

    fn optimizer_calls(&self) -> u64 {
        self.inner.optimizer_calls()
    }

    fn cache_hits(&self) -> u64 {
        self.inner.cache_hits()
    }
}

/// One accepted local-search move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementMove {
    /// Tenant moved from one machine to another.
    Migrate {
        /// Tenant index.
        tenant: usize,
        /// Source machine.
        from: usize,
        /// Destination machine.
        to: usize,
        /// Fleet-objective reduction from the move.
        improvement: f64,
    },
    /// Two tenants on different machines exchanged places.
    Swap {
        /// First tenant index.
        a: usize,
        /// Second tenant index.
        b: usize,
        /// Fleet-objective reduction from the move.
        improvement: f64,
    },
}

/// The fleet layer's answer: who goes where, and each machine's
/// per-machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementResult {
    /// `assignment[i]` is tenant `i`'s machine.
    pub assignment: Vec<usize>,
    /// Inner-solve result per machine (`None` for empty machines).
    /// `per_machine[m].allocations[j]` configures the `j`-th tenant of
    /// machine `m` in tenant-index order, in *shares of that machine*.
    pub per_machine: Vec<Option<SearchResult>>,
    /// Each machine's class (identical fleets have one class; the
    /// memo cache is keyed by it).
    pub machine_classes: Vec<MachineClass>,
    /// Total gain-weighted cost over the fleet (without penalties).
    pub total_weighted_cost: f64,
    /// Fleet objective (weighted cost plus infeasibility penalties) —
    /// what seeding and local search actually minimize.
    pub objective: f64,
    /// Accepted local-search moves, in order.
    pub moves: Vec<PlacementMove>,
    /// Distinct (machine class, tenant subset) inner solves (memoized).
    pub inner_solves: usize,
    /// The seeding order's gain-weighted marginal benefit per tenant
    /// (maximized over the fleet's machine classes).
    pub marginal_benefits: Vec<f64>,
}

impl PlacementResult {
    /// Tenant indices on machine `m`, ascending (the order of
    /// `per_machine[m].allocations`).
    pub fn tenants_on(&self, m: usize) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&i| self.assignment[i] == m)
            .collect()
    }

    /// The recommended allocation of tenant `i`, if its machine's
    /// subset was feasible enough to solve.
    pub fn allocation_of(&self, i: usize) -> Option<Allocation> {
        let m = self.assignment[i];
        let slot = self.tenants_on(m).iter().position(|&t| t == i)?;
        self.per_machine[m].as_ref().map(|r| r.allocations[slot])
    }
}

/// How many tenants one machine can host at all: every tenant needs at
/// least `min_share` of each varied resource.
pub fn machine_capacity(space: &SearchSpace) -> usize {
    assert!(space.min_share > 0.0, "min_share must be positive");
    ((1.0 + 1e-9) / space.min_share).floor() as usize
}

/// Memoized pricing of machine subsets, keyed by machine class, then
/// subset: fleet objective plus the inner solve that produced it
/// (`None` when grid-infeasible). Two levels so cache probes can use
/// the borrowed `&[usize]` subset without allocating a key.
type SubsetCache = RefCell<HashMap<MachineClass, HashMap<Vec<usize>, (f64, Option<SearchResult>)>>>;

/// Per-(machine, tenant) cost-model access. The homogeneous entry
/// points share one model slice across all machines; heterogeneous
/// ones carry a full `machine × tenant` matrix (scaled wrappers, or
/// per-machine-class estimators).
enum ModelView<'a, M> {
    /// `models[i]` prices tenant `i` on every machine.
    Shared(&'a [M]),
    /// `models[m][i]` prices tenant `i` on machine `m`.
    PerMachine(Vec<Vec<M>>),
}

impl<M: CostModel> ModelView<'_, M> {
    fn model(&self, machine: usize, tenant: usize) -> &M {
        match self {
            ModelView::Shared(models) => &models[tenant],
            ModelView::PerMachine(rows) => &rows[machine][tenant],
        }
    }
}

/// Memoizing fleet evaluator: (machine, subset) → (objective, inner
/// solve), with solves shared across machines of the same class.
struct FleetSolver<'a, M> {
    spaces: Vec<SearchSpace>,
    classes: Vec<MachineClass>,
    qos: &'a [QoS],
    models: ModelView<'a, M>,
    options: &'a FleetOptions,
    cache: SubsetCache,
    solves: Cell<usize>,
}

impl<'a, M: CostModel> FleetSolver<'a, M> {
    fn new(
        spaces: Vec<SearchSpace>,
        classes: Vec<MachineClass>,
        qos: &'a [QoS],
        models: ModelView<'a, M>,
        options: &'a FleetOptions,
    ) -> Self {
        assert_eq!(spaces.len(), classes.len());
        assert!(!spaces.is_empty(), "at least one machine");
        let n = qos.len();
        match &models {
            ModelView::Shared(m) => assert_eq!(m.len(), n, "one model per tenant"),
            ModelView::PerMachine(rows) => {
                assert_eq!(rows.len(), spaces.len(), "one model row per machine");
                for row in rows {
                    assert_eq!(row.len(), n, "one model per tenant per machine");
                }
            }
        }
        FleetSolver {
            spaces,
            classes,
            qos,
            models,
            options,
            cache: RefCell::new(HashMap::new()),
            solves: Cell::new(0),
        }
    }

    fn machines(&self) -> usize {
        self.spaces.len()
    }

    /// Per-machine host capacities.
    fn capacities(&self) -> Vec<usize> {
        self.spaces.iter().map(machine_capacity).collect()
    }

    /// First machine of each distinct class, in machine order — the
    /// representatives used wherever per-class work must happen
    /// exactly once (marginal benefits, memo lookups).
    fn class_representatives(&self) -> Vec<usize> {
        let mut reps: Vec<usize> = Vec::new();
        for m in 0..self.machines() {
            if !reps.iter().any(|&r| self.classes[r] == self.classes[m]) {
                reps.push(m);
            }
        }
        reps
    }

    /// Objective of hosting `subset` (ascending tenant indices) on
    /// machine `m`: gain-weighted cost plus one infeasibility penalty
    /// per unmet degradation limit — uniform across greedy and grid
    /// inner solves, since all of them now report joint infeasibility
    /// best-effort via `limits_met`. Penalties are *finite*, so
    /// seeding deltas and local-search improvements stay comparable
    /// (∞ − ∞ would be NaN and silently freeze both), and every
    /// constrained tenant moved off an overloaded machine shrinks the
    /// objective. The `None` arm survives only for structural
    /// infeasibility (a subset the δ grid cannot host at all).
    fn objective(&self, m: usize, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        // Borrowed two-level probe: cache hits (the vast majority of
        // local-search evaluations) allocate nothing.
        if let Some((obj, _)) = self
            .cache
            .borrow()
            .get(&self.classes[m])
            .and_then(|per_class| per_class.get(subset))
        {
            return *obj;
        }
        let space = &self.spaces[m];
        let qos_sub: Vec<QoS> = subset.iter().map(|&i| self.qos[i]).collect();
        let models_sub: Vec<&M> = subset.iter().map(|&i| self.models.model(m, i)).collect();
        let result = match &self.options.inner {
            InnerSolve::Greedy => Some(greedy_search_with(
                space,
                &qos_sub,
                &models_sub,
                &self.options.search,
            )),
            InnerSolve::Exhaustive => {
                try_exhaustive_search_with(space, &qos_sub, &models_sub, &self.options.search)
            }
            InnerSolve::CoarseToFine(c2f) => try_coarse_to_fine_search_with(
                space,
                &qos_sub,
                &models_sub,
                c2f,
                &self.options.search,
            ),
        };
        self.solves.set(self.solves.get() + 1);
        let obj = match &result {
            None => self.options.infeasibility_penalty * subset.len() as f64,
            Some(r) => {
                let unmet = r.limits_met.iter().filter(|&&met| !met).count();
                r.weighted_cost + self.options.infeasibility_penalty * unmet as f64
            }
        };
        self.cache
            .borrow_mut()
            .entry(self.classes[m])
            .or_default()
            .insert(subset.to_vec(), (obj, result));
        obj
    }

    /// Cached inner solve for `subset` on machine `m` (must have been
    /// priced already).
    fn solution(&self, m: usize, subset: &[usize]) -> Option<SearchResult> {
        self.cache
            .borrow()
            .get(&self.classes[m])
            .and_then(|per_class| per_class.get(subset))
            .and_then(|(_, r)| r.clone())
    }

    /// Fleet objective of a full assignment.
    fn total(&self, assignment: &[usize]) -> f64 {
        (0..self.machines())
            .map(|m| self.objective(m, &subset_of(assignment, m)))
            .sum()
    }
}

fn subset_of(assignment: &[usize], m: usize) -> Vec<usize> {
    (0..assignment.len())
        .filter(|&i| assignment[i] == m)
        .collect()
}

/// The allocation a tenant holds when starved on `space`: minimum
/// share of every varied resource, the fixed share otherwise.
fn starved_allocation(space: &SearchSpace) -> Allocation {
    Allocation::from_fn(|r| {
        if space.is_varied(r) {
            space.min_share
        } else {
            space.fixed.get(r)
        }
    })
}

/// Assign `N` tenants (their cost models and QoS) to
/// `options.machines` identical machines described by `space`.
///
/// The homogeneous fast path: one `SearchSpace` serves all machines,
/// so every machine shares one [`MachineClass`] and subset solves are
/// shared fleet-wide. For fleets whose machines differ, use
/// [`place_tenants_heterogeneous`].
pub fn place_tenants<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    options: &FleetOptions,
) -> PlacementResult {
    let k = options.machines;
    let class = MachineClass::of(space);
    let solver = FleetSolver::new(
        vec![*space; k],
        vec![class; k],
        qos,
        ModelView::Shared(models),
        options,
    );
    place_impl(&solver)
}

/// Assign `N` tenants to a **heterogeneous** fleet: one
/// [`MachineSpec`] per machine (its own search space, grid resolution,
/// and resource scale). `models[i]` prices tenant `i` in
/// reference-machine units; each machine sees it through a
/// [`ScaledCostModel`] at that machine's scale. `options.machines` is
/// ignored — the fleet size is `specs.len()`.
pub fn place_tenants_heterogeneous<M: CostModel>(
    specs: &[MachineSpec],
    qos: &[QoS],
    models: &[M],
    options: &FleetOptions,
) -> PlacementResult {
    let solver = hetero_solver(specs, qos, models, options);
    place_impl(&solver)
}

/// Build the per-machine scaled-model solver for a heterogeneous
/// fleet.
fn hetero_solver<'a, M: CostModel>(
    specs: &[MachineSpec],
    qos: &'a [QoS],
    models: &'a [M],
    options: &'a FleetOptions,
) -> FleetSolver<'a, ScaledCostModel<&'a M>> {
    assert!(!specs.is_empty(), "at least one machine spec");
    let rows: Vec<Vec<ScaledCostModel<&M>>> = specs
        .iter()
        .map(|spec| {
            models
                .iter()
                .map(|m| ScaledCostModel::new(m, spec.scale))
                .collect()
        })
        .collect();
    FleetSolver::new(
        specs.iter().map(|s| s.space).collect(),
        specs.iter().map(|s| s.class()).collect(),
        qos,
        ModelView::PerMachine(rows),
        options,
    )
}

/// The shared placement algorithm: greedy marginal-benefit seeding
/// plus steepest-descent migrate/swap local search, all priced through
/// the solver's class-keyed memo cache.
fn place_impl<M: CostModel>(solver: &FleetSolver<'_, M>) -> PlacementResult {
    let n = solver.qos.len();
    assert!(n >= 1, "at least one tenant");
    let k = solver.machines();
    let capacities = solver.capacities();
    let total_capacity: usize = capacities.iter().sum();
    assert!(
        total_capacity >= n,
        "fleet too small: {k} machines with total capacity {total_capacity} for {n} tenants"
    );

    // Gain-weighted marginal benefit: the cost spread the tenant's
    // model reports between its minimum share and owning a machine,
    // maximized over the fleet's distinct machine classes (evaluated
    // once per class so homogeneous fleets pay exactly one probe
    // pair per tenant). Large spread ⇒ resource-sensitive ⇒ placed
    // first, while machines are still empty.
    let reps = solver.class_representatives();
    let marginal_benefits: Vec<f64> = (0..n)
        .map(|i| {
            reps.iter()
                .map(|&m| {
                    let space = &solver.spaces[m];
                    let model = solver.models.model(m, i);
                    solver.qos[i].gain
                        * (model.cost(starved_allocation(space))
                            - model.cost(space.solo_allocation()))
                })
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        marginal_benefits[b]
            .partial_cmp(&marginal_benefits[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Greedy bin-pack: put each tenant on the machine where it raises
    // the fleet objective least (first such machine on ties, so the
    // construction is deterministic). Deltas are priced against each
    // candidate machine's own space and scale.
    let mut assignment = vec![usize::MAX; n];
    for &t in &order {
        let mut best: Option<(usize, f64)> = None;
        for (m, &capacity) in capacities.iter().enumerate() {
            let mut subset = subset_of(&assignment, m);
            if subset.len() >= capacity {
                continue;
            }
            let before = solver.objective(m, &subset);
            subset.push(t);
            subset.sort_unstable();
            let delta = solver.objective(m, &subset) - before;
            if best.is_none_or(|(_, d)| delta < d - 1e-12) {
                best = Some((m, delta));
            }
        }
        let (m, _) = best.expect("capacity check guarantees a machine");
        assignment[t] = m;
    }

    // Local search: steepest-descent migrations and swaps, each
    // candidate priced on its destination machine.
    let mut moves = Vec::new();
    let mut current = solver.total(&assignment);
    for _ in 0..solver.options.max_rounds {
        let mut best: Option<(PlacementMove, Vec<usize>, f64)> = None;
        // Single-tenant migrations.
        for t in 0..n {
            let from = assignment[t];
            for (to, &capacity) in capacities.iter().enumerate() {
                if to == from || subset_of(&assignment, to).len() >= capacity {
                    continue;
                }
                let mut cand = assignment.clone();
                cand[t] = to;
                let obj = solver.total(&cand);
                let improvement = current - obj;
                if improvement > 1e-9 && best.as_ref().is_none_or(|(_, _, b)| improvement > *b) {
                    best = Some((
                        PlacementMove::Migrate {
                            tenant: t,
                            from,
                            to,
                            improvement,
                        },
                        cand,
                        improvement,
                    ));
                }
            }
        }
        // Pairwise swaps across machines.
        for a in 0..n {
            for b in (a + 1)..n {
                if assignment[a] == assignment[b] {
                    continue;
                }
                let mut cand = assignment.clone();
                cand.swap(a, b);
                let obj = solver.total(&cand);
                let improvement = current - obj;
                if improvement > 1e-9 && best.as_ref().is_none_or(|(_, _, i)| improvement > *i) {
                    best = Some((PlacementMove::Swap { a, b, improvement }, cand, improvement));
                }
            }
        }
        let Some((mv, cand, improvement)) = best else {
            break;
        };
        assignment = cand;
        current -= improvement;
        moves.push(mv);
    }

    // Materialize per-machine configurations from the memoized solves.
    let per_machine: Vec<Option<SearchResult>> = (0..k)
        .map(|m| {
            let subset = subset_of(&assignment, m);
            if subset.is_empty() {
                None
            } else {
                solver.objective(m, &subset); // ensure cached
                solver.solution(m, &subset)
            }
        })
        .collect();
    let total_weighted_cost = per_machine.iter().flatten().map(|r| r.weighted_cost).sum();

    PlacementResult {
        assignment,
        per_machine,
        machine_classes: solver.classes.clone(),
        total_weighted_cost,
        objective: current,
        moves,
        inner_solves: solver.solves.get(),
        marginal_benefits,
    }
}

/// Fleet objective of an explicit assignment (same pricing as
/// [`place_tenants`]: per-machine inner solves, penalties for unmet
/// limits). The dynamic fleet manager uses this to price candidate
/// migrations after a workload change.
pub fn assignment_objective<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    assignment: &[usize],
    options: &FleetOptions,
) -> f64 {
    AssignmentPricer::new(space, qos, models, options).objective(assignment)
}

/// Fleet objective of an explicit assignment over a **heterogeneous**
/// fleet (same pricing as [`place_tenants_heterogeneous`]).
pub fn assignment_objective_heterogeneous<M: CostModel>(
    specs: &[MachineSpec],
    qos: &[QoS],
    models: &[M],
    assignment: &[usize],
    options: &FleetOptions,
) -> f64 {
    AssignmentPricer::heterogeneous(specs, qos, models, options).objective(assignment)
}

/// Prices many related assignments with *shared* subset memoization.
///
/// The dynamic fleet manager evaluates one base assignment plus every
/// candidate migration; consecutive candidates differ on only two
/// machines, so a shared cache turns O(candidates · K) inner solves
/// into solves of just the subsets that actually changed. One-shot
/// callers can use [`assignment_objective`] instead.
pub struct AssignmentPricer<'a, M> {
    solver: FleetSolver<'a, M>,
}

impl<'a, M: CostModel> AssignmentPricer<'a, M> {
    /// A pricer over a fixed (space, QoS, models, options) problem on
    /// `options.machines` identical machines.
    pub fn new(
        space: &SearchSpace,
        qos: &'a [QoS],
        models: &'a [M],
        options: &'a FleetOptions,
    ) -> Self {
        let k = options.machines;
        let class = MachineClass::of(space);
        AssignmentPricer {
            solver: FleetSolver::new(
                vec![*space; k],
                vec![class; k],
                qos,
                ModelView::Shared(models),
                options,
            ),
        }
    }

    /// A pricer over an explicit per-machine model matrix:
    /// `models[m][i]` prices tenant `i` on machine `m`, and `classes`
    /// keys the memo cache (machines sharing a class must be given
    /// equivalent model rows). The fleet-manager path uses this with
    /// per-machine-class calibrated estimators.
    pub fn per_machine(
        spaces: Vec<SearchSpace>,
        classes: Vec<MachineClass>,
        qos: &'a [QoS],
        models: Vec<Vec<M>>,
        options: &'a FleetOptions,
    ) -> Self {
        AssignmentPricer {
            solver: FleetSolver::new(spaces, classes, qos, ModelView::PerMachine(models), options),
        }
    }

    /// Fleet objective of `assignment` (same pricing as
    /// [`place_tenants`] / [`place_tenants_heterogeneous`]).
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.solver.qos.len());
        self.solver.total(assignment)
    }

    /// Number of machines this pricer covers.
    pub fn machines(&self) -> usize {
        self.solver.machines()
    }
}

impl<'a, M: CostModel> AssignmentPricer<'a, ScaledCostModel<&'a M>> {
    /// A pricer over a heterogeneous fleet: one [`MachineSpec`] per
    /// machine, tenant models in reference-machine units (wrapped per
    /// machine by [`ScaledCostModel`]). `options.machines` is ignored.
    pub fn heterogeneous(
        specs: &[MachineSpec],
        qos: &'a [QoS],
        models: &'a [M],
        options: &'a FleetOptions,
    ) -> Self {
        AssignmentPricer {
            solver: hetero_solver(specs, qos, models, options),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::FnCostModel;

    fn synth(alphas: Vec<f64>) -> Vec<impl CostModel> {
        alphas
            .into_iter()
            .map(|alpha| FnCostModel::new(move |a: Allocation| alpha / a.cpu() + 1.0))
            .collect()
    }

    fn qos_n(n: usize) -> Vec<QoS> {
        vec![QoS::default(); n]
    }

    #[test]
    fn placement_spreads_hungry_tenants_across_machines() {
        let space = SearchSpace::cpu_only(0.5);
        // Two very hungry tenants and two light ones: each machine
        // should get one hungry tenant.
        let models = synth(vec![50.0, 50.0, 1.0, 1.0]);
        let r = place_tenants(&space, &qos_n(4), &models, &FleetOptions::for_machines(2));
        assert_ne!(
            r.assignment[0], r.assignment[1],
            "hungry tenants must not share: {:?}",
            r.assignment
        );
        assert!(r.total_weighted_cost.is_finite());
        // Identical machines: one shared class.
        assert_eq!(r.machine_classes[0], r.machine_classes[1]);
    }

    #[test]
    fn placement_beats_round_robin_on_skewed_fleet() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![40.0, 35.0, 30.0, 1.0, 1.0, 1.0]);
        let qos = qos_n(6);
        let opts = FleetOptions::for_machines(3);
        let placed = place_tenants(&space, &qos, &models, &opts);
        let round_robin: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let rr = assignment_objective(&space, &qos, &models, &round_robin, &opts);
        assert!(
            placed.objective <= rr + 1e-9,
            "placement {} must not lose to round-robin {}",
            placed.objective,
            rr
        );
    }

    #[test]
    fn single_machine_matches_plain_search() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![9.0, 4.0, 1.0]);
        let qos = qos_n(3);
        let r = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(1));
        let direct = greedy_search_with(&space, &qos, &models, &SearchOptions::default());
        assert!(r.assignment.iter().all(|&m| m == 0));
        assert_eq!(r.per_machine[0].as_ref().unwrap(), &direct);
        assert!((r.total_weighted_cost - direct.weighted_cost).abs() < 1e-12);
    }

    #[test]
    fn moves_strictly_improve_the_objective() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![20.0, 18.0, 2.0, 1.5, 1.0]);
        let r = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
        for mv in &r.moves {
            let improvement = match mv {
                PlacementMove::Migrate { improvement, .. } => *improvement,
                PlacementMove::Swap { improvement, .. } => *improvement,
            };
            assert!(improvement > 0.0, "{mv:?}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        // min_share 0.25 → at most 4 tenants per machine; 6 tenants
        // need both machines even if one machine would price lower.
        let mut space = SearchSpace::cpu_only(0.5);
        space.min_share = 0.25;
        space.set_delta(0.25);
        let models = synth(vec![1.0; 6]);
        let r = place_tenants(&space, &qos_n(6), &models, &FleetOptions::for_machines(2));
        for m in 0..2 {
            assert!(r.tenants_on(m).len() <= 4, "{:?}", r.assignment);
        }
    }

    #[test]
    #[should_panic(expected = "fleet too small")]
    fn too_small_fleet_panics() {
        let mut space = SearchSpace::cpu_only(0.5);
        space.min_share = 0.5;
        space.set_delta(0.5);
        let models = synth(vec![1.0; 5]);
        let _ = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
    }

    #[test]
    fn infeasible_limits_push_tenants_apart() {
        let space = SearchSpace::cpu_only(0.5);
        // Both tenants need nearly the whole machine to meet their
        // limit: any shared machine pays the infeasibility penalty, so
        // the placer must separate them.
        let models = synth(vec![10.0, 10.0, 0.1, 0.1]);
        let qos = vec![
            QoS::with_limit(1.05),
            QoS::with_limit(1.05),
            QoS::default(),
            QoS::default(),
        ];
        let r = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(2));
        assert_ne!(r.assignment[0], r.assignment[1], "{:?}", r.assignment);
        assert!(
            r.objective < 1e6,
            "penalty must be avoided: {}",
            r.objective
        );
    }

    #[test]
    fn grid_inner_solve_separates_infeasible_pairs_without_nans() {
        // Regression: grid inner solves used to price infeasible
        // subsets at +∞, making seeding deltas and local-search
        // improvements NaN (∞ − ∞), which froze tenants on infeasible
        // machines. With finite per-tenant penalties the exhaustive
        // inner solve must separate the constrained pair too.
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![10.0, 10.0, 0.1, 0.1]);
        let qos = vec![
            QoS::with_limit(1.05),
            QoS::with_limit(1.05),
            QoS::default(),
            QoS::default(),
        ];
        let r = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        assert_ne!(r.assignment[0], r.assignment[1], "{:?}", r.assignment);
        assert!(r.objective.is_finite());
        assert!(
            r.objective < 1e6,
            "penalty must be avoided: {}",
            r.objective
        );
        // Both machines solved (no machine stuck infeasible).
        for m in 0..2 {
            assert!(r.per_machine[m].is_some(), "machine {m} unsolved");
        }
    }

    #[test]
    fn allocation_lookup_is_consistent() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![12.0, 6.0, 3.0, 1.0]);
        let r = place_tenants(&space, &qos_n(4), &models, &FleetOptions::for_machines(2));
        for i in 0..4 {
            let a = r.allocation_of(i).expect("feasible fleet");
            assert!(a.cpu() >= space.min_share - 1e-9);
        }
        // Per machine, shares sum to at most one.
        for m in 0..2 {
            let total: f64 = r
                .tenants_on(m)
                .iter()
                .map(|&i| r.allocation_of(i).unwrap().cpu())
                .sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn coarse_to_fine_inner_solve_matches_exhaustive_under_limits() {
        // The limit-aware coarse-to-fine path must price
        // limit-constrained tenants exactly like the full grid, so the
        // two inner solvers produce the same fleet decisions — without
        // the c2f solver paying full-grid cost per subset.
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let models = synth(vec![12.0, 9.0, 2.0, 1.0]);
        let qos = vec![
            QoS::with_limit(2.0),
            QoS::default(),
            QoS::with_limit(3.0),
            QoS::default(),
        ];
        let exact = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        let c2f = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::CoarseToFine(CoarseToFineOptions::default()),
                ..FleetOptions::for_machines(2)
            },
        );
        assert!(
            (c2f.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "c2f {} vs exhaustive {}",
            c2f.objective,
            exact.objective
        );
        assert_eq!(c2f.assignment, exact.assignment);
        for m in 0..2 {
            let (a, b) = (c2f.per_machine[m].as_ref(), exact.per_machine[m].as_ref());
            assert_eq!(
                a.map(|r| &r.limits_met),
                b.map(|r| &r.limits_met),
                "machine {m} limit verdicts differ"
            );
        }
    }

    #[test]
    fn exhaustive_inner_solve_matches_or_beats_greedy_inner() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![9.0, 7.0, 2.0, 1.0]);
        let qos = qos_n(4);
        let greedy = place_tenants(&space, &qos, &models, &FleetOptions::for_machines(2));
        let exact = place_tenants(
            &space,
            &qos,
            &models,
            &FleetOptions {
                inner: InnerSolve::Exhaustive,
                ..FleetOptions::for_machines(2)
            },
        );
        assert!(exact.objective <= greedy.objective + 1e-9);
    }

    #[test]
    fn subset_memoization_bounds_inner_solves() {
        let space = SearchSpace::cpu_only(0.5);
        let models = synth(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        let r = place_tenants(&space, &qos_n(5), &models, &FleetOptions::for_machines(2));
        // 5 tenants over 2 machines: far fewer distinct subsets than
        // the local search's move evaluations.
        assert!(r.inner_solves <= 62, "{}", r.inner_solves);
    }

    // ---- heterogeneous fleets ----

    /// A big (reference) and a half-scale small machine over the same
    /// CPU-only space.
    fn big_and_small() -> Vec<MachineSpec> {
        let space = SearchSpace::cpu_only(0.5);
        vec![
            MachineSpec::reference(space),
            MachineSpec::scaled(space, 0.5, 1.0),
        ]
    }

    #[test]
    fn machine_class_separates_specs() {
        let specs = big_and_small();
        assert_ne!(specs[0].class(), specs[1].class());
        // A scale difference on the NEW axis separates classes too: no
        // layer may silently ignore the third axis.
        let slow_disk = MachineSpec::scaled_vector(
            specs[0].space,
            ResourceVector::full().with(Resource::DiskBandwidth, 0.5),
        );
        assert_ne!(specs[0].class(), slow_disk.class());
        // Same spec ⇒ same class; scale dust ⇒ same class.
        assert_eq!(
            specs[0].class(),
            MachineSpec::reference(specs[0].space).class()
        );
        let dusty = MachineSpec::scaled(specs[1].space, 0.5 + 1e-13, 1.0);
        assert_eq!(specs[1].class(), dusty.class());
        // A different δ is a different class even at the same scale.
        let mut fine = specs[0].space;
        fine.set_delta(0.01);
        assert_ne!(specs[0].class(), MachineSpec::reference(fine).class());
    }

    #[test]
    fn memo_cache_is_machine_class_specific() {
        // Regression guard against the old machine-independent memo
        // key: the SAME tenant subset priced on two machine classes
        // through one shared pricer must give class-specific
        // objectives. A subset-only key would serve the big machine's
        // cached solve for the small machine.
        let specs = big_and_small();
        let models = synth(vec![8.0]);
        let qos = qos_n(1);
        let opts = FleetOptions::for_machines(2);
        let pricer = AssignmentPricer::heterogeneous(&specs, &qos, &models, &opts);
        // Price on the big machine FIRST so a subset-only memo key
        // would poison the small machine's lookup.
        let on_big = pricer.objective(&[0]);
        let on_small = pricer.objective(&[1]);
        // Solo on big: 8/1 + 1 = 9. Solo on small (scale 0.5):
        // 8/0.5 + 1 = 17.
        assert!((on_big - 9.0).abs() < 1e-9, "big {on_big}");
        assert!((on_small - 17.0).abs() < 1e-9, "small {on_small}");
        // Re-pricing must hit the class-keyed cache, not cross over.
        assert!((pricer.objective(&[1]) - on_small).abs() < 1e-12);
        assert!((pricer.objective(&[0]) - on_big).abs() < 1e-12);
    }

    #[test]
    fn same_subset_on_two_classes_yields_class_specific_allocations() {
        // A saturating model (no benefit beyond 0.6 of the reference
        // CPU) splits differently on the two classes: on the big
        // machine the hungry tenant stops at 0.6; on the half-scale
        // machine every share still helps, so it takes more.
        let models: Vec<_> = [20.0, 1.0]
            .into_iter()
            .map(|alpha| FnCostModel::new(move |a: Allocation| alpha / a.cpu().min(0.6) + 1.0))
            .collect();
        let qos = qos_n(2);
        let opts = FleetOptions::for_machines(1);
        let space = SearchSpace::cpu_only(0.5);
        let solve_on = |spec: MachineSpec| {
            place_tenants_heterogeneous(&[spec], &qos, &models, &opts).per_machine[0]
                .clone()
                .expect("solvable")
        };
        let big = solve_on(MachineSpec::reference(space));
        let small = solve_on(MachineSpec::scaled(space, 0.5, 1.0));
        // Same subset {0,1}, different classes ⇒ different shares.
        assert_ne!(
            big.allocations, small.allocations,
            "class-specific grids must produce class-specific allocations"
        );
        // On the big machine neither hungry tenant needs more than 0.6.
        assert!(
            big.allocations[0].cpu() <= 0.6 + 1e-9,
            "{:?}",
            big.allocations
        );
    }

    #[test]
    fn hungry_tenant_lands_on_the_big_machine() {
        let specs = big_and_small();
        let models = synth(vec![50.0, 1.0]);
        let r =
            place_tenants_heterogeneous(&specs, &qos_n(2), &models, &FleetOptions::for_machines(2));
        assert_eq!(
            r.assignment[0], 0,
            "resource-hungry tenant must take the big machine: {:?}",
            r.assignment
        );
        assert_ne!(r.machine_classes[0], r.machine_classes[1]);
        assert!(r.objective.is_finite());
    }

    #[test]
    fn heterogeneity_aware_placement_beats_smallest_machine_assumption() {
        // Treating every machine as the smallest (the old homogeneous
        // assumption) mis-places tenants; pricing that assignment on
        // the TRUE specs must be no better than heterogeneity-aware
        // placement.
        let space = SearchSpace::cpu_only(0.5);
        let specs = vec![
            MachineSpec::reference(space),
            MachineSpec::reference(space),
            MachineSpec::scaled(space, 0.4, 1.0),
        ];
        let models = synth(vec![30.0, 25.0, 20.0, 2.0, 1.0, 0.5]);
        let qos = qos_n(6);
        let opts = FleetOptions::for_machines(3);
        let aware = place_tenants_heterogeneous(&specs, &qos, &models, &opts);
        // Homogeneous-as-smallest: place as if all machines were the
        // small one, then price that assignment on the true fleet.
        let smallest = vec![MachineSpec::scaled(space, 0.4, 1.0); 3];
        let blind = place_tenants_heterogeneous(&smallest, &qos, &models, &opts);
        let blind_on_true =
            assignment_objective_heterogeneous(&specs, &qos, &models, &blind.assignment, &opts);
        assert!(
            aware.objective <= blind_on_true + 1e-9,
            "aware {} vs blind-on-true {}",
            aware.objective,
            blind_on_true
        );
    }

    #[test]
    fn scaled_model_delegates_accounting() {
        let m = FnCostModel::new(|a: Allocation| 4.0 / a.cpu());
        let scaled = ScaledCostModel::new(&m, Allocation::new(0.5, 1.0));
        // Full share of the half machine = half the reference machine.
        assert!((scaled.cost(Allocation::full()) - 8.0).abs() < 1e-12);
        assert_eq!(scaled.optimizer_calls(), 0);
        assert_eq!(scaled.cache_hits(), 0);
    }

    #[test]
    fn three_axis_placement_spreads_disk_hogs() {
        // Two disk-bound tenants on a cpu+memory+disk grid: the placer
        // must separate them, and every machine's disk budget holds.
        let mut space = SearchSpace::cpu_memory_disk();
        space.set_delta(0.25);
        space.min_share = 0.25;
        let models: Vec<_> = [40.0, 40.0, 1.0, 1.0]
            .into_iter()
            .map(|alpha| {
                FnCostModel::new(move |a: Allocation| alpha / a.disk() + 1.0 / a.cpu() + 1.0)
            })
            .collect();
        let r = place_tenants(&space, &qos_n(4), &models, &FleetOptions::for_machines(2));
        assert_ne!(
            r.assignment[0], r.assignment[1],
            "disk hogs must not share: {:?}",
            r.assignment
        );
        for m in 0..2 {
            if let Some(res) = &r.per_machine[m] {
                let disk: f64 = res.allocations.iter().map(|a| a.disk()).sum();
                assert!(disk <= 1.0 + 1e-9, "machine {m} disk oversubscribed");
            }
        }
    }

    #[test]
    fn per_machine_capacities_are_respected() {
        // The small machine's finer min_share hosts more tenants; the
        // big one's coarse min_share caps at 2. Capacities must be
        // tracked per machine, not fleet-uniform.
        let mut coarse = SearchSpace::cpu_only(0.5);
        coarse.min_share = 0.5;
        coarse.set_delta(0.25);
        let fine = SearchSpace::cpu_only(0.5);
        let specs = vec![
            MachineSpec::reference(coarse),
            MachineSpec::scaled(fine, 0.5, 1.0),
        ];
        assert_eq!(specs[0].capacity(), 2);
        assert_eq!(specs[1].capacity(), 20);
        let models = synth(vec![1.0; 5]);
        let r =
            place_tenants_heterogeneous(&specs, &qos_n(5), &models, &FleetOptions::for_machines(2));
        assert!(r.tenants_on(0).len() <= 2, "{:?}", r.assignment);
    }
}
