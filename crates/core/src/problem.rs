//! The virtualization design problem (§3 of the paper).
//!
//! `N` workloads, each in its own VM, compete for `M` resources of one
//! physical machine. Choose resource shares `R_i = [r_i1 … r_iM]`
//! minimizing `Σ G_i · Cost(W_i, R_i)` subject to `Σ_i r_ij ≤ 1`,
//! `r_ij ≥ 0`, and per-workload degradation limits
//! `Cost(W_i, R_i) / Cost(W_i, [1…1]) ≤ L_i`.
//!
//! The paper evaluates M = 2 (CPU + memory) only because "most virtual
//! machine monitors currently provide mechanisms for controlling the
//! allocation of these two resources" — its Problem 4.1 formulation is
//! M-dimensional. This module is where the generalization lives: every
//! allocation is a [`ResourceVector`] over the full [`Resource::ALL`]
//! axis set, a [`SearchSpace`] varies an arbitrary [`AxisSet`] with
//! per-axis step sizes, and the historical two-field API survives as
//! thin compat shims ([`ResourceVector::new`],
//! [`ResourceVector::cpu`]/[`ResourceVector::memory`],
//! [`SearchSpace::cpu_only`]/[`SearchSpace::memory_only`]/
//! [`SearchSpace::cpu_and_memory`]) so M = 2 call sites keep working —
//! and keep producing bit-identical results — while new code can open
//! the [`Resource::DiskBandwidth`] (and, once the VMM controls it,
//! [`Resource::Network`]) axis.
//!
//! **Deprecation story for the shims:** they exist to make the M = 2 →
//! M-axis migration mechanical, not as the long-term surface. New code
//! should address axes through [`Resource`] (`get`/`with`/
//! [`ResourceVector::from_fn`]); once nothing in the tree constructs
//! two-axis literals, the shims can gain `#[deprecated]` and
//! eventually go — their semantics (unmentioned axes pinned at a full
//! share) are already fully expressible through the vector API.

use serde::{Deserialize, Serialize};
use vda_vmm::VmConfig;

/// A controllable resource axis. The paper's experiments fix
/// M = 2 (CPU + memory); this enum is the superset the advisor can
/// reason about. [`Resource::ALL`] is the single source of truth for
/// axis iteration — every layer that walks "all axes" walks it in this
/// canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// CPU share of the physical machine.
    Cpu,
    /// Memory share of the physical machine.
    Memory,
    /// Disk-bandwidth share of the physical machine's disk subsystem
    /// (see [`vda_vmm::PhysicalMachine::disk_slice`]).
    DiskBandwidth,
    /// Network-bandwidth share. Reserved: the axis is representable
    /// end to end (vectors, search spaces, the DP lattice), but the
    /// simulated VMM does not yet model network contention, so no cost
    /// model prices it.
    Network,
}

impl Resource {
    /// All resources, in canonical order.
    pub const ALL: [Resource; 4] = [
        Resource::Cpu,
        Resource::Memory,
        Resource::DiskBandwidth,
        Resource::Network,
    ];

    /// Number of resource axes (`M` at its maximum).
    pub const COUNT: usize = Self::ALL.len();

    /// This resource's index into [`Resource::ALL`]-ordered arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Human-readable axis name.
    pub const fn name(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Memory => "memory",
            Resource::DiskBandwidth => "disk",
            Resource::Network => "network",
        }
    }
}

/// A set of resource axes, stored as a bitmask over
/// [`Resource::ALL`]. Iteration order is always canonical, so two
/// layers walking the same set agree on axis order by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AxisSet(u8);

impl AxisSet {
    /// The empty set.
    pub const EMPTY: AxisSet = AxisSet(0);

    /// The set containing the given axes.
    pub fn of(axes: &[Resource]) -> Self {
        axes.iter().fold(AxisSet::EMPTY, |s, &r| s.with(r))
    }

    /// This set plus one axis.
    #[must_use]
    pub const fn with(self, r: Resource) -> Self {
        AxisSet(self.0 | (1 << r.index()))
    }

    /// This set minus one axis.
    #[must_use]
    pub const fn without(self, r: Resource) -> Self {
        AxisSet(self.0 & !(1 << r.index()))
    }

    /// Whether the set contains an axis.
    pub const fn contains(self, r: Resource) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Number of axes in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The axes in canonical ([`Resource::ALL`]) order.
    pub fn iter(self) -> impl Iterator<Item = Resource> {
        Resource::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// The raw bitmask (stable across runs; used by cache
    /// fingerprints).
    pub const fn bits(self) -> u8 {
        self.0
    }
}

/// Quantized cache key of a [`ResourceVector`] (10⁻⁴ share resolution
/// per axis).
pub type AllocKey = [u32; Resource::COUNT];

/// A per-axis vector of resource shares — one VM's `R_i`, a machine's
/// capacity scale, or a per-axis grid step. Indexed by [`Resource`];
/// axes an M = 2 caller never mentions default to a full share of
/// `1.0`, which is exactly the paper's environment (the VM sees the
/// whole, uncontrolled disk).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    shares: [f64; Resource::COUNT],
}

/// The historical name for a VM's resource shares; an `Allocation` is
/// a [`ResourceVector`] over [`Resource::ALL`].
pub type Allocation = ResourceVector;

impl ResourceVector {
    /// The same value on every axis.
    pub const fn splat(v: f64) -> Self {
        ResourceVector {
            shares: [v; Resource::COUNT],
        }
    }

    /// Compat shim: the paper's two-field constructor. Disk and
    /// network default to a full share (the M = 2 environment: the VM
    /// sees the whole, uncontrolled device).
    ///
    /// **Deprecation note:** this is the legacy `(cpu, memory)` pair
    /// kept for the paper-era call sites; new code should build
    /// vectors axis-by-axis with [`ResourceVector::from_fn`],
    /// [`ResourceVector::splat`], or [`ResourceVector::with`], which
    /// extend to every [`Resource`] axis instead of hard-coding two.
    pub const fn new(cpu: f64, memory: f64) -> Self {
        let mut shares = [1.0; Resource::COUNT];
        shares[Resource::Cpu.index()] = cpu;
        shares[Resource::Memory.index()] = memory;
        ResourceVector { shares }
    }

    /// The full-machine allocation `[1, …, 1]` used as the degradation
    /// baseline.
    pub const fn full() -> Self {
        Self::splat(1.0)
    }

    /// Compat accessor: the CPU share.
    ///
    /// **Deprecation note:** shorthand for
    /// `get(Resource::Cpu)` — prefer [`ResourceVector::get`] in code
    /// that iterates or abstracts over axes.
    pub const fn cpu(&self) -> f64 {
        self.shares[Resource::Cpu.index()]
    }

    /// Compat accessor: the memory share.
    ///
    /// **Deprecation note:** shorthand for
    /// `get(Resource::Memory)` — prefer [`ResourceVector::get`] in
    /// code that iterates or abstracts over axes.
    pub const fn memory(&self) -> f64 {
        self.shares[Resource::Memory.index()]
    }

    /// The disk-bandwidth share.
    pub const fn disk(&self) -> f64 {
        self.shares[Resource::DiskBandwidth.index()]
    }

    /// Share of one resource.
    pub const fn get(&self, r: Resource) -> f64 {
        self.shares[r.index()]
    }

    /// Copy with one resource share replaced.
    #[must_use]
    pub const fn with(&self, r: Resource, value: f64) -> Self {
        let mut a = *self;
        a.shares[r.index()] = value;
        a
    }

    /// Copy with one resource share shifted by `delta` (may be
    /// negative).
    #[must_use]
    pub const fn shifted(&self, r: Resource, delta: f64) -> Self {
        self.with(r, self.get(r) + delta)
    }

    /// Element-wise product (e.g. re-basing a share of a scaled
    /// machine into reference-machine units).
    #[must_use]
    pub fn scaled_by(&self, scale: &ResourceVector) -> Self {
        let mut a = *self;
        for r in Resource::ALL {
            a.shares[r.index()] *= scale.get(r);
        }
        a
    }

    /// Build a vector axis-by-axis from a closure over
    /// [`Resource::ALL`].
    pub fn from_fn(f: impl FnMut(Resource) -> f64) -> Self {
        let mut f = f;
        let mut shares = [0.0; Resource::COUNT];
        for r in Resource::ALL {
            shares[r.index()] = f(r);
        }
        ResourceVector { shares }
    }

    /// The VMM configuration realizing this allocation.
    pub fn vm_config(&self) -> Result<VmConfig, vda_vmm::VmmError> {
        VmConfig::with_disk(self.cpu(), self.memory(), self.disk())
    }

    /// Quantized cache key (10⁻⁴ share resolution per axis), so
    /// repeated greedy probes of the same point hit the what-if cache
    /// despite floating-point dust.
    pub fn key(&self) -> AllocKey {
        let mut k = [0u32; Resource::COUNT];
        for r in Resource::ALL {
            k[r.index()] = (self.get(r) * 1e4).round() as u32;
        }
        k
    }

    /// Reconstruct the (quantized) vector a cache key encodes.
    pub fn from_key(key: AllocKey) -> Self {
        Self::from_fn(|r| key[r.index()] as f64 / 1e4)
    }

    /// Whether every axis share is a valid fraction in `(0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.shares
            .iter()
            .all(|&v| (0.0..=1.0 + 1e-9).contains(&v) && v > 0.0)
    }
}

/// Per-workload quality-of-service settings (§3, §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoS {
    /// Degradation limit `L_i ≥ 1`; `f64::INFINITY` disables the
    /// constraint.
    pub degradation_limit: f64,
    /// Benefit gain factor `G_i ≥ 1`; cost improvements to this
    /// workload count `G_i`-fold.
    pub gain: f64,
}

impl Default for QoS {
    fn default() -> Self {
        QoS {
            degradation_limit: f64::INFINITY,
            gain: 1.0,
        }
    }
}

impl QoS {
    /// QoS with only a degradation limit.
    pub fn with_limit(limit: f64) -> Self {
        assert!(limit >= 1.0, "degradation limit must be >= 1");
        QoS {
            degradation_limit: limit,
            ..QoS::default()
        }
    }

    /// QoS with only a gain factor.
    pub fn with_gain(gain: f64) -> Self {
        assert!(gain >= 1.0, "gain factor must be >= 1");
        QoS {
            gain,
            ..QoS::default()
        }
    }

    /// Stable 64-bit fingerprint of the QoS settings (bit patterns of
    /// the limit and the gain). Warm-start state for incremental
    /// re-optimization keys on it: a changed limit or gain changes the
    /// optimum even when no workload moved, so it must force a cold
    /// re-solve.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vda_simdb::hash::Fnv64::new();
        h.write_u64(self.degradation_limit.to_bits());
        h.write_u64(self.gain.to_bits());
        h.finish()
    }
}

/// Search-space settings shared by the enumeration algorithms: which
/// axes the advisor controls, the shares of the axes it does not, and
/// the per-axis grid step δ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// The axes the advisor controls; the rest stay at
    /// [`SearchSpace::fixed`].
    pub varied: AxisSet,
    /// Shares used for axes that are *not* varied.
    pub fixed: ResourceVector,
    /// Greedy/exhaustive step δ per axis (the paper uses 5 % on every
    /// axis; each axis may use its own step).
    pub deltas: ResourceVector,
    /// Smallest share any workload may hold in a varied resource (a VM
    /// with zero CPU or memory cannot run its DBMS).
    pub min_share: f64,
}

impl SearchSpace {
    /// A search over `varied`, everything else pinned at `fixed`, with
    /// the paper's default δ = 5 % on every axis.
    pub fn over(varied: AxisSet, fixed: ResourceVector) -> Self {
        assert!(!varied.is_empty(), "at least one axis must be varied");
        SearchSpace {
            varied,
            fixed,
            deltas: ResourceVector::splat(0.05),
            min_share: 0.05,
        }
    }

    /// CPU-only search (§7.3, §7.6): memory fixed at `mem_share` for
    /// every VM.
    ///
    /// **Deprecation note:** one of the three paper-era presets over
    /// [`SearchSpace::over`]; code choosing axes dynamically should
    /// call `over` with an explicit [`AxisSet`] rather than matching
    /// on preset names.
    pub fn cpu_only(mem_share: f64) -> Self {
        Self::over(
            AxisSet::of(&[Resource::Cpu]),
            ResourceVector::new(1.0, mem_share),
        )
    }

    /// Memory-only search (§7.4): CPU fixed at `cpu_share`.
    ///
    /// **Deprecation note:** paper-era preset — see the note on
    /// [`SearchSpace::cpu_only`]; prefer [`SearchSpace::over`] for
    /// axis-generic code.
    pub fn memory_only(cpu_share: f64) -> Self {
        Self::over(
            AxisSet::of(&[Resource::Memory]),
            ResourceVector::new(cpu_share, 1.0),
        )
    }

    /// Joint CPU + memory search (§7.7).
    ///
    /// **Deprecation note:** paper-era preset — see the note on
    /// [`SearchSpace::cpu_only`]; prefer [`SearchSpace::over`] for
    /// axis-generic code.
    pub fn cpu_and_memory() -> Self {
        Self::over(
            AxisSet::of(&[Resource::Cpu, Resource::Memory]),
            ResourceVector::full(),
        )
    }

    /// Joint CPU + memory + disk-bandwidth search — the first axis
    /// beyond the paper's M = 2 (the VMM's disk model was always
    /// there; this opens it to the advisor).
    pub fn cpu_memory_disk() -> Self {
        Self::over(
            AxisSet::of(&[Resource::Cpu, Resource::Memory, Resource::DiskBandwidth]),
            ResourceVector::full(),
        )
    }

    /// Whether one axis is varied.
    pub fn is_varied(&self, r: Resource) -> bool {
        self.varied.contains(r)
    }

    /// The grid step of one axis.
    pub fn delta_for(&self, r: Resource) -> f64 {
        self.deltas.get(r)
    }

    /// Set every axis's grid step to `delta` (the uniform-grid
    /// configuration every M = 2 experiment uses).
    pub fn set_delta(&mut self, delta: f64) {
        self.deltas = ResourceVector::splat(delta);
    }

    /// Copy with every axis's grid step set to `delta`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.set_delta(delta);
        self
    }

    /// The coarsest step among the varied axes — what a coarse-to-fine
    /// ladder value must beat to be useful anywhere.
    pub fn max_varied_delta(&self) -> f64 {
        self.varied
            .iter()
            .map(|r| self.delta_for(r))
            .fold(0.0, f64::max)
    }

    /// The varied resources in canonical order.
    pub fn varied(&self) -> Vec<Resource> {
        self.varied.iter().collect()
    }

    /// The default allocation: `1/N` of each varied resource, the
    /// fixed share otherwise (the paper's comparison baseline).
    pub fn default_allocation(&self, n: usize) -> Allocation {
        let even = 1.0 / n as f64;
        ResourceVector::from_fn(|r| {
            if self.is_varied(r) {
                even
            } else {
                self.fixed.get(r)
            }
        })
    }

    /// The most generous feasible allocation for one workload (used as
    /// the degradation baseline `[1,…,1]`): full share of varied
    /// resources, fixed share otherwise.
    pub fn solo_allocation(&self) -> Allocation {
        ResourceVector::from_fn(|r| {
            if self.is_varied(r) {
                1.0
            } else {
                self.fixed.get(r)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accessors_roundtrip() {
        let a = Allocation::new(0.3, 0.7);
        assert_eq!(a.get(Resource::Cpu), 0.3);
        assert_eq!(a.get(Resource::Memory), 0.7);
        assert_eq!(a.get(Resource::DiskBandwidth), 1.0);
        assert_eq!(a.get(Resource::Network), 1.0);
        let b = a.with(Resource::Cpu, 0.5).shifted(Resource::Memory, -0.2);
        assert!((b.cpu() - 0.5).abs() < 1e-12);
        assert!((b.memory() - 0.5).abs() < 1e-12);
        let d = a.with(Resource::DiskBandwidth, 0.25);
        assert_eq!(d.disk(), 0.25);
        assert_eq!(d.cpu(), a.cpu());
    }

    #[test]
    fn key_is_stable_under_fp_dust() {
        let a = Allocation::new(0.1 + 0.2, 0.5); // 0.30000000000000004
        let b = Allocation::new(0.3, 0.5);
        assert_eq!(a.key(), b.key());
        let c = Allocation::from_key(b.key());
        assert_eq!(b, c);
    }

    #[test]
    fn validity_checks() {
        assert!(Allocation::new(0.5, 0.5).is_valid());
        assert!(!Allocation::new(0.0, 0.5).is_valid());
        assert!(!Allocation::new(1.2, 0.5).is_valid());
        assert!(!Allocation::full()
            .with(Resource::DiskBandwidth, 0.0)
            .is_valid());
    }

    #[test]
    fn axis_set_semantics() {
        let s = AxisSet::of(&[Resource::Cpu, Resource::DiskBandwidth]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Resource::Cpu));
        assert!(!s.contains(Resource::Memory));
        // Canonical iteration order regardless of construction order.
        let t = AxisSet::of(&[Resource::DiskBandwidth, Resource::Cpu]);
        assert_eq!(s, t);
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            vec![Resource::Cpu, Resource::DiskBandwidth]
        );
        assert!(s
            .without(Resource::Cpu)
            .without(Resource::DiskBandwidth)
            .is_empty());
    }

    #[test]
    fn resource_all_is_the_canonical_index_order() {
        for (i, r) in Resource::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn scaled_by_is_elementwise() {
        let a = Allocation::new(0.5, 0.8);
        let s = ResourceVector::new(0.5, 1.0).with(Resource::DiskBandwidth, 0.25);
        let b = a.scaled_by(&s);
        assert!((b.cpu() - 0.25).abs() < 1e-12);
        assert!((b.memory() - 0.8).abs() < 1e-12);
        assert!((b.disk() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn qos_constructors_validate() {
        let q = QoS::with_limit(2.5);
        assert_eq!(q.degradation_limit, 2.5);
        assert_eq!(q.gain, 1.0);
        let g = QoS::with_gain(4.0);
        assert_eq!(g.gain, 4.0);
        assert!(g.degradation_limit.is_infinite());
    }

    #[test]
    #[should_panic(expected = "degradation limit")]
    fn qos_rejects_sub_one_limit() {
        let _ = QoS::with_limit(0.5);
    }

    #[test]
    fn search_space_defaults() {
        let s = SearchSpace::cpu_only(0.0625);
        assert_eq!(s.varied(), vec![Resource::Cpu]);
        let d = s.default_allocation(4);
        assert!((d.cpu() - 0.25).abs() < 1e-12);
        assert!((d.memory() - 0.0625).abs() < 1e-12);
        assert_eq!(d.disk(), 1.0, "unmentioned axes stay at full share");
        let solo = s.solo_allocation();
        assert_eq!(solo.cpu(), 1.0);
        assert_eq!(solo.memory(), 0.0625);
    }

    #[test]
    fn joint_search_varies_both() {
        let s = SearchSpace::cpu_and_memory();
        assert_eq!(s.varied(), vec![Resource::Cpu, Resource::Memory]);
        let d = s.default_allocation(2);
        assert_eq!(d.cpu(), 0.5);
        assert_eq!(d.memory(), 0.5);
    }

    #[test]
    fn three_axis_space_includes_disk() {
        let s = SearchSpace::cpu_memory_disk();
        assert_eq!(
            s.varied(),
            vec![Resource::Cpu, Resource::Memory, Resource::DiskBandwidth]
        );
        let d = s.default_allocation(4);
        assert!((d.disk() - 0.25).abs() < 1e-12);
        assert_eq!(s.solo_allocation().disk(), 1.0);
    }

    #[test]
    fn per_axis_deltas_are_settable() {
        let mut s = SearchSpace::cpu_memory_disk();
        s.set_delta(0.1);
        assert_eq!(s.delta_for(Resource::Cpu), 0.1);
        s.deltas = s.deltas.with(Resource::DiskBandwidth, 0.25);
        assert_eq!(s.delta_for(Resource::DiskBandwidth), 0.25);
        assert_eq!(s.delta_for(Resource::Memory), 0.1);
        assert!((s.max_varied_delta() - 0.25).abs() < 1e-12);
    }
}
