//! The virtualization design problem (§3 of the paper).
//!
//! `N` workloads, each in its own VM, compete for `M` resources of one
//! physical machine. Choose resource shares `R_i = [r_i1 … r_iM]`
//! minimizing `Σ G_i · Cost(W_i, R_i)` subject to `Σ_i r_ij ≤ 1`,
//! `r_ij ≥ 0`, and per-workload degradation limits
//! `Cost(W_i, R_i) / Cost(W_i, [1…1]) ≤ L_i`.

use serde::{Deserialize, Serialize};
use vda_vmm::VmConfig;

/// A controllable resource. The paper's focus — and ours — is CPU and
/// memory (M = 2): "most virtual machine monitors currently provide
/// mechanisms for controlling the allocation of these two resources".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// CPU share of the physical machine.
    Cpu,
    /// Memory share of the physical machine.
    Memory,
}

impl Resource {
    /// All resources, in canonical order.
    pub const ALL: [Resource; 2] = [Resource::Cpu, Resource::Memory];
}

/// One VM's resource shares `R_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// CPU share in `(0, 1]`.
    pub cpu: f64,
    /// Memory share in `(0, 1]`.
    pub memory: f64,
}

impl Allocation {
    /// Construct an allocation.
    pub fn new(cpu: f64, memory: f64) -> Self {
        Allocation { cpu, memory }
    }

    /// The full-machine allocation `[1, …, 1]` used as the degradation
    /// baseline.
    pub fn full() -> Self {
        Allocation {
            cpu: 1.0,
            memory: 1.0,
        }
    }

    /// Share of one resource.
    pub fn get(&self, r: Resource) -> f64 {
        match r {
            Resource::Cpu => self.cpu,
            Resource::Memory => self.memory,
        }
    }

    /// Copy with one resource share replaced.
    #[must_use]
    pub fn with(&self, r: Resource, value: f64) -> Self {
        let mut a = *self;
        match r {
            Resource::Cpu => a.cpu = value,
            Resource::Memory => a.memory = value,
        }
        a
    }

    /// Copy with one resource share shifted by `delta` (may be
    /// negative).
    #[must_use]
    pub fn shifted(&self, r: Resource, delta: f64) -> Self {
        self.with(r, self.get(r) + delta)
    }

    /// The VMM configuration realizing this allocation.
    pub fn vm_config(&self) -> Result<VmConfig, vda_vmm::VmmError> {
        VmConfig::new(self.cpu, self.memory)
    }

    /// Quantized cache key (10⁻⁴ share resolution), so repeated greedy
    /// probes of the same point hit the what-if cache despite
    /// floating-point dust.
    pub fn key(&self) -> (u32, u32) {
        (
            (self.cpu * 1e4).round() as u32,
            (self.memory * 1e4).round() as u32,
        )
    }

    /// Whether both shares are valid fractions.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0 + 1e-9).contains(&self.cpu)
            && (0.0..=1.0 + 1e-9).contains(&self.memory)
            && self.cpu > 0.0
            && self.memory > 0.0
    }
}

/// Per-workload quality-of-service settings (§3, §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoS {
    /// Degradation limit `L_i ≥ 1`; `f64::INFINITY` disables the
    /// constraint.
    pub degradation_limit: f64,
    /// Benefit gain factor `G_i ≥ 1`; cost improvements to this
    /// workload count `G_i`-fold.
    pub gain: f64,
}

impl Default for QoS {
    fn default() -> Self {
        QoS {
            degradation_limit: f64::INFINITY,
            gain: 1.0,
        }
    }
}

impl QoS {
    /// QoS with only a degradation limit.
    pub fn with_limit(limit: f64) -> Self {
        assert!(limit >= 1.0, "degradation limit must be >= 1");
        QoS {
            degradation_limit: limit,
            ..QoS::default()
        }
    }

    /// QoS with only a gain factor.
    pub fn with_gain(gain: f64) -> Self {
        assert!(gain >= 1.0, "gain factor must be >= 1");
        QoS {
            gain,
            ..QoS::default()
        }
    }
}

/// Search-space settings shared by the enumeration algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Which resources the advisor controls; the rest stay at
    /// [`SearchSpace::fixed`].
    pub vary_cpu: bool,
    /// Whether memory is controlled.
    pub vary_memory: bool,
    /// Shares used for resources that are *not* varied.
    pub fixed: Allocation,
    /// Greedy/exhaustive step δ (the paper uses 5 %).
    pub delta: f64,
    /// Smallest share any workload may hold in a varied resource (a VM
    /// with zero CPU or memory cannot run its DBMS).
    pub min_share: f64,
}

impl SearchSpace {
    /// CPU-only search (§7.3, §7.6): memory fixed at `mem_share` for
    /// every VM.
    pub fn cpu_only(mem_share: f64) -> Self {
        SearchSpace {
            vary_cpu: true,
            vary_memory: false,
            fixed: Allocation::new(1.0, mem_share),
            delta: 0.05,
            min_share: 0.05,
        }
    }

    /// Memory-only search (§7.4): CPU fixed at `cpu_share`.
    pub fn memory_only(cpu_share: f64) -> Self {
        SearchSpace {
            vary_cpu: false,
            vary_memory: true,
            fixed: Allocation::new(cpu_share, 1.0),
            delta: 0.05,
            min_share: 0.05,
        }
    }

    /// Joint CPU + memory search (§7.7).
    pub fn cpu_and_memory() -> Self {
        SearchSpace {
            vary_cpu: true,
            vary_memory: true,
            fixed: Allocation::full(),
            delta: 0.05,
            min_share: 0.05,
        }
    }

    /// The varied resources in canonical order.
    pub fn varied(&self) -> Vec<Resource> {
        let mut v = Vec::with_capacity(2);
        if self.vary_cpu {
            v.push(Resource::Cpu);
        }
        if self.vary_memory {
            v.push(Resource::Memory);
        }
        v
    }

    /// The default allocation: `1/N` of each varied resource, the
    /// fixed share otherwise (the paper's comparison baseline).
    pub fn default_allocation(&self, n: usize) -> Allocation {
        let even = 1.0 / n as f64;
        Allocation {
            cpu: if self.vary_cpu { even } else { self.fixed.cpu },
            memory: if self.vary_memory {
                even
            } else {
                self.fixed.memory
            },
        }
    }

    /// The most generous feasible allocation for one workload (used as
    /// the degradation baseline `[1,…,1]`): full share of varied
    /// resources, fixed share otherwise.
    pub fn solo_allocation(&self) -> Allocation {
        Allocation {
            cpu: if self.vary_cpu { 1.0 } else { self.fixed.cpu },
            memory: if self.vary_memory {
                1.0
            } else {
                self.fixed.memory
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accessors_roundtrip() {
        let a = Allocation::new(0.3, 0.7);
        assert_eq!(a.get(Resource::Cpu), 0.3);
        assert_eq!(a.get(Resource::Memory), 0.7);
        let b = a.with(Resource::Cpu, 0.5).shifted(Resource::Memory, -0.2);
        assert!((b.cpu - 0.5).abs() < 1e-12);
        assert!((b.memory - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_is_stable_under_fp_dust() {
        let a = Allocation::new(0.1 + 0.2, 0.5); // 0.30000000000000004
        let b = Allocation::new(0.3, 0.5);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn validity_checks() {
        assert!(Allocation::new(0.5, 0.5).is_valid());
        assert!(!Allocation::new(0.0, 0.5).is_valid());
        assert!(!Allocation::new(1.2, 0.5).is_valid());
    }

    #[test]
    fn qos_constructors_validate() {
        let q = QoS::with_limit(2.5);
        assert_eq!(q.degradation_limit, 2.5);
        assert_eq!(q.gain, 1.0);
        let g = QoS::with_gain(4.0);
        assert_eq!(g.gain, 4.0);
        assert!(g.degradation_limit.is_infinite());
    }

    #[test]
    #[should_panic(expected = "degradation limit")]
    fn qos_rejects_sub_one_limit() {
        let _ = QoS::with_limit(0.5);
    }

    #[test]
    fn search_space_defaults() {
        let s = SearchSpace::cpu_only(0.0625);
        assert_eq!(s.varied(), vec![Resource::Cpu]);
        let d = s.default_allocation(4);
        assert!((d.cpu - 0.25).abs() < 1e-12);
        assert!((d.memory - 0.0625).abs() < 1e-12);
        let solo = s.solo_allocation();
        assert_eq!(solo.cpu, 1.0);
        assert_eq!(solo.memory, 0.0625);
    }

    #[test]
    fn joint_search_varies_both() {
        let s = SearchSpace::cpu_and_memory();
        assert_eq!(s.varied(), vec![Resource::Cpu, Resource::Memory]);
        let d = s.default_allocation(2);
        assert_eq!(d.cpu, 0.5);
        assert_eq!(d.memory, 0.5);
    }
}
