//! Online refinement of the advisor's cost models (§5).
//!
//! The optimizer-backed what-if estimates can be wrong in systematic
//! ways (unmodeled contention, underestimated sort-memory benefit).
//! After deploying a recommendation, the advisor observes *actual*
//! workload costs and refines per-workload cost models:
//!
//! * CPU-like resources follow `cost = α/r + β` (linear in `1/r`,
//!   §5.1);
//! * memory follows a **piecewise** version, one piece per query-plan
//!   regime, with interval boundaries harvested from the plan
//!   signatures seen during configuration enumeration;
//! * with `M` resources, `cost = Σ_j α_jk/r_j + β_k` on memory piece
//!   `k` (§5.2).
//!
//! Refinement scales a model by `Act/Est` (first iteration: every
//! piece, to remove the optimizer's global bias; later iterations:
//! only the observed piece), switches to pure regression on observed
//! costs once a piece has enough observations, then re-runs the greedy
//! search on the refined models — no optimizer calls — and repeats
//! until the recommendation stops changing.

use crate::costmodel::model::CostModel;
use crate::costmodel::whatif::Estimate;
use crate::enumerate::{greedy_search_with, SearchOptions, SearchResult};
use crate::problem::{Allocation, QoS, Resource, SearchSpace};
use serde::{Deserialize, Serialize};
use vda_stats::MultiLinearFit;

/// Floor for model predictions (a cost model must stay positive for
/// the greedy search's comparisons to stay meaningful).
const MIN_PREDICTION: f64 = 1e-9;

/// One plan-regime piece of a refined model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPiece {
    /// Smallest share of the piecewise resource where this regime was
    /// observed.
    pub lo: f64,
    /// Largest share where this regime was observed.
    pub hi: f64,
    /// Coefficients α_j on `1/r_j`, one per varied resource.
    pub alphas: Vec<f64>,
    /// Constant term β.
    pub beta: f64,
    /// Plan-regime signature that defined this piece.
    pub plan_regime: u64,
    /// Actual observations inside this piece: (`1/r_j` row, actual
    /// cost).
    pub observations: Vec<(Vec<f64>, f64)>,
}

impl ModelPiece {
    fn distance(&self, share: f64) -> f64 {
        if share < self.lo {
            self.lo - share
        } else if share > self.hi {
            share - self.hi
        } else {
            0.0
        }
    }

    fn predict_inv(&self, inv: &[f64]) -> f64 {
        let mut v = self.beta;
        for (a, x) in self.alphas.iter().zip(inv) {
            v += a * x;
        }
        v.max(MIN_PREDICTION)
    }
}

/// A per-workload refined cost model over the varied resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinedModel {
    /// Varied resources, canonical order; the *last* one is treated as
    /// piecewise (memory when present).
    pub varied: Vec<Resource>,
    /// Plan-regime pieces ordered by interval.
    pub pieces: Vec<ModelPiece>,
    /// Whether any observation has been absorbed yet (the first
    /// refinement iteration scales all pieces).
    pub refined_once: bool,
}

impl RefinedModel {
    /// Fit the initial model from what-if estimates (§5.1: "running a
    /// linear regression on multiple points representing the estimated
    /// costs ... that we obtain during the configuration enumeration
    /// phase").
    ///
    /// `source` is any [`CostModel`] (normally the tenant's what-if
    /// estimator) supplying `(seconds, plan_regime)` samples; `grid`
    /// is the number of sample levels per varied resource.
    pub fn fit_initial(space: &SearchSpace, grid: usize, source: &dyn CostModel) -> Self {
        let estimate = |alloc: Allocation| {
            let e = source.estimate(alloc);
            (e.seconds, e.plan_regime)
        };
        let varied = space.varied();
        assert!(!varied.is_empty());
        let grid = grid.max(3);
        let levels: Vec<f64> = (0..grid)
            .map(|i| space.min_share + (1.0 - space.min_share) * i as f64 / (grid - 1) as f64)
            .collect();
        let piecewise_memory = varied.contains(&Resource::Memory);

        // 1. Piece boundaries: sweep the piecewise resource at the
        //    middle level of the others, recording regime changes.
        let mid = levels[grid / 2];
        let mut pieces: Vec<ModelPiece> = Vec::new();
        if piecewise_memory {
            for &m in &levels {
                let cpu = if varied.contains(&Resource::Cpu) {
                    mid
                } else {
                    space.fixed.cpu()
                };
                let alloc = Allocation::full()
                    .with(Resource::Cpu, cpu)
                    .with(Resource::Memory, m);
                let (_, regime) = estimate(alloc);
                match pieces.last_mut() {
                    Some(last) if last.plan_regime == regime => last.hi = m,
                    _ => pieces.push(ModelPiece {
                        lo: m,
                        hi: m,
                        alphas: vec![0.0; varied.len()],
                        beta: 0.0,
                        plan_regime: regime,
                        observations: Vec::new(),
                    }),
                }
            }
        } else {
            pieces.push(ModelPiece {
                lo: 0.0,
                hi: 1.0,
                alphas: vec![0.0; varied.len()],
                beta: 0.0,
                plan_regime: 0,
                observations: Vec::new(),
            });
        }

        // 2. Sample the full grid and fit each piece by regression of
        //    estimated cost on the 1/r_j row.
        let mut rows_per_piece: Vec<(Vec<Vec<f64>>, Vec<f64>)> =
            vec![(Vec::new(), Vec::new()); pieces.len()];
        let mut all_rows: Vec<Vec<f64>> = Vec::new();
        let mut all_ys: Vec<f64> = Vec::new();
        let cpu_levels: Vec<f64> = if varied.contains(&Resource::Cpu) {
            levels.clone()
        } else {
            vec![space.fixed.cpu()]
        };
        let mem_levels: Vec<f64> = if piecewise_memory {
            levels.clone()
        } else {
            vec![space.fixed.memory()]
        };
        for &c in &cpu_levels {
            for &m in &mem_levels {
                let alloc = Allocation::full()
                    .with(Resource::Cpu, c)
                    .with(Resource::Memory, m);
                let (cost, _) = estimate(alloc);
                let inv: Vec<f64> = varied.iter().map(|r| 1.0 / alloc.get(*r)).collect();
                let piece = piece_index(&pieces, if piecewise_memory { m } else { 0.5 });
                rows_per_piece[piece].0.push(inv.clone());
                rows_per_piece[piece].1.push(cost);
                all_rows.push(inv);
                all_ys.push(cost);
            }
        }

        let global = MultiLinearFit::fit(&all_rows, &all_ys).ok();
        for (piece, (rows, ys)) in pieces.iter_mut().zip(&rows_per_piece) {
            let fit = if rows.len() > varied.len() {
                MultiLinearFit::fit(rows, ys)
                    .ok()
                    .or_else(|| global.clone())
            } else {
                global.clone()
            };
            if let Some(f) = fit {
                piece.alphas = f.coefficients.clone();
                piece.beta = f.intercept;
            }
        }

        RefinedModel {
            varied,
            pieces,
            refined_once: false,
        }
    }

    /// Index of the piece governing a share of the piecewise resource
    /// (containing interval, else closest — the §5.1 gap rule).
    pub fn piece_for(&self, share: f64) -> usize {
        piece_index(&self.pieces, share)
    }

    fn inv_row(&self, alloc: Allocation) -> Vec<f64> {
        self.varied.iter().map(|r| 1.0 / alloc.get(*r)).collect()
    }

    fn piecewise_share(&self, alloc: Allocation) -> f64 {
        if self.varied.contains(&Resource::Memory) {
            alloc.memory()
        } else {
            0.5
        }
    }

    /// Model prediction at an allocation.
    pub fn predict(&self, alloc: Allocation) -> f64 {
        let piece = self.piece_for(self.piecewise_share(alloc));
        self.pieces[piece].predict_inv(&self.inv_row(alloc))
    }

    /// Absorb one actual observation at `alloc` (§5.1/§5.2 update
    /// rules):
    ///
    /// * first observation ever → scale **all** pieces by `act/est`;
    /// * piece has fewer than `M + 1` observations → scale **its**
    ///   coefficients by `act/est`;
    /// * otherwise → refit the piece by regression on its observations
    ///   alone, discarding the optimizer-derived model.
    ///
    /// The observed share is absorbed into the piece's interval
    /// (boundary arbitration for gap allocations).
    pub fn observe(&mut self, alloc: Allocation, actual: f64) {
        let est = self.predict(alloc).max(MIN_PREDICTION);
        let ratio = (actual / est).clamp(1e-3, 1e3);
        let share = self.piecewise_share(alloc);
        let idx = self.piece_for(share);
        let m = self.varied.len();

        if !self.refined_once {
            for p in &mut self.pieces {
                for a in &mut p.alphas {
                    *a *= ratio;
                }
                p.beta *= ratio;
            }
            self.refined_once = true;
        } else if self.pieces[idx].observations.len() < m {
            let p = &mut self.pieces[idx];
            for a in &mut p.alphas {
                *a *= ratio;
            }
            p.beta *= ratio;
        }

        let inv = self.inv_row(alloc);
        {
            let p = &mut self.pieces[idx];
            if share < p.lo {
                p.lo = share;
            } else if share > p.hi {
                p.hi = share;
            }
            p.observations.push((inv, actual));
        }

        // Enough observations: drop the optimizer model for this piece
        // and fit the observations directly.
        let p = &mut self.pieces[idx];
        if p.observations.len() > m {
            let rows: Vec<Vec<f64>> = p.observations.iter().map(|(r, _)| r.clone()).collect();
            let ys: Vec<f64> = p.observations.iter().map(|(_, y)| *y).collect();
            if let Ok(fit) = MultiLinearFit::fit(&rows, &ys) {
                p.alphas = fit.coefficients.clone();
                p.beta = fit.intercept;
            }
        }
    }
}

impl CostModel for RefinedModel {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        let piece = self.piece_for(self.piecewise_share(alloc));
        Estimate {
            seconds: self.pieces[piece].predict_inv(&self.inv_row(alloc)),
            plan_regime: self.pieces[piece].plan_regime,
            avg_cost_per_statement: 0.0,
        }
    }
}

/// A refined model constrained by the §5.2 Δmax clamp: resources whose
/// refined models are not trusted globally may move at most `delta_max`
/// from the deployed allocation in one refinement round; clamped-out
/// allocations cost `+∞` so the greedy search never selects them.
struct ClampedModel<'a> {
    model: &'a RefinedModel,
    base: Allocation,
    clamp: Option<&'a (Vec<Resource>, f64)>,
}

impl CostModel for ClampedModel<'_> {
    fn estimate(&self, alloc: Allocation) -> Estimate {
        if let Some((resources, dmax)) = self.clamp {
            for r in resources {
                if (alloc.get(*r) - self.base.get(*r)).abs() > *dmax + 1e-9 {
                    return Estimate {
                        seconds: f64::INFINITY,
                        plan_regime: 0,
                        avg_cost_per_statement: 0.0,
                    };
                }
            }
        }
        self.model.estimate(alloc)
    }
}

fn piece_index(pieces: &[ModelPiece], share: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, p) in pieces.iter().enumerate() {
        let d = p.distance(share);
        if d == 0.0 {
            return i;
        }
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Options controlling the refinement loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefineOptions {
    /// Upper bound on refinement iterations (§5.1: "to prevent the
    /// renement process from continuing indefinitely").
    pub max_iterations: usize,
    /// Sample levels per resource for the initial model fit.
    pub sample_grid: usize,
    /// §5.2 Δmax clamp: resources whose refined models are *not*
    /// trusted globally may move at most this much from the current
    /// allocation in one refinement round.
    pub delta_max: Option<(Vec<Resource>, f64)>,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_iterations: 10,
            sample_grid: 8,
            delta_max: None,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinementOutcome {
    /// Allocation per workload after refinement.
    pub final_allocations: Vec<Allocation>,
    /// Refinement iterations performed.
    pub iterations: usize,
    /// Whether the process converged (recommendation stabilized)
    /// before hitting the iteration cap.
    pub converged: bool,
    /// Per-iteration (estimated, actual) pairs per workload.
    pub history: Vec<Vec<(f64, f64)>>,
}

/// Run online refinement: observe actuals at the current
/// recommendation, update the models, re-run greedy search on the
/// refined models, repeat until the recommendation stabilizes.
///
/// `actuals[i]` is the ground-truth oracle for workload `i` (the
/// executor-backed
/// [`ActualCostModel`](crate::costmodel::model::ActualCostModel) in
/// production, synthetic models in tests).
pub fn refine<A: CostModel>(
    models: &mut [RefinedModel],
    space: &SearchSpace,
    qos: &[QoS],
    start: &[Allocation],
    actuals: &[A],
    opts: &RefineOptions,
) -> RefinementOutcome {
    let n = models.len();
    assert_eq!(qos.len(), n);
    assert_eq!(start.len(), n);
    assert_eq!(actuals.len(), n, "one ground-truth oracle per workload");
    let mut current: Vec<Allocation> = start.to_vec();
    let mut history: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut converged = false;
    let mut iterations = 0;
    // Keep the best *observed* configuration: refinement deploys each
    // intermediate recommendation and measures it, so if a later model
    // update wanders (e.g. a plan regime poorly served by the
    // reciprocal form), the advisor still ends on the best
    // configuration it actually saw.
    let mut best: Option<(f64, Vec<Allocation>)> = None;

    for _ in 0..opts.max_iterations {
        iterations += 1;
        // Observe and refine.
        let mut observed_total = 0.0;
        for i in 0..n {
            let est = models[i].predict(current[i]);
            let act = actuals[i].cost(current[i]);
            observed_total += qos[i].gain * act;
            history[i].push((est, act));
            models[i].observe(current[i], act);
        }
        if best.as_ref().is_none_or(|(t, _)| observed_total < *t) {
            best = Some((observed_total, current.clone()));
        }

        // Re-run the advisor on the refined models (no optimizer
        // calls, §7.2), with the §5.2 Δmax clamp applied per workload.
        // Refined predictions are a handful of FLOPs, so serial
        // evaluation beats paying per-batch threading overhead.
        let clamped: Vec<ClampedModel<'_>> = models
            .iter()
            .zip(&current)
            .map(|(model, &base)| ClampedModel {
                model,
                base,
                clamp: opts.delta_max.as_ref(),
            })
            .collect();
        let result: SearchResult =
            greedy_search_with(space, qos, &clamped, &SearchOptions::serial());

        let same = result.allocations.iter().zip(&current).all(|(a, b)| {
            space
                .varied
                .iter()
                .all(|r| (a.get(r) - b.get(r)).abs() < space.delta_for(r) / 2.0)
        });
        current = result.allocations;
        if same {
            converged = true;
            break;
        }
    }

    // Final guard: measure the last recommendation and fall back to the
    // best observed configuration if the models wandered.
    let final_total: f64 = (0..n)
        .map(|i| qos[i].gain * actuals[i].cost(current[i]))
        .sum();
    if let Some((best_total, best_alloc)) = best {
        if best_total < final_total {
            current = best_alloc;
        }
    }

    RefinementOutcome {
        final_allocations: current,
        iterations,
        converged,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::model::{FnCostModel, RegimeFnCostModel};

    /// A synthetic "truth" the optimizer misjudges by a constant
    /// factor: true cost = bias · (α/r_cpu) + β.
    fn make_model(space: &SearchSpace, alpha: f64, beta: f64) -> RefinedModel {
        let est = RegimeFnCostModel::new(move |a: Allocation| (alpha / a.cpu() + beta, 1));
        RefinedModel::fit_initial(space, 8, &est)
    }

    #[test]
    fn initial_fit_recovers_reciprocal_model() {
        let space = SearchSpace::cpu_only(0.5);
        let m = make_model(&space, 12.0, 3.0);
        for &c in &[0.1, 0.35, 0.9] {
            let a = Allocation::new(c, 0.5);
            let expect = 12.0 / c + 3.0;
            assert!(
                (m.predict(a) - expect).abs() / expect < 0.01,
                "at {c}: {} vs {expect}",
                m.predict(a)
            );
        }
    }

    #[test]
    fn first_observation_scales_whole_model() {
        let space = SearchSpace::cpu_only(0.5);
        let mut m = make_model(&space, 10.0, 0.0);
        // Actual is 2× the estimate everywhere.
        m.observe(Allocation::new(0.5, 0.5), 2.0 * (10.0 / 0.5));
        let at_other = m.predict(Allocation::new(0.25, 0.5));
        assert!(
            (at_other - 2.0 * 40.0).abs() / 80.0 < 0.01,
            "scaling must apply globally: {at_other}"
        );
    }

    #[test]
    fn observations_eventually_replace_optimizer_model() {
        let space = SearchSpace::cpu_only(0.5);
        // Optimizer thinks α=10; truth is α=30, β=1.
        let mut m = make_model(&space, 10.0, 0.0);
        for &c in &[0.5, 0.25, 0.75, 0.4] {
            let a = Allocation::new(c, 0.5);
            m.observe(a, 30.0 / c + 1.0);
        }
        let a = Allocation::new(0.6, 0.5);
        let expect = 30.0 / 0.6 + 1.0;
        assert!(
            (m.predict(a) - expect).abs() / expect < 0.02,
            "{} vs {expect}",
            m.predict(a)
        );
    }

    #[test]
    fn piecewise_fit_detects_plan_regimes() {
        let space = SearchSpace::memory_only(0.5);
        // Two regimes: spilling below 40 % memory (steep), in-memory
        // above (flat).
        let est = RegimeFnCostModel::new(|a: Allocation| {
            if a.memory() < 0.4 {
                (50.0 / a.memory() + 10.0, 111)
            } else {
                (5.0 / a.memory() + 20.0, 222)
            }
        });
        let m = RefinedModel::fit_initial(&space, 12, &est);
        assert_eq!(m.pieces.len(), 2, "{:?}", m.pieces.len());
        let lo = m.predict(Allocation::new(0.5, 0.2));
        let hi = m.predict(Allocation::new(0.5, 0.8));
        assert!((lo - (50.0 / 0.2 + 10.0)).abs() / lo < 0.05);
        assert!((hi - (5.0 / 0.8 + 20.0)).abs() / hi < 0.05);
    }

    #[test]
    fn later_observations_scale_only_their_piece() {
        let space = SearchSpace::memory_only(0.5);
        let est = RegimeFnCostModel::new(|a: Allocation| {
            if a.memory() < 0.4 {
                (50.0 / a.memory(), 111)
            } else {
                (5.0 / a.memory(), 222)
            }
        });
        let mut m = RefinedModel::fit_initial(&space, 12, &est);
        // First observation: global scale ×2 (both pieces move).
        m.observe(Allocation::new(0.5, 0.2), 2.0 * 50.0 / 0.2);
        let hi_before = m.predict(Allocation::new(0.5, 0.8));
        // Second observation in the low piece only.
        m.observe(Allocation::new(0.5, 0.3), 4.0 * 50.0 / 0.3);
        let hi_after = m.predict(Allocation::new(0.5, 0.8));
        assert!(
            (hi_before - hi_after).abs() / hi_before < 1e-9,
            "high piece must not move: {hi_before} vs {hi_after}"
        );
    }

    #[test]
    fn refinement_converges_on_biased_estimates() {
        // Two workloads; the optimizer underestimates workload 0 by
        // 5× (the TPC-C situation of §7.8). Truth: α₀=50, α₁=10.
        let space = SearchSpace::cpu_only(0.5);
        // Initial recommendation from the (wrong) models: even split.
        let start = vec![Allocation::new(0.5, 0.5), Allocation::new(0.5, 0.5)];
        let actuals: Vec<_> = [50.0, 10.0]
            .into_iter()
            .map(|alpha| FnCostModel::new(move |a: Allocation| alpha / a.cpu() + 1.0))
            .collect();
        let mut models = vec![make_model(&space, 10.0, 1.0), make_model(&space, 10.0, 1.0)];
        let out = refine(
            &mut models,
            &space,
            &[QoS::default(), QoS::default()],
            &start,
            &actuals,
            &RefineOptions::default(),
        );
        assert!(out.converged, "refinement should converge");
        // Workload 0 is really 5× hungrier: it must end with more CPU.
        assert!(
            out.final_allocations[0].cpu() > 0.6,
            "{:?}",
            out.final_allocations
        );
    }

    #[test]
    fn refinement_stops_at_iteration_cap() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let space = SearchSpace::cpu_only(0.5);
        let mut models = vec![make_model(&space, 10.0, 1.0), make_model(&space, 10.0, 1.0)];
        // Pathological oscillating "actual" that never stabilizes.
        let ticks = AtomicU64::new(0);
        let oscillating = move |a: Allocation| {
            let flip = ticks.fetch_add(1, Ordering::Relaxed) % 2 == 1;
            (10.0 + if flip { 40.0 } else { 0.0 }) / a.cpu()
        };
        let actuals = vec![
            FnCostModel::new(&oscillating),
            FnCostModel::new(&oscillating),
        ];
        let opts = RefineOptions {
            max_iterations: 3,
            ..RefineOptions::default()
        };
        let start = vec![Allocation::new(0.5, 0.5); 2];
        let out = refine(
            &mut models,
            &space,
            &[QoS::default(); 2],
            &start,
            &actuals,
            &opts,
        );
        assert!(out.iterations <= 3);
    }

    #[test]
    fn delta_max_clamps_untrusted_resource() {
        let space = SearchSpace::cpu_and_memory();
        let est = RegimeFnCostModel::new(|a: Allocation| (10.0 / a.cpu() + 10.0 / a.memory(), 1));
        let mut models = vec![
            RefinedModel::fit_initial(&space, 8, &est),
            RefinedModel::fit_initial(&space, 8, &est),
        ];
        // Truth wildly favors workload 0 on memory.
        let actuals: Vec<_> = [100.0, 1.0]
            .into_iter()
            .map(|mem_alpha| {
                FnCostModel::new(move |a: Allocation| 10.0 / a.cpu() + mem_alpha / a.memory())
            })
            .collect();
        let opts = RefineOptions {
            max_iterations: 1,
            delta_max: Some((vec![Resource::Memory], 0.1)),
            ..RefineOptions::default()
        };
        let start = vec![Allocation::new(0.5, 0.5); 2];
        let out = refine(
            &mut models,
            &space,
            &[QoS::default(); 2],
            &start,
            &actuals,
            &opts,
        );
        for (a, s) in out.final_allocations.iter().zip(&start) {
            assert!(
                (a.memory() - s.memory()).abs() <= 0.1 + 1e-9,
                "memory moved beyond delta_max: {a:?}"
            );
        }
    }

    #[test]
    fn history_records_est_and_actual() {
        let space = SearchSpace::cpu_only(0.5);
        let mut models = vec![make_model(&space, 10.0, 1.0)];
        let actuals = vec![FnCostModel::new(|a: Allocation| 20.0 / a.cpu() + 1.0)];
        let start = vec![Allocation::new(1.0, 0.5)];
        let out = refine(
            &mut models,
            &space,
            &[QoS::default()],
            &start,
            &actuals,
            &RefineOptions::default(),
        );
        assert!(!out.history[0].is_empty());
        let (est, act) = out.history[0][0];
        assert!(act > est, "first estimate underestimates by design");
    }
}
