//! Durable control-plane snapshots.
//!
//! [`FleetSnapshot`] is the serialized form of everything a
//! [`ControlPlane`](crate::controlplane::ControlPlane) has *earned*:
//! calibrated models (expensive benchmark runs), the class registry,
//! current placements, each machine's warm-start export, the fleet
//! probe cache, and the decision log. A restarted process feeds it to
//! [`ControlPlane::restore`](crate::controlplane::ControlPlane::restore)
//! and resumes at delta-solve cost with bit-identical results.
//!
//! The wire format is the repo's hand-rolled JSON ([`crate::jsonio`]),
//! with two schema-level conventions on top of it:
//!
//! - every `f64` round-trips **exactly** (shortest-round-trip
//!   formatting, see the [`crate::jsonio`] module docs), which is what
//!   makes restored calibrations keep their fingerprints and restored
//!   solves stay bit-identical;
//! - `u64` fingerprints and keys are encoded as 16-char hex *strings*
//!   ([`crate::jsonio::Json::hex_u64`]) — values above 2⁵³ do not
//!   survive a JSON number.
//!
//! See `docs/FORMATS.md` for the field-by-field schema.

use crate::controlplane::Decision;
use crate::costmodel::adaptive::{Adaption, AxisCorrection};
use crate::costmodel::calibration::{CalibratedModel, CalibrationCost, CpuFits, IoConstants};
use crate::costmodel::whatif::Estimate;
use crate::costmodel::Renormalizer;
use crate::dynamic::Migration;
use crate::enumerate::{SearchResult, TraceStep};
use crate::guardrail::{ErrorAccumulator, GuardrailExport, GuardrailState};
use crate::jsonio::{self, Json};
use crate::problem::{AllocKey, Allocation, Resource, ResourceVector};
use vda_simdb::engines::EngineKind;
use vda_stats::LinearFit;

/// Format marker written into every snapshot.
const FORMAT: &str = "vda-fleet-snapshot";
/// Schema version this module reads and writes. Version 2 added the
/// re-solve wave counter (`waves`), the ring-buffer decision log's
/// drop counter (`log_dropped`), and turned each decision's
/// `migration` (object or null) into a `migrations` array — batches
/// can take several. Version 3 added the adaptive-calibration state:
/// a nullable `adaption` overlay on every serialized model, the
/// per-(hardware class, engine) residual stores (`adaption`), and the
/// guardrail trackers (`tuners`).
const VERSION: f64 = 3.0;

/// One machine's durable state inside a [`FleetSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    /// Hardware fingerprint
    /// ([`vda_vmm::PhysicalMachine::fingerprint`]) — restore-time
    /// validation: a snapshot never resumes onto different hardware.
    pub hardware: u64,
    /// Per-slot tenant fingerprints, in slot order — restore-time
    /// validation of the reconstructed tenant set.
    pub tenants: Vec<u64>,
    /// Every calibrated model the machine holds, by engine kind.
    pub calibrations: Vec<(EngineKind, CalibratedModel)>,
    /// The machine's current placement (`None` while empty).
    pub placement: Option<SearchResult>,
    /// The warm-start export (`None` when the machine was cold).
    pub warm: Option<WarmSnapshot>,
    /// Cumulative `(cold_solves, delta_solves, lattice_reuses)`.
    pub warm_counters: (u64, u64, u64),
}

/// A machine's exported warm-start state (see
/// [`crate::enumerate::WarmStart::export`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSnapshot {
    /// The warm key (space + QoS + models + ladder fingerprint).
    pub key: u64,
    /// Per-tenant workload fingerprints of the last solve.
    pub fingerprints: Vec<u64>,
    /// Fine-window centers of the last solve.
    pub centers: Vec<Allocation>,
    /// The last solve's full result.
    pub last: SearchResult,
}

/// One (hardware class, engine kind) runtime adaption store inside a
/// [`FleetSnapshot`]: the banked residual rows plus the scalar state
/// that makes restored refits identical to never-restarted ones (see
/// [`crate::costmodel::adaptive::RuntimeAdaptionStorage`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptionSnapshot {
    /// Hardware-class fingerprint the store belongs to.
    pub hardware: u64,
    /// Engine kind the store belongs to.
    pub kind: EngineKind,
    /// The store's logical epoch at snapshot time.
    pub epoch: u64,
    /// The store's mutation counter at snapshot time.
    pub version: u64,
    /// Residual rows, sorted by `(tenant, allocation key)`:
    /// `(tenant, key, epoch, predicted, actual)`.
    pub rows: Vec<(u64, AllocKey, u64, f64, f64)>,
}

/// One (hardware class, engine kind) guardrail tracker inside a
/// [`FleetSnapshot`] (see [`crate::guardrail::GuardrailTracker`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TunerSnapshot {
    /// Hardware-class fingerprint the tracker belongs to.
    pub hardware: u64,
    /// Engine kind the tracker belongs to.
    pub kind: EngineKind,
    /// The tracker's full exported state.
    pub tracker: GuardrailExport,
}

/// The durable state of a whole
/// [`ControlPlane`](crate::controlplane::ControlPlane).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Events processed when the snapshot was taken.
    pub seq: u64,
    /// Cumulative optimizer-call counter.
    pub optimizer_calls: u64,
    /// Cumulative per-machine re-solve counter.
    pub resolves: u64,
    /// Cumulative re-solve wave counter (parallel dispatches).
    pub waves: u64,
    /// Cumulative migration counter.
    pub migrations: u64,
    /// Per-machine durable state, in machine-index order.
    pub machines: Vec<MachineSnapshot>,
    /// The class calibration registry: `(hardware fingerprint, engine
    /// kind, model)` rows, sorted for deterministic output.
    pub registry: Vec<(u64, EngineKind, CalibratedModel)>,
    /// The fleet probe cache: `(model fingerprint, tenant fingerprint,
    /// allocation key, estimate)` rows, sorted (see
    /// [`crate::costmodel::whatif::ProbeCache::export`]).
    pub probes: Vec<(u64, u64, AllocKey, Estimate)>,
    /// The decision log's retained entries, oldest → newest (the ring
    /// buffer's *logical* order — the head position is not durable
    /// state, see [`crate::controlplane::DecisionLog`]).
    pub log: Vec<Decision>,
    /// Decisions the ring-buffer log overwrote before the snapshot was
    /// taken (`0` for an unbounded log).
    pub log_dropped: u64,
    /// Runtime adaption stores, sorted by `(hardware, kind)` (empty
    /// when the adaptive subsystem is off).
    pub adaption: Vec<AdaptionSnapshot>,
    /// Guardrail trackers, sorted by `(hardware, kind)` (empty when no
    /// candidate is in flight).
    pub tuners: Vec<TunerSnapshot>,
}

impl FleetSnapshot {
    /// Serialize to the snapshot JSON format (compact, deterministic:
    /// the same snapshot always produces the same bytes).
    pub fn to_json(&self) -> String {
        let machines = Json::Arr(self.machines.iter().map(machine_to_json).collect());
        let registry = Json::Arr(
            self.registry
                .iter()
                .map(|(hw, kind, model)| {
                    obj(vec![
                        ("hardware", Json::hex_u64(*hw)),
                        ("kind", kind_to_json(*kind)),
                        ("model", model_to_json(model)),
                    ])
                })
                .collect(),
        );
        let probes = Json::Arr(
            self.probes
                .iter()
                .map(|(model, tenant, key, est)| {
                    obj(vec![
                        ("model", Json::hex_u64(*model)),
                        ("tenant", Json::hex_u64(*tenant)),
                        (
                            "key",
                            Json::Arr(key.iter().map(|&k| Json::Num(k as f64)).collect()),
                        ),
                        ("estimate", estimate_to_json(est)),
                    ])
                })
                .collect(),
        );
        let log = Json::Arr(self.log.iter().map(decision_to_json).collect());
        let adaption = Json::Arr(self.adaption.iter().map(adaption_store_to_json).collect());
        let tuners = Json::Arr(self.tuners.iter().map(tuner_to_json).collect());
        let root = obj(vec![
            ("format", Json::Str(FORMAT.to_string())),
            ("version", Json::Num(VERSION)),
            ("seq", Json::Num(self.seq as f64)),
            ("optimizer_calls", Json::Num(self.optimizer_calls as f64)),
            ("resolves", Json::Num(self.resolves as f64)),
            ("waves", Json::Num(self.waves as f64)),
            ("migrations", Json::Num(self.migrations as f64)),
            ("machines", machines),
            ("registry", registry),
            ("probes", probes),
            ("log", log),
            ("log_dropped", Json::Num(self.log_dropped as f64)),
            ("adaption", adaption),
            ("tuners", tuners),
        ]);
        jsonio::write(&root)
    }

    /// Parse a snapshot previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem
    /// (bad JSON, wrong format marker, unknown version, missing or
    /// mistyped field).
    pub fn from_json(input: &str) -> Result<FleetSnapshot, String> {
        let root = jsonio::parse(input)?;
        let format = str_field(&root, "format")?;
        if format != FORMAT {
            return Err(format!("not a fleet snapshot (format {format:?})"));
        }
        let version = f64_field(&root, "version")?;
        if version != VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let machines = arr_field(&root, "machines")?
            .iter()
            .map(machine_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let registry = arr_field(&root, "registry")?
            .iter()
            .map(|j| {
                Ok((
                    hex_field(j, "hardware")?,
                    kind_from_json(field(j, "kind")?)?,
                    model_from_json(field(j, "model")?)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let probes = arr_field(&root, "probes")?
            .iter()
            .map(|j| {
                let key_arr = arr_field(j, "key")?;
                if key_arr.len() != Resource::COUNT {
                    return Err(format!("probe key must have {} axes", Resource::COUNT));
                }
                let mut key: AllocKey = [0; Resource::COUNT];
                for (slot, item) in key.iter_mut().zip(key_arr) {
                    *slot = item.as_f64().ok_or("probe key entries must be numbers")? as u32;
                }
                Ok((
                    hex_field(j, "model")?,
                    hex_field(j, "tenant")?,
                    key,
                    estimate_from_json(field(j, "estimate")?)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let log = arr_field(&root, "log")?
            .iter()
            .map(decision_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let adaption = arr_field(&root, "adaption")?
            .iter()
            .map(adaption_store_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let tuners = arr_field(&root, "tuners")?
            .iter()
            .map(tuner_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetSnapshot {
            seq: u64_field(&root, "seq")?,
            optimizer_calls: u64_field(&root, "optimizer_calls")?,
            resolves: u64_field(&root, "resolves")?,
            waves: u64_field(&root, "waves")?,
            migrations: u64_field(&root, "migrations")?,
            machines,
            registry,
            probes,
            log,
            log_dropped: u64_field(&root, "log_dropped")?,
            adaption,
            tuners,
        })
    }
}

// ----------------------------------------------------------------------
// Building blocks: writers
// ----------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn machine_to_json(m: &MachineSnapshot) -> Json {
    let calibrations = Json::Arr(
        m.calibrations
            .iter()
            .map(|(kind, model)| {
                obj(vec![
                    ("kind", kind_to_json(*kind)),
                    ("model", model_to_json(model)),
                ])
            })
            .collect(),
    );
    let warm = match &m.warm {
        None => Json::Null,
        Some(w) => obj(vec![
            ("key", Json::hex_u64(w.key)),
            (
                "fingerprints",
                Json::Arr(w.fingerprints.iter().map(|&f| Json::hex_u64(f)).collect()),
            ),
            (
                "centers",
                Json::Arr(w.centers.iter().map(alloc_to_json).collect()),
            ),
            ("last", result_to_json(&w.last)),
        ]),
    };
    let (cold, delta, reuses) = m.warm_counters;
    obj(vec![
        ("hardware", Json::hex_u64(m.hardware)),
        (
            "tenants",
            Json::Arr(m.tenants.iter().map(|&f| Json::hex_u64(f)).collect()),
        ),
        ("calibrations", calibrations),
        (
            "placement",
            m.placement.as_ref().map_or(Json::Null, result_to_json),
        ),
        ("warm", warm),
        (
            "warm_counters",
            Json::Arr(vec![
                Json::Num(cold as f64),
                Json::Num(delta as f64),
                Json::Num(reuses as f64),
            ]),
        ),
    ])
}

fn kind_to_json(kind: EngineKind) -> Json {
    Json::Str(kind.name().to_string())
}

fn alloc_to_json(a: &Allocation) -> Json {
    Json::Arr(Resource::ALL.iter().map(|&r| Json::Num(a.get(r))).collect())
}

fn result_to_json(r: &SearchResult) -> Json {
    obj(vec![
        (
            "allocations",
            Json::Arr(r.allocations.iter().map(alloc_to_json).collect()),
        ),
        ("weighted_cost", Json::Num(r.weighted_cost)),
        (
            "costs",
            Json::Arr(r.costs.iter().map(|&c| Json::Num(c)).collect()),
        ),
        ("iterations", Json::Num(r.iterations as f64)),
        (
            "trace",
            Json::Arr(
                r.trace
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("resource", Json::Num(s.resource.index() as f64)),
                            ("winner", Json::Num(s.winner as f64)),
                            ("loser", Json::Num(s.loser as f64)),
                            ("improvement", Json::Num(s.improvement)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "limits_met",
            Json::Arr(r.limits_met.iter().map(|&b| Json::Bool(b)).collect()),
        ),
    ])
}

fn estimate_to_json(e: &Estimate) -> Json {
    obj(vec![
        ("seconds", Json::Num(e.seconds)),
        ("plan_regime", Json::hex_u64(e.plan_regime)),
        (
            "avg_cost_per_statement",
            Json::Num(e.avg_cost_per_statement),
        ),
    ])
}

fn fit_to_json(f: &LinearFit) -> Json {
    obj(vec![
        ("intercept", Json::Num(f.intercept)),
        ("slope", Json::Num(f.slope)),
        ("r_squared", Json::Num(f.r_squared)),
    ])
}

fn model_to_json(m: &CalibratedModel) -> Json {
    let cpu_fits = match &m.cpu_fits {
        CpuFits::Pg {
            tuple,
            operator,
            index_tuple,
        } => obj(vec![
            ("variant", Json::Str("pg".to_string())),
            ("tuple", fit_to_json(tuple)),
            ("operator", fit_to_json(operator)),
            ("index_tuple", fit_to_json(index_tuple)),
        ]),
        CpuFits::Db2 { cpuspeed } => obj(vec![
            ("variant", Json::Str("db2".to_string())),
            ("cpuspeed", fit_to_json(cpuspeed)),
        ]),
        CpuFits::Tuple { scan, op, index } => obj(vec![
            ("variant", Json::Str("tuple".to_string())),
            ("scan", fit_to_json(scan)),
            ("op", fit_to_json(op)),
            ("index", fit_to_json(index)),
        ]),
    };
    let io = match m.io {
        IoConstants::Pg { random_page_cost } => obj(vec![
            ("variant", Json::Str("pg".to_string())),
            ("random_page_cost", Json::Num(random_page_cost)),
        ]),
        IoConstants::Db2 {
            overhead_ms,
            transfer_rate_ms,
        } => obj(vec![
            ("variant", Json::Str("db2".to_string())),
            ("overhead_ms", Json::Num(overhead_ms)),
            ("transfer_rate_ms", Json::Num(transfer_rate_ms)),
        ]),
        IoConstants::Tuple { page, seek } => obj(vec![
            ("variant", Json::Str("tuple".to_string())),
            ("page", Json::Num(page)),
            ("seek", Json::Num(seek)),
        ]),
    };
    let renorm = match m.renorm {
        Renormalizer::SecondsPerUnit { secs_per_unit } => obj(vec![
            ("variant", Json::Str("seconds_per_unit".to_string())),
            ("secs_per_unit", Json::Num(secs_per_unit)),
        ]),
        Renormalizer::Regression { slope, intercept } => obj(vec![
            ("variant", Json::Str("regression".to_string())),
            ("slope", Json::Num(slope)),
            ("intercept", Json::Num(intercept)),
        ]),
    };
    obj(vec![
        ("kind", kind_to_json(m.kind)),
        ("machine_mem_mb", Json::Num(m.machine_mem_mb)),
        ("cpu_fits", cpu_fits),
        ("io", io),
        (
            "disk_fit",
            m.disk_fit.as_ref().map_or(Json::Null, fit_to_json),
        ),
        ("renorm", renorm),
        (
            "cost",
            obj(vec![
                ("simulated_seconds", Json::Num(m.cost.simulated_seconds)),
                (
                    "vm_configurations",
                    Json::Num(m.cost.vm_configurations as f64),
                ),
                ("queries_run", Json::Num(m.cost.queries_run as f64)),
            ]),
        ),
        (
            "adaption",
            m.adaption.as_ref().map_or(Json::Null, adaption_to_json),
        ),
    ])
}

fn adaption_to_json(a: &Adaption) -> Json {
    obj(vec![
        ("scale", Json::Num(a.correction.scale)),
        // detlint:allow(axis-compat, reason = "AxisCorrection's own coefficient field, not an Allocation axis")
        ("cpu", Json::Num(a.correction.cpu)),
        ("mem", Json::Num(a.correction.mem)),
        ("version", Json::hex_u64(a.version)),
    ])
}

fn key_to_json(key: &AllocKey) -> Json {
    Json::Arr(key.iter().map(|&k| Json::Num(k as f64)).collect())
}

fn adaption_store_to_json(s: &AdaptionSnapshot) -> Json {
    let rows = Json::Arr(
        s.rows
            .iter()
            .map(|(tenant, key, epoch, predicted, actual)| {
                obj(vec![
                    ("tenant", Json::hex_u64(*tenant)),
                    ("key", key_to_json(key)),
                    ("epoch", Json::Num(*epoch as f64)),
                    ("predicted", Json::Num(*predicted)),
                    ("actual", Json::Num(*actual)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("hardware", Json::hex_u64(s.hardware)),
        ("kind", kind_to_json(s.kind)),
        ("epoch", Json::Num(s.epoch as f64)),
        ("version", Json::Num(s.version as f64)),
        ("rows", rows),
    ])
}

fn accumulator_to_json(a: &ErrorAccumulator) -> Json {
    obj(vec![
        ("candidate_abs", Json::Num(a.candidate_abs)),
        ("incumbent_abs", Json::Num(a.incumbent_abs)),
        ("samples", Json::Num(a.samples as f64)),
    ])
}

fn tuner_to_json(t: &TunerSnapshot) -> Json {
    let e = &t.tracker;
    obj(vec![
        ("hardware", Json::hex_u64(t.hardware)),
        ("kind", kind_to_json(t.kind)),
        ("state", Json::Str(e.state.name().to_string())),
        ("candidate", adaption_to_json(&e.candidate)),
        ("base_fingerprint", Json::hex_u64(e.base_fingerprint)),
        ("shadow", accumulator_to_json(&e.shadow)),
        ("canary", accumulator_to_json(&e.canary)),
        (
            "seen_tenants",
            Json::Arr(e.seen_tenants.iter().map(|&f| Json::hex_u64(f)).collect()),
        ),
        (
            "canary_tenants",
            Json::Arr(e.canary_tenants.iter().map(|&f| Json::hex_u64(f)).collect()),
        ),
        (
            "baseline_objective",
            e.baseline_objective.map_or(Json::Null, Json::Num),
        ),
    ])
}

fn decision_to_json(d: &Decision) -> Json {
    let migrations = Json::Arr(
        d.migrations
            .iter()
            .map(|m| {
                obj(vec![
                    ("tenant", Json::Str(m.tenant.clone())),
                    ("from", Json::Num(m.from as f64)),
                    ("to", Json::Num(m.to as f64)),
                    ("estimated_gain", Json::Num(m.estimated_gain)),
                    ("recalibrated", Json::Bool(m.recalibrated)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("seq", Json::Num(d.seq as f64)),
        ("action", Json::Str(d.action.clone())),
        (
            "resolved",
            Json::Arr(d.resolved.iter().map(|&m| Json::Num(m as f64)).collect()),
        ),
        ("migrations", migrations),
        ("objective", Json::Num(d.objective)),
    ])
}

// ----------------------------------------------------------------------
// Building blocks: readers
// ----------------------------------------------------------------------

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    field(j, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    let x = f64_field(j, key)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!("field {key:?} must be a non-negative integer"));
    }
    Ok(x as u64)
}

fn usize_field(j: &Json, key: &str) -> Result<usize, String> {
    Ok(u64_field(j, key)? as usize)
}

fn hex_field(j: &Json, key: &str) -> Result<u64, String> {
    field(j, key)?
        .as_hex_u64()
        .ok_or_else(|| format!("field {key:?} must be a hex-u64 string"))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, String> {
    field(j, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a boolean"))
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn hex_arr(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    arr_field(j, key)?
        .iter()
        .map(|v| {
            v.as_hex_u64()
                .ok_or_else(|| format!("field {key:?} entries must be hex-u64 strings"))
        })
        .collect()
}

fn kind_from_json(j: &Json) -> Result<EngineKind, String> {
    match j.as_str() {
        Some("pgsim") => Ok(EngineKind::PgSim),
        Some("db2sim") => Ok(EngineKind::Db2Sim),
        Some("tuplesim") => Ok(EngineKind::TupleSim),
        other => Err(format!("unknown engine kind {other:?}")),
    }
}

fn alloc_from_json(j: &Json) -> Result<Allocation, String> {
    let items = j.as_arr().ok_or("allocation must be an array")?;
    if items.len() != Resource::COUNT {
        return Err(format!("allocation must have {} axes", Resource::COUNT));
    }
    let mut shares = [0.0; Resource::COUNT];
    for (slot, item) in shares.iter_mut().zip(items) {
        *slot = item.as_f64().ok_or("allocation entries must be numbers")?;
    }
    Ok(ResourceVector::from_fn(|r| shares[r.index()]))
}

fn result_from_json(j: &Json) -> Result<SearchResult, String> {
    let allocations = arr_field(j, "allocations")?
        .iter()
        .map(alloc_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let costs = arr_field(j, "costs")?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or("costs entries must be numbers".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let trace = arr_field(j, "trace")?
        .iter()
        .map(|s| {
            let idx = usize_field(s, "resource")?;
            let resource = *Resource::ALL
                .get(idx)
                .ok_or_else(|| format!("unknown resource index {idx}"))?;
            Ok(TraceStep {
                resource,
                winner: usize_field(s, "winner")?,
                loser: usize_field(s, "loser")?,
                improvement: f64_field(s, "improvement")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let limits_met = arr_field(j, "limits_met")?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or("limits_met entries must be booleans".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SearchResult {
        allocations,
        weighted_cost: f64_field(j, "weighted_cost")?,
        costs,
        iterations: usize_field(j, "iterations")?,
        trace,
        limits_met,
    })
}

fn estimate_from_json(j: &Json) -> Result<Estimate, String> {
    Ok(Estimate {
        seconds: f64_field(j, "seconds")?,
        plan_regime: hex_field(j, "plan_regime")?,
        avg_cost_per_statement: f64_field(j, "avg_cost_per_statement")?,
    })
}

fn fit_from_json(j: &Json) -> Result<LinearFit, String> {
    Ok(LinearFit {
        intercept: f64_field(j, "intercept")?,
        slope: f64_field(j, "slope")?,
        r_squared: f64_field(j, "r_squared")?,
    })
}

fn adaption_from_json(j: &Json) -> Result<Adaption, String> {
    Ok(Adaption {
        correction: AxisCorrection {
            scale: f64_field(j, "scale")?,
            cpu: f64_field(j, "cpu")?,
            mem: f64_field(j, "mem")?,
        },
        version: hex_field(j, "version")?,
    })
}

fn key_from_json(j: &Json) -> Result<AllocKey, String> {
    let key_arr = j.as_arr().ok_or("allocation key must be an array")?;
    if key_arr.len() != Resource::COUNT {
        return Err(format!("allocation key must have {} axes", Resource::COUNT));
    }
    let mut key: AllocKey = [0; Resource::COUNT];
    for (slot, item) in key.iter_mut().zip(key_arr) {
        *slot = item
            .as_f64()
            .ok_or("allocation key entries must be numbers")? as u32;
    }
    Ok(key)
}

fn adaption_store_from_json(j: &Json) -> Result<AdaptionSnapshot, String> {
    let rows = arr_field(j, "rows")?
        .iter()
        .map(|r| {
            Ok((
                hex_field(r, "tenant")?,
                key_from_json(field(r, "key")?)?,
                u64_field(r, "epoch")?,
                f64_field(r, "predicted")?,
                f64_field(r, "actual")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(AdaptionSnapshot {
        hardware: hex_field(j, "hardware")?,
        kind: kind_from_json(field(j, "kind")?)?,
        epoch: u64_field(j, "epoch")?,
        version: u64_field(j, "version")?,
        rows,
    })
}

fn accumulator_from_json(j: &Json) -> Result<ErrorAccumulator, String> {
    Ok(ErrorAccumulator {
        candidate_abs: f64_field(j, "candidate_abs")?,
        incumbent_abs: f64_field(j, "incumbent_abs")?,
        samples: u64_field(j, "samples")?,
    })
}

fn tuner_from_json(j: &Json) -> Result<TunerSnapshot, String> {
    let state_name = str_field(j, "state")?;
    let state = GuardrailState::from_name(state_name)
        .ok_or_else(|| format!("unknown guardrail state {state_name:?}"))?;
    let baseline_objective = match field(j, "baseline_objective")? {
        Json::Null => None,
        v => Some(v.as_f64().ok_or("baseline_objective must be a number")?),
    };
    Ok(TunerSnapshot {
        hardware: hex_field(j, "hardware")?,
        kind: kind_from_json(field(j, "kind")?)?,
        tracker: GuardrailExport {
            state,
            candidate: adaption_from_json(field(j, "candidate")?)?,
            base_fingerprint: hex_field(j, "base_fingerprint")?,
            shadow: accumulator_from_json(field(j, "shadow")?)?,
            canary: accumulator_from_json(field(j, "canary")?)?,
            seen_tenants: hex_arr(j, "seen_tenants")?,
            canary_tenants: hex_arr(j, "canary_tenants")?,
            baseline_objective,
        },
    })
}

fn model_from_json(j: &Json) -> Result<CalibratedModel, String> {
    let cpu = field(j, "cpu_fits")?;
    let cpu_fits = match str_field(cpu, "variant")? {
        "pg" => CpuFits::Pg {
            tuple: fit_from_json(field(cpu, "tuple")?)?,
            operator: fit_from_json(field(cpu, "operator")?)?,
            index_tuple: fit_from_json(field(cpu, "index_tuple")?)?,
        },
        "db2" => CpuFits::Db2 {
            cpuspeed: fit_from_json(field(cpu, "cpuspeed")?)?,
        },
        "tuple" => CpuFits::Tuple {
            scan: fit_from_json(field(cpu, "scan")?)?,
            op: fit_from_json(field(cpu, "op")?)?,
            index: fit_from_json(field(cpu, "index")?)?,
        },
        other => return Err(format!("unknown cpu_fits variant {other:?}")),
    };
    let io_j = field(j, "io")?;
    let io = match str_field(io_j, "variant")? {
        "pg" => IoConstants::Pg {
            random_page_cost: f64_field(io_j, "random_page_cost")?,
        },
        "db2" => IoConstants::Db2 {
            overhead_ms: f64_field(io_j, "overhead_ms")?,
            transfer_rate_ms: f64_field(io_j, "transfer_rate_ms")?,
        },
        "tuple" => IoConstants::Tuple {
            page: f64_field(io_j, "page")?,
            seek: f64_field(io_j, "seek")?,
        },
        other => return Err(format!("unknown io variant {other:?}")),
    };
    let renorm_j = field(j, "renorm")?;
    let renorm = match str_field(renorm_j, "variant")? {
        "seconds_per_unit" => Renormalizer::SecondsPerUnit {
            secs_per_unit: f64_field(renorm_j, "secs_per_unit")?,
        },
        "regression" => Renormalizer::Regression {
            slope: f64_field(renorm_j, "slope")?,
            intercept: f64_field(renorm_j, "intercept")?,
        },
        other => return Err(format!("unknown renorm variant {other:?}")),
    };
    let disk_fit = match field(j, "disk_fit")? {
        Json::Null => None,
        fit => Some(fit_from_json(fit)?),
    };
    let cost_j = field(j, "cost")?;
    let adaption = match field(j, "adaption")? {
        Json::Null => None,
        a => Some(adaption_from_json(a)?),
    };
    Ok(CalibratedModel {
        kind: kind_from_json(field(j, "kind")?)?,
        machine_mem_mb: f64_field(j, "machine_mem_mb")?,
        cpu_fits,
        io,
        disk_fit,
        renorm,
        cost: CalibrationCost {
            simulated_seconds: f64_field(cost_j, "simulated_seconds")?,
            vm_configurations: usize_field(cost_j, "vm_configurations")?,
            queries_run: usize_field(cost_j, "queries_run")?,
        },
        adaption,
    })
}

fn decision_from_json(j: &Json) -> Result<Decision, String> {
    let migrations = arr_field(j, "migrations")?
        .iter()
        .map(|m| {
            Ok(Migration {
                tenant: str_field(m, "tenant")?.to_string(),
                from: usize_field(m, "from")?,
                to: usize_field(m, "to")?,
                estimated_gain: f64_field(m, "estimated_gain")?,
                recalibrated: bool_field(m, "recalibrated")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let resolved = arr_field(j, "resolved")?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as usize)
                .ok_or("resolved entries must be machine indices".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Decision {
        seq: u64_field(j, "seq")?,
        action: str_field(j, "action")?.to_string(),
        resolved,
        migrations,
        objective: f64_field(j, "objective")?,
    })
}

fn machine_from_json(j: &Json) -> Result<MachineSnapshot, String> {
    let calibrations = arr_field(j, "calibrations")?
        .iter()
        .map(|c| {
            Ok((
                kind_from_json(field(c, "kind")?)?,
                model_from_json(field(c, "model")?)?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let placement = match field(j, "placement")? {
        Json::Null => None,
        p => Some(result_from_json(p)?),
    };
    let warm = match field(j, "warm")? {
        Json::Null => None,
        w => Some(WarmSnapshot {
            key: hex_field(w, "key")?,
            fingerprints: hex_arr(w, "fingerprints")?,
            centers: arr_field(w, "centers")?
                .iter()
                .map(alloc_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            last: result_from_json(field(w, "last")?)?,
        }),
    };
    let counters = arr_field(j, "warm_counters")?;
    if counters.len() != 3 {
        return Err("warm_counters must have 3 entries".to_string());
    }
    let counter = |i: usize| -> Result<u64, String> {
        counters[i]
            .as_f64()
            .filter(|x| *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as u64)
            .ok_or("warm_counters entries must be non-negative integers".to_string())
    };
    Ok(MachineSnapshot {
        hardware: hex_field(j, "hardware")?,
        tenants: hex_arr(j, "tenants")?,
        calibrations,
        placement,
        warm,
        warm_counters: (counter(0)?, counter(1)?, counter(2)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> CalibratedModel {
        CalibratedModel {
            kind: EngineKind::PgSim,
            machine_mem_mb: 1024.0,
            cpu_fits: CpuFits::Pg {
                tuple: LinearFit {
                    intercept: 0.01,
                    slope: 0.1,
                    r_squared: 0.999,
                },
                operator: LinearFit {
                    intercept: 0.0025,
                    slope: 1.0 / 3.0,
                    r_squared: 1.0,
                },
                index_tuple: LinearFit {
                    intercept: 0.005,
                    slope: 0.05,
                    r_squared: 0.98,
                },
            },
            io: IoConstants::Pg {
                random_page_cost: 4.0,
            },
            disk_fit: Some(LinearFit {
                intercept: 0.1,
                slope: 0.9,
                r_squared: 0.97,
            }),
            renorm: Renormalizer::SecondsPerUnit {
                secs_per_unit: 1e-4,
            },
            cost: CalibrationCost {
                simulated_seconds: 12.5,
                vm_configurations: 6,
                queries_run: 42,
            },
            adaption: None,
        }
    }

    fn sample_adaption() -> Adaption {
        Adaption {
            correction: AxisCorrection {
                scale: 1.25,
                cpu: -0.0625,
                mem: 0.015625,
            },
            version: (1 << 57) + 9,
        }
    }

    fn sample_result() -> SearchResult {
        SearchResult {
            allocations: vec![Allocation::new(0.6, 0.5), Allocation::new(0.4, 0.5)],
            weighted_cost: 123.456789,
            costs: vec![100.0 / 3.0, 90.1],
            iterations: 7,
            trace: vec![TraceStep {
                resource: Resource::Cpu,
                winner: 0,
                loser: 1,
                improvement: 0.25,
            }],
            limits_met: vec![true, false],
        }
    }

    fn sample_snapshot() -> FleetSnapshot {
        let model = sample_model();
        FleetSnapshot {
            seq: 75,
            optimizer_calls: 4321,
            resolves: 99,
            waves: 61,
            migrations: 3,
            machines: vec![
                MachineSnapshot {
                    hardware: u64::MAX - 17,
                    tenants: vec![(1 << 60) + 3, 42],
                    calibrations: vec![(
                        EngineKind::PgSim,
                        model.clone().with_adaption(sample_adaption()),
                    )],
                    placement: Some(sample_result()),
                    warm: Some(WarmSnapshot {
                        key: 0xdead_beef_cafe_f00d,
                        fingerprints: vec![(1 << 60) + 3, 42],
                        centers: vec![Allocation::new(0.6, 0.5), Allocation::new(0.4, 0.5)],
                        last: sample_result(),
                    }),
                    warm_counters: (4, 17, 9),
                },
                MachineSnapshot {
                    hardware: 7,
                    tenants: vec![],
                    calibrations: vec![],
                    placement: None,
                    warm: None,
                    warm_counters: (0, 0, 0),
                },
            ],
            registry: vec![(u64::MAX - 17, EngineKind::PgSim, model)],
            probes: vec![(
                0x0123_4567_89ab_cdef,
                42,
                [5000, 5000, 10000, 10000],
                Estimate {
                    seconds: 0.1 + 0.2, // deliberately awkward bits
                    plan_regime: (1 << 53) + 1,
                    avg_cost_per_statement: 1e-300,
                },
            )],
            log: vec![Decision {
                seq: 75,
                action: "workload-changed m0 t1 (major)".to_string(),
                resolved: vec![0, 1],
                migrations: vec![Migration {
                    tenant: "hot".to_string(),
                    from: 0,
                    to: 1,
                    estimated_gain: 0.0625,
                    recalibrated: true,
                }],
                objective: 98.7654321,
            }],
            log_dropped: 7,
            adaption: vec![AdaptionSnapshot {
                hardware: u64::MAX - 17,
                kind: EngineKind::PgSim,
                epoch: 74,
                version: 12,
                rows: vec![
                    (42, [5000, 5000, 10000, 10000], 71, 0.125, 0.25),
                    ((1 << 60) + 3, [2500, 7500, 10000, 10000], 74, 1e-3, 2e-3),
                ],
            }],
            tuners: vec![TunerSnapshot {
                hardware: u64::MAX - 17,
                kind: EngineKind::PgSim,
                tracker: GuardrailExport {
                    state: GuardrailState::Canary,
                    candidate: sample_adaption(),
                    base_fingerprint: 0xFEED_FACE_0123_4567,
                    shadow: ErrorAccumulator {
                        candidate_abs: 0.5,
                        incumbent_abs: 1.5,
                        samples: 4,
                    },
                    canary: ErrorAccumulator {
                        candidate_abs: 0.25,
                        incumbent_abs: 0.75,
                        samples: 2,
                    },
                    seen_tenants: vec![42, (1 << 60) + 3],
                    canary_tenants: vec![42],
                    baseline_objective: Some(98.7654321),
                },
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = FleetSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        // Exactness down to the float bits that PartialEq would let
        // slide (e.g. -0.0 == 0.0).
        assert_eq!(
            snap.probes[0].3.seconds.to_bits(),
            back.probes[0].3.seconds.to_bits()
        );
        // Determinism: same state, same bytes.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn snapshot_rejects_foreign_and_versioned_input() {
        assert!(FleetSnapshot::from_json("{}").is_err());
        assert!(FleetSnapshot::from_json("not json").is_err());
        let wrong_format = r#"{"format": "other", "version": 1}"#;
        assert!(FleetSnapshot::from_json(wrong_format)
            .unwrap_err()
            .contains("format"));
        let wrong_version = sample_snapshot()
            .to_json()
            .replace("\"version\":3,\"seq\"", "\"version\":4,\"seq\"");
        assert!(FleetSnapshot::from_json(&wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn snapshot_reports_missing_fields_by_name() {
        let broken = sample_snapshot().to_json().replace("\"resolves\"", "\"x\"");
        let err = FleetSnapshot::from_json(&broken).unwrap_err();
        assert!(err.contains("resolves"), "{err}");
    }

    #[test]
    fn fingerprints_above_2_53_survive() {
        let snap = sample_snapshot();
        let back = FleetSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.machines[0].tenants[0], (1 << 60) + 3);
        assert_eq!(back.machines[0].hardware, u64::MAX - 17);
        assert_eq!(back.probes[0].3.plan_regime, (1 << 53) + 1);
    }
}
